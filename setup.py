"""Shim for environments without the ``wheel`` package (offline editable
installs fall back to ``python setup.py develop``)."""

from setuptools import setup

setup()
