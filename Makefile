# Convenience targets for the repro package.

PYTHON ?= python

.PHONY: install test bench bench-verbose examples attack survey clean

install:
	pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-verbose:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

examples:
	@for f in examples/*.py; do \
		echo "=== $$f ==="; \
		$(PYTHON) "$$f" || exit 1; \
	done

attack:
	$(PYTHON) -m repro.cli attack

survey:
	$(PYTHON) -m repro.cli survey

clean:
	find . -name __pycache__ -type d -exec rm -rf {} + 2>/dev/null || true
	rm -rf .pytest_cache .hypothesis *.egg-info src/*.egg-info
