# Convenience targets for the repro package.

PYTHON ?= python
PYTHONPATH := src:.
export PYTHONPATH

# Engine classes may only be constructed inside repro/core (and its tests);
# everyone else goes through the registry (repro.core.registry.make_engine).
ENGINE_CTORS := (Best|DS5002FP|DS5240|VlsiDma|GeneralInstrument|Gilmont|XomAes|Aegis|StreamCipher|CompressedEncryption|IntegrityShield|MerkleTree|AddressScrambled)Engine\(

# The data path reports through repro.obs events, never through print()
# debugging or ad-hoc collections.Counter tallies left behind in the
# simulator.
OBS_BYPASS := (^|[^.[:alnum:]_])(print|Counter)\(

# Code outside the package integrates through the supported surfaces
# (repro.api, repro.runner top level); deep repro.runner.* imports from
# benchmarks/examples would freeze internal layout.
RUNNER_DEEP := ^[[:space:]]*(from repro\.runner\.[[:alnum:]_.]+ import|import repro\.runner\.)

.PHONY: install test check lint bench bench-quick bench-gate bench-pytest trace-smoke faults-smoke fastpath-smoke kernels-smoke campaign-smoke serve-smoke stream-smoke vector-smoke kernels-bench campaign-bench serve-bench stream-bench vector-bench examples attack survey clean

install:
	pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# Tier-1 gate: the test suite plus the registry lint and the smoke runs.
check: test lint trace-smoke faults-smoke kernels-smoke fastpath-smoke campaign-smoke serve-smoke stream-smoke vector-smoke

lint:
	@matches=$$(grep -rnE '$(ENGINE_CTORS)' --include='*.py' \
		src/repro benchmarks examples | grep -v '^src/repro/core/' || true); \
	if [ -n "$$matches" ]; then \
		echo "lint: construct engines via repro.core.registry.make_engine:" >&2; \
		echo "$$matches" >&2; \
		exit 1; \
	fi; \
	echo "lint: ok (engine construction goes through the registry)"
	@matches=$$(grep -rnE '$(OBS_BYPASS)' --include='*.py' \
		src/repro/sim || true); \
	if [ -n "$$matches" ]; then \
		echo "lint: the simulator reports via repro.obs events, not" >&2; \
		echo "      print()/Counter() (see repro/obs/__init__.py):" >&2; \
		echo "$$matches" >&2; \
		exit 1; \
	fi; \
	echo "lint: ok (sim reports through repro.obs events)"
	@matches=$$(grep -rnE '$(RUNNER_DEEP)' --include='*.py' \
		benchmarks examples || true); \
	if [ -n "$$matches" ]; then \
		echo "lint: import the runner surface via repro.runner (or" >&2; \
		echo "      repro.api), not deep repro.runner.* modules:" >&2; \
		echo "$$matches" >&2; \
		exit 1; \
	fi; \
	echo "lint: ok (benchmarks/examples stay on the repro.runner surface)"

# Event-stream smoke: one traced quick experiment plus the disabled-path
# overhead micro-benchmark (reduced trials; prints the per-access cost).
trace-smoke:
	$(PYTHON) -m repro.cli trace e02 --limit 0 > /dev/null
	$(PYTHON) -m repro.obs.bench --accesses 20000 --repeats 3

# Fault-campaign smoke: quick campaigns against one engine that must
# detect and one that must stay silent; the CLI exits non-zero when any
# verdict contradicts the engine's `detects` claim.
faults-smoke:
	$(PYTHON) -m repro.cli faults integrity-stream --kinds spoof replay \
		> /dev/null
	$(PYTHON) -m repro.cli faults stream --kinds spoof > /dev/null

# Campaign smoke: a tiny sharded design-space grid must produce
# byte-identical metrics at 1 and 2 workers (exits non-zero on any
# divergence, which would break distributed sweeps).
campaign-smoke:
	$(PYTHON) -m repro.campaign.bench --smoke

# Full campaign scaling bench: the >=1k-point grid at 1/2/4 workers;
# summary lands in BENCH_campaign_scaling.json.
campaign-bench:
	$(PYTHON) -m repro.campaign.bench

# Serve smoke: spawn the asyncio experiment server, hammer it with a few
# hundred concurrent clients, and require zero silent drops, server-vs-
# local byte-identity (experiment and campaign), and a clean shutdown.
serve-smoke:
	$(PYTHON) -m repro.serve.loadgen --smoke

# Full serve load test: >=1000 concurrent clients; the latency/dedup/
# throughput summary lands in BENCH_serve_quick.json.
serve-bench:
	$(PYTHON) -m repro.serve.loadgen --clients 1000 \
		--out BENCH_serve_quick.json

# Streaming smoke: chunked-vs-materialized byte-identity over an engine
# sample (chunk sizes incl. 1 and > len) plus a two-scale bounded-memory
# check, each scale in its own forked child.
stream-smoke:
	$(PYTHON) -m repro.sim.bench_stream --smoke

# Full streaming scaling ladder (10^6/10^7/10^8 accesses); accesses/sec
# and peak RSS per scale land in BENCH_stream_scaling.json.
stream-bench:
	$(PYTHON) -m repro.sim.bench_stream --out BENCH_stream_scaling.json

# Backend-ladder smoke: the streamed dma-burst workload under every
# REPRO_BACKEND rung (numpy / kernel / python, one child process per
# rung) must produce byte-identical canonical metrics documents.
vector-smoke:
	$(PYTHON) -m repro.sim.bench_fastpath --vector --accesses 60000

# Full per-backend scaling run (10^6 accesses); the per-rung timing and
# identity digest land in BENCH_vector_scaling.json.
vector-bench:
	$(PYTHON) -m repro.sim.bench_fastpath --vector \
		--out BENCH_vector_scaling.json

# Fast-path smoke: the scalar reference and the batched execution path
# must agree exactly — reports, bus streams, event totals — on one
# stream and one block-mode engine (the full registry sweep runs in
# tests/test_fastpath.py).
fastpath-smoke:
	$(PYTHON) -m repro.sim.bench_fastpath --check stream integrity-xom

# Cipher-kernel smoke: the equivalence tests plus a sanity run of the
# microbenchmark (exits non-zero if any kernel diverges from its
# reference cipher).
kernels-smoke:
	$(PYTHON) -m pytest tests/test_kernels.py -q
	$(PYTHON) -m repro.crypto.bench_kernels --quick

# Full kernel timing table (reference loop vs batched kernel, all ciphers).
kernels-bench:
	$(PYTHON) -m repro.crypto.bench_kernels

# The E01-E19 experiment suite via the parallel runner; metrics land in
# BENCH_metrics.json (+ _profile.json).  Override: make bench WORKERS=4
WORKERS ?= 1

bench:
	$(PYTHON) -m repro.cli bench --workers $(WORKERS) --tables

# Scaled-down full suite (< 60 s), e.g. as a pre-commit smoke run.
bench-quick:
	$(PYTHON) -m repro.cli bench --quick --workers $(WORKERS) \
		--out BENCH_quick_metrics.json --cache-dir .bench_cache_quick

# Performance gate (CI): a fresh-cache quick suite must reproduce the
# committed metrics byte-for-byte and finish within 25% of the committed
# wall-time profile.
bench-gate:
	cp BENCH_quick_metrics_profile.json /tmp/bench_profile_baseline.json
	rm -rf .bench_cache_quick
	$(MAKE) bench-quick
	git diff --exit-code BENCH_quick_metrics.json
	$(PYTHON) -m repro.runner.profile_gate \
		--profile BENCH_quick_metrics_profile.json \
		--baseline /tmp/bench_profile_baseline.json --tolerance 0.25

# The same experiment bodies under pytest-benchmark (per-bench timing).
bench-pytest:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

examples:
	@for f in examples/*.py; do \
		echo "=== $$f ==="; \
		$(PYTHON) "$$f" || exit 1; \
	done

attack:
	$(PYTHON) -m repro.cli attack

survey:
	$(PYTHON) -m repro.cli survey

clean:
	find . -name __pycache__ -type d -exec rm -rf {} + 2>/dev/null || true
	rm -rf .pytest_cache .hypothesis *.egg-info src/*.egg-info
	rm -rf .bench_cache .bench_cache_quick .bench_campaign_cache
	rm -rf .bench_serve_cache
	rm -f BENCH_metrics.json BENCH_metrics_profile.json
	rm -f BENCH_campaign_metrics.json BENCH_campaign_metrics_profile.json
