"""Full-system simulator: timing accounting, functional data path,
write-policy behaviour and the report structure."""

import pytest

from repro.core import NullEngine, StreamCipherEngine, XomAesEngine
from repro.sim import (
    CacheConfig,
    MemoryConfig,
    SecureSystem,
    WritePolicy,
    overhead,
    run_trace,
)
from repro.traces import Access, AccessKind, sequential_code, write_burst

KEY = b"0123456789abcdef"


def small_system(engine=None, **kwargs):
    defaults = dict(
        cache_config=CacheConfig(size=1024, line_size=32, associativity=2),
        mem_config=MemoryConfig(size=1 << 20, latency=20),
    )
    defaults.update(kwargs)
    return SecureSystem(engine=engine, **defaults)


class TestBaselineTiming:
    def test_single_miss_cost(self):
        system = small_system()
        system.step(Access(AccessKind.LOAD, 0x100))
        # issue(1) + hit latency(1) + mem read (20 + 4 beats)
        assert system.cycles == 1 + 1 + 24

    def test_hit_cost(self):
        system = small_system()
        system.step(Access(AccessKind.LOAD, 0x100))
        before = system.cycles
        system.step(Access(AccessKind.LOAD, 0x104))
        assert system.cycles - before == 2  # issue + hit

    def test_deterministic(self):
        trace = sequential_code(500)
        a = run_trace(list(trace))
        b = run_trace(list(trace))
        assert a.cycles == b.cycles

    def test_report_counts(self):
        trace = sequential_code(100, step=4, code_size=1 << 16)
        report = small_system().run(trace)
        assert report.accesses == 100
        assert report.fetches == 100
        assert report.cache_hits + report.cache_misses == 100
        # 8 accesses per 32-byte line -> 1/8 miss rate, sequential.
        assert report.cache_misses == 13  # ceil(100/8) with cold start

    def test_cpi(self):
        report = small_system().run(sequential_code(100))
        assert report.cpi == pytest.approx(report.cycles / 100)


class TestFunctionalPath:
    def test_install_and_read_back(self):
        engine = XomAesEngine(KEY)
        system = small_system(engine)
        image = bytes(range(256))
        system.install_image(0, image)
        assert system.read_plaintext(0, 256) == image

    def test_memory_holds_ciphertext(self):
        engine = XomAesEngine(KEY)
        system = small_system(engine)
        image = bytes(range(256))
        system.install_image(0, image)
        raw = system.memory.dump(0, 256)
        assert raw != image

    def test_null_engine_memory_in_clear(self):
        system = small_system()
        system.install_image(0, b"cleartext-program!!!           .")
        assert system.memory.dump(0, 8) == b"cleartex"

    def test_fill_returns_plaintext(self):
        engine = StreamCipherEngine(KEY, line_size=32)
        system = small_system(engine)
        image = bytes(range(64))
        system.install_image(0, image)
        system.step(Access(AccessKind.LOAD, 0))
        assert bytes(system._line_data[0]) == image[:32]

    def test_store_then_writeback_roundtrip(self):
        engine = StreamCipherEngine(KEY, line_size=32)
        system = small_system(engine)
        system.install_image(0, bytes(64))
        payload = b"\xAA\xBB\xCC\xDD"
        system.step(Access(AccessKind.STORE, 0, 4), data=payload)
        system.flush()
        assert system.read_plaintext(0, 4) == payload

    def test_dirty_data_survives_eviction_and_refill(self):
        engine = XomAesEngine(KEY)
        system = small_system(engine)
        payload = b"\x11\x22\x33\x44"
        system.step(Access(AccessKind.STORE, 0x40, 4), data=payload)
        # Thrash the set until 0x40's line is evicted (2-way, 16 sets).
        stride = 16 * 32
        system.step(Access(AccessKind.LOAD, 0x40 + stride))
        system.step(Access(AccessKind.LOAD, 0x40 + 2 * stride))
        assert not system.cache.contains(0x40)
        system.step(Access(AccessKind.LOAD, 0x40))
        assert bytes(system._line_data[0x40 // 32][:4]) == payload


class TestWritePolicies:
    def test_write_through_generates_memory_writes(self):
        system = small_system(
            cache_config=CacheConfig(
                size=1024, line_size=32, associativity=2,
                write_policy=WritePolicy.WRITE_THROUGH,
            )
        )
        for access in write_burst(10, base=0, write_size=4):
            system.step(access)
        assert system.memory.writes >= 10

    def test_write_back_coalesces(self):
        system = small_system()
        for access in write_burst(10, base=0, write_size=4):
            system.step(access)
        # All stores hit one line; no memory writes until eviction.
        assert system.memory.writes == 0

    def test_write_buffer_hides_latency(self):
        cfg = dict(
            cache_config=CacheConfig(
                size=1024, line_size=32, associativity=2,
                write_policy=WritePolicy.WRITE_THROUGH,
            ),
        )
        trace = write_burst(50, base=0, write_size=4)
        buffered = small_system(write_buffer=True, **cfg)
        stalling = small_system(write_buffer=False, **cfg)
        buffered.run(list(trace))
        stalling.run(list(trace))
        assert stalling.cycles > buffered.cycles


class TestOverheadHelpers:
    def test_null_engine_zero_overhead(self):
        trace = sequential_code(200)
        assert overhead(list(trace), NullEngine()) == pytest.approx(0.0)

    def test_engine_overhead_positive(self):
        trace = sequential_code(200)
        engine = XomAesEngine(KEY, functional=False)
        assert overhead(list(trace), engine) > 0.0

    def test_run_trace_label(self):
        report = run_trace(sequential_code(10), label="my-run")
        assert report.label == "my-run"

    def test_overhead_vs_self_is_zero(self):
        report = run_trace(sequential_code(10))
        assert report.overhead_vs(report) == 0.0


# -- bulk install encryption (engine.encrypt_lines) -------------------------

from repro.core.registry import engine_names, make_engine
from repro.crypto.drbg import DRBG as _DRBG


class TestEncryptLinesBulk:
    """encrypt_lines must equal the scalar per-line loop, state included.

    Engines with batched overrides (xom, ds5240, stream, aegis) advance
    per-line state (versions, vectors) during installation; running the
    bulk call on one instance and the scalar loop on a twin pins both
    the ciphertext and the state evolution.
    """

    def _items(self, n=40, line=32):
        rng = _DRBG(b"encrypt-lines-bulk")
        return [(0x400 + i * line, rng.random_bytes(line))
                for i in range(n)]

    @pytest.mark.parametrize(
        "name",
        [n for n in engine_names() if n not in ("gi", "vlsi")],
    )
    def test_bulk_matches_scalar(self, name):
        # gi/vlsi are region/page granular and raise on encrypt_line;
        # their installs are covered by their own test modules.
        items = self._items()
        bulk = make_engine(name).encrypt_lines(items)
        scalar_engine = make_engine(name)
        scalar = [scalar_engine.encrypt_line(addr, line)
                  for addr, line in items]
        assert bulk == scalar

    def test_bulk_falls_back_on_ragged_widths(self):
        engine = make_engine("xom")
        items = [(0x4000, bytes(32)), (0x4020, bytes(16))]
        twin = make_engine("xom")
        assert engine.encrypt_lines(items) == [
            twin.encrypt_line(addr, line) for addr, line in items
        ]
