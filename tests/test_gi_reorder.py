"""General Instrument block reordering (the patent's second layer)."""

import pytest

from repro.core import GeneralInstrumentEngine
from repro.core.engine import MemoryPort
from repro.crypto import DRBG
from repro.sim import Bus, MainMemory, MemoryConfig

KEY = b"0123456789abcdef01234567"
REGION = 256


def fresh(reorder=True, image=None):
    engine = GeneralInstrumentEngine(KEY, region_size=REGION, reorder=reorder)
    port = MemoryPort(MainMemory(MemoryConfig(size=1 << 16)), Bus())
    if image is not None:
        engine.install_image(port.memory, 0, image)
    return engine, port


@pytest.fixture(scope="module")
def image():
    return DRBG(4).random_bytes(1024)


class TestFunctional:
    def test_fills_correct_everywhere(self, image):
        engine, port = fresh(image=image)
        for addr in (0, 32, 224, 512, 992):
            line, _ = engine.fill_line(port, addr, 32)
            assert line == image[addr: addr + 32]

    def test_write_then_fill(self, image):
        engine, port = fresh(image=image)
        engine.write_line(port, 64, bytes(range(32)))
        line, _ = engine.fill_line(port, 64, 32)
        assert line == bytes(range(32))
        # Neighbours unaffected.
        assert engine.read_plain(port.memory, 0, 64) == image[:64]
        assert engine.read_plain(port.memory, 96, 32) == image[96:128]

    def test_tag_follows_rewrite(self, image):
        engine, port = fresh(image=image)
        engine.write_line(port, 0, bytes(32))
        assert engine.verify_region(port.memory, 0)

    def test_read_plain_unpermutes(self, image):
        engine, port = fresh(image=image)
        assert engine.read_plain(port.memory, 300, 100) == image[300:400]


class TestLayout:
    def test_storage_is_a_pure_block_permutation(self, image):
        reordered, port_r = fresh(reorder=True, image=image)
        chained, port_c = fresh(reorder=False, image=image)
        stored_r = port_r.memory.dump(0, REGION)
        stored_c = port_c.memory.dump(0, REGION)
        assert stored_r != stored_c
        blocks_r = sorted(stored_r[i: i + 8] for i in range(0, REGION, 8))
        blocks_c = sorted(stored_c[i: i + 8] for i in range(0, REGION, 8))
        assert blocks_r == blocks_c

    def test_permutation_differs_per_region(self, image):
        engine, _ = fresh(image=image)
        assert engine._permutation(0) != engine._permutation(REGION)

    def test_permutation_is_keyed(self, image):
        a = GeneralInstrumentEngine(KEY, region_size=REGION, reorder=True)
        b = GeneralInstrumentEngine(KEY, region_size=REGION, reorder=True,
                                    mac_key=b"other-mac-key")
        assert a._permutation(0) != b._permutation(0)

    def test_chain_structure_hidden(self, image):
        """Without reordering, consecutive logical blocks sit adjacent in
        memory (the chain order is visible); reordering destroys that."""
        reordered, port_r = fresh(reorder=True, image=image)
        perm = reordered._permutation(0)
        adjacent = sum(
            1 for i in range(len(perm) - 1) if perm[i + 1] == perm[i] + 1
        )
        assert adjacent < len(perm) // 4


class TestTiming:
    def test_every_fill_is_a_region_burst(self, image):
        engine, port = fresh(image=image)
        _, first = engine.fill_line(port, 0, 32)
        _, deep = engine.fill_line(port, 224, 32)
        # Fetch cost identical (whole region); only the chain drain differs.
        assert deep > first
        assert port.bus.bytes_transferred >= 2 * REGION

    def test_sequential_chain_shortcut_lost(self, image):
        """Reordering forfeits the chain-register benefit: sequential
        continuations cost as much as restarts."""
        chained, port_c = fresh(reorder=False, image=image)
        reordered, port_r = fresh(reorder=True, image=image)
        chained.fill_line(port_c, 0, 32)
        _, chained_next = chained.fill_line(port_c, 32, 32)
        reordered.fill_line(port_r, 0, 32)
        _, reordered_next = reordered.fill_line(port_r, 32, 32)
        assert reordered_next > chained_next

    def test_writes_rewrite_whole_region(self, image):
        engine, port = fresh(image=image)
        before = port.bus.bytes_transferred
        engine.write_line(port, 224, bytes(32))   # last line of region 0
        # read region + write whole region.
        assert port.bus.bytes_transferred - before >= 2 * REGION
