"""Set-associative cache: geometry, LRU, write policies, eviction flow."""

import pytest

from repro.sim import Cache, CacheConfig, WritePolicy


def make_cache(**kwargs) -> Cache:
    defaults = dict(size=1024, line_size=32, associativity=2)
    defaults.update(kwargs)
    return Cache(CacheConfig(**defaults))


class TestGeometry:
    def test_num_sets(self):
        cfg = CacheConfig(size=1024, line_size=32, associativity=2)
        assert cfg.num_sets == 16

    def test_direct_mapped(self):
        cfg = CacheConfig(size=1024, line_size=32, associativity=1)
        assert cfg.num_sets == 32

    def test_fully_associative(self):
        cfg = CacheConfig(size=1024, line_size=32, associativity=32)
        assert cfg.num_sets == 1

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            CacheConfig(size=1000, line_size=32, associativity=2)
        with pytest.raises(ValueError):
            CacheConfig(size=0)
        with pytest.raises(ValueError):
            CacheConfig(size=1024, line_size=24, associativity=1)


class TestHitMiss:
    def test_cold_miss_then_hit(self):
        cache = make_cache()
        first = cache.access(0x100, is_write=False)
        assert not first.hit and first.fill_needed
        second = cache.access(0x100, is_write=False)
        assert second.hit

    def test_same_line_different_offsets_hit(self):
        cache = make_cache(line_size=32)
        cache.access(0x100, is_write=False)
        assert cache.access(0x11F, is_write=False).hit
        assert not cache.access(0x120, is_write=False).hit

    def test_contains_without_lru_update(self):
        cache = make_cache()
        cache.access(0x100, is_write=False)
        assert cache.contains(0x100)
        assert not cache.contains(0x200)

    def test_stats_counters(self):
        cache = make_cache()
        cache.access(0, False)
        cache.access(0, False)
        cache.access(64, False)
        assert cache.hits == 1
        assert cache.misses == 2
        assert cache.miss_rate == pytest.approx(2 / 3)

    def test_reset_stats(self):
        cache = make_cache()
        cache.access(0, False)
        cache.reset_stats()
        assert cache.hits == cache.misses == 0


class TestLRU:
    def test_lru_victim_selection(self):
        # 2-way: lines mapping to set 0 are multiples of 16 lines.
        cache = make_cache()  # 16 sets, 2 ways, line 32
        stride = 16 * 32      # same set
        cache.access(0 * stride, False)
        cache.access(1 * stride, False)
        cache.access(0 * stride, False)          # touch 0: now MRU
        result = cache.access(2 * stride, False)  # evicts line 1
        assert result.evicted_line == stride // 32
        assert cache.contains(0)
        assert not cache.contains(stride)

    def test_associativity_capacity(self):
        cache = make_cache()
        stride = 16 * 32
        cache.access(0 * stride, False)
        cache.access(1 * stride, False)
        assert cache.access(0 * stride, False).hit
        assert cache.access(1 * stride, False).hit


class TestWriteBack:
    def test_store_hit_marks_dirty_no_traffic(self):
        cache = make_cache()
        cache.access(0x100, False)
        result = cache.access(0x100, True)
        assert result.hit and not result.through_write

    def test_dirty_eviction_writes_back(self):
        cache = make_cache()
        stride = 16 * 32
        cache.access(0, True)               # allocate dirty
        cache.access(stride, False)
        result = cache.access(2 * stride, False)
        assert result.writeback_addr == 0
        assert cache.writebacks == 1

    def test_clean_eviction_no_writeback(self):
        cache = make_cache()
        stride = 16 * 32
        cache.access(0, False)
        cache.access(stride, False)
        result = cache.access(2 * stride, False)
        assert result.writeback_addr is None
        assert result.evicted_line == 0

    def test_store_miss_allocates(self):
        cache = make_cache()
        result = cache.access(0x300, True)
        assert result.fill_needed
        assert cache.contains(0x300)

    def test_flush_returns_dirty_lines(self):
        cache = make_cache()
        cache.access(0, True)
        cache.access(64, False)
        dirty = cache.flush()
        assert dirty == [0]
        assert not cache.contains(0)
        assert not cache.contains(64)


class TestWriteThrough:
    def test_store_hit_propagates(self):
        cache = make_cache(write_policy=WritePolicy.WRITE_THROUGH)
        cache.access(0x100, False)
        result = cache.access(0x100, True)
        assert result.hit and result.through_write

    def test_no_write_allocate_bypasses(self):
        cache = make_cache(
            write_policy=WritePolicy.WRITE_THROUGH, write_allocate=False
        )
        result = cache.access(0x100, True)
        assert not result.hit
        assert not result.fill_needed
        assert result.through_write
        assert not cache.contains(0x100)

    def test_write_allocate_fills_and_propagates(self):
        cache = make_cache(write_policy=WritePolicy.WRITE_THROUGH)
        result = cache.access(0x100, True)
        assert result.fill_needed and result.through_write

    def test_no_writebacks_ever(self):
        cache = make_cache(write_policy=WritePolicy.WRITE_THROUGH)
        stride = 16 * 32
        for i in range(4):
            cache.access(i * stride, True)
        assert cache.writebacks == 0
