"""Best's substitution/transposition cipher: correctness and the
deliberate statistical weakness E06 measures."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import BestCipher
from repro.attacks import analyze_ciphertext


class TestCorrectness:
    def test_roundtrip(self):
        cipher = BestCipher(b"best-key")
        block = b"8 bytes!"
        for addr in (0, 8, 0x1000, 12345 * 8):
            assert cipher.decrypt(addr, cipher.encrypt(addr, block)) == block

    def test_roundtrip_all_rounds(self):
        for rounds in (1, 2, 4):
            cipher = BestCipher(b"best-key", rounds=rounds)
            block = bytes(range(8))
            assert cipher.decrypt(64, cipher.encrypt(64, block)) == block

    def test_roundtrip_wide_block(self):
        cipher = BestCipher(b"best-key", block_size=16)
        block = bytes(range(16))
        assert cipher.decrypt(0, cipher.encrypt(0, block)) == block

    def test_block_cipher_interface(self):
        cipher = BestCipher(b"best-key")
        block = b"ABCDEFGH"
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    def test_wrong_block_size_rejected(self):
        cipher = BestCipher(b"best-key")
        with pytest.raises(ValueError):
            cipher.encrypt(0, b"short")

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            BestCipher(b"k", block_size=1)
        with pytest.raises(ValueError):
            BestCipher(b"k", num_alphabets=0)
        with pytest.raises(ValueError):
            BestCipher(b"k", rounds=0)


class TestPolyAlphabetic:
    def test_address_dependence(self):
        """The poly-alphabetic schedule: same block, different address,
        different ciphertext."""
        cipher = BestCipher(b"best-key", num_alphabets=16)
        block = b"constant"
        cts = {cipher.encrypt(addr, block) for addr in range(0, 128, 8)}
        assert len(cts) > 1

    def test_alphabet_cycle(self):
        """Addresses congruent mod num_alphabets share the substitution
        schedule — the cipher's periodicity weakness."""
        cipher = BestCipher(b"best-key", num_alphabets=16)
        block = b"constant"
        assert cipher.encrypt(0, block) == cipher.encrypt(16, block)

    def test_mono_alphabetic_with_one_table(self):
        cipher = BestCipher(b"best-key", num_alphabets=1)
        block = b"constant"
        assert cipher.encrypt(0, block) == cipher.encrypt(8, block)


class TestWeakness:
    def test_statistically_weaker_than_random(self):
        """A highly repetitive image keeps visible structure under Best —
        the gap to NIST ciphers the survey calls out (E06)."""
        cipher = BestCipher(b"best-key", num_alphabets=4)
        image = (b"\x00" * 8 + b"\xff" * 8) * 256
        ct = bytearray()
        for i in range(0, len(image), 8):
            ct += cipher.encrypt(i, image[i: i + 8])
        analysis = analyze_ciphertext(bytes(ct), block_size=8)
        # Strong repetition survives: the distinguisher fires.
        assert analysis.block_collision_rate > 0.5

    def test_key_sensitivity(self):
        block = b"constant"
        assert BestCipher(b"key-a").encrypt(0, block) != \
            BestCipher(b"key-b").encrypt(0, block)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 255), addr=st.integers(0, 1 << 16))
def test_best_roundtrip_property(seed, addr):
    cipher = BestCipher(bytes([seed]) + b"-key")
    block = bytes((seed * 7 + i) & 0xFF for i in range(8))
    addr = addr - addr % 8
    assert cipher.decrypt(addr, cipher.encrypt(addr, block)) == block
