"""Known-answer tests pinning the from-scratch crypto to published vectors.

Every engine in the reproduction rides on these primitives; a silent
regression here would invalidate the whole detection matrix.  Vectors come
from FIPS 197 (AES), the classic NBS/NIST DES validation set, SP 800-67
(3DES), FIPS 180-4 (SHA-256) and RFC 4231 (HMAC-SHA256); where the Python
standard library has the same primitive we also cross-check against it on
arbitrary data.
"""

import hashlib
import hmac as std_hmac

import pytest

from repro.crypto import AES, DES, DRBG, TripleDES, hmac_sha256, sha256
from repro.crypto.sha256 import SHA256

# -- AES (FIPS 197) --------------------------------------------------------

AES_VECTORS = [
    # Appendix B worked example (AES-128).
    ("2b7e151628aed2a6abf7158809cf4f3c",
     "3243f6a8885a308d313198a2e0370734",
     "3925841d02dc09fbdc118597196a0b32"),
    # Appendix C.1 (AES-128).
    ("000102030405060708090a0b0c0d0e0f",
     "00112233445566778899aabbccddeeff",
     "69c4e0d86a7b0430d8cdb78070b4c55a"),
    # Appendix C.2 (AES-192).
    ("000102030405060708090a0b0c0d0e0f1011121314151617",
     "00112233445566778899aabbccddeeff",
     "dda97ca4864cdfe06eaf70a0ec0d7191"),
    # Appendix C.3 (AES-256).
    ("000102030405060708090a0b0c0d0e0f"
     "101112131415161718191a1b1c1d1e1f",
     "00112233445566778899aabbccddeeff",
     "8ea2b7ca516745bfeafc49904b496089"),
]


class TestAES:
    @pytest.mark.parametrize("key,plaintext,ciphertext", AES_VECTORS)
    def test_fips_197_encrypt(self, key, plaintext, ciphertext):
        cipher = AES(bytes.fromhex(key))
        assert cipher.encrypt_block(bytes.fromhex(plaintext)).hex() \
            == ciphertext

    @pytest.mark.parametrize("key,plaintext,ciphertext", AES_VECTORS)
    def test_fips_197_decrypt(self, key, plaintext, ciphertext):
        cipher = AES(bytes.fromhex(key))
        assert cipher.decrypt_block(bytes.fromhex(ciphertext)).hex() \
            == plaintext


# -- DES / 3DES ------------------------------------------------------------

DES_VECTORS = [
    # The textbook walkthrough key/plaintext pair.
    ("133457799bbcdff1", "0123456789abcdef", "85e813540f0ab405"),
    # "Validating the Correctness of Hardware Implementations of the NBS
    # Data Encryption Standard" sample ("Now is t").
    ("0123456789abcdef", "4e6f772069732074", "3fa40e8a984d4815"),
]


class TestDES:
    @pytest.mark.parametrize("key,plaintext,ciphertext", DES_VECTORS)
    def test_known_answers(self, key, plaintext, ciphertext):
        cipher = DES(bytes.fromhex(key))
        assert cipher.encrypt_block(bytes.fromhex(plaintext)).hex() \
            == ciphertext
        assert cipher.decrypt_block(bytes.fromhex(ciphertext)).hex() \
            == plaintext


class TestTripleDES:
    def test_three_key_known_answer(self):
        # The classic three-key EDE vector (Karn's des test suite; the
        # "qufck" typo is part of the published plaintext).
        key = bytes.fromhex(
            "0123456789abcdef23456789abcdef01456789abcdef0123"
        )
        plaintext = b"The qufck brown fox jump"
        expected = "a826fd8ce53b855fcce21c8112256fe668d5c05dd9b6b900"
        cipher = TripleDES(key)
        ciphertext = b"".join(
            cipher.encrypt_block(plaintext[i: i + 8])
            for i in range(0, len(plaintext), 8)
        )
        assert ciphertext.hex() == expected
        assert b"".join(
            cipher.decrypt_block(ciphertext[i: i + 8])
            for i in range(0, len(ciphertext), 8)
        ) == plaintext

    def test_single_key_degenerates_to_des(self):
        # SP 800-67 keying option 3: K1=K2=K3 makes EDE a single DES.
        key = bytes.fromhex("0123456789abcdef")
        block = bytes.fromhex("4e6f772069732074")
        assert TripleDES(key).encrypt_block(block) \
            == DES(key).encrypt_block(block)

    def test_two_key_option(self):
        # Keying option 2 (16-byte key, K3=K1) round-trips and differs
        # from both single-DES halves.
        key = bytes.fromhex("0123456789abcdeffedcba9876543210")
        block = b"\xa5" * 8
        cipher = TripleDES(key)
        ciphertext = cipher.encrypt_block(block)
        assert cipher.decrypt_block(ciphertext) == block
        assert ciphertext != DES(key[:8]).encrypt_block(block)
        assert ciphertext != DES(key[8:]).encrypt_block(block)


# -- SHA-256 (FIPS 180-4) --------------------------------------------------

SHA256_VECTORS = [
    (b"", "e3b0c44298fc1c149afbf4c8996fb924"
          "27ae41e4649b934ca495991b7852b855"),
    (b"abc", "ba7816bf8f01cfea414140de5dae2223"
             "b00361a396177a9cb410ff61f20015ad"),
    (b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
     "248d6a61d20638b8e5c026930c3e6039"
     "a33ce45964ff2167f6ecedd419db06c1"),
]


class TestSHA256:
    @pytest.mark.parametrize("message,digest", SHA256_VECTORS)
    def test_fips_180_4(self, message, digest):
        assert sha256(message).hex() == digest

    def test_million_a(self):
        digest = SHA256()
        for _ in range(1000):
            digest.update(b"a" * 1000)
        assert digest.hexdigest() == (
            "cdc76e5c9914fb9281a1c7e284d73e67"
            "f1809a48a497200e046d39ccc7112cd0"
        )

    def test_matches_hashlib_on_arbitrary_lengths(self):
        rng = DRBG(4231)
        for length in (0, 1, 55, 56, 63, 64, 65, 1000):
            data = rng.random_bytes(length)
            assert sha256(data) == hashlib.sha256(data).digest()


# -- HMAC-SHA256 (RFC 4231) ------------------------------------------------

HMAC_VECTORS = [
    # Test case 1.
    (b"\x0b" * 20, b"Hi There",
     "b0344c61d8db38535ca8afceaf0bf12b"
     "881dc200c9833da726e9376c2e32cff7"),
    # Test case 2.
    (b"Jefe", b"what do ya want for nothing?",
     "5bdcc146bf60754e6a042426089575c7"
     "5a003f089d2739839dec58b964ec3843"),
    # Test case 3.
    (b"\xaa" * 20, b"\xdd" * 50,
     "773ea91e36800e46854db8ebd09181a7"
     "2959098b3ef8c122d9635514ced565fe"),
    # Test case 6: key longer than the block size.
    (b"\xaa" * 131, b"Test Using Larger Than Block-Size Key - Hash Key First",
     "60e431591ee0b67f0d8a26aacbf5b77f"
     "8e0bc6213728c5140546040f0ee37f54"),
]


class TestHMAC:
    @pytest.mark.parametrize("key,message,tag", HMAC_VECTORS)
    def test_rfc_4231(self, key, message, tag):
        assert hmac_sha256(key, message).hex() == tag

    def test_matches_stdlib_hmac(self):
        rng = DRBG(2104)
        for key_len, msg_len in ((0, 0), (16, 32), (64, 100), (100, 7)):
            key = rng.random_bytes(key_len)
            message = rng.random_bytes(msg_len)
            assert hmac_sha256(key, message) == std_hmac.new(
                key, message, hashlib.sha256
            ).digest()
