"""Experiment runner: determinism, caching, and the registry contract."""

import json

import pytest

from repro.runner import (
    ExperimentRunner,
    ResultCache,
    TaskContext,
    task_seed,
    to_canonical_json,
)
from repro.runner.experiments import EXPERIMENTS, get_experiment


class TestTaskModel:
    def test_task_seed_is_stable_and_distinct(self):
        assert task_seed("e01", "cost-gap") == task_seed("e01", "cost-gap")
        assert task_seed("e01", "cost-gap") != task_seed("e01", "protocol")
        assert task_seed("e01", "cost-gap") != task_seed("e02", "cost-gap")

    def test_context_scaling(self):
        assert TaskContext(quick=False).n(4000) == 4000
        assert TaskContext(quick=True).n(4000) == 800
        assert TaskContext(quick=True).n(4000, quick=100) == 100
        assert TaskContext(quick=True).n(600) == 200   # floor

    def test_context_is_frozen(self):
        with pytest.raises(AttributeError):
            TaskContext().quick = True


class TestRegistry:
    def test_all_nineteen_registered(self):
        assert sorted(EXPERIMENTS) == [f"e{i:02d}" for i in range(1, 20)]

    def test_unknown_id_lists_known(self):
        with pytest.raises(KeyError, match="e01"):
            get_experiment("e99")

    def test_experiments_are_well_formed(self):
        for exp_id, exp in EXPERIMENTS.items():
            assert exp.id == exp_id
            assert exp.tasks, exp_id
            assert exp.check is not None, exp_id
            assert exp.render is not None, exp_id


class TestCanonicalJson:
    def test_sorted_and_newline_terminated(self):
        doc = {"b": 1, "a": {"z": [3, 1], "y": None}}
        text = to_canonical_json(doc)
        assert text.endswith("\n")
        assert text.index('"a"') < text.index('"b"')
        assert json.loads(text) == doc


class TestRunnerDeterminism:
    EXPS = ["e01"]

    def _metrics(self, workers, tmp_path, tag):
        runner = ExperimentRunner(
            experiments=self.EXPS, workers=workers, quick=True,
            cache_dir=tmp_path / f"cache-{tag}",
        )
        return runner.run()

    def test_serial_and_parallel_are_byte_identical(self, tmp_path):
        serial = self._metrics(1, tmp_path, "serial")
        parallel = self._metrics(2, tmp_path, "parallel")
        assert serial.metrics_json() == parallel.metrics_json()
        assert serial.all_checks_passed

    def test_cache_round_trip_preserves_bytes(self, tmp_path):
        first = self._metrics(1, tmp_path, "shared")
        runner = ExperimentRunner(
            experiments=self.EXPS, workers=1, quick=True,
            cache_dir=tmp_path / "cache-shared",
        )
        second = runner.run()
        assert runner.cache.hits == len(get_experiment("e01").tasks)
        assert runner.cache.misses == 0
        assert second.metrics_json() == first.metrics_json()

    def test_quick_and_full_cache_separately(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        quick = ResultCache.task_key(
            "e01", "cost-gap", TaskContext(quick=True).key())
        full = ResultCache.task_key(
            "e01", "cost-gap", TaskContext(quick=False).key())
        assert quick != full
        cache.put(quick, {"x": 1})
        assert cache.get(quick) == {"x": 1}
        assert cache.get(full) is None

    def test_quick_flag_partitions_even_without_ctx_key(self, tmp_path):
        # Regression: a caller building ctx_key by hand (forgetting the
        # quick flag) must still get distinct keys per scale — the flag is
        # a first-class field of the key, not just part of the context.
        cache = ResultCache(tmp_path / "c")
        bare_ctx = {"seed": 1234}
        quick = ResultCache.task_key("e01", "cost-gap", bare_ctx, quick=True)
        full = ResultCache.task_key("e01", "cost-gap", bare_ctx, quick=False)
        assert quick != full
        cache.put(quick, {"metrics": {"scale": "quick"}})
        assert cache.get(full) is None

    def test_quick_result_never_replayed_into_full_document(self, tmp_path):
        # A quick-suite run must not seed cache entries that a full-scale
        # runner would consume.
        shared = tmp_path / "cache-scale"
        quick_runner = ExperimentRunner(
            experiments=self.EXPS, workers=1, quick=True, cache_dir=shared,
        )
        quick_runner.run()
        full_runner = ExperimentRunner(
            experiments=self.EXPS, workers=1, quick=False, cache_dir=shared,
        )
        for task_name in get_experiment("e01").tasks:
            quick_key = quick_runner._cache_key("e01", task_name)
            full_key = full_runner._cache_key("e01", task_name)
            assert quick_key != full_key
            assert full_runner.cache.get(full_key) is None

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError):
            ExperimentRunner(experiments=self.EXPS, workers=0)

    def test_profile_reports_workers_and_walls(self, tmp_path):
        result = self._metrics(1, tmp_path, "profile")
        assert result.profile["workers"] == 1
        assert set(result.profile["task_wall_seconds"]) == {
            f"e01:{name}" for name in get_experiment("e01").tasks
        }
        # Executed tasks record a real (microsecond-resolution) wall.
        assert all(w > 0 for w in
                   result.profile["task_wall_seconds"].values())

    def test_profile_reports_per_experiment_cache_mix(self, tmp_path):
        # First run: e01 fully executed (all misses).  Second run adds
        # e13: e01 replays from cache, e13 executes — the per-experiment
        # section must show that mix, which the suite totals can't.
        shared = tmp_path / "cache-mix"
        first = ExperimentRunner(
            experiments=["e01"], workers=1, quick=True, cache_dir=shared,
        ).run()
        e01_tasks = len(get_experiment("e01").tasks)
        assert first.profile["cache"]["per_experiment"] == {
            "e01": {"hits": 0, "misses": e01_tasks},
        }
        second = ExperimentRunner(
            experiments=["e01", "e13"], workers=1, quick=True,
            cache_dir=shared,
        ).run()
        per_exp = second.profile["cache"]["per_experiment"]
        assert per_exp["e01"] == {"hits": e01_tasks, "misses": 0}
        assert per_exp["e13"]["hits"] == 0
        assert per_exp["e13"]["misses"] == len(get_experiment("e13").tasks)
        # Cached tasks report zero wall; executed tasks a positive one.
        assert all(
            second.profile["task_wall_seconds"][f"e01:{n}"] == 0.0
            for n in get_experiment("e01").tasks
        )
        assert all(
            second.profile["task_wall_seconds"][f"e13:{n}"] > 0
            for n in get_experiment("e13").tasks
        )


class TestObservability:
    def _run(self, tmp_path, tag, workers=1, observe=True):
        return ExperimentRunner(
            experiments=["e01"], workers=workers, quick=True,
            cache_dir=tmp_path / f"cache-{tag}", observe=observe,
        ).run()

    def test_sections_present_and_aggregated(self, tmp_path):
        result = self._run(tmp_path, "obs")
        obs = result.metrics["experiments"]["e01"]["observability"]
        tasks = get_experiment("e01").tasks
        assert set(obs["tasks"]) == set(tasks)
        totals = obs["total"]["totals"]
        assert totals["events"] == sum(
            sec["totals"]["events"] for sec in obs["tasks"].values()
        )
        assert totals["events"] > 0

    def test_serial_and_parallel_observability_byte_identical(self,
                                                              tmp_path):
        serial = self._run(tmp_path, "ser", workers=1)
        parallel = self._run(tmp_path, "par", workers=2)
        assert serial.metrics_json() == parallel.metrics_json()

    def test_observe_off_drops_section_not_metrics(self, tmp_path):
        observed = self._run(tmp_path, "on", observe=True)
        plain = self._run(tmp_path, "off", observe=False)
        doc = json.loads(observed.metrics_json())
        assert "observability" not in plain.metrics["experiments"]["e01"]
        del doc["experiments"]["e01"]["observability"]
        assert doc == json.loads(plain.metrics_json())

    def test_observe_flag_partitions_the_cache(self, tmp_path):
        self._run(tmp_path, "shared", observe=True)
        plain = ExperimentRunner(
            experiments=["e01"], workers=1, quick=True,
            cache_dir=tmp_path / "cache-shared", observe=False,
        )
        plain.run()
        # The observe=True entries must not satisfy observe=False keys.
        assert plain.cache.hits == 0

    def test_schema_is_part_of_the_cache_key(self):
        ctx = TaskContext(quick=True).key()
        assert ResultCache.task_key("e01", "cost-gap", ctx, schema="v/1") \
            != ResultCache.task_key("e01", "cost-gap", ctx, schema="v/2")

    def test_cache_rejects_pre_schema_payloads(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        key = "deadbeef"
        # Hand-write an old-format entry (raw metrics, no "value" wrapper).
        cache.root.mkdir(parents=True)
        (cache.root / f"{key}.json").write_text('{"overhead": 1.5}')
        assert cache.get(key) is None
        assert cache.misses == 1
