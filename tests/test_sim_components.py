"""Memory, bus, pipeline timing and area estimation."""

import pytest

from repro.sim import (
    GATES,
    AreaEstimate,
    Bus,
    MainMemory,
    MemoryConfig,
    PipelinedUnit,
    TDES_ITERATIVE,
    XOM_AES_PIPE,
    combine,
    sram_gates,
)


class TestMemoryConfig:
    def test_beats(self):
        cfg = MemoryConfig(bus_width=8)
        assert cfg.beats(32) == 4
        assert cfg.beats(33) == 5
        assert cfg.beats(1) == 1

    def test_read_cycles(self):
        cfg = MemoryConfig(latency=40, bus_width=8, cycles_per_beat=1)
        assert cfg.read_cycles(32) == 44

    def test_slow_bus(self):
        cfg = MemoryConfig(latency=10, bus_width=4, cycles_per_beat=2)
        assert cfg.read_cycles(32) == 10 + 8 * 2

    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryConfig(size=0)
        with pytest.raises(ValueError):
            MemoryConfig(latency=-1)
        with pytest.raises(ValueError):
            MemoryConfig(bus_width=0)


class TestMainMemory:
    def test_read_write(self):
        mem = MainMemory(MemoryConfig(size=1024))
        mem.write(10, b"hello")
        assert mem.read(10, 5) == b"hello"

    def test_initially_zero(self):
        mem = MainMemory(MemoryConfig(size=64))
        assert mem.read(0, 64) == bytes(64)

    def test_bounds_checked(self):
        mem = MainMemory(MemoryConfig(size=64))
        with pytest.raises(IndexError):
            mem.read(60, 8)
        with pytest.raises(IndexError):
            mem.write(-1, b"x")

    def test_counters(self):
        mem = MainMemory(MemoryConfig(size=64))
        mem.write(0, b"abcd")
        mem.read(0, 4)
        assert mem.reads == 1 and mem.writes == 1
        assert mem.bytes_read == 4 and mem.bytes_written == 4

    def test_load_and_dump_skip_counters(self):
        mem = MainMemory(MemoryConfig(size=64))
        mem.load_image(0, b"firmware")
        assert mem.dump(0, 8) == b"firmware"
        assert mem.reads == 0 and mem.writes == 0


class TestBus:
    def test_probe_notification(self):
        bus = Bus()
        seen = []
        bus.attach_probe(seen.append)
        bus.transfer("read", 0x40, b"\xde\xad", cycle=7)
        assert len(seen) == 1
        assert seen[0].addr == 0x40 and seen[0].data == b"\xde\xad"
        assert seen[0].cycle == 7 and seen[0].op == "read"

    def test_detach(self):
        bus = Bus()
        seen = []
        bus.attach_probe(seen.append)
        bus.detach_probe(seen.append)
        bus.transfer("write", 0, b"x", 0)
        assert not seen

    def test_stats(self):
        bus = Bus()
        bus.transfer("read", 0, b"1234", 0)
        bus.transfer("write", 4, b"56", 0)
        assert bus.transactions == 2
        assert bus.bytes_transferred == 6

    def test_invalid_op(self):
        with pytest.raises(ValueError):
            Bus().transfer("steal", 0, b"", 0)


class TestPipelinedUnit:
    def test_time_for(self):
        unit = PipelinedUnit("u", latency=14, initiation_interval=1)
        assert unit.time_for(1) == 14
        assert unit.time_for(4) == 17
        assert unit.time_for(0) == 0

    def test_iterative_unit(self):
        unit = PipelinedUnit("u", latency=16, initiation_interval=16)
        assert unit.time_for(4) == 16 * 4

    def test_drain_pipelined_keeps_up(self):
        """Fully pipelined unit behind 1-cycle arrivals: just the latency."""
        assert XOM_AES_PIPE.drain_after_arrivals(8, arrival_interval=2) == 14

    def test_drain_backlog(self):
        """Iterative 3DES behind fast arrivals accumulates a backlog."""
        drain = TDES_ITERATIVE.drain_after_arrivals(4, arrival_interval=1)
        assert drain == 48 + 3 * 47

    def test_throughput(self):
        assert XOM_AES_PIPE.throughput_blocks_per_cycle == 1.0
        assert TDES_ITERATIVE.throughput_blocks_per_cycle == pytest.approx(1 / 48)

    def test_xom_published_figures(self):
        """The survey's quoted numbers: 14-cycle latency, 1 block/cycle."""
        assert XOM_AES_PIPE.latency == 14
        assert XOM_AES_PIPE.initiation_interval == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            PipelinedUnit("u", latency=-1)
        with pytest.raises(ValueError):
            PipelinedUnit("u", latency=1, initiation_interval=0)


class TestArea:
    def test_add_block(self):
        est = AreaEstimate("test").add_block("des_iterative")
        assert est.total == GATES["des_iterative"]

    def test_add_block_count(self):
        est = AreaEstimate("test").add_block("byte_sbox", 4)
        assert est.total == 4 * GATES["byte_sbox"]

    def test_unknown_block(self):
        with pytest.raises(KeyError):
            AreaEstimate("test").add_block("warp_drive")

    def test_sram_scaling(self):
        assert sram_gates(1024) == 2 * sram_gates(512)
        assert sram_gates(0) == 0
        with pytest.raises(ValueError):
            sram_gates(-1)

    def test_combine(self):
        a = AreaEstimate("a").add("x", 100)
        b = AreaEstimate("b").add("y", 50)
        merged = combine("ab", a, b)
        assert merged.total == 150

    def test_str_renders(self):
        est = AreaEstimate("engine").add_block("aes_pipelined")
        text = str(est)
        assert "engine" in text and "aes_pipelined" in text

    def test_aegis_reported_figure(self):
        """The 300k-gate pipelined AES from [14] is the calibration point."""
        assert GATES["aes_pipelined"] == 300_000
