"""General Instrument engine: region chaining, random-access penalty,
keyed-hash authentication (Figure 5 / E08)."""

import pytest

from repro.core import AuthenticationError, GeneralInstrumentEngine
from repro.core.engine import MemoryPort
from repro.sim import Bus, CacheConfig, MainMemory, MemoryConfig, SecureSystem
from repro.traces import Access, AccessKind, sequential_code
from repro.crypto import DRBG

KEY = b"0123456789abcdef01234567"


def make_engine(**kwargs):
    defaults = dict(region_size=256, line_size=32)
    defaults.update(kwargs)
    return GeneralInstrumentEngine(KEY, **defaults)


def make_port(size=1 << 16):
    return MemoryPort(MainMemory(MemoryConfig(size=size)), Bus())


class TestFunctional:
    IMAGE = bytes((i * 13 + 5) & 0xFF for i in range(1024))

    def test_install_and_read_plain(self):
        engine = make_engine()
        memory = MainMemory(MemoryConfig(size=1 << 16))
        engine.install_image(memory, 0, self.IMAGE)
        assert engine.read_plain(memory, 0, 1024) == self.IMAGE

    def test_memory_is_ciphertext(self):
        engine = make_engine()
        memory = MainMemory(MemoryConfig(size=1 << 16))
        engine.install_image(memory, 0, self.IMAGE)
        assert memory.dump(0, 256) != self.IMAGE[:256]

    def test_fill_line_returns_plaintext(self):
        engine = make_engine()
        port = make_port()
        engine.install_image(port.memory, 0, self.IMAGE)
        line, _ = engine.fill_line(port, 64, 32)
        assert line == self.IMAGE[64:96]

    def test_write_line_roundtrip(self):
        engine = make_engine()
        port = make_port()
        engine.install_image(port.memory, 0, self.IMAGE)
        new_line = bytes(range(200, 232))
        engine.write_line(port, 96, new_line)
        assert engine.read_plain(port.memory, 96, 32) == new_line
        # The rest of the region still decrypts correctly.
        assert engine.read_plain(port.memory, 0, 96) == self.IMAGE[:96]
        assert engine.read_plain(port.memory, 128, 128) == self.IMAGE[128:256]

    def test_cbc_hides_repetition(self):
        engine = make_engine()
        memory = MainMemory(MemoryConfig(size=1 << 16))
        engine.install_image(memory, 0, b"\xAA" * 512)
        ct = memory.dump(0, 512)
        blocks = [ct[i: i + 8] for i in range(0, 256, 8)]
        assert len(set(blocks)) == len(blocks)

    def test_unaligned_image_base_rejected(self):
        engine = make_engine()
        memory = MainMemory(MemoryConfig(size=1 << 16))
        with pytest.raises(ValueError):
            engine.install_image(memory, 40, self.IMAGE)

    def test_region_not_multiple_of_line_rejected(self):
        with pytest.raises(ValueError):
            make_engine(region_size=100)


class TestRandomAccessPenalty:
    """'unacceptable CPU performance degradation for random accesses'."""

    def test_deeper_lines_cost_more(self):
        engine = make_engine(authenticate=False)
        port = make_port()
        engine.install_image(port.memory, 0, bytes(1024))
        _, first = engine.fill_line(port, 0, 32)
        _, last = engine.fill_line(port, 224, 32)
        assert last > 2 * first

    def test_write_tail_reencryption_cost(self):
        engine = make_engine(authenticate=False)
        port = make_port()
        engine.install_image(port.memory, 0, bytes(1024))
        early = engine.write_line(port, 0, bytes(32))    # re-chains 256 bytes
        late = engine.write_line(port, 224, bytes(32))   # re-chains 32 bytes
        assert early > late

    def test_larger_regions_worse_for_random_access(self):
        from repro.analysis import measure_overhead
        from repro.traces import random_data

        trace = random_data(400, DRBG(9), base=0, working_set=8192,
                            write_fraction=0.0)
        small = measure_overhead(
            lambda: make_engine(region_size=64, authenticate=False,
                                functional=False),
            trace, image=bytes(8192),
            cache_config=CacheConfig(size=512, line_size=32, associativity=2),
        ).overhead
        large = measure_overhead(
            lambda: make_engine(region_size=1024, authenticate=False,
                                functional=False),
            trace, image=bytes(8192),
            cache_config=CacheConfig(size=512, line_size=32, associativity=2),
        ).overhead
        assert large > 2 * small


class TestAuthentication:
    IMAGE = bytes((i * 31) & 0xFF for i in range(512))

    def test_clean_region_verifies(self):
        engine = make_engine()
        memory = MainMemory(MemoryConfig(size=1 << 16))
        engine.install_image(memory, 0, self.IMAGE)
        assert engine.verify_region(memory, 0)

    def test_tamper_detected_on_verify(self):
        engine = make_engine()
        memory = MainMemory(MemoryConfig(size=1 << 16))
        engine.install_image(memory, 0, self.IMAGE)
        memory.load_image(10, b"\xFF")  # attacker flips a byte
        assert not engine.verify_region(memory, 0)
        assert engine.verdicts.tampers == 1

    def test_tamper_detected_on_fill(self):
        engine = make_engine()
        port = make_port()
        engine.install_image(port.memory, 0, self.IMAGE)
        port.memory.load_image(100, b"\x00\x01\x02")
        with pytest.raises(AuthenticationError):
            engine.fill_line(port, 96, 32)

    def test_verification_cached_per_region(self):
        engine = make_engine()
        port = make_port()
        engine.install_image(port.memory, 0, self.IMAGE)
        _, first_cycles = engine.fill_line(port, 0, 32)
        _, second_cycles = engine.fill_line(port, 0, 32)
        # First touch verifies the whole region (extra fetch + hash);
        # the second fill of the same line skips the verification.
        assert first_cycles > second_cycles

    def test_write_refreshes_tag(self):
        engine = make_engine()
        port = make_port()
        engine.install_image(port.memory, 0, self.IMAGE)
        engine.write_line(port, 0, bytes(32))
        assert engine.verify_region(port.memory, 0)


class TestSystemIntegration:
    def test_runs_under_system(self):
        engine = make_engine(region_size=256)
        system = SecureSystem(
            engine=engine,
            cache_config=CacheConfig(size=512, line_size=32, associativity=2),
            mem_config=MemoryConfig(size=1 << 16),
        )
        image = bytes((i * 3) & 0xFF for i in range(2048))
        system.install_image(0, image)
        for access in sequential_code(200, code_size=2048):
            system.step(access)
        assert system.cache.misses > 0
