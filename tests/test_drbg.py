"""Deterministic RNG: reproducibility, ranges, derived streams."""

import pytest

from repro.crypto import DRBG
from repro.compression import shannon_entropy


class TestDeterminism:
    def test_same_seed_same_stream(self):
        assert DRBG(42).random_bytes(64) == DRBG(42).random_bytes(64)

    def test_different_seeds_differ(self):
        assert DRBG(42).random_bytes(64) != DRBG(43).random_bytes(64)

    def test_seed_types(self):
        for seed in (0, "string-seed", b"bytes-seed"):
            rng = DRBG(seed)
            assert len(rng.random_bytes(8)) == 8

    def test_fork_independence(self):
        root = DRBG(42)
        a = root.fork("a").random_bytes(32)
        b = root.fork("b").random_bytes(32)
        assert a != b

    def test_fork_reproducible(self):
        assert DRBG(42).fork("x").random_bytes(16) == \
            DRBG(42).fork("x").random_bytes(16)

    def test_fork_does_not_consume_parent(self):
        root1, root2 = DRBG(42), DRBG(42)
        root1.fork("a")
        assert root1.random_bytes(16) == root2.random_bytes(16)


class TestRanges:
    def test_randbits_width(self):
        rng = DRBG(1)
        for bits in (1, 7, 8, 13, 64):
            for _ in range(20):
                assert 0 <= rng.randbits(bits) < (1 << bits)

    def test_randbelow_bounds(self):
        rng = DRBG(1)
        for n in (1, 2, 10, 1000):
            for _ in range(20):
                assert 0 <= rng.randbelow(n) < n

    def test_randbelow_covers_range(self):
        rng = DRBG(1)
        seen = {rng.randbelow(4) for _ in range(200)}
        assert seen == {0, 1, 2, 3}

    def test_randbelow_invalid(self):
        with pytest.raises(ValueError):
            DRBG(1).randbelow(0)

    def test_randint_inclusive(self):
        rng = DRBG(1)
        values = {rng.randint(5, 7) for _ in range(100)}
        assert values == {5, 6, 7}

    def test_randint_empty_range(self):
        with pytest.raises(ValueError):
            DRBG(1).randint(5, 4)

    def test_random_unit_interval(self):
        rng = DRBG(1)
        for _ in range(50):
            x = rng.random()
            assert 0.0 <= x < 1.0


class TestCollections:
    def test_choice(self):
        rng = DRBG(1)
        items = ["a", "b", "c"]
        assert all(rng.choice(items) in items for _ in range(30))

    def test_choice_empty(self):
        with pytest.raises(ValueError):
            DRBG(1).choice([])

    def test_shuffle_is_permutation(self):
        rng = DRBG(1)
        items = list(range(50))
        shuffled = list(items)
        rng.shuffle(shuffled)
        assert sorted(shuffled) == items
        assert shuffled != items  # astronomically unlikely to be identity


class TestQuality:
    def test_byte_entropy(self):
        data = DRBG(7).random_bytes(16384)
        assert shannon_entropy(data) > 7.9

    def test_mean_near_half(self):
        rng = DRBG(7)
        mean = sum(rng.random() for _ in range(2000)) / 2000
        assert 0.45 < mean < 0.55
