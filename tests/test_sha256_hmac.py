"""SHA-256 (FIPS 180-4) and HMAC (RFC 4231) vectors plus streaming
behaviour and the PRF helper."""

import pytest

from repro.crypto import (
    SHA256,
    consttime_eq,
    hmac_sha256,
    prf,
    sha256,
    verify_hmac,
)


class TestSHA256Vectors:
    def test_empty(self):
        assert sha256(b"").hex() == (
            "e3b0c44298fc1c149afbf4c8996fb924"
            "27ae41e4649b934ca495991b7852b855"
        )

    def test_abc(self):
        assert sha256(b"abc").hex() == (
            "ba7816bf8f01cfea414140de5dae2223"
            "b00361a396177a9cb410ff61f20015ad"
        )

    def test_two_block_message(self):
        msg = b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
        assert sha256(msg).hex() == (
            "248d6a61d20638b8e5c026930c3e6039"
            "a33ce45964ff2167f6ecedd419db06c1"
        )

    def test_million_a(self):
        assert sha256(b"a" * 1_000_000).hex() == (
            "cdc76e5c9914fb9281a1c7e284d73e67"
            "f1809a48a497200e046d39ccc7112cd0"
        )

    def test_exactly_64_bytes(self):
        # Forces the padding block to be entirely separate.
        digest = sha256(b"x" * 64)
        assert len(digest) == 32

    def test_55_and_56_byte_boundary(self):
        """55 bytes fits length in the same block; 56 does not."""
        assert sha256(b"y" * 55) != sha256(b"y" * 56)


class TestSHA256Streaming:
    def test_incremental_equals_oneshot(self):
        h = SHA256()
        h.update(b"hello ")
        h.update(b"world")
        assert h.digest() == sha256(b"hello world")

    def test_digest_does_not_finalize(self):
        h = SHA256(b"part1")
        first = h.digest()
        assert h.digest() == first
        h.update(b"part2")
        assert h.digest() == sha256(b"part1part2")

    def test_chunked_large_input(self):
        data = bytes(range(256)) * 40
        h = SHA256()
        for i in range(0, len(data), 97):
            h.update(data[i: i + 97])
        assert h.digest() == sha256(data)

    def test_hexdigest(self):
        assert SHA256(b"abc").hexdigest() == sha256(b"abc").hex()


class TestHMACVectors:
    """RFC 4231 test cases."""

    def test_case_1(self):
        key = b"\x0b" * 20
        assert hmac_sha256(key, b"Hi There").hex() == (
            "b0344c61d8db38535ca8afceaf0bf12b"
            "881dc200c9833da726e9376c2e32cff7"
        )

    def test_case_2(self):
        assert hmac_sha256(b"Jefe", b"what do ya want for nothing?").hex() == (
            "5bdcc146bf60754e6a042426089575c7"
            "5a003f089d2739839dec58b964ec3843"
        )

    def test_case_3(self):
        key = b"\xaa" * 20
        msg = b"\xdd" * 50
        assert hmac_sha256(key, msg).hex() == (
            "773ea91e36800e46854db8ebd09181a7"
            "2959098b3ef8c122d9635514ced565fe"
        )

    def test_case_6_long_key(self):
        key = b"\xaa" * 131
        msg = b"Test Using Larger Than Block-Size Key - Hash Key First"
        assert hmac_sha256(key, msg).hex() == (
            "60e431591ee0b67f0d8a26aacbf5b77f"
            "8e0bc6213728c5140546040f0ee37f54"
        )


class TestVerify:
    def test_accepts_valid_tag(self):
        tag = hmac_sha256(b"k", b"msg")
        assert verify_hmac(b"k", b"msg", tag)

    def test_rejects_modified_message(self):
        tag = hmac_sha256(b"k", b"msg")
        assert not verify_hmac(b"k", b"msG", tag)

    def test_rejects_truncated_tag(self):
        tag = hmac_sha256(b"k", b"msg")
        assert not verify_hmac(b"k", b"msg", tag[:16])

    def test_rejects_wrong_key(self):
        tag = hmac_sha256(b"k", b"msg")
        assert not verify_hmac(b"K", b"msg", tag)


class _CountingBytes:
    """Byte sequence that records how many bytes a comparison consumed."""

    def __init__(self, data: bytes):
        self.data = data
        self.reads = 0

    def __len__(self):
        return len(self.data)

    def __iter__(self):
        for byte in self.data:
            self.reads += 1
            yield byte


class TestConstantTimeCompare:
    def test_equal_and_unequal(self):
        assert consttime_eq(b"same tag bytes!!", b"same tag bytes!!")
        assert not consttime_eq(b"same tag bytes!!", b"same tag bytes!?")
        assert not consttime_eq(b"", b"x")
        assert consttime_eq(b"", b"")

    def test_equal_length_mismatch_takes_full_comparison_path(self):
        # A first-byte mismatch must not short-circuit: the fold still
        # walks every byte, so the comparison leaks no prefix length.
        expected = _CountingBytes(b"\x00" + b"\xaa" * 31)
        tag = b"\xff" + b"\xaa" * 31
        assert not consttime_eq(expected, tag)
        assert expected.reads == 32

    def test_length_mismatch_takes_full_comparison_path(self):
        # Even a wrong-length tag folds over the full expected digest
        # (compared against itself) rather than returning immediately.
        expected = _CountingBytes(b"\xaa" * 32)
        assert not consttime_eq(expected, b"\xaa" * 16)
        assert expected.reads >= 32

    def test_verify_hmac_equal_length_first_byte_mismatch(self):
        tag = bytearray(hmac_sha256(b"k", b"msg"))
        tag[0] ^= 0x80
        assert not verify_hmac(b"k", b"msg", bytes(tag))


class TestPRF:
    def test_deterministic(self):
        assert prf(b"key", b"a", b"b") == prf(b"key", b"a", b"b")

    def test_domain_separation(self):
        """(\"ab\", \"c\") and (\"a\", \"bc\") must differ (length prefixes)."""
        assert prf(b"key", b"ab", b"c") != prf(b"key", b"a", b"bc")

    def test_output_length(self):
        assert len(prf(b"key", b"x", out_len=100)) == 100

    def test_extension_consistency(self):
        """Longer outputs extend shorter ones (counter-mode expansion)."""
        short = prf(b"key", b"x", out_len=16)
        long = prf(b"key", b"x", out_len=64)
        assert long[:16] == short

    def test_key_separation(self):
        assert prf(b"key1", b"x") != prf(b"key2", b"x")


class TestHashlibDispatch:
    """The stdlib-backed fast path must be on and byte-identical to the
    from-scratch reference (the import-time probe gates the dispatch)."""

    def test_probe_accepted_stdlib(self):
        from repro.crypto.sha256 import HASHLIB_BACKED

        assert HASHLIB_BACKED is True

    def test_oneshot_matches_reference_class(self):
        for n in (0, 1, 31, 32, 55, 56, 63, 64, 65, 127, 128, 1000):
            data = bytes((i * 7 + n) & 0xFF for i in range(n))
            assert sha256(data) == SHA256(data).digest()

    def test_hmac_matches_reference(self):
        from repro.crypto.hmac import hmac_sha256_reference

        for key_len in (0, 1, 16, 32, 63, 64, 65, 200):
            key = bytes((i * 13 + key_len) & 0xFF for i in range(key_len))
            for msg_len in (0, 1, 64, 200):
                msg = bytes((i * 29) & 0xFF for i in range(msg_len))
                assert hmac_sha256(key, msg) == hmac_sha256_reference(key, msg)

    def test_hmac_state_cache_eviction_keeps_answers(self):
        """Churning far past the LRU bound must not corrupt results."""
        from repro.crypto.hmac import _STATE_CACHE_MAX, hmac_sha256_reference

        keys = [b"churn-%d" % i for i in range(2 * _STATE_CACHE_MAX)]
        expected = {k: hmac_sha256_reference(k, b"m") for k in keys}
        for _ in range(2):
            for k in keys:
                assert hmac_sha256(k, b"m") == expected[k]
