"""Figure-1 distribution protocol: end-to-end secrecy against the passive
adversary, plus the step-6 install through a bus engine."""

import pytest

from repro.core import (
    ChipManufacturer,
    Eavesdropper,
    InsecureChannel,
    Message,
    SecureProcessor,
    SoftwareEditor,
    XomAesEngine,
    run_distribution,
)
from repro.crypto import DRBG
from repro.sim import MainMemory, MemoryConfig

SOFTWARE = b"PAY-TV ACCESS CONTROL FIRMWARE v2" * 8  # 264 bytes


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def outcome(self):
        memory = MainMemory(MemoryConfig(size=1 << 16))
        engine = XomAesEngine(b"bus-key-16-bytes")
        processor, eve, session_key = run_distribution(
            SOFTWARE, seed=7, key_bits=512, engine=engine, memory=memory,
        )
        return processor, eve, session_key, memory, engine

    def test_processor_recovers_session_key(self, outcome):
        processor, _, session_key, _, _ = outcome
        assert processor._session_key == session_key

    def test_eavesdropper_never_sees_session_key(self, outcome):
        _, eve, session_key, _, _ = outcome
        assert not eve.saw(session_key)

    def test_eavesdropper_never_sees_software(self, outcome):
        _, eve, _, _, _ = outcome
        assert not eve.saw(SOFTWARE[:16])

    def test_eavesdropper_saw_the_traffic(self, outcome):
        _, eve, _, _, _ = outcome
        kinds = [m.kind for m in eve.transcript]
        assert kinds == ["key-request", "public-key", "session-key",
                         "software"]
        assert eve.total_bytes > len(SOFTWARE)

    def test_external_memory_is_ciphertext(self, outcome):
        _, _, _, memory, _ = outcome
        assert SOFTWARE[:16] not in memory.dump(0, 1024)

    def test_installed_software_decrypts_through_engine(self, outcome):
        _, _, _, memory, engine = outcome
        line0 = engine.decrypt_line(0, memory.dump(0, 32))
        assert line0 == SOFTWARE[:32]


class TestProtocolPieces:
    def test_public_key_crosses_channel(self):
        channel = InsecureChannel()
        eve = Eavesdropper()
        channel.tap(eve)
        manufacturer = ChipManufacturer(DRBG(1), key_bits=256)
        manufacturer.provision("chip-9")
        public = manufacturer.public_key(channel, "chip-9", "editor")
        assert eve.transcript[0].kind == "public-key"
        # Public key material is, by design, visible.
        assert public.n.to_bytes(public.modulus_bytes, "big") in \
            eve.transcript[0].payload

    def test_session_key_randomized_encryption(self):
        """Two transmissions of the same K differ on the wire."""
        channel = InsecureChannel()
        manufacturer = ChipManufacturer(DRBG(2), key_bits=256)
        manufacturer.provision("c")
        public = manufacturer.public_key(channel, "c", "e")
        editor = SoftwareEditor("e", b"sw", DRBG(3))
        m1 = editor.send_session_key(channel, "c", public)
        m2 = editor.send_session_key(channel, "c", public)
        assert m1.payload != m2.payload

    def test_install_without_key_fails(self):
        manufacturer = ChipManufacturer(DRBG(4), key_bits=256)
        keypair = manufacturer.provision("c")
        processor = SecureProcessor("c", keypair)
        with pytest.raises(RuntimeError):
            processor.install(MainMemory(MemoryConfig(size=1024)), 0)

    def test_wrong_processor_cannot_decrypt(self):
        """Only the provisioned chip's D_m opens the session-key message."""
        channel = InsecureChannel()
        manufacturer = ChipManufacturer(DRBG(5), key_bits=256)
        keypair_a = manufacturer.provision("chip-a")
        keypair_b = manufacturer.provision("chip-b")
        public_a = manufacturer.public_key(channel, "chip-a", "e")
        editor = SoftwareEditor("e", b"sw", DRBG(6))
        msg = editor.send_session_key(channel, "chip-a", public_a)
        imposter = SecureProcessor("chip-b", keypair_b)
        with pytest.raises(ValueError):
            imposter.receive(msg)

    def test_install_without_engine_stores_clear(self):
        """The contrast case: no bus engine leaves the product exposed in
        external memory (§2.1 risk ii)."""
        memory = MainMemory(MemoryConfig(size=1 << 16))
        processor, _, _ = run_distribution(
            SOFTWARE, seed=8, key_bits=512, engine=None, memory=memory,
        )
        assert SOFTWARE[:32] in memory.dump(0, 1024)
