"""Every engine's functional contract: install -> memory holds ciphertext,
fills return plaintext, writebacks re-encrypt, stats account operations."""

import pytest

from repro.attacks import BusProbe
from repro.core import (
    AegisEngine,
    BestEngine,
    DS5002FPEngine,
    DS5240Engine,
    GilmontEngine,
    NullEngine,
    StreamCipherEngine,
    XomAesEngine,
)
from repro.sim import CacheConfig, MemoryConfig, SecureSystem
from repro.traces import Access, AccessKind, sequential_code

KEY16 = b"0123456789abcdef"
KEY24 = b"0123456789abcdef01234567"

ENGINE_FACTORIES = {
    "xom": lambda: XomAesEngine(KEY16),
    "aegis": lambda: AegisEngine(KEY16),
    "gilmont": lambda: GilmontEngine(KEY24),
    "best": lambda: BestEngine(KEY16),
    "ds5002fp": lambda: DS5002FPEngine(KEY16),
    "ds5240": lambda: DS5240Engine(KEY16),
    "stream": lambda: StreamCipherEngine(KEY16, line_size=32),
}


def small_system(engine):
    return SecureSystem(
        engine=engine,
        cache_config=CacheConfig(size=1024, line_size=32, associativity=2),
        mem_config=MemoryConfig(size=1 << 20, latency=20),
    )


@pytest.fixture(params=sorted(ENGINE_FACTORIES))
def engine_name(request):
    return request.param


class TestFunctionalContract:
    IMAGE = bytes((i * 7 + 3) & 0xFF for i in range(512))

    def test_line_roundtrip(self, engine_name):
        engine = ENGINE_FACTORIES[engine_name]()
        line = bytes(range(32))
        ct = engine.encrypt_line(0x100, line)
        assert engine.decrypt_line(0x100, ct) == line

    def test_ciphertext_differs_from_plaintext(self, engine_name):
        engine = ENGINE_FACTORIES[engine_name]()
        line = bytes(range(32))
        assert engine.encrypt_line(0x100, line) != line

    def test_install_and_read_back(self, engine_name):
        engine = ENGINE_FACTORIES[engine_name]()
        system = small_system(engine)
        system.install_image(0, self.IMAGE)
        assert system.read_plaintext(0, len(self.IMAGE)) == self.IMAGE

    def test_memory_holds_ciphertext(self, engine_name):
        engine = ENGINE_FACTORIES[engine_name]()
        system = small_system(engine)
        system.install_image(0, self.IMAGE)
        assert system.memory.dump(0, len(self.IMAGE)) != self.IMAGE

    def test_execution_reads_correct_plaintext(self, engine_name):
        engine = ENGINE_FACTORIES[engine_name]()
        system = small_system(engine)
        system.install_image(0, self.IMAGE)
        system.step(Access(AccessKind.FETCH, 0x40))
        assert bytes(system._line_data[2]) == self.IMAGE[0x40:0x60]

    def test_bus_probe_sees_only_ciphertext(self, engine_name):
        """The survey's whole point: the probed bus must not reveal the
        program."""
        engine = ENGINE_FACTORIES[engine_name]()
        system = small_system(engine)
        probe = BusProbe()
        system.bus.attach_probe(probe)
        system.install_image(0, self.IMAGE)
        for access in sequential_code(64, code_size=512):
            system.step(access)
        observed = probe.observed_bytes("read")
        assert self.IMAGE[:32] not in observed

    def test_null_engine_leaks_plaintext(self):
        system = small_system(NullEngine())
        probe = BusProbe()
        system.bus.attach_probe(probe)
        system.install_image(0, self.IMAGE)
        for access in sequential_code(64, code_size=512):
            system.step(access)
        assert self.IMAGE[:32] in probe.observed_bytes("read")

    def test_store_roundtrip_through_writeback(self, engine_name):
        engine = ENGINE_FACTORIES[engine_name]()
        system = small_system(engine)
        system.install_image(0, bytes(512))
        payload = b"\xCA\xFE\xBA\xBE"
        system.step(Access(AccessKind.STORE, 0x20, 4), data=payload)
        system.flush()
        assert system.read_plaintext(0x20, 4) == payload

    def test_stats_account_lines(self, engine_name):
        engine = ENGINE_FACTORIES[engine_name]()
        system = small_system(engine)
        system.install_image(0, self.IMAGE)
        system.step(Access(AccessKind.FETCH, 0))
        system.step(Access(AccessKind.FETCH, 64))
        assert engine.stats.lines_decrypted == 2

    def test_area_estimate_positive(self, engine_name):
        engine = ENGINE_FACTORIES[engine_name]()
        assert engine.area().total > 0

    def test_reset_stats(self, engine_name):
        engine = ENGINE_FACTORIES[engine_name]()
        engine.encrypt_line(0, bytes(32))
        engine.reset_stats()
        assert engine.stats.lines_encrypted == 0


class TestAddressDependence:
    """Identical lines at different addresses must encrypt differently for
    the tweaked engines (defeats the cross-address dictionary attack)."""

    @pytest.mark.parametrize("name", ["xom", "gilmont", "ds5002fp",
                                      "ds5240", "stream", "aegis"])
    def test_different_addresses_different_ciphertext(self, name):
        engine = ENGINE_FACTORIES[name]()
        line = b"\x42" * 32
        assert engine.encrypt_line(0, line) != engine.encrypt_line(0x40, line)

    def test_best_address_schedule_is_periodic(self):
        """Best's poly-alphabetic schedule cycles every num_alphabets bytes
        of address — addresses congruent mod 16 share ciphertext, a leak
        the modern engines close."""
        engine = ENGINE_FACTORIES["best"]()
        line = b"\x42" * 32
        assert engine.encrypt_line(0, line) == engine.encrypt_line(0x40, line)
        assert engine.encrypt_line(0, line) != engine.encrypt_line(8, line)


class TestAreaOrdering:
    def test_aes_engines_dwarf_byte_engines(self):
        """The area ordering behind the survey's cost discussion."""
        xom = XomAesEngine(KEY16).area().total
        ds = DS5002FPEngine(KEY16).area().total
        best = BestEngine(KEY16).area().total
        assert xom > 10 * best
        assert xom > 10 * ds

    def test_aegis_about_300k(self):
        area = AegisEngine(KEY16).area()
        assert area.items.get("aes_pipelined") == 300_000
