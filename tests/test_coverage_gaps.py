"""Targeted tests for paths the module-focused suites leave untouched."""

import pytest

from repro.analysis import pad_reuse_leak
from repro.core import (
    GeneralInstrumentEngine,
    GilmontEngine,
    VlsiDmaEngine,
    XomAesEngine,
)
from repro.core.engine import MemoryPort
from repro.crypto import DRBG
from repro.sim import (
    EDU_L1_L2,
    Bus,
    CacheConfig,
    EnergyReport,
    MainMemory,
    MemoryConfig,
    TwoLevelSystem,
    estimate_run,
)
from repro.traces import Access, AccessKind, sequential_code

KEY16 = b"0123456789abcdef"
KEY24 = b"0123456789abcdef01234567"


def make_port(size=1 << 17):
    return MemoryPort(MainMemory(MemoryConfig(size=size)), Bus())


class TestGilmontWindow:
    def test_prediction_window_prunes_oldest(self):
        """A long jumpy sweep must not grow the predictor without bound."""
        engine = GilmontEngine(KEY24, prediction_depth=2, functional=False)
        for i in range(100):
            engine.read_extra_cycles(i * 4096, 32, mem_cycles=44)
        assert len(engine._predicted) <= engine._max_window

    def test_zero_depth_never_predicts(self):
        engine = GilmontEngine(KEY24, prediction_depth=0, functional=False)
        engine.read_extra_cycles(0, 32, 44)
        engine.read_extra_cycles(32, 32, 44)
        assert engine.stats.prefetch_hits == 0


class TestGIPartialWrite:
    def test_patch_survives_rechaining(self):
        engine = GeneralInstrumentEngine(KEY24, region_size=256)
        port = make_port()
        image = bytes((i * 5 + 1) & 0xFF for i in range(512))
        engine.install_image(port.memory, 0, image)
        engine.write_partial(port, 10, b"\xAA\xBB", 32)
        assert engine.stats.rmw_operations == 1
        plain = engine.read_plain(port.memory, 0, 32)
        assert plain[10:12] == b"\xAA\xBB"
        assert plain[:10] == image[:10]
        # The rest of the region still authenticates.
        assert engine.verify_region(port.memory, 0)

    def test_chain_stats_track_hits_and_restarts(self):
        engine = GeneralInstrumentEngine(KEY24, region_size=256,
                                         authenticate=False)
        port = make_port()
        engine.install_image(port.memory, 0, bytes(512))
        engine.fill_line(port, 0, 32)     # restart (cold)
        engine.fill_line(port, 32, 32)    # sequential: chain hit
        engine.fill_line(port, 128, 32)   # jump: restart
        assert engine.chain_hits == 1
        assert engine.chain_restarts == 2

    def test_region_end_clears_chain(self):
        engine = GeneralInstrumentEngine(KEY24, region_size=64,
                                         authenticate=False)
        port = make_port()
        engine.install_image(port.memory, 0, bytes(256))
        engine.fill_line(port, 0, 32)
        engine.fill_line(port, 32, 32)    # reaches region end
        assert 0 not in engine._chain_state


class TestVlsiReadPlain:
    def test_spans_pages(self):
        engine = VlsiDmaEngine(KEY24, page_size=256)
        memory = MainMemory(MemoryConfig(size=1 << 16))
        image = DRBG(8).random_bytes(1024)
        engine.install_image(memory, 0, image)
        # A read straddling the page boundary at 256.
        assert engine.read_plain(memory, 240, 32) == image[240:272]


class TestHierarchyEdges:
    def make(self, edu_level=EDU_L1_L2):
        return TwoLevelSystem(
            engine=XomAesEngine(KEY16),
            l1_config=CacheConfig(size=256, line_size=32, associativity=2),
            l2_config=CacheConfig(size=1024, line_size=32, associativity=2),
            mem_config=MemoryConfig(size=1 << 18),
            edu_level=edu_level,
        )

    def test_flush_drains_both_levels(self):
        system = self.make()
        system.install_image(0, bytes(4096))
        system.step(Access(AccessKind.STORE, 0, 4), data=b"\x01\x02\x03\x04")
        system.flush()
        assert not system._l1_data and not system._l2_data
        assert system.read_plaintext(0, 4) == b"\x01\x02\x03\x04"

    def test_l2_dirty_eviction_reaches_memory(self):
        system = self.make(edu_level=EDU_L1_L2)
        system.install_image(0, bytes(1 << 15))
        payload = b"\xFE\xDC\xBA\x98"
        system.step(Access(AccessKind.STORE, 0, 4), data=payload)
        # Thrash far beyond both cache capacities.
        for i in range(1, 200):
            system.step(Access(AccessKind.LOAD, i * 160))
        system.flush()
        assert system.read_plaintext(0, 4) == payload

    def test_report_labels_edu_level(self):
        system = self.make()
        report = system.run(sequential_code(50, code_size=2048))
        assert "l1-l2" in report.label


class TestEnergyEdges:
    def test_estimate_without_engine(self):
        from repro.sim import SecureSystem
        system = SecureSystem(mem_config=MemoryConfig(size=1 << 16))
        report = system.run(sequential_code(100, code_size=2048))
        energy = estimate_run(report)
        assert "cipher" not in energy.items
        assert energy.total_pj > 0

    def test_overhead_vs_zero_baseline(self):
        assert EnergyReport().overhead_vs(EnergyReport()) == 0.0


class TestPadReuseHelper:
    def test_without_known_plaintext_returns_xor(self):
        ct_a = bytes([0x0F, 0xF0])
        ct_b = bytes([0xFF, 0x00])
        assert pad_reuse_leak(ct_a, ct_b) == bytes([0xF0, 0xF0])


class TestCliSurvey:
    def test_survey_runs(self, capsys):
        from repro.cli import main
        assert main(["survey", "--accesses", "300"]) == 0
        out = capsys.readouterr().out
        assert "aegis" in out and "withstands class" in out
