"""ASCII plot renderer."""

import pytest

from repro.analysis import ascii_plot


class TestAsciiPlot:
    SERIES = {
        "a": [(0, 0.0), (10, 5.0), (20, 10.0)],
        "b": [(0, 10.0), (10, 5.0), (20, 0.0)],
    }

    def test_renders_axes_and_legend(self):
        chart = ascii_plot(self.SERIES, title="T", x_label="x", y_label="y")
        assert "T" in chart
        assert "o a" in chart and "x b" in chart
        assert "+----" in chart

    def test_extremes_on_axis_labels(self):
        chart = ascii_plot(self.SERIES)
        assert "10" in chart and "0" in chart and "20" in chart

    def test_markers_plotted(self):
        chart = ascii_plot({"only": [(0, 0), (1, 1)]})
        assert chart.count("o") >= 2 + 1  # two points + legend marker

    def test_single_point(self):
        chart = ascii_plot({"p": [(5, 5)]})
        assert "o" in chart

    def test_distinct_markers(self):
        many = {f"s{i}": [(i, i)] for i in range(4)}
        chart = ascii_plot(many)
        for marker in "ox+*":
            assert marker in chart

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_plot({})
        with pytest.raises(ValueError):
            ascii_plot({"e": []})

    def test_tiny_area_rejected(self):
        with pytest.raises(ValueError):
            ascii_plot(self.SERIES, width=5)

    def test_dimensions(self):
        chart = ascii_plot(self.SERIES, width=40, height=10)
        plot_rows = [l for l in chart.splitlines() if "|" in l]
        assert len(plot_rows) == 10

    def test_negative_values(self):
        chart = ascii_plot({"n": [(0, -5.0), (1, 5.0)]})
        assert "-5" in chart
