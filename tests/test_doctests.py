"""Run the documented examples embedded in module docstrings."""

import doctest

import pytest

import repro.crypto.aes
import repro.crypto.des
import repro.crypto.kernels
import repro.crypto.rc4
import repro.isa.assembler
import repro.traces.io

DOCTESTED_MODULES = [
    repro.crypto.aes,
    repro.crypto.des,
    repro.crypto.kernels,
    repro.crypto.rc4,
    repro.isa.assembler,
    repro.traces.io,
]


@pytest.mark.parametrize(
    "module", DOCTESTED_MODULES, ids=lambda m: m.__name__
)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0
    assert results.attempted > 0
