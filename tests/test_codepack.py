"""CodePack-style code compression: roundtrips, random access, and the
density claims of E13."""

import pytest

from repro.compression import CodePack
from repro.crypto import DRBG
from repro.traces import synthetic_code_image


@pytest.fixture(scope="module")
def code_image():
    return synthetic_code_image(size=16 * 1024)


class TestRoundtrip:
    def test_image_roundtrip(self, code_image):
        cp = CodePack(block_size=64)
        compressed = cp.compress_image(code_image)
        assert cp.decompress_image(compressed) == code_image

    def test_small_image(self):
        cp = CodePack(block_size=32)
        image = bytes(range(64))
        assert cp.decompress_image(cp.compress_image(image)) == image

    def test_unaligned_image_padded(self):
        cp = CodePack(block_size=32)
        image = bytes(range(30))
        out = cp.decompress_image(cp.compress_image(image))
        assert out[:30] == image

    def test_random_data_roundtrip(self):
        cp = CodePack(block_size=64)
        image = DRBG(3).random_bytes(4096)
        assert cp.decompress_image(cp.compress_image(image)) == image


class TestRandomAccess:
    def test_fetch_block_matches_slice(self, code_image):
        cp = CodePack(block_size=64)
        compressed = cp.compress_image(code_image)
        for idx in (0, 1, 7, len(compressed.blocks) - 1):
            assert cp.fetch_block(compressed, idx) == \
                code_image[idx * 64: (idx + 1) * 64]

    def test_fetch_block_out_of_range(self, code_image):
        cp = CodePack(block_size=64)
        compressed = cp.compress_image(code_image)
        with pytest.raises(IndexError):
            cp.fetch_block(compressed, len(compressed.blocks))

    def test_lat_offsets_monotone(self, code_image):
        compressed = CodePack(block_size=64).compress_image(code_image)
        assert compressed.lat == sorted(compressed.lat)
        assert compressed.lat[0] == 0


class TestCompressionQuality:
    def test_code_like_image_compresses(self, code_image):
        """The survey quotes ≈35% density gain for CodePack; a code-like
        image must land in that neighbourhood (ratio well below 1)."""
        compressed = CodePack(block_size=64).compress_image(code_image)
        assert compressed.ratio < 0.85
        assert compressed.density_gain > 0.15

    def test_random_image_does_not_compress(self):
        image = DRBG(3).random_bytes(16 * 1024)
        compressed = CodePack(block_size=64).compress_image(image)
        assert compressed.ratio > 0.95

    def test_density_gain_matches_ratio(self, code_image):
        compressed = CodePack(block_size=64).compress_image(code_image)
        assert compressed.density_gain == pytest.approx(
            1.0 / compressed.ratio - 1.0
        )

    def test_dictionary_size_tradeoff(self, code_image):
        """Index width trades per-hit cost against coverage: for an image
        dominated by a handful of idioms, the narrow index wins (each hit
        costs 1+4 bits instead of 1+10)."""
        small = CodePack(block_size=64, index_bits=4).compress_image(code_image)
        large = CodePack(block_size=64, index_bits=10).compress_image(code_image)
        assert small.ratio < large.ratio
        assert small.ratio < 1.0 and large.ratio < 1.0


class TestValidation:
    def test_bad_block_size(self):
        with pytest.raises(ValueError):
            CodePack(block_size=30)
        with pytest.raises(ValueError):
            CodePack(block_size=0)

    def test_bad_index_bits(self):
        with pytest.raises(ValueError):
            CodePack(index_bits=0)
        with pytest.raises(ValueError):
            CodePack(index_bits=17)

    def test_decompress_block_validates_size(self, code_image):
        cp = CodePack(block_size=64)
        compressed = cp.compress_image(code_image)
        with pytest.raises(ValueError):
            cp.decompress_block(
                compressed.blocks[0], 63,
                compressed.dict_high, compressed.dict_low,
            )
