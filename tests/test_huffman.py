"""Canonical Huffman codec: roundtrips, edge cases, corruption handling."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import huffman_compress, huffman_decompress
from repro.compression.huffman import build_code_lengths, canonical_codes


class TestCodeConstruction:
    def test_lengths_reflect_frequency(self):
        data = b"a" * 100 + b"b" * 10 + b"c"
        lengths = build_code_lengths(data)
        assert lengths[ord("a")] <= lengths[ord("b")] <= lengths[ord("c")]

    def test_single_symbol(self):
        lengths = build_code_lengths(b"aaaa")
        assert lengths == {ord("a"): 1}

    def test_empty(self):
        assert build_code_lengths(b"") == {}

    def test_kraft_inequality(self):
        """Code lengths must satisfy sum(2^-l) <= 1 (prefix-free)."""
        data = bytes(range(256)) + b"abc" * 40
        lengths = build_code_lengths(data)
        assert sum(2 ** -l for l in lengths.values()) <= 1.0 + 1e-9

    def test_canonical_codes_prefix_free(self):
        data = b"hello huffman world" * 10
        codes = canonical_codes(build_code_lengths(data))
        items = [(format(c, f"0{l}b")) for c, l in codes.values()]
        for i, a in enumerate(items):
            for j, b in enumerate(items):
                if i != j:
                    assert not b.startswith(a)


class TestRoundtrip:
    def test_text(self):
        data = b"the quick brown fox jumps over the lazy dog" * 20
        assert huffman_decompress(huffman_compress(data)) == data

    def test_empty(self):
        assert huffman_decompress(huffman_compress(b"")) == b""

    def test_single_byte(self):
        assert huffman_decompress(huffman_compress(b"x")) == b"x"

    def test_single_symbol_run(self):
        data = b"\x00" * 1000
        assert huffman_decompress(huffman_compress(data)) == data

    def test_all_byte_values(self):
        data = bytes(range(256)) * 4
        assert huffman_decompress(huffman_compress(data)) == data

    def test_skewed_data_compresses(self):
        data = b"a" * 900 + bytes(range(100))
        compressed = huffman_compress(data)
        assert len(compressed) < len(data)

    def test_uniform_data_does_not_explode(self):
        """Header is 264 bytes; payload stays near 8 bits/byte."""
        data = bytes((i * 37) & 0xFF for i in range(2048))
        compressed = huffman_compress(data)
        assert len(compressed) < len(data) + 300


class TestErrors:
    def test_truncated_blob(self):
        with pytest.raises(ValueError):
            huffman_decompress(b"too short")

    def test_truncated_payload(self):
        blob = huffman_compress(b"some reasonable input data here")
        with pytest.raises((ValueError, IndexError)):
            huffman_decompress(blob[:-2])


@settings(max_examples=50, deadline=None)
@given(data=st.binary(max_size=512))
def test_huffman_roundtrip_property(data):
    assert huffman_decompress(huffman_compress(data)) == data
