"""Batched trace execution: equivalence with the scalar reference path.

The fast path's contract (see :mod:`repro.sim.fastpath`) is pinned here:
identical :class:`SimReport`, identical bus transaction stream (content
*and* order), identical :class:`CounterSink` aggregate totals — for every
registered engine and for the cache corner cases (LRU conflict eviction,
write-through stores, no-write-allocate bypass, dirty-victim writebacks)
on both the scalar and the batched path.
"""

import pytest

from repro.core.registry import engine_names
from repro.obs import (
    CounterSink,
    NullSink,
    RecordingSink,
    RingBufferSink,
    TeeSink,
    TraceEvent,
)
from repro.sim.bench_fastpath import differential, make_bench_trace
from repro.sim.cache import CacheConfig, WritePolicy
from repro.sim.fastpath import CompiledTrace, compile_trace
from repro.sim.memory import MemoryConfig
from repro.sim.system import SecureSystem
from repro.traces.trace import Access, AccessKind

LINE = 32


def _system(sink=None, **cache_kwargs):
    kwargs = dict(size=4 * LINE, line_size=LINE, associativity=2)
    kwargs.update(cache_kwargs)
    system = SecureSystem(
        engine=None, cache_config=CacheConfig(**kwargs),
        mem_config=MemoryConfig(size=1 << 16), sink=sink,
    )
    system.install_image(0, bytes(range(256)) * 16)
    return system


def _both_paths(trace, **cache_kwargs):
    """Run the trace through reference and fast path on twin systems."""
    out = []
    for reference in (True, False):
        sink = CounterSink()
        system = _system(sink=sink, **cache_kwargs)
        transactions = []
        system.bus.attach_probe(
            lambda txn, log=transactions: log.append(
                (txn.op, txn.addr, txn.data))
        )
        report = (system.run_reference(trace) if reference
                  else system.run(trace))
        out.append((system, report, sink, transactions))
    return out


PATHS = ["reference", "fast"]


def _run_one(system, trace, path):
    return (system.run_reference(trace) if path == "reference"
            else system.run(trace))


class TestEngineDifferential:
    """Every registered engine: scalar and batched runs are identical."""

    @pytest.mark.parametrize("name", [None] + engine_names(),
                             ids=lambda n: n or "baseline")
    def test_reference_vs_fast(self, name):
        assert differential(name, n=1200) == []

    @pytest.mark.parametrize("name", [None, "stream", "xom", "aegis"],
                             ids=lambda n: n or "baseline")
    @pytest.mark.parametrize("chunk", [1, 37, 5000])
    def test_chunked_vs_whole(self, name, chunk):
        """The chunk-streamed fast path is byte-identical to the scalar
        reference at any chunk size (1 = boundary between every access;
        5000 > n = one oversized chunk)."""
        assert differential(name, n=1200, chunk=chunk) == []


class TestCacheCorners:
    """Cache semantics corner cases, exercised through both paths."""

    @pytest.mark.parametrize("path", PATHS)
    def test_lru_eviction_order_under_conflicts(self, path):
        # 2-way, 2 sets: lines 0, 2, 4 all map to set 0.  After touching
        # 0 then 2, re-touching 0 makes 2 the LRU way, so line 4 must
        # evict 2 (not 0) — the classic move-to-MRU check.
        trace = [Access(addr=line * LINE, kind=AccessKind.LOAD, size=4)
                 for line in (0, 2, 0, 4, 0)]
        system = _system()
        report = _run_one(system, trace, path)
        # Line 0 stays resident throughout: hits on the 3rd and 5th access.
        assert report.cache_hits == 2
        assert report.cache_misses == 3
        sets = system.cache._sets[0]
        assert list(sets) == [4, 0]  # LRU -> MRU: the final hit made 0 MRU

    @pytest.mark.parametrize("path", PATHS)
    def test_dirty_victim_writeback_address(self, path):
        # Write line 2 (dirty), then force its eviction via lines 0 and 4
        # (same set).  The writeback on the bus must carry line 2's byte
        # address, with the bytes the store patched in.
        trace = [
            Access(addr=2 * LINE + 4, kind=AccessKind.STORE, size=4),
            Access(addr=0, kind=AccessKind.LOAD, size=4),
            Access(addr=4 * LINE, kind=AccessKind.LOAD, size=4),
        ]
        system = _system()
        transactions = []
        system.bus.attach_probe(
            lambda txn: transactions.append((txn.op, txn.addr, txn.data)))
        report = _run_one(system, trace, path)
        assert report.writebacks == 1
        writes = [t for t in transactions if t[0] == "write"]
        assert len(writes) == 1
        assert writes[0][1] == 2 * LINE
        # The store patched deterministic filler bytes at offset 4.
        expected = bytes((2 * LINE + 4 + i) & 0xFF for i in range(4))
        assert writes[0][2][4:8] == expected

    @pytest.mark.parametrize("path", PATHS)
    def test_write_through_store_hits_memory(self, path):
        trace = [
            Access(addr=0, kind=AccessKind.LOAD, size=4),
            Access(addr=4, kind=AccessKind.STORE, size=4),
            Access(addr=8, kind=AccessKind.STORE, size=4),
        ]
        system = _system(write_policy=WritePolicy.WRITE_THROUGH)
        report = _run_one(system, trace, path)
        # Both stores hit the resident line yet still write memory.
        assert report.cache_hits == 2
        assert report.writebacks == 0
        assert report.mem_writes == 2
        assert system.memory.dump(4, 4) == bytes(
            (4 + i) & 0xFF for i in range(4))

    @pytest.mark.parametrize("path", PATHS)
    def test_no_write_allocate_store_miss_bypasses(self, path):
        trace = [
            Access(addr=8 * LINE, kind=AccessKind.STORE, size=4),
            Access(addr=8 * LINE, kind=AccessKind.LOAD, size=4),
        ]
        system = _system(write_policy=WritePolicy.WRITE_THROUGH,
                         write_allocate=False)
        report = _run_one(system, trace, path)
        # The store miss must not have installed the line: the load
        # misses again and fills it.
        assert report.cache_misses == 2
        assert report.cache_hits == 0
        assert report.mem_writes == 1
        assert 8 in system.cache._sets[8 % system.cache.config.num_sets]

    def test_corner_configs_reference_equals_fast(self):
        trace = make_bench_trace(600, seed=13)
        for cache_kwargs in (
            {},
            {"write_policy": WritePolicy.WRITE_THROUGH},
            {"write_policy": WritePolicy.WRITE_THROUGH,
             "write_allocate": False},
            {"associativity": 1},
        ):
            (_, ref_report, ref_sink, ref_bus), \
                (_, fast_report, fast_sink, fast_bus) = _both_paths(
                    trace, **cache_kwargs)
            assert ref_report == fast_report, cache_kwargs
            assert ref_sink.summary() == fast_sink.summary(), cache_kwargs
            assert ref_sink.bytes_summary() == fast_sink.bytes_summary()
            assert ref_bus == fast_bus, cache_kwargs


class TestCompiledTrace:
    def test_runs_coalesce_consecutive_same_line(self):
        trace = [
            Access(addr=0, kind=AccessKind.FETCH, size=4),
            Access(addr=4, kind=AccessKind.LOAD, size=4),
            Access(addr=8, kind=AccessKind.STORE, size=4),
            Access(addr=LINE, kind=AccessKind.LOAD, size=4),
            Access(addr=0, kind=AccessKind.LOAD, size=4),
        ]
        compiled = compile_trace(trace, LINE)
        assert isinstance(compiled, CompiledTrace)
        assert len(compiled) == 5
        assert list(compiled) == trace
        # (start, count, line, n_fetch, n_load, n_store, bytes,
        #  head_kind, head_addr, head_size, store_pairs)
        assert compiled.runs == [
            (0, 3, 0, 1, 1, 1, 12, AccessKind.FETCH, 0, 4, ((8, 4),)),
            (3, 1, 1, 0, 1, 0, 4, AccessKind.LOAD, LINE, 4, ()),
            (4, 1, 0, 0, 1, 0, 4, AccessKind.LOAD, 0, 4, ()),
        ]

    def test_compiled_trace_passes_through(self):
        trace = [Access(addr=0, kind=AccessKind.LOAD, size=4)]
        compiled = compile_trace(trace, LINE)
        assert compile_trace(compiled, LINE) is compiled
        # A different line size forces recompilation over the same list.
        recompiled = compile_trace(compiled, 16)
        assert recompiled is not compiled
        assert recompiled.accesses is compiled.accesses

    def test_replay_against_many_systems(self):
        trace = make_bench_trace(300, seed=5)
        compiled = compile_trace(trace, LINE)
        first = _system().run(compiled)
        second = _system().run(compiled)
        assert first == second
        assert _system().run(list(trace)) == first


class TestEmitBulk:
    def _events(self):
        return lambda: (
            TraceEvent(kind="hit", addr=32 * i, size=LINE, cycle=i)
            for i in range(5)
        )

    def test_counter_sink_aggregates_without_materializing(self):
        sink = CounterSink()
        calls = []

        def factory():
            calls.append(1)
            return iter(())

        sink.emit_bulk("hit", 5, 5 * LINE, factory)
        assert sink.get("hit") == 5
        assert sink.bytes_for("hit") == 5 * LINE
        assert calls == []  # aggregate-only sinks never build the events

    def test_counter_sink_bulk_matches_scalar(self):
        bulk, scalar = CounterSink(), CounterSink()
        bulk.emit_bulk("hit", 5, 5 * LINE, self._events())
        for event in self._events()():
            scalar.emit(event)
        assert bulk.summary() == scalar.summary()
        assert bulk.bytes_summary() == scalar.bytes_summary()

    @pytest.mark.parametrize("sink_cls", [RingBufferSink, RecordingSink])
    def test_event_keeping_sinks_materialize(self, sink_cls):
        sink = sink_cls()
        sink.emit_bulk("hit", 5, 5 * LINE, self._events())
        assert sink.get("hit") == 5
        assert len(sink.events) == 5
        assert [e.cycle for e in sink.events] == list(range(5))

    def test_tee_fans_out_and_reinvokes_factory(self):
        counter = CounterSink()
        recorder = RecordingSink()
        calls = []
        base = self._events()

        def factory():
            calls.append(1)
            return base()

        TeeSink(counter, NullSink(), recorder).emit_bulk(
            "hit", 5, 5 * LINE, factory)
        assert counter.get("hit") == 5
        assert len(recorder.events) == 5
        # Only the event-keeping sink invoked the factory.
        assert len(calls) == 1

    def test_system_totals_identical_with_event_keeping_sink(self):
        """A materializing sink sees the same totals either path."""
        trace = make_bench_trace(400, seed=21)
        totals = []
        for reference in (True, False):
            sink = RecordingSink()
            system = _system(sink=sink)
            (system.run_reference(trace) if reference
             else system.run(trace))
            totals.append((sink.summary(), sink.bytes_summary()))
        assert totals[0] == totals[1]


# -- backend-rung differential (the dispatch-ladder equivalence gate) -------

import contextlib

from hypothesis import given, settings
from hypothesis import strategies as st

import repro.backend as repro_backend
from repro.crypto import kernels as crypto_kernels
from repro.crypto.drbg import DRBG
from repro.sim import bench_fastpath
from repro.traces.arrays import KIND_CODES, ArrayChunk
from repro.traces.stream import TraceStream, chunked

_RUNG_ENGINES = [None, "stream", "xom", "aegis"]
_RUNG_CHUNKS = [1, 37, 5000]


def _random_trace(seed: int, n: int = 140, region: int = 4096):
    """A DRBG-derived trace mixing jumps, walks, kinds and sizes."""
    rng = DRBG(b"fastpath-hyp-%d" % seed)
    kinds = (AccessKind.FETCH, AccessKind.LOAD, AccessKind.STORE)
    sizes = (1, 4, 8)
    out, addr = [], 0
    for _ in range(n):
        addr = (rng.randbelow(region) if rng.random() < 0.4
                else (addr + 4) % region)
        out.append(Access(kinds[rng.randbelow(3)], addr,
                          sizes[rng.randbelow(3)]))
    return out


@contextlib.contextmanager
def _forced_rung(rung: str):
    """Emulate one dispatch-ladder rung in-process.

    ``repro.backend.ACTIVE`` steers the executor (python rung falls back
    to the scalar step loop) and ``kernels.NUMPY_BACKED`` steers kernel
    dispatch; flipping both reproduces each rung's code path without the
    import-time environment variable (the cross-process leg is covered
    by ``python -m repro.sim.bench_fastpath --vector``).
    """
    prev_active = repro_backend.ACTIVE
    prev_backed = crypto_kernels.NUMPY_BACKED
    try:
        repro_backend.ACTIVE = rung
        if rung != "numpy":
            crypto_kernels.NUMPY_BACKED = False
        yield
    finally:
        repro_backend.ACTIVE = prev_active
        crypto_kernels.NUMPY_BACKED = prev_backed


def _assert_equivalent(ref, fast, context: str) -> None:
    ref_report, ref_sink, ref_bus = ref
    fast_report, fast_sink, fast_bus = fast
    assert fast_report == ref_report, context
    assert fast_sink.summary() == ref_sink.summary(), context
    assert fast_sink.bytes_summary() == ref_sink.bytes_summary(), context
    assert fast_bus == ref_bus, context


class TestBackendRungDifferential:
    """Random traces x engines x chunk sizes x all three rungs."""

    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1),
           engine=st.sampled_from(_RUNG_ENGINES),
           chunk=st.sampled_from(_RUNG_CHUNKS))
    def test_all_rungs_match_reference(self, seed, engine, chunk):
        trace = _random_trace(seed)
        ref = bench_fastpath._run(engine, trace, reference=True)
        for rung in ("numpy", "kernel", "python"):
            if rung == "numpy" and repro_backend.ACTIVE != "numpy":
                continue  # demoted environment: rung unavailable
            with _forced_rung(rung):
                stream = TraceStream(lambda: chunked(trace, chunk),
                                     length=len(trace))
                fast = bench_fastpath._run(engine, stream, reference=False)
            _assert_equivalent(ref, fast,
                               f"rung={rung} engine={engine} chunk={chunk}")

    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1),
           engine=st.sampled_from(_RUNG_ENGINES),
           chunk=st.sampled_from(_RUNG_CHUNKS))
    def test_array_chunks_match_reference(self, seed, engine, chunk):
        if repro_backend.ACTIVE != "numpy":
            pytest.skip("numpy rung inactive")
        np = repro_backend.NUMPY
        trace = _random_trace(seed)
        ref = bench_fastpath._run(engine, trace, reference=True)
        chunks = []
        for lo in range(0, len(trace), chunk):
            part = trace[lo: lo + chunk]
            chunks.append(ArrayChunk(
                np.array([KIND_CODES[a.kind] for a in part],
                         dtype=np.uint8),
                np.array([a.addr for a in part], dtype=np.int64),
                np.array([a.size for a in part], dtype=np.int64),
            ))
        stream = TraceStream(chunks, length=len(trace))
        fast = bench_fastpath._run(engine, stream, reference=False)
        _assert_equivalent(ref, fast,
                           f"array engine={engine} chunk={chunk}")
