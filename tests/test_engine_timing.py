"""Engine timing models: the latency relationships the survey asserts."""

import pytest

from repro.core import (
    AegisEngine,
    DS5240Engine,
    GilmontEngine,
    StreamCipherEngine,
    XomAesEngine,
)
from repro.sim import (
    CacheConfig,
    MemoryConfig,
    SecureSystem,
    TDES_ITERATIVE,
    overhead,
)
from repro.traces import branchy_code, sequential_code, write_burst
from repro.crypto import DRBG

KEY16 = b"0123456789abcdef"
KEY24 = b"0123456789abcdef01234567"


def timing_system(engine, latency=40):
    return SecureSystem(
        engine=engine,
        cache_config=CacheConfig(size=1024, line_size=32, associativity=2),
        mem_config=MemoryConfig(size=1 << 20, latency=latency),
    )


class TestStreamVsBlock:
    """Figure 2: 'the key stream generation can be parallelised with
    external data fetch' vs 'deciphering cannot start until a complete
    block has been received'."""

    def test_stream_cheaper_than_block_on_reads(self):
        trace = sequential_code(2000, code_size=1 << 16)
        stream = overhead(
            list(trace), StreamCipherEngine(KEY16, functional=False),
            cache_config=CacheConfig(size=1024, line_size=32, associativity=2),
        )
        block = overhead(
            list(trace), XomAesEngine(KEY16, functional=False),
            cache_config=CacheConfig(size=1024, line_size=32, associativity=2),
        )
        assert stream < block

    def test_stream_overlap_absorbs_pad_cost(self):
        """With memory slower than pad generation, a pad miss costs ~1
        cycle on the critical path."""
        engine = StreamCipherEngine(KEY16, functional=False,
                                    pad_ahead_depth=0, pad_cache_lines=1)
        extra = engine.read_extra_cycles(0x40, 32, mem_cycles=44)
        assert extra == 1

    def test_stream_exposed_when_memory_fast(self):
        """With a very fast memory the pad no longer hides."""
        engine = StreamCipherEngine(KEY16, functional=False,
                                    pad_ahead_depth=0, pad_cache_lines=1)
        extra = engine.read_extra_cycles(0x40, 32, mem_cycles=4)
        assert extra > 1

    def test_pad_cache_hit_is_one_cycle(self):
        engine = StreamCipherEngine(KEY16, line_size=32, pad_ahead_depth=2)
        system = timing_system(engine)
        system.install_image(0, bytes(256))
        from repro.traces import Access, AccessKind
        system.step(Access(AccessKind.FETCH, 0))       # miss: pad generated
        system.step(Access(AccessKind.FETCH, 32))      # pad-ahead hit
        assert engine.stats.pad_hits >= 1

    def test_block_engine_pays_pipeline_latency(self):
        engine = XomAesEngine(KEY16, functional=False)
        extra = engine.read_extra_cycles(0, 32, mem_cycles=44)
        assert extra == engine.unit.latency  # fully pipelined: fill latency


class TestXomFigures:
    def test_published_latency(self):
        engine = XomAesEngine(KEY16)
        assert engine.unit.latency == 14
        assert engine.unit.initiation_interval == 1

    def test_latency_alone_underreports(self):
        """E10's point: identical 14-cycle latency, very different system
        overhead across workloads."""
        engine_factory = lambda: XomAesEngine(KEY16, functional=False)
        seq = overhead(
            sequential_code(10000, code_size=4096), engine_factory(),
            cache_config=CacheConfig(size=8192, line_size=32, associativity=4),
        )
        hostile = overhead(
            branchy_code(2000, DRBG(1), p_taken=0.9, code_size=1 << 20),
            engine_factory(),
            cache_config=CacheConfig(size=8192, line_size=32, associativity=4),
        )
        assert hostile > 4 * max(seq, 1e-9)


class TestGilmontPrediction:
    def test_sequential_code_under_2_5_percent(self):
        """The paper's claim, in its own scope: static sequential code."""
        trace = sequential_code(4000, code_size=1 << 18)
        value = overhead(
            list(trace), GilmontEngine(KEY24, functional=False),
            cache_config=CacheConfig(size=1024, line_size=32, associativity=2),
        )
        assert value < 0.025

    def test_branchy_code_defeats_predictor(self):
        trace = branchy_code(3000, DRBG(2), p_taken=0.5, code_size=1 << 18)
        value = overhead(
            list(trace), GilmontEngine(KEY24, functional=False),
            cache_config=CacheConfig(size=1024, line_size=32, associativity=2),
        )
        assert value > 0.05

    def test_prediction_stats(self):
        engine = GilmontEngine(KEY24, functional=False)
        system = timing_system(engine)
        for access in sequential_code(512, code_size=1 << 16):
            system.step(access)
        assert engine.stats.prefetch_hits > engine.stats.prefetch_misses

    def test_deeper_prediction_helps_on_streams(self):
        shallow = GilmontEngine(KEY24, prediction_depth=0, functional=False)
        deep = GilmontEngine(KEY24, prediction_depth=2, functional=False)
        trace = sequential_code(1000, code_size=1 << 16)
        o_shallow = overhead(list(trace), shallow)
        o_deep = overhead(list(trace), deep)
        assert o_deep < o_shallow


class TestAegisTiming:
    def test_read_includes_iv_generation(self):
        engine = AegisEngine(KEY16, functional=False)
        xom = XomAesEngine(KEY16, functional=False)
        assert engine.read_extra_cycles(0, 32, 44) > \
            xom.read_extra_cycles(0, 32, 44)

    def test_write_chain_is_serial(self):
        """CBC encryption cannot pipeline blocks within the line."""
        engine = AegisEngine(KEY16, functional=False)
        one = engine.write_extra_cycles(0, 16)
        two = engine.write_extra_cycles(0, 32)
        assert two - one == engine.unit.latency


class TestWritePenalty:
    """§2.2's five-step sub-block write penalty (E04)."""

    def test_small_writes_trigger_rmw(self):
        from repro.sim import WritePolicy
        engine = DS5240Engine(KEY16, functional=False)
        system = SecureSystem(
            engine=engine,
            cache_config=CacheConfig(
                size=1024, line_size=32, associativity=2,
                write_policy=WritePolicy.WRITE_THROUGH, write_allocate=False,
            ),
            mem_config=MemoryConfig(size=1 << 20),
            write_buffer=False,
        )
        for access in write_burst(16, base=0, write_size=4, stride=64):
            system.step(access)
        assert engine.stats.rmw_operations == 16

    def test_block_aligned_writes_skip_rmw(self):
        from repro.sim import WritePolicy
        engine = DS5240Engine(KEY16, functional=False)
        system = SecureSystem(
            engine=engine,
            cache_config=CacheConfig(
                size=1024, line_size=32, associativity=2,
                write_policy=WritePolicy.WRITE_THROUGH, write_allocate=False,
            ),
            mem_config=MemoryConfig(size=1 << 20),
        )
        for access in write_burst(16, base=0, write_size=8, stride=64):
            system.step(access)
        assert engine.stats.rmw_operations == 0

    def test_rmw_costs_more_than_aligned(self):
        engine = DS5240Engine(KEY16, functional=False, unit=TDES_ITERATIVE)
        from repro.core.engine import MemoryPort
        from repro.sim import Bus, MainMemory
        port = MemoryPort(MainMemory(MemoryConfig(size=4096)), Bus())
        aligned = engine.write_partial(port, 0, bytes(8), 32)
        small = engine.write_partial(port, 8, bytes(4), 32)
        assert small > aligned

    def test_byte_granular_engine_never_rmws(self):
        from repro.core import DS5002FPEngine
        from repro.core.engine import MemoryPort
        from repro.sim import Bus, MainMemory
        engine = DS5002FPEngine(KEY16, functional=False)
        port = MemoryPort(MainMemory(MemoryConfig(size=4096)), Bus())
        engine.write_partial(port, 3, b"\x01", 32)
        assert engine.stats.rmw_operations == 0
