"""Address-scrambled DS5002FP and the port-based Cipher Instruction Search."""

import pytest

from repro.attacks import PortBasedKuhnAttack, ScrambledDallasBoard
from repro.crypto import AddressScrambler, SmallBlockCipher
from repro.isa import Op, assemble, secret_table_program

KEY = b"factory-secret"
ADDR_KEY = b"address-key"


@pytest.fixture(scope="module")
def victim():
    firmware = assemble(secret_table_program(seed=7, table_len=32), size=1024)
    return firmware


def make_board(firmware, scrambled=True, memory_size=1024):
    scrambler = AddressScrambler(ADDR_KEY, size=memory_size) if scrambled \
        else None
    return ScrambledDallasBoard(
        SmallBlockCipher(KEY), firmware, memory_size=memory_size,
        scrambler=scrambler,
    )


class TestAddressScrambler:
    def test_is_bijection(self):
        scr = AddressScrambler(ADDR_KEY, size=256)
        assert sorted(scr.scramble(a) for a in range(256)) == list(range(256))

    def test_inverse(self):
        scr = AddressScrambler(ADDR_KEY, size=1024)
        for a in range(0, 1024, 41):
            assert scr.unscramble(scr.scramble(a)) == a

    def test_odd_width_cycle_walking(self):
        scr = AddressScrambler(ADDR_KEY, size=512)  # 9 bits: walks cycles
        assert sorted(scr.scramble(a) for a in range(512)) == list(range(512))

    def test_actually_scrambles(self):
        scr = AddressScrambler(ADDR_KEY, size=1024)
        moved = sum(scr.scramble(a) != a for a in range(1024))
        assert moved > 1000

    def test_key_dependence(self):
        a = AddressScrambler(b"key-a", size=256)
        b = AddressScrambler(b"key-b", size=256)
        assert any(a.scramble(x) != b.scramble(x) for x in range(256))

    def test_size_validation(self):
        with pytest.raises(ValueError):
            AddressScrambler(ADDR_KEY, size=100)
        with pytest.raises(ValueError):
            AddressScrambler(ADDR_KEY, size=2)

    def test_range_validation(self):
        scr = AddressScrambler(ADDR_KEY, size=256)
        with pytest.raises(ValueError):
            scr.scramble(256)
        with pytest.raises(ValueError):
            scr.unscramble(-1)


class TestScrambledBoard:
    def test_firmware_executes_correctly(self, victim):
        """The scrambled part is functionally transparent to its own CPU."""
        scrambled = make_board(victim, scrambled=True)
        clear = make_board(victim, scrambled=False)
        scrambled.reset_and_step(1000)
        clear.reset_and_step(1000)
        assert scrambled._mcu.port_log == clear._mcu.port_log

    def test_memory_layout_is_permuted(self, victim):
        scrambled = make_board(victim, scrambled=True)
        unscrambled = make_board(victim, scrambled=False)
        assert bytes(scrambled.memory) != bytes(unscrambled.memory)
        # Same multiset of encrypted content positions is NOT expected
        # (tweaks differ per physical address); only sizes agree.
        assert len(scrambled.memory) == len(unscrambled.memory)

    def test_bus_shows_scrambled_fetches(self, victim):
        scrambler = AddressScrambler(ADDR_KEY, size=1024)
        board = ScrambledDallasBoard(
            SmallBlockCipher(KEY), victim, memory_size=1024,
            scrambler=scrambler,
        )
        events = board.reset_and_step(3)
        assert events[0].fetched[0] == scrambler.scramble(0)


class TestPortBasedAttack:
    def test_scrambled_board_falls(self, victim):
        board = make_board(victim, scrambled=True)
        report = PortBasedKuhnAttack(board).run()
        assert report.plaintext == victim
        assert report.fully_determined

    def test_learned_map_matches_scrambler(self, victim):
        board = make_board(victim, scrambled=True)
        attack = PortBasedKuhnAttack(board)
        attack.run()
        scrambler = AddressScrambler(ADDR_KEY, size=1024)
        for logical, physical in attack.phys.items():
            assert physical == scrambler.scramble(logical)

    def test_identity_board_also_falls(self, victim):
        board = make_board(victim, scrambled=False)
        report = PortBasedKuhnAttack(board).run()
        assert report.plaintext == victim

    def test_probe_cost_is_constant_factor(self, victim):
        """Scrambling adds a handful of extra 256-sweeps, nothing more."""
        scrambled = make_board(victim, scrambled=True)
        report = PortBasedKuhnAttack(scrambled).run()
        assert report.probe_runs < 8 * 256 + 1024 + 64

    def test_dump_range(self, victim):
        board = make_board(victim, scrambled=True)
        report = PortBasedKuhnAttack(board).run(dump_range=(0x100, 0x120))
        assert report.plaintext == victim[0x100:0x120]

    def test_ambiguous_start_reported(self):
        firmware = assemble("NOP\n MOV A, #5\n OUT\n HALT", size=256)
        board = make_board(firmware, scrambled=True, memory_size=256)
        report = PortBasedKuhnAttack(board).run()
        assert 0 in report.ambiguous_cells
        assert Op.NOP in report.ambiguous_cells[0]
        assert report.plaintext[1:] == firmware[1:]

    def test_board_restored(self, victim):
        board = make_board(victim, scrambled=True)
        before = bytes(board.memory)
        PortBasedKuhnAttack(board).run()
        assert bytes(board.memory) == before
