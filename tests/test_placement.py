"""EDU placement (Figure 7 / E12): per-access cost and SRAM doubling."""

import pytest

from repro.core import CpuCacheStreamEngine, StreamCipherEngine, compare_placements
from repro.sim import CacheConfig, MemoryConfig, sram_gates
from repro.traces import make_workload

KEY = b"0123456789abcdef"


class TestCpuCacheEngine:
    def test_functional_roundtrip(self):
        engine = CpuCacheStreamEngine(KEY)
        line = bytes(range(32))
        assert engine.decrypt_line(0x40, engine.encrypt_line(0x40, line)) == line

    def test_stored_pad_one_cycle_per_access(self):
        engine = CpuCacheStreamEngine(KEY, keystream_on_chip=True)
        assert engine.per_access_cycles() == 1

    def test_generated_pad_costs_generator_latency(self):
        engine = CpuCacheStreamEngine(KEY, keystream_on_chip=False)
        assert engine.per_access_cycles() == engine.unit.latency

    def test_keystream_store_equals_cache_size(self):
        """§4: 'an on-chip memory equivalent to the cache memory in term of
        size'."""
        cache_size = 16 * 1024
        engine = CpuCacheStreamEngine(KEY, cache_size=cache_size)
        area = engine.area()
        assert area.items["keystream-store"] == sram_gates(cache_size)

    def test_generated_variant_has_no_store(self):
        engine = CpuCacheStreamEngine(KEY, keystream_on_chip=False)
        assert "keystream-store" not in engine.area().items


class TestComparison:
    @pytest.fixture(scope="class")
    def comparison(self):
        trace = make_workload("mixed", n=3000)
        return compare_placements(
            trace,
            cache_config=CacheConfig(size=4096, line_size=32, associativity=2),
            mem_config=MemoryConfig(size=1 << 21, latency=40),
        )

    def test_cpu_cache_no_better_than_cache_memory(self, comparison):
        """§4: 'this scheme seems to provide no benefit in term of
        performance'."""
        overheads = comparison.overheads()
        assert overheads["cpu-cache stored pad (7b)"] >= \
            overheads["cache-memory (7a)"] - 1e-9

    def test_generated_pad_is_catastrophic(self, comparison):
        """Paying the generator latency on every access dwarfs everything."""
        overheads = comparison.overheads()
        assert overheads["cpu-cache generated pad (7b)"] > \
            5 * max(overheads["cache-memory (7a)"], 0.001)

    def test_stored_pad_pays_the_sram_premium(self, comparison):
        """The stored-pad variant buys its speed with a keystream store as
        large as the cache — the doubling §5 calls unaffordable."""
        stored = comparison.areas["cpu-cache stored pad (7b)"]
        generated = comparison.areas["cpu-cache generated pad (7b)"]
        assert stored - generated == sram_gates(4096)

    def test_baseline_is_fastest(self, comparison):
        assert comparison.baseline.cycles <= min(
            comparison.cache_memory.cycles,
            comparison.cpu_cache_stored.cycles,
            comparison.cpu_cache_generated.cycles,
        )
