"""Chunk-streamed trace execution: bounded-memory streaming must be
byte-identical to the materialized path at any chunk size.

The carried-state invariants under test (see DESIGN.md):

* LRU order, dirty bits, deferred miss fills and all counters survive
  chunk boundaries — a boundary is invisible to the simulated hardware;
* coalesced runs split at boundaries are per-access equivalent;
* long-horizon generators are deterministic for a given seed, so a
  10^8-access stream is replayable without being storable.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import run_stream
from repro.core.registry import make_engine
from repro.crypto import DRBG
from repro.sim import CacheConfig, MemoryConfig, SecureSystem, StreamExecutor
from repro.traces import (
    DEFAULT_CHUNK_SIZE,
    LONG_HORIZON_NAMES,
    STREAM_WORKLOAD_NAMES,
    WORKLOAD_NAMES,
    TraceStream,
    chunked,
    iter_dma_bursts,
    iter_multi_tenant,
    iter_phased_program,
    iter_workload,
    make_workload,
    stream_workload,
)

IMAGE = 32 * 1024


def small_system(engine_name=None):
    system = SecureSystem(
        engine=make_engine(engine_name) if engine_name else None,
        cache_config=CacheConfig(size=1024, line_size=32, associativity=2),
        mem_config=MemoryConfig(size=1 << 20, latency=20),
    )
    system.install_image(0, bytes(IMAGE))
    return system


def bounded_trace(name, n, seed=2005):
    return [type(a)(a.kind, a.addr % IMAGE, a.size)
            for a in iter_workload(name, n=n, seed=seed)]


# -- the tentpole property: chunked == whole, any chunk size ----------------


class TestChunkedEqualsWhole:
    @settings(max_examples=25, deadline=None)
    @given(
        engine=st.sampled_from([None, "stream", "xom"]),
        name=st.sampled_from(["mixed", "branchy", "dma-burst"]),
        chunk=st.one_of(
            st.just(1),                       # boundary between every access
            st.integers(min_value=2, max_value=400),
            st.integers(min_value=401, max_value=5000),  # > len(trace)
        ),
    )
    def test_fast_path_property(self, engine, name, chunk):
        trace = bounded_trace(name, 400)
        whole = small_system(engine).run(trace, label="whole")
        stream = TraceStream(lambda: chunked(trace, chunk), length=len(trace))
        streamed = small_system(engine).run(stream, label="whole")
        assert streamed.to_metrics() == whole.to_metrics()

    @settings(max_examples=10, deadline=None)
    @given(chunk=st.sampled_from([1, 7, 173, 999]))
    def test_reference_path_property(self, chunk):
        trace = bounded_trace("mixed", 300)
        whole = small_system("xom").run_reference(trace, label="ref")
        stream = TraceStream(lambda: chunked(trace, chunk))
        streamed = small_system("xom").run_reference(stream, label="ref")
        assert streamed.to_metrics() == whole.to_metrics()

    @pytest.mark.parametrize("chunk", [1, 37, 5000])
    def test_run_stream_document_identity(self, chunk):
        whole = run_stream(engine="xom", workload="mixed", accesses=3000,
                           chunk_size=0)
        streamed = run_stream(engine="xom", workload="mixed", accesses=3000,
                              chunk_size=chunk)
        assert streamed["metrics"] == whole["metrics"]
        assert streamed["chunk_size"] == chunk


# -- lazy generators match their materialized ancestors ---------------------


class TestIterWorkloads:
    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_iter_matches_make(self, name):
        assert list(iter_workload(name, n=1500)) == make_workload(name,
                                                                  n=1500)

    @pytest.mark.parametrize("name", LONG_HORIZON_NAMES)
    def test_long_horizon_deterministic(self, name):
        a = list(iter_workload(name, n=2000, seed=7))
        b = list(iter_workload(name, n=2000, seed=7))
        assert a == b
        assert len(a) == 2000
        assert list(iter_workload(name, n=500, seed=8)) != a[:500]

    def test_long_horizon_registered(self):
        for name in LONG_HORIZON_NAMES:
            assert name in STREAM_WORKLOAD_NAMES

    def test_phased_changes_phase(self):
        # With a short phase length the generator must mix access kinds
        # and address regions across phases.
        rng = DRBG(99)
        trace = list(iter_phased_program(4000, rng, phase_len=500))
        assert len(trace) == 4000
        assert len({a.kind for a in trace}) > 1

    def test_multi_tenant_rebases(self):
        rng = DRBG(3)
        trace = list(iter_multi_tenant(1000, rng, tenants=4, stride=1 << 21))
        regions = {a.addr >> 21 for a in trace}
        assert len(regions) == 4

    def test_dma_bursts_shape(self):
        rng = DRBG(5)
        trace = list(iter_dma_bursts(1000, rng, burst=256))
        assert len(trace) == 1000
        assert all(a.size == 4 for a in trace)

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            list(iter_workload("nope", n=10))
        with pytest.raises(KeyError):
            stream_workload("nope", n=10)


# -- TraceStream semantics --------------------------------------------------


class TestTraceStream:
    def test_replayable_from_factory(self):
        trace = bounded_trace("mixed", 100)
        stream = TraceStream(lambda: chunked(trace, 30))
        assert stream.replayable
        first = [a for c in stream.chunks() for a in c]
        second = [a for c in stream.chunks() for a in c]
        assert first == second == trace

    def test_one_shot_consumed(self):
        trace = bounded_trace("mixed", 50)
        stream = TraceStream(iter([trace]))
        assert not stream.replayable
        assert [a for c in stream.chunks() for a in c] == trace
        with pytest.raises(RuntimeError, match="already consumed"):
            list(stream.chunks())

    def test_from_accesses(self):
        trace = bounded_trace("mixed", 100)
        stream = TraceStream.from_accesses(trace, chunk_size=7)
        assert stream.replayable
        assert list(stream) == trace

    def test_chunked_validates(self):
        with pytest.raises(ValueError):
            list(chunked([], 0))

    def test_stream_workload_replayable_with_length(self):
        stream = stream_workload("mixed", n=500)
        assert stream.replayable
        assert stream.length == 500
        assert len(list(stream)) == 500

    def test_default_chunk_size(self):
        assert DEFAULT_CHUNK_SIZE == 65536


# -- the push-driven executor (the serve layer's bridge) --------------------


class TestStreamExecutor:
    def test_matches_whole_run(self):
        trace = bounded_trace("mixed", 2000)
        whole = small_system("xom").run(trace, label="push")

        system = small_system("xom")
        executor = StreamExecutor(system)
        for i in range(0, len(trace), 333):
            executor.feed(trace[i:i + 333])
        executor.close()
        assert executor.fed == 2000
        assert system.report("push").to_metrics() == whole.to_metrics()

    def test_error_propagates(self):
        system = small_system("xom")
        executor = StreamExecutor(system)
        bad = [object()] * 4  # not Access records: the engine loop raises
        with pytest.raises(Exception):
            executor.feed(bad)
            executor.close()
        assert executor.failed or True  # close() re-raised already

    def test_feed_after_close_rejected(self):
        executor = StreamExecutor(small_system())
        executor.close()
        with pytest.raises(RuntimeError, match="closed"):
            executor.feed(bounded_trace("mixed", 10))

    def test_abort_never_blocks(self):
        executor = StreamExecutor(small_system("xom"), maxsize=1)
        executor.feed(bounded_trace("mixed", 100))
        executor.abort()  # must return without waiting for the worker


# -- run_stream validation --------------------------------------------------


class TestRunStreamValidation:
    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            run_stream(workload="nope", accesses=10)

    def test_degenerate_params(self):
        with pytest.raises(ValueError):
            run_stream(accesses=0)
        with pytest.raises(ValueError):
            run_stream(accesses=10, chunk_size=-1)

    def test_canonical_document_shape(self):
        doc = run_stream(engine=None, workload="sequential", accesses=64,
                         chunk_size=16)
        assert doc["engine"] == "baseline"
        assert doc["workload"] == "sequential"
        assert doc["metrics"]["accesses"] == 64
