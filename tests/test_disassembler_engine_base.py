"""Disassembler, base-engine edge cases, and classic DES key properties."""

import pytest

from repro.core import NullEngine, XomAesEngine
from repro.core.engine import MemoryPort
from repro.crypto import DES
from repro.isa import (
    Op,
    assemble,
    disassemble,
    fibonacci_program,
    format_listing,
    secret_table_program,
)
from repro.sim import Bus, MainMemory, MemoryConfig

KEY = b"0123456789abcdef"


class TestDisassembler:
    def test_roundtrip_reassembly(self):
        """Disassembling linear code and reassembling its text reproduces
        the original bytes."""
        source = """
            MOV A, #7
            ADD A, #3
            MOV R2, A
            OUT
            JMP 0x000C
            NOP
            HALT
        """
        image = assemble(source)
        listing = disassemble(image)
        rebuilt = assemble("\n".join(inst.text for inst in listing))
        assert rebuilt == image

    def test_all_defined_opcodes_decode(self):
        from repro.isa import INSTRUCTION_LENGTHS
        for opcode, length in INSTRUCTION_LENGTHS.items():
            image = bytes([opcode]) + bytes(4)
            inst = disassemble(image)[0]
            assert inst.opcode == opcode
            assert inst.length == length
            assert inst.is_defined

    def test_undefined_opcode_renders_as_data(self):
        inst = disassemble(bytes([0xAB, 0x00]))[0]
        assert not inst.is_defined
        assert "0xab" in inst.text

    def test_addresses_formatted(self):
        inst = disassemble(bytes([Op.JMP, 0x34, 0x12]))[0]
        assert inst.text == "JMP 0x1234"

    def test_truncated_instruction(self):
        """A multi-byte opcode at the image edge decodes without crashing."""
        inst = disassemble(bytes([Op.MOV_A_DIR]))[0]
        assert inst.length == 1
        assert "????" in inst.text

    def test_listing_format(self):
        listing = format_listing(disassemble(assemble("OUT\n HALT")))
        assert "0000:" in listing and "OUT" in listing and "HALT" in listing

    def test_kuhn_dump_is_readable(self):
        """The end of the §2.3 story: the recovered dump disassembles back
        into the victim's source structure."""
        firmware = assemble(secret_table_program(seed=3, table_len=8),
                            size=512)
        listing = disassemble(firmware, 0, 24)
        texts = [inst.text for inst in listing]
        assert texts[0].startswith("MOV R0")
        assert "MOVI" in texts
        assert any(t.startswith("DJNZ") for t in texts)


class TestEngineBase:
    def make_port(self):
        return MemoryPort(MainMemory(MemoryConfig(size=1 << 16)), Bus())

    def test_install_pads_to_line_size(self):
        engine = XomAesEngine(KEY)
        memory = MainMemory(MemoryConfig(size=1 << 16))
        engine.install_image(memory, 0, b"short", line_size=32)
        assert engine.decrypt_line(0, memory.dump(0, 32))[:5] == b"short"

    def test_write_partial_spanning_blocks(self):
        """An unaligned write spanning two cipher blocks RMWs the union."""
        engine = XomAesEngine(KEY)   # 16-byte blocks
        port = self.make_port()
        engine.install_image(port.memory, 0, bytes(64))
        engine.write_partial(port, 12, b"\x01" * 8, 32)   # spans blocks 0-1
        assert engine.stats.rmw_operations == 1
        plain = engine.decrypt_line(0, port.memory.dump(0, 32))
        assert plain[12:20] == b"\x01" * 8
        assert plain[:12] == bytes(12)

    def test_write_partial_aligned_fast_path(self):
        engine = XomAesEngine(KEY)
        port = self.make_port()
        engine.install_image(port.memory, 0, bytes(64))
        engine.write_partial(port, 16, bytes(range(16)), 32)
        assert engine.stats.rmw_operations == 0
        plain = engine.decrypt_line(0, port.memory.dump(0, 32))
        assert plain[16:32] == bytes(range(16))

    def test_null_engine_write_partial(self):
        engine = NullEngine()
        port = self.make_port()
        engine.write_partial(port, 3, b"\xAA", 32)
        assert port.memory.dump(3, 1) == b"\xAA"
        assert engine.stats.rmw_operations == 0

    def test_memory_port_cycles(self):
        port = self.make_port()
        data, cycles = port.read(0, 32)
        assert cycles == port.memory.config.read_cycles(32)
        assert port.write(0, bytes(8)) == port.memory.config.write_cycles(8)

    def test_bus_sees_port_traffic(self):
        port = self.make_port()
        seen = []
        port.bus.attach_probe(seen.append)
        port.read(0x40, 16)
        port.write(0x80, b"xy")
        assert [t.op for t in seen] == ["read", "write"]
        assert seen[1].data == b"xy"


class TestDESKeyProperties:
    """The classic DES key-schedule pathologies."""

    WEAK_KEYS = [
        bytes.fromhex("0101010101010101"),
        bytes.fromhex("FEFEFEFEFEFEFEFE"),
        bytes.fromhex("E0E0E0E0F1F1F1F1"),
        bytes.fromhex("1F1F1F1F0E0E0E0E"),
    ]

    @pytest.mark.parametrize("key", WEAK_KEYS)
    def test_weak_keys_are_self_inverse(self, key):
        """E_k(E_k(x)) == x for the four weak keys (all round keys equal)."""
        des = DES(key)
        block = b"weakkey!"
        assert des.encrypt_block(des.encrypt_block(block)) == block

    def test_normal_key_is_not_self_inverse(self):
        des = DES(bytes.fromhex("133457799BBCDFF1"))
        block = b"weakkey!"
        assert des.encrypt_block(des.encrypt_block(block)) != block

    def test_semi_weak_pair(self):
        """E_k1 inverts E_k2 for the classic semi-weak pair."""
        k1 = bytes.fromhex("01FE01FE01FE01FE")
        k2 = bytes.fromhex("FE01FE01FE01FE01")
        block = b"semiweak"
        assert DES(k2).encrypt_block(DES(k1).encrypt_block(block)) == block
