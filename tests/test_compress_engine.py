"""Compression+encryption engine (Figure 8 / E13)."""

import pytest

from repro.core import CompressedEncryptionEngine
from repro.core.engine import MemoryPort
from repro.sim import Bus, CacheConfig, MainMemory, MemoryConfig, SecureSystem
from repro.traces import Access, AccessKind, sequential_code, synthetic_code_image

KEY = b"0123456789abcdef"


def make_port(size=1 << 18):
    return MemoryPort(MainMemory(MemoryConfig(size=size)), Bus())


@pytest.fixture(scope="module")
def code_image():
    return synthetic_code_image(size=8 * 1024)


class TestFunctional:
    def test_fill_decompresses_correctly(self, code_image):
        engine = CompressedEncryptionEngine(KEY, line_size=32)
        port = make_port()
        engine.install_image(port.memory, 0, code_image, line_size=32)
        for addr in (0, 32, 1024, len(code_image) - 32):
            line, _ = engine.fill_line(port, addr, 32)
            assert line == code_image[addr: addr + 32]

    def test_memory_is_ciphertext_and_compressed(self, code_image):
        engine = CompressedEncryptionEngine(KEY, line_size=32)
        port = make_port()
        engine.install_image(port.memory, 0, code_image, line_size=32)
        packed_len = sum(length for _, length in engine._lat.values())
        assert packed_len < len(code_image)
        assert port.memory.dump(0, 64) != code_image[:64]

    def test_density_gain(self, code_image):
        """The survey quotes ≈35% density increase for CodePack."""
        engine = CompressedEncryptionEngine(KEY, line_size=32)
        port = make_port()
        engine.install_image(port.memory, 0, code_image, line_size=32)
        assert engine.density_gain > 0.15
        assert engine.compression_ratio < 0.9

    def test_data_region_falls_back_to_stream(self, code_image):
        engine = CompressedEncryptionEngine(KEY, line_size=32)
        port = make_port()
        engine.install_image(port.memory, 0, code_image, line_size=32)
        data_addr = 0x10000
        engine.write_line(port, data_addr, bytes(range(32)))
        line, _ = engine.fill_line(port, data_addr, 32)
        assert line == bytes(range(32))
        assert engine.uncompressed_fills == 1

    def test_code_region_is_read_only(self, code_image):
        engine = CompressedEncryptionEngine(KEY, line_size=32)
        port = make_port()
        engine.install_image(port.memory, 0, code_image, line_size=32)
        with pytest.raises(ValueError):
            engine.write_line(port, 0, bytes(32))
        with pytest.raises(ValueError):
            engine.write_partial(port, 4, b"\x00", 32)

    def test_line_size_mismatch_rejected(self, code_image):
        engine = CompressedEncryptionEngine(KEY, line_size=32)
        with pytest.raises(ValueError):
            engine.install_image(
                MainMemory(MemoryConfig(size=1 << 18)), 0, code_image,
                line_size=64,
            )


class TestTiming:
    def test_fewer_bus_beats_for_code(self, code_image):
        """Compressed fills move fewer bytes over the bus."""
        engine = CompressedEncryptionEngine(KEY, line_size=32)
        port = make_port()
        engine.install_image(port.memory, 0, code_image, line_size=32)
        before = port.bus.bytes_transferred
        engine.fill_line(port, 0, 32)
        moved = port.bus.bytes_transferred - before
        assert moved < 32

    def test_wins_with_slow_memory_loses_with_fast(self, code_image):
        """The survey's '+/- 10%': the sign depends on the memory speed."""
        from repro.analysis import measure_overhead

        trace = sequential_code(3000, code_size=len(code_image))
        cache = CacheConfig(size=512, line_size=32, associativity=2)

        def run(latency):
            return measure_overhead(
                lambda: CompressedEncryptionEngine(KEY, line_size=32,
                                                   functional=False),
                trace, image=code_image, cache_config=cache,
                mem_config=MemoryConfig(size=1 << 18, latency=latency,
                                        bus_width=2, cycles_per_beat=2),
            ).overhead

        slow = run(4)     # transfer dominates: compression wins
        assert slow < 0.0

    def test_stats_split_fills(self, code_image):
        engine = CompressedEncryptionEngine(KEY, line_size=32)
        system = SecureSystem(
            engine=engine,
            cache_config=CacheConfig(size=512, line_size=32, associativity=2),
            mem_config=MemoryConfig(size=1 << 18),
        )
        system.install_image(0, code_image)
        for access in sequential_code(500, code_size=len(code_image)):
            system.step(access)
        assert engine.compressed_fills > 0
        assert engine.uncompressed_fills == 0
