"""Property-based tests over the extension subsystems (hypothesis)."""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AddressScrambledEngine,
    GeneralInstrumentEngine,
    IntegrityShieldEngine,
    MerkleTreeEngine,
    StreamCipherEngine,
)
from repro.core.engine import MemoryPort
from repro.crypto import AddressScrambler, DRBG
from repro.sim import Bus, MainMemory, MemoryConfig
from repro.traces import Access, AccessKind, load_trace, save_trace

KEY = b"0123456789abcdef"
KEY24 = b"0123456789abcdef01234567"
MAC = b"property-mac-key"


def make_port(size=1 << 17):
    return MemoryPort(MainMemory(MemoryConfig(size=size)), Bus())


@settings(max_examples=15, deadline=None)
@given(
    writes=st.lists(
        st.tuples(st.integers(0, 31), st.integers(0, 255)),
        min_size=1, max_size=10,
    ),
    reads=st.lists(st.integers(0, 31), min_size=1, max_size=10),
)
def test_merkle_random_write_read_sequences(writes, reads):
    """Any interleaving of writes and verified fills stays consistent and
    never raises a false tamper alarm."""
    engine = MerkleTreeEngine(
        StreamCipherEngine(KEY, line_size=32), mac_key=MAC,
        region_base=0, region_size=1024, tree_base=0x10000,
        node_cache_size=4,
    )
    port = make_port()
    image = bytearray(1024)
    engine.install_image(port.memory, 0, bytes(image))
    for line_idx, value in writes:
        data = bytes([value] * 32)
        engine.write_line(port, line_idx * 32, data)
        image[line_idx * 32: (line_idx + 1) * 32] = data
    for line_idx in reads:
        line, _ = engine.fill_line(port, line_idx * 32, 32)
        assert line == bytes(image[line_idx * 32: (line_idx + 1) * 32])
    assert engine.verdicts.tampers == 0


@settings(max_examples=15, deadline=None)
@given(
    key=st.binary(min_size=1, max_size=16),
    size_pow=st.integers(2, 10),
)
def test_scrambler_always_bijective(key, size_pow):
    size = 1 << size_pow
    scrambler = AddressScrambler(key, size=size)
    image = [scrambler.scramble(a) for a in range(size)]
    assert sorted(image) == list(range(size))
    for a in range(0, size, max(1, size // 16)):
        assert scrambler.unscramble(scrambler.scramble(a)) == a


@settings(max_examples=10, deadline=None)
@given(
    stores=st.lists(
        st.tuples(st.integers(0, 63), st.integers(0, 255)),
        min_size=1, max_size=8,
    ),
)
def test_scrambled_engine_store_consistency(stores):
    engine = AddressScrambledEngine(
        StreamCipherEngine(KEY, line_size=32), addr_key=b"addr",
        region_lines=64,
    )
    port = make_port()
    engine.install_image(port.memory, 0, bytes(64 * 32))
    expected = bytearray(64 * 32)
    for line_idx, value in stores:
        data = bytes([value] * 32)
        engine.write_line(port, line_idx * 32, data)
        expected[line_idx * 32: (line_idx + 1) * 32] = data
    for line_idx, _ in stores:
        line, _ = engine.fill_line(port, line_idx * 32, 32)
        assert line == bytes(expected[line_idx * 32: (line_idx + 1) * 32])


@settings(max_examples=10, deadline=None)
@given(
    reorder=st.booleans(),
    line_indices=st.lists(st.integers(0, 15), min_size=1, max_size=6),
    seed=st.integers(0, 1000),
)
def test_gi_fill_matches_image_any_order(reorder, line_indices, seed):
    engine = GeneralInstrumentEngine(
        KEY24, region_size=256, authenticate=False, reorder=reorder,
    )
    port = make_port()
    image = DRBG(seed).random_bytes(512)
    engine.install_image(port.memory, 0, image)
    for idx in line_indices:
        addr = idx * 32
        line, _ = engine.fill_line(port, addr, 32)
        assert line == image[addr: addr + 32]


@settings(max_examples=15, deadline=None)
@given(
    versioned=st.booleans(),
    values=st.lists(st.integers(0, 255), min_size=1, max_size=5),
)
def test_integrity_repeated_rewrites_verify(versioned, values):
    engine = IntegrityShieldEngine(
        StreamCipherEngine(KEY, line_size=32), mac_key=MAC,
        tag_region_base=0x8000, versioned=versioned,
    )
    port = make_port()
    engine.install_image(port.memory, 0, bytes(256))
    for value in values:
        engine.write_line(port, 32, bytes([value] * 32))
        line, _ = engine.fill_line(port, 32, 32)
        assert line == bytes([value] * 32)
    assert engine.verdicts.tampers == 0


@settings(max_examples=25, deadline=None)
@given(
    records=st.lists(
        st.tuples(
            st.sampled_from(list(AccessKind)),
            st.integers(0, 0xFFFFFF),
            st.integers(1, 64),
        ),
        max_size=50,
    ),
)
def test_trace_io_roundtrip_property(records):
    trace = [Access(kind, addr, size) for kind, addr, size in records]
    buf = io.StringIO()
    save_trace(trace, buf)
    buf.seek(0)
    assert load_trace(buf) == trace
