"""repro.api: the typed experiment facade and its deprecation shims."""

import dataclasses
import json

import pytest

from repro.api import (
    CampaignResult,
    CampaignSpec,
    ExperimentResult,
    TraceSummary,
    attack_summary,
    engine_overhead,
    run_campaign,
    run_experiment,
    trace_experiment,
)
from repro.obs import RecordingSink
from repro.runner import ExperimentRunner


class TestRunExperiment:
    def test_returns_typed_result(self):
        result = run_experiment("e01", quick=True)
        assert isinstance(result, ExperimentResult)
        assert result.experiment == "e01"
        assert result.quick is True
        assert result.passed
        assert result.tasks
        obs = result.observability
        assert set(obs["tasks"]) == set(result.tasks)
        assert obs["total"]["totals"]["events"] > 0

    def test_result_is_frozen(self):
        result = run_experiment("e01", quick=True)
        with pytest.raises(dataclasses.FrozenInstanceError):
            result.experiment = "e02"

    def test_to_dict_is_json_serializable(self):
        doc = run_experiment("e01", quick=True).to_dict()
        assert json.loads(json.dumps(doc)) == doc
        assert set(doc) == {"title", "section", "checks", "tasks",
                            "observability"}

    def test_matches_the_runner_byte_for_byte(self, tmp_path):
        facade = run_experiment("e01", quick=True)
        runner_doc = ExperimentRunner(
            experiments=["e01"], quick=True, cache_dir=None,
        ).run().metrics["experiments"]["e01"]
        assert facade.tasks == runner_doc["tasks"]
        assert facade.checks == runner_doc["checks"]
        assert facade.observability == runner_doc["observability"]

    def test_trace_sink_sees_the_run(self):
        recording = RecordingSink(max_events=50)
        run_experiment("e01", quick=True, trace=recording)
        assert recording.events
        assert recording.get("protocol-msg") > 0

    def test_unknown_experiment_raises_key_error(self):
        with pytest.raises(KeyError):
            run_experiment("e99")


class TestTraceExperiment:
    def test_summary_shape(self):
        summary = trace_experiment("e01", max_events=10)
        assert isinstance(summary, TraceSummary)
        assert summary.experiment == "e01"
        assert len(summary.events) <= 10
        assert summary.total_events == len(summary.events) + summary.dropped
        assert summary.totals["events"] == summary.total_events
        assert summary.result.passed

    def test_counters_cover_recorded_kinds(self):
        summary = trace_experiment("e01")
        assert {e.kind for e in summary.events} <= set(summary.counters)

    def test_format_mentions_experiment_and_kinds(self):
        summary = trace_experiment("e01")
        text = summary.format()
        assert "e01 events" in text
        for kind in summary.counters:
            assert kind in text


class TestOneShotMeasurements:
    def test_engine_overhead(self):
        result = engine_overhead("stream", "sequential", accesses=400)
        assert result.engine_name
        assert result.baseline.cycles > 0
        assert result.secured.cycles >= result.baseline.cycles

    def test_attack_summary(self):
        summary = attack_summary(memory=256)
        assert summary["fully_recovered"]
        assert summary["bytes_recovered"] == 256


class TestRunCampaign:
    SPEC = CampaignSpec(engines=("stream",), workloads=("mixed",),
                        accesses=(256,), latencies=(20, 40))

    def test_returns_typed_result(self, tmp_path):
        result = run_campaign(self.SPEC, cache_dir=tmp_path / "cache")
        assert isinstance(result, CampaignResult)
        assert set(result.points) == {p.name for p in self.SPEC.points()}
        assert result.executed == 2
        assert result.summary["by_engine"]["stream"]["points"] == 2
        assert json.loads(result.metrics_json()) == result.metrics

    def test_resumes_from_cache(self, tmp_path):
        first = run_campaign(self.SPEC, cache_dir=tmp_path / "cache")
        again = run_campaign(self.SPEC, cache_dir=tmp_path / "cache")
        assert again.executed == 0
        assert again.cached == 2
        assert again.metrics_json() == first.metrics_json()


class TestFinalizedSurface:
    def test_deprecated_aliases_are_gone(self):
        import repro.api as api
        assert not hasattr(api, "run_overhead")
        assert not hasattr(api, "run_attack")

    def test_all_exports_resolve_and_cover_the_verbs(self):
        import repro.api as api
        for name in api.__all__:
            assert getattr(api, name) is not None, name
        assert {"run_experiment", "trace_experiment", "run_campaign",
                "engine_overhead", "attack_summary", "fault_campaign",
                "make_engine", "engine_names",
                "list_engines"} <= set(api.__all__)
