"""repro.api: the typed experiment facade and its deprecation shims."""

import dataclasses
import json

import pytest

from repro.api import (
    ExperimentResult,
    TraceSummary,
    attack_summary,
    engine_overhead,
    run_attack,
    run_experiment,
    run_overhead,
    trace_experiment,
)
from repro.obs import RecordingSink
from repro.runner import ExperimentRunner


class TestRunExperiment:
    def test_returns_typed_result(self):
        result = run_experiment("e01", quick=True)
        assert isinstance(result, ExperimentResult)
        assert result.experiment == "e01"
        assert result.quick is True
        assert result.passed
        assert result.tasks
        obs = result.observability
        assert set(obs["tasks"]) == set(result.tasks)
        assert obs["total"]["totals"]["events"] > 0

    def test_result_is_frozen(self):
        result = run_experiment("e01", quick=True)
        with pytest.raises(dataclasses.FrozenInstanceError):
            result.experiment = "e02"

    def test_to_dict_is_json_serializable(self):
        doc = run_experiment("e01", quick=True).to_dict()
        assert json.loads(json.dumps(doc)) == doc
        assert set(doc) == {"title", "section", "checks", "tasks",
                            "observability"}

    def test_matches_the_runner_byte_for_byte(self, tmp_path):
        facade = run_experiment("e01", quick=True)
        runner_doc = ExperimentRunner(
            experiments=["e01"], quick=True, cache_dir=None,
        ).run().metrics["experiments"]["e01"]
        assert facade.tasks == runner_doc["tasks"]
        assert facade.checks == runner_doc["checks"]
        assert facade.observability == runner_doc["observability"]

    def test_trace_sink_sees_the_run(self):
        recording = RecordingSink(max_events=50)
        run_experiment("e01", quick=True, trace=recording)
        assert recording.events
        assert recording.get("protocol-msg") > 0

    def test_unknown_experiment_raises_key_error(self):
        with pytest.raises(KeyError):
            run_experiment("e99")


class TestTraceExperiment:
    def test_summary_shape(self):
        summary = trace_experiment("e01", max_events=10)
        assert isinstance(summary, TraceSummary)
        assert summary.experiment == "e01"
        assert len(summary.events) <= 10
        assert summary.total_events == len(summary.events) + summary.dropped
        assert summary.totals["events"] == summary.total_events
        assert summary.result.passed

    def test_counters_cover_recorded_kinds(self):
        summary = trace_experiment("e01")
        assert {e.kind for e in summary.events} <= set(summary.counters)

    def test_format_mentions_experiment_and_kinds(self):
        summary = trace_experiment("e01")
        text = summary.format()
        assert "e01 events" in text
        for kind in summary.counters:
            assert kind in text


class TestOneShotMeasurements:
    def test_engine_overhead(self):
        result = engine_overhead("stream", "sequential", accesses=400)
        assert result.engine_name
        assert result.baseline.cycles > 0
        assert result.secured.cycles >= result.baseline.cycles

    def test_attack_summary(self):
        summary = attack_summary(memory=256)
        assert summary["fully_recovered"]
        assert summary["bytes_recovered"] == 256


class TestDeprecatedShims:
    def test_run_overhead_warns_and_delegates(self):
        with pytest.warns(DeprecationWarning, match="engine_overhead"):
            result = run_overhead("stream", "sequential", accesses=400)
        assert result.secured.cycles > 0

    def test_run_attack_warns_and_delegates(self):
        with pytest.warns(DeprecationWarning, match="attack_summary"):
            summary = run_attack(memory=256)
        assert summary["fully_recovered"]
