"""Equivalence layer for the cipher kernels (the tentpole's safety net).

The kernels in :mod:`repro.crypto.kernels` must be *bit-for-bit* equal to
the reference ciphers — the bench metrics are committed byte-identical and
every engine now routes through the fast path.  These tests pin that on
the published known answers (FIPS 197, SP 800-67) and on 1000 random
blocks per key size, and cover the registry/dispatch plumbing.
"""

import pytest

from repro.crypto import AES, DES, DRBG, TripleDES
from repro.crypto.kernels import (
    AESKernel,
    DESKernel,
    TripleDESKernel,
    aes_kernel,
    ctr_pad,
    decrypt_blocks,
    des_kernel,
    encrypt_blocks,
    kernel_for,
    tdes_kernel,
)

# -- known answers (same vectors as test_known_answer.py) -------------------

AES_VECTORS = [
    # FIPS 197 Appendix B (AES-128), C.1, C.2, C.3.
    ("2b7e151628aed2a6abf7158809cf4f3c",
     "3243f6a8885a308d313198a2e0370734",
     "3925841d02dc09fbdc118597196a0b32"),
    ("000102030405060708090a0b0c0d0e0f",
     "00112233445566778899aabbccddeeff",
     "69c4e0d86a7b0430d8cdb78070b4c55a"),
    ("000102030405060708090a0b0c0d0e0f1011121314151617",
     "00112233445566778899aabbccddeeff",
     "dda97ca4864cdfe06eaf70a0ec0d7191"),
    ("000102030405060708090a0b0c0d0e0f"
     "101112131415161718191a1b1c1d1e1f",
     "00112233445566778899aabbccddeeff",
     "8ea2b7ca516745bfeafc49904b496089"),
]

DES_VECTORS = [
    ("133457799bbcdff1", "0123456789abcdef", "85e813540f0ab405"),
    ("0123456789abcdef", "4e6f772069732074", "3fa40e8a984d4815"),
]


class TestKnownAnswers:
    @pytest.mark.parametrize("key,plaintext,ciphertext", AES_VECTORS)
    def test_aes_fips_197(self, key, plaintext, ciphertext):
        kernel = AESKernel(bytes.fromhex(key))
        assert kernel.encrypt_block(bytes.fromhex(plaintext)).hex() \
            == ciphertext
        assert kernel.decrypt_block(bytes.fromhex(ciphertext)).hex() \
            == plaintext

    @pytest.mark.parametrize("key,plaintext,ciphertext", DES_VECTORS)
    def test_des_nbs(self, key, plaintext, ciphertext):
        kernel = DESKernel(bytes.fromhex(key))
        assert kernel.encrypt_block(bytes.fromhex(plaintext)).hex() \
            == ciphertext
        assert kernel.decrypt_block(bytes.fromhex(ciphertext)).hex() \
            == plaintext

    def test_3des_three_key_known_answer(self):
        # Karn's classic EDE3 vector (SP 800-67 keying option 1).
        key = bytes.fromhex(
            "0123456789abcdef23456789abcdef01456789abcdef0123"
        )
        plaintext = b"The qufck brown fox jump"
        expected = "a826fd8ce53b855fcce21c8112256fe668d5c05dd9b6b900"
        kernel = TripleDESKernel(key)
        assert kernel.encrypt_blocks(plaintext).hex() == expected
        assert kernel.decrypt_blocks(bytes.fromhex(expected)) == plaintext

    def test_3des_single_key_degenerates_to_des(self):
        # SP 800-67 keying option 3: K1=K2=K3 collapses EDE to one DES.
        key = bytes.fromhex("0123456789abcdef")
        block = bytes.fromhex("4e6f772069732074")
        assert TripleDESKernel(key).encrypt_block(block) \
            == DESKernel(key).encrypt_block(block)


# -- random-block equivalence vs the reference implementations --------------

RANDOM_BLOCKS = 1000

EQUIVALENCE_CASES = [
    ("aes-128", 16, AES, AESKernel),
    ("aes-192", 24, AES, AESKernel),
    ("aes-256", 32, AES, AESKernel),
    ("des-8", 8, DES, DESKernel),
    ("3des-8", 8, TripleDES, TripleDESKernel),
    ("3des-16", 16, TripleDES, TripleDESKernel),
    ("3des-24", 24, TripleDES, TripleDESKernel),
]


class TestRandomEquivalence:
    @pytest.mark.parametrize(
        "name,key_len,ref_cls,kernel_cls", EQUIVALENCE_CASES,
        ids=[case[0] for case in EQUIVALENCE_CASES],
    )
    def test_matches_reference(self, name, key_len, ref_cls, kernel_cls):
        rng = DRBG(f"kernels-{name}".encode())
        key = rng.random_bytes(key_len)
        ref = ref_cls(key)
        kernel = kernel_cls(key)
        size = ref.block_size
        data = rng.random_bytes(size * RANDOM_BLOCKS)
        expected = b"".join(
            ref.encrypt_block(data[i: i + size])
            for i in range(0, len(data), size)
        )
        assert kernel.encrypt_blocks(data) == expected
        assert kernel.decrypt_blocks(expected) == data

    def test_batch_equals_per_block(self):
        rng = DRBG(b"kernels-batch")
        kernel = AESKernel(rng.random_bytes(16))
        data = rng.random_bytes(16 * 32)
        assert kernel.encrypt_blocks(data) == b"".join(
            kernel.encrypt_block(data[i: i + 16])
            for i in range(0, len(data), 16)
        )

    def test_from_cipher_matches_fresh_kernel(self):
        rng = DRBG(b"kernels-from-cipher")
        for ref_cls, kernel_cls, key_len in (
            (AES, AESKernel, 16), (DES, DESKernel, 8),
            (TripleDES, TripleDESKernel, 24),
        ):
            key = rng.random_bytes(key_len)
            ref = ref_cls(key)
            block = rng.random_bytes(ref.block_size)
            assert kernel_cls.from_cipher(ref).encrypt_block(block) \
                == kernel_cls(key).encrypt_block(block)

    def test_rejects_ragged_lengths(self):
        kernel = AESKernel(bytes(16))
        with pytest.raises(ValueError):
            kernel.encrypt_blocks(b"\x00" * 17)
        with pytest.raises(ValueError):
            kernel.encrypt_block(b"\x00" * 8)
        with pytest.raises(ValueError):
            DESKernel(bytes(8)).encrypt_blocks(b"\x00" * 12)
        with pytest.raises(ValueError):
            TripleDESKernel(bytes(7))


# -- registry / dispatch ----------------------------------------------------

class TestRegistryAndDispatch:
    def test_registry_memoizes_by_key(self):
        key = bytes(range(16))
        assert aes_kernel(key) is aes_kernel(bytes(key))
        assert des_kernel(bytes(8)) is des_kernel(bytes(8))
        assert tdes_kernel(bytes(24)) is tdes_kernel(bytes(24))
        assert aes_kernel(key) is not aes_kernel(bytes(range(1, 17)))

    def test_kernel_for_reference_ciphers(self):
        import repro.backend as repro_backend
        if repro_backend.ACTIVE == "python":
            # The python rung's contract is the opposite: reference
            # ciphers are never promoted to table kernels.
            assert kernel_for(AES(bytes(16))) is None
            return
        rng = DRBG(b"kernels-dispatch")
        aes = AES(rng.random_bytes(16))
        kernel = kernel_for(aes)
        assert isinstance(kernel, AESKernel)
        # Memoized on the instance: same object on the second lookup.
        assert kernel_for(aes) is kernel
        # TripleDES must not dispatch to the single-DES kernel.
        assert isinstance(kernel_for(TripleDES(bytes(24))), TripleDESKernel)
        assert isinstance(kernel_for(DES(bytes(8))), DESKernel)

    def test_kernel_for_passthrough_and_unknown(self):
        kernel = aes_kernel(bytes(16))
        assert kernel_for(kernel) is kernel
        assert kernel_for(object()) is None

    def test_dispatch_falls_back_for_exotic_ciphers(self):
        class XorCipher:
            block_size = 4

            def encrypt_block(self, block):
                return bytes(b ^ 0x42 for b in block)

            def decrypt_block(self, block):
                return bytes(b ^ 0x42 for b in block)

        cipher = XorCipher()
        data = bytes(range(12))
        assert encrypt_blocks(cipher, data) \
            == bytes(b ^ 0x42 for b in data)
        assert decrypt_blocks(cipher, encrypt_blocks(cipher, data)) == data
        with pytest.raises(ValueError):
            encrypt_blocks(cipher, bytes(6))

    def test_ctr_pad_matches_per_block_construction(self):
        rng = DRBG(b"kernels-ctr-pad")
        kernel = aes_kernel(rng.random_bytes(16))

        def counter_block(block_addr):
            return b"tst!" + (block_addr // 16).to_bytes(12, "big")

        # Unaligned start and length: the pad must slice correctly.
        addr, nbytes = 40, 100
        start = addr - addr % 16
        end = -(-(addr + nbytes) // 16) * 16
        expected = b"".join(
            kernel.encrypt_block(counter_block(a))
            for a in range(start, end, 16)
        )[addr - start: addr - start + nbytes]
        assert ctr_pad(kernel, addr, nbytes, counter_block) == expected
        assert len(ctr_pad(kernel, 0, 1, counter_block)) == 1
        assert ctr_pad(kernel, 0, 0, counter_block) == b""


# -- backend ladder: graceful degradation -----------------------------------

import warnings as _warnings

import repro.backend as repro_backend
from repro.crypto import kernels as kernels_mod


class TestBackendFallback:
    """A failing numpy probe demotes to the kernel rung — never a crash."""

    def _metrics(self):
        from repro.api import run_stream
        return run_stream(engine="xom", workload="dma-burst",
                          accesses=4000, chunk_size=512, functional=True)

    def test_failed_probe_demotes_with_identical_metrics(self):
        if repro_backend.ACTIVE != "numpy":
            pytest.skip("numpy rung inactive; degradation already happened")
        before = self._metrics()
        saved = (repro_backend.ACTIVE, repro_backend.NUMPY,
                 kernels_mod.NUMPY_BACKED, kernels_mod._np)
        try:
            with pytest.warns(RuntimeWarning, match="numpy backend disabled"):
                kernels_mod._init_numpy_backend(probe=lambda: False)
            assert repro_backend.ACTIVE == "kernel"
            assert repro_backend.NUMPY is None
            assert kernels_mod.NUMPY_BACKED is False
            after = self._metrics()
        finally:
            (repro_backend.ACTIVE, repro_backend.NUMPY,
             kernels_mod.NUMPY_BACKED, kernels_mod._np) = saved
        assert after == before

    def test_probe_exception_is_contained(self):
        if repro_backend.ACTIVE != "numpy":
            pytest.skip("numpy rung inactive")
        saved = (repro_backend.ACTIVE, repro_backend.NUMPY,
                 kernels_mod.NUMPY_BACKED, kernels_mod._np)

        def exploding_probe():
            raise RuntimeError("synthetic probe failure")

        try:
            with pytest.warns(RuntimeWarning):
                ok = kernels_mod._init_numpy_backend(probe=exploding_probe)
            assert ok is False
            assert repro_backend.ACTIVE == "kernel"
        finally:
            (repro_backend.ACTIVE, repro_backend.NUMPY,
             kernels_mod.NUMPY_BACKED, kernels_mod._np) = saved

    def test_reinit_restores_numpy_rung(self):
        if repro_backend.ACTIVE != "numpy":
            pytest.skip("numpy rung inactive")
        assert kernels_mod._init_numpy_backend() is True
        assert kernels_mod.NUMPY_BACKED is True
