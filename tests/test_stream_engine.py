"""Stream/pad-ahead engine: versioning, pad cache, and the two-time-pad
design-mistake demonstration."""

import pytest

from repro.analysis import pad_reuse_leak
from repro.core import StreamCipherEngine
from repro.core.engine import MemoryPort
from repro.sim import Bus, MainMemory, MemoryConfig

KEY = b"0123456789abcdef"


def make_port(size=1 << 16):
    return MemoryPort(MainMemory(MemoryConfig(size=size)), Bus())


class TestVersioning:
    def test_rewrite_changes_ciphertext(self):
        """Fresh version per write: same plaintext, new ciphertext — the
        leak AEGIS's IVs also close."""
        engine = StreamCipherEngine(KEY, line_size=32)
        line = b"\x42" * 32
        first = engine.encrypt_line(0, line)
        second = engine.encrypt_line(0, line)
        assert first != second

    def test_decrypt_tracks_latest_version(self):
        engine = StreamCipherEngine(KEY, line_size=32)
        line = bytes(range(32))
        engine.encrypt_line(0, b"old " * 8)
        ct = engine.encrypt_line(0, line)
        assert engine.decrypt_line(0, ct) == line

    def test_version_bump_invalidates_pad_cache(self):
        engine = StreamCipherEngine(KEY, line_size=32, pad_ahead_depth=1)
        port = make_port()
        engine.install_image(port.memory, 0, bytes(64))
        engine.fill_line(port, 0, 32)            # pad-ahead caches line 32
        assert 32 in engine._pad_cache
        engine.write_line(port, 32, bytes(32))   # version bump
        assert 32 not in engine._pad_cache


class TestPadCache:
    def test_pad_ahead_populates(self):
        engine = StreamCipherEngine(KEY, line_size=32, pad_ahead_depth=3)
        port = make_port()
        engine.install_image(port.memory, 0, bytes(256))
        engine.fill_line(port, 0, 32)
        assert {32, 64, 96} <= set(engine._pad_cache)

    def test_cache_capacity_bounded(self):
        engine = StreamCipherEngine(KEY, line_size=32, pad_cache_lines=4,
                                    pad_ahead_depth=4)
        port = make_port()
        engine.install_image(port.memory, 0, bytes(4096))
        for addr in range(0, 2048, 32):
            engine.fill_line(port, addr, 32)
        assert len(engine._pad_cache) <= 4

    def test_hit_vs_miss_stats(self):
        engine = StreamCipherEngine(KEY, line_size=32, pad_ahead_depth=1)
        port = make_port()
        engine.install_image(port.memory, 0, bytes(128))
        engine.fill_line(port, 0, 32)    # miss
        engine.fill_line(port, 32, 32)   # pad-ahead hit
        assert engine.stats.pad_misses == 1
        assert engine.stats.pad_hits == 1

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            StreamCipherEngine(KEY, pad_cache_lines=0)


class TestPartialWrites:
    def test_secure_partial_write_rmws_whole_line(self):
        engine = StreamCipherEngine(KEY, line_size=32)
        port = make_port()
        engine.install_image(port.memory, 0, bytes(range(32)) * 2)
        engine.write_partial(port, 4, b"\xAB\xCD", 32)
        assert engine.stats.rmw_operations == 1
        plain = engine.decrypt_line(0, port.memory.dump(0, 32))
        assert plain[4:6] == b"\xAB\xCD"
        assert plain[:4] == bytes(range(4))       # untouched bytes survive

    def test_insecure_shortcut_skips_rmw(self):
        engine = StreamCipherEngine(KEY, line_size=32,
                                    reuse_pad_on_partial_write=True)
        port = make_port()
        engine.install_image(port.memory, 0, bytes(64))
        engine.write_partial(port, 4, b"\xAB\xCD", 32)
        assert engine.stats.rmw_operations == 0

    def test_two_time_pad_leak_of_insecure_shortcut(self):
        """The measurable mistake: rewriting bytes under the same pad leaks
        their XOR to a bus observer."""
        engine = StreamCipherEngine(KEY, line_size=32,
                                    reuse_pad_on_partial_write=True)
        port = make_port()
        engine.install_image(port.memory, 0, bytes(64))
        secret_a = b"\x11\x22\x33\x44"
        secret_b = b"\x55\x66\x77\x88"
        engine.write_partial(port, 0, secret_a, 32)
        ct_a = port.memory.dump(0, 4)
        engine.write_partial(port, 0, secret_b, 32)
        ct_b = port.memory.dump(0, 4)
        # Attacker with one known plaintext recovers the other exactly.
        recovered = pad_reuse_leak(ct_a, ct_b, known_plaintext_a=secret_a)
        assert recovered == secret_b

    def test_secure_mode_closes_the_leak(self):
        engine = StreamCipherEngine(KEY, line_size=32)
        port = make_port()
        engine.install_image(port.memory, 0, bytes(64))
        secret_a = b"\x11\x22\x33\x44"
        secret_b = b"\x55\x66\x77\x88"
        engine.write_partial(port, 0, secret_a, 32)
        ct_a = port.memory.dump(0, 4)
        engine.write_partial(port, 0, secret_b, 32)
        ct_b = port.memory.dump(0, 4)
        recovered = pad_reuse_leak(ct_a, ct_b, known_plaintext_a=secret_a)
        assert recovered != secret_b


class TestUnalignedPads:
    def test_pad_slice_consistency(self):
        """The pad for a sub-range equals the slice of the line pad."""
        engine = StreamCipherEngine(KEY, line_size=32)
        whole = engine._pad(0, 32)
        assert engine._pad(5, 10) == whole[5:15]
