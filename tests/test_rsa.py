"""RSA: primality, key generation, encryption roundtrips, padding, and the
modular-multiplication cost counter E01 relies on."""

import pytest

from repro.crypto import DRBG, generate_keypair
from repro.crypto.rsa import is_probable_prime


@pytest.fixture(scope="module")
def keypair():
    return generate_keypair(512, DRBG(42))


class TestMillerRabin:
    def test_small_primes(self):
        rng = DRBG(1)
        for p in (2, 3, 5, 7, 11, 101, 997, 7919):
            assert is_probable_prime(p, rng)

    def test_small_composites(self):
        rng = DRBG(1)
        for c in (0, 1, 4, 9, 100, 561, 1001, 7917):
            assert not is_probable_prime(c, rng)

    def test_carmichael_numbers(self):
        """Fermat liars that Miller-Rabin must still reject."""
        rng = DRBG(1)
        for c in (561, 1105, 1729, 2465, 2821, 6601):
            assert not is_probable_prime(c, rng)

    def test_large_known_prime(self):
        rng = DRBG(1)
        assert is_probable_prime(2 ** 127 - 1, rng)  # Mersenne prime

    def test_large_known_composite(self):
        rng = DRBG(1)
        assert not is_probable_prime(2 ** 128 - 1, rng)


class TestKeyGeneration:
    def test_modulus_size(self, keypair):
        assert 500 <= keypair.public.n.bit_length() <= 512

    def test_keypair_consistency(self, keypair):
        """d inverts e modulo phi: raw encrypt/decrypt roundtrips."""
        m = 0x1234567890ABCDEF
        c = keypair.public.encrypt_int(m)
        assert keypair.private.decrypt_int(c) == m

    def test_p_q_are_prime_factors(self, keypair):
        priv = keypair.private
        assert priv.p * priv.q == priv.n

    def test_deterministic_from_seed(self):
        a = generate_keypair(256, DRBG(7))
        b = generate_keypair(256, DRBG(7))
        assert a.public.n == b.public.n

    def test_too_small_modulus_rejected(self):
        with pytest.raises(ValueError):
            generate_keypair(64, DRBG(1))


class TestEncryption:
    def test_roundtrip(self, keypair):
        rng = DRBG(99)
        message = b"session key K!"
        ct = keypair.public.encrypt(message, rng)
        assert keypair.private.decrypt(ct) == message

    def test_ciphertext_is_modulus_sized(self, keypair):
        """§2.2: 'ciphered text is longer than the original clear text'."""
        rng = DRBG(99)
        ct = keypair.public.encrypt(b"K", rng)
        assert len(ct) == keypair.public.modulus_bytes
        assert len(ct) > 1

    def test_randomized_padding(self, keypair):
        """Equal messages produce different ciphertexts."""
        rng = DRBG(99)
        a = keypair.public.encrypt(b"same", rng)
        b = keypair.public.encrypt(b"same", rng)
        assert a != b
        assert keypair.private.decrypt(a) == keypair.private.decrypt(b)

    def test_message_too_long_rejected(self, keypair):
        rng = DRBG(99)
        too_long = bytes(keypair.public.modulus_bytes - 10)
        with pytest.raises(ValueError):
            keypair.public.encrypt(too_long, rng)

    def test_wrong_ciphertext_length_rejected(self, keypair):
        with pytest.raises(ValueError):
            keypair.private.decrypt(b"short")

    def test_corrupted_ciphertext_detected(self, keypair):
        rng = DRBG(99)
        ct = bytearray(keypair.public.encrypt(b"msg", rng))
        ct[0] ^= 0xFF
        with pytest.raises(ValueError):
            keypair.private.decrypt(bytes(ct))


class TestCostModel:
    def test_modmul_counter_advances(self, keypair):
        before = keypair.public.modmul_count
        keypair.public.encrypt_int(12345)
        assert keypair.public.modmul_count > before

    def test_private_exponent_costs_more_than_public(self, keypair):
        """The asymmetry behind §2.2's 'more processing power' claim:
        d is ~modulus-sized, e is 17 bits."""
        pub_before = keypair.public.modmul_count
        keypair.public.encrypt_int(7)
        pub_cost = keypair.public.modmul_count - pub_before

        priv_before = keypair.private.modmul_count
        keypair.private.decrypt_int(7)
        priv_cost = keypair.private.modmul_count - priv_before
        assert priv_cost > 10 * pub_cost
