"""Modes of operation: roundtrips, the survey's security/accessibility
properties (ECB determinism, CBC chaining, CTR seekability), errors."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import AES, CBC, CFB, CTR, DES, ECB, OFB, xor_bytes

KEY16 = b"0123456789abcdef"
IV16 = bytes(range(16))


def aes():
    return AES(KEY16)


class ReferenceOnly:
    """Cipher wrapper invisible to kernel dispatch.

    ``repro.crypto.kernels.kernel_for`` does not recognize it, so every
    mode falls back to the per-block reference path — which lets tests
    pin the kernel-accelerated path against the reference path.
    """

    def __init__(self, cipher):
        self.block_size = cipher.block_size
        self.encrypt_block = cipher.encrypt_block
        self.decrypt_block = cipher.decrypt_block


class TestXorBytes:
    def test_basic(self):
        assert xor_bytes(b"\x0f\xf0", b"\xff\xff") == b"\xf0\x0f"

    def test_self_inverse(self):
        a, b = b"hello world!", b"secret pad!!"
        assert xor_bytes(xor_bytes(a, b), b) == a

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            xor_bytes(b"ab", b"abc")


class TestECB:
    def test_roundtrip(self):
        mode = ECB(aes())
        data = bytes(range(64))
        assert mode.decrypt(mode.encrypt(data)) == data

    def test_identical_blocks_leak(self):
        """§2.2: 'a same data will be ciphered to the same value'."""
        mode = ECB(aes())
        ct = mode.encrypt(b"A" * 16 + b"A" * 16)
        assert ct[:16] == ct[16:]

    def test_non_multiple_length_rejected(self):
        with pytest.raises(ValueError):
            ECB(aes()).encrypt(b"short")

    def test_works_with_des(self):
        mode = ECB(DES(b"8bytekey"))
        data = b"A" * 32
        assert mode.decrypt(mode.encrypt(data)) == data


class TestCBC:
    def test_roundtrip(self):
        data = bytes(range(96))
        ct = CBC(aes(), IV16).encrypt(data)
        assert CBC(aes(), IV16).decrypt(ct) == data

    def test_identical_blocks_hidden(self):
        """CBC breaks the ECB determinism leak."""
        ct = CBC(aes(), IV16).encrypt(b"A" * 32)
        assert ct[:16] != ct[16:]

    def test_iv_changes_ciphertext(self):
        data = b"B" * 32
        ct1 = CBC(aes(), IV16).encrypt(data)
        ct2 = CBC(aes(), bytes(16)).encrypt(data)
        assert ct1 != ct2

    def test_chaining_propagates_forward(self):
        """Changing plaintext block i changes all ciphertext blocks >= i."""
        base = bytearray(b"C" * 64)
        modified = bytearray(base)
        modified[16] ^= 1
        ct_base = CBC(aes(), IV16).encrypt(bytes(base))
        ct_mod = CBC(aes(), IV16).encrypt(bytes(modified))
        assert ct_base[:16] == ct_mod[:16]          # block 0 untouched
        assert ct_base[16:32] != ct_mod[16:32]      # block 1 changed
        assert ct_base[32:48] != ct_mod[32:48]      # block 2 changed too

    def test_decryption_is_random_access(self):
        """CBC *decryption* of block i needs only C_{i-1}, C_i."""
        data = bytes(range(80))
        ct = CBC(aes(), IV16).encrypt(data)
        # Decrypt only block 2 by hand using C_1 as the chain value.
        block2 = xor_bytes(aes().decrypt_block(ct[32:48]), ct[16:32])
        assert block2 == data[32:48]

    def test_bad_iv_length(self):
        with pytest.raises(ValueError):
            CBC(aes(), bytes(8))


class TestCTR:
    def test_roundtrip(self):
        ctr = CTR(aes(), nonce=bytes(12))
        data = b"stream cipher payload of odd length..."
        assert CTR(aes(), nonce=bytes(12)).decrypt(ctr.encrypt(data)) == data

    def test_seekable_keystream(self):
        """The property the pad-ahead bus engine needs: block i is
        computable without blocks 0..i-1."""
        ctr = CTR(aes(), nonce=bytes(12))
        ks = ctr.keystream(16 * 10)
        assert ctr.keystream_block(7) == ks[7 * 16: 8 * 16]

    def test_encrypt_from_offset(self):
        ctr = CTR(aes(), nonce=bytes(12))
        data = bytes(range(64))
        whole = ctr.encrypt(data)
        tail = ctr.encrypt(data[32:], start_block=2)
        assert tail == whole[32:]

    def test_different_nonce_different_stream(self):
        a = CTR(aes(), nonce=bytes(12)).keystream(32)
        b = CTR(aes(), nonce=b"x" * 12).keystream(32)
        assert a != b

    def test_bad_nonce_length(self):
        with pytest.raises(ValueError):
            CTR(aes(), nonce=bytes(5))

    def test_counter_width_validation(self):
        with pytest.raises(ValueError):
            CTR(aes(), nonce=bytes(16), counter_bytes=16)


class TestCTRWrap:
    """The counter must never wrap into the nonce (keystream reuse)."""

    def test_last_index_before_wrap_is_usable(self):
        ctr = CTR(aes(), nonce=bytes(15), counter_bytes=1)
        limit = 256  # 256 ** counter_bytes
        block = ctr.keystream_block(limit - 1)
        assert block == aes().encrypt_block(bytes(15) + b"\xff")

    def test_wrap_index_raises(self):
        ctr = CTR(aes(), nonce=bytes(15), counter_bytes=1)
        with pytest.raises(ValueError):
            ctr.keystream_block(256)  # 256 ** counter_bytes
        with pytest.raises(ValueError):
            ctr.keystream_block(-1)

    def test_default_width_boundary(self):
        ctr = CTR(aes(), nonce=bytes(12))  # counter_bytes=4
        assert len(ctr.keystream_block(256 ** 4 - 1)) == 16
        with pytest.raises(ValueError):
            ctr.keystream_block(256 ** 4)

    def test_keystream_crossing_the_limit_raises(self):
        ctr = CTR(aes(), nonce=bytes(15), counter_bytes=1)
        # 255 is fine, but a two-block read starting there would wrap.
        assert len(ctr.keystream(16, start_block=255)) == 16
        with pytest.raises(ValueError):
            ctr.keystream(17, start_block=255)
        with pytest.raises(ValueError):
            ctr.encrypt(bytes(32), start_block=255)


class TestOFBCFB:
    def test_ofb_roundtrip(self):
        data = b"output feedback mode stream bytes"
        ct = OFB(aes(), IV16).encrypt(data)
        assert OFB(aes(), IV16).decrypt(ct) == data

    def test_cfb_roundtrip(self):
        data = bytes(range(48))
        ct = CFB(aes(), IV16).encrypt(data)
        assert CFB(aes(), IV16).decrypt(ct) == data

    def test_cfb_first_block_matches_ofb(self):
        """Both start from E(IV), so block 0 ciphertexts coincide."""
        data = bytes(32)
        assert OFB(aes(), IV16).encrypt(data)[:16] == \
            CFB(aes(), IV16).encrypt(data)[:16]

    def test_ofb_bad_iv(self):
        with pytest.raises(ValueError):
            OFB(aes(), bytes(1))

    def test_cfb_bad_iv(self):
        with pytest.raises(ValueError):
            CFB(aes(), bytes(1))


class TestModeEquivalences:
    def test_all_modes_agree_on_single_block_with_zero_history(self):
        """ECB and CBC-with-zero-IV coincide on one block."""
        block = b"D" * 16
        assert ECB(aes()).encrypt(block) == \
            CBC(aes(), bytes(16)).encrypt(block)


@settings(max_examples=25, deadline=None)
@given(data=st.binary(min_size=0, max_size=128))
def test_ctr_roundtrip_property(data):
    ctr_enc = CTR(aes(), nonce=bytes(12))
    ctr_dec = CTR(aes(), nonce=bytes(12))
    assert ctr_dec.decrypt(ctr_enc.encrypt(data)) == data


@settings(max_examples=25, deadline=None)
@given(blocks=st.integers(min_value=1, max_value=6), seed=st.integers(0, 255))
def test_cbc_roundtrip_property(blocks, seed):
    data = bytes((seed + i) & 0xFF for i in range(16 * blocks))
    ct = CBC(aes(), IV16).encrypt(data)
    assert CBC(aes(), IV16).decrypt(ct) == data


# -- kernel path vs reference path at awkward lengths ------------------------
#
# The modes route AES/DES/3DES through repro.crypto.kernels; wrapping the
# cipher in ReferenceOnly forces the original per-block path.  Both paths
# must agree bit-for-bit, including at zero length, a single byte, and
# lengths that are not block multiples.

ODD_LENGTH_DATA = st.binary(min_size=0, max_size=100)


@settings(max_examples=30, deadline=None)
@given(data=ODD_LENGTH_DATA)
def test_ctr_kernel_path_matches_reference(data):
    ct = CTR(aes(), nonce=bytes(12)).encrypt(data)
    assert CTR(ReferenceOnly(aes()), nonce=bytes(12)).encrypt(data) == ct
    assert CTR(aes(), nonce=bytes(12)).decrypt(ct) == data
    assert CTR(ReferenceOnly(aes()), nonce=bytes(12)).decrypt(ct) == data


@settings(max_examples=30, deadline=None)
@given(data=ODD_LENGTH_DATA)
def test_ofb_kernel_path_matches_reference(data):
    ct = OFB(aes(), IV16).encrypt(data)
    assert OFB(ReferenceOnly(aes()), IV16).encrypt(data) == ct
    assert OFB(aes(), IV16).decrypt(ct) == data
    assert OFB(ReferenceOnly(aes()), IV16).decrypt(ct) == data


@settings(max_examples=25, deadline=None)
@given(blocks=st.integers(min_value=0, max_value=6), seed=st.integers(0, 255))
def test_cbc_kernel_path_matches_reference(blocks, seed):
    data = bytes((seed + i) & 0xFF for i in range(16 * blocks))
    ct = CBC(aes(), IV16).encrypt(data)
    assert CBC(ReferenceOnly(aes()), IV16).encrypt(data) == ct
    assert CBC(aes(), IV16).decrypt(ct) == data
    assert CBC(ReferenceOnly(aes()), IV16).decrypt(ct) == data


@settings(max_examples=25, deadline=None)
@given(blocks=st.integers(min_value=0, max_value=6), seed=st.integers(0, 255))
def test_cfb_kernel_path_matches_reference(blocks, seed):
    data = bytes((seed ^ i) & 0xFF for i in range(16 * blocks))
    ct = CFB(aes(), IV16).encrypt(data)
    assert CFB(ReferenceOnly(aes()), IV16).encrypt(data) == ct
    assert CFB(aes(), IV16).decrypt(ct) == data
    assert CFB(ReferenceOnly(aes()), IV16).decrypt(ct) == data


def test_stream_modes_handle_zero_and_single_byte():
    for data in (b"", b"x"):
        assert CTR(aes(), nonce=bytes(12)).decrypt(
            CTR(aes(), nonce=bytes(12)).encrypt(data)
        ) == data
        assert OFB(aes(), IV16).decrypt(OFB(aes(), IV16).encrypt(data)) == data
    # Block modes stay strict about ragged lengths on both paths.
    for cipher in (aes(), ReferenceOnly(aes())):
        with pytest.raises(ValueError):
            CBC(cipher, IV16).encrypt(b"x")
        with pytest.raises(ValueError):
            CBC(cipher, IV16).decrypt(b"x" * 17)
