"""Access-pattern side channel: the leak encryption does not close."""

import pytest

from repro.attacks import (
    BusProbe,
    classify_pattern,
    page_sequence,
    profile_probe,
)
from repro.core import AegisEngine, VlsiDmaEngine
from repro.sim import CacheConfig, MemoryConfig, SecureSystem
from repro.traces import make_workload, random_data, sequential_code
from repro.crypto import DRBG

KEY = b"0123456789abcdef"
KEY24 = b"0123456789abcdef01234567"


def run_with_probe(trace, engine=None):
    system = SecureSystem(
        engine=engine,
        cache_config=CacheConfig(size=1024, line_size=32, associativity=2),
        mem_config=MemoryConfig(size=1 << 21),
    )
    probe = BusProbe()
    system.bus.attach_probe(probe)
    system.install_image(0, bytes(32 * 1024))
    for access in trace:
        system.step(access)
    return probe


class TestProfile:
    def test_empty_probe(self):
        prof = profile_probe(BusProbe())
        assert prof.transactions == 0
        assert prof.working_set_bytes == 0

    def test_sequential_profile(self):
        probe = run_with_probe(sequential_code(2000, code_size=32 * 1024))
        prof = profile_probe(probe)
        assert prof.sequential_fraction > 0.9
        assert prof.looks_sequential

    def test_random_profile(self):
        trace = random_data(1500, DRBG(3), base=0, working_set=32 * 1024)
        probe = run_with_probe(trace)
        prof = profile_probe(probe)
        assert prof.sequential_fraction < 0.2
        assert prof.looks_random


class TestLeakSurvivesEncryption:
    """The same classification works with the strongest engine installed."""

    def test_sequential_recognized_through_aegis(self):
        probe = run_with_probe(
            sequential_code(2000, code_size=32 * 1024),
            engine=AegisEngine(KEY),
        )
        assert classify_pattern(probe) == "sequential"

    def test_random_recognized_through_aegis(self):
        trace = random_data(1500, DRBG(4), base=0, working_set=32 * 1024)
        probe = run_with_probe(trace, engine=AegisEngine(KEY))
        assert classify_pattern(probe) == "random"

    def test_working_set_estimate_through_encryption(self):
        trace = sequential_code(4000, code_size=8192)
        probe = run_with_probe(trace, engine=AegisEngine(KEY))
        prof = profile_probe(probe)
        # 8 KiB of code = 256 distinct lines, every one observed.
        assert prof.distinct_addresses == 256

    def test_write_mix_visible(self):
        trace = make_workload("write-heavy", n=1500)
        probe = run_with_probe(trace, engine=AegisEngine(KEY))
        prof = profile_probe(probe)
        assert prof.write_fraction > 0.1


class TestPageSequenceLeak:
    def test_vlsi_page_order_recovered(self):
        """The page-DMA engine broadcasts the victim's page access order
        as plaintext-visible burst addresses."""
        engine = VlsiDmaEngine(KEY24, page_size=1024, buffer_pages=2)
        system = SecureSystem(
            engine=engine,
            cache_config=CacheConfig(size=512, line_size=32, associativity=2),
            mem_config=MemoryConfig(size=1 << 21),
        )
        probe = BusProbe()
        system.bus.attach_probe(probe)
        system.install_image(0, bytes(8192))
        # Touch pages 0, 2, 5 in order (one access each page).
        from repro.traces import Access, AccessKind
        for page in (0, 2, 5):
            system.step(Access(AccessKind.LOAD, page * 1024))
        assert page_sequence(probe, page_size=1024) == [0, 2, 5]

    def test_non_paged_engine_shows_no_bursts(self):
        probe = run_with_probe(
            sequential_code(500, code_size=4096), engine=AegisEngine(KEY)
        )
        assert page_sequence(probe, page_size=1024) == []
