"""Correlation attack on the Geffe generator: the 'sufficiently random'
requirement of §4, enforced experimentally."""

import pytest

from repro.attacks import (
    correlate,
    geffe_correlation_attack,
    recover_register,
)
from repro.crypto.lfsr import LFSR, GeffeGenerator

# Small maximal-length registers keep the search test-sized.
TAPS_A = (9, 5)
TAPS_B = (10, 7)
TAPS_C = (11, 9)
SEEDS = (0x1AB, 0x2CD, 0x3EF)


def keystream(n=300, seeds=SEEDS):
    gen = GeffeGenerator(*seeds, taps_a=TAPS_A, taps_b=TAPS_B, taps_c=TAPS_C)
    return [gen.step() for _ in range(n)]


class TestCorrelate:
    def test_identical(self):
        assert correlate([1, 0, 1], [1, 0, 1]) == 1.0

    def test_opposite(self):
        assert correlate([1, 0], [0, 1]) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            correlate([1], [1, 0])
        with pytest.raises(ValueError):
            correlate([], [])


class TestRecoverRegister:
    def test_finds_correct_seed(self):
        ks = keystream()
        assert recover_register(ks, TAPS_B) == SEEDS[1]

    def test_wrong_taps_find_nothing(self):
        ks = keystream()
        assert recover_register(ks, (8, 6, 5, 4), threshold=0.72) is None

    def test_correlation_level_is_three_quarters(self):
        """The structural 75% bias that makes the attack work."""
        ks = keystream(n=2000)
        bits_b = LFSR(TAPS_B, SEEDS[1]).bits(2000)
        assert 0.70 < correlate(bits_b, ks) < 0.80


class TestFullAttack:
    def test_recovers_all_seeds(self):
        result = geffe_correlation_attack(keystream(), TAPS_A, TAPS_B, TAPS_C)
        assert result.succeeded
        assert (result.seed_a, result.seed_b, result.seed_c) == SEEDS

    def test_recovered_seeds_regenerate_keystream(self):
        ks = keystream()
        result = geffe_correlation_attack(ks, TAPS_A, TAPS_B, TAPS_C)
        clone = GeffeGenerator(result.seed_a, result.seed_b, result.seed_c,
                               taps_a=TAPS_A, taps_b=TAPS_B, taps_c=TAPS_C)
        assert [clone.step() for _ in range(len(ks))] == ks

    def test_divide_and_conquer_speedup(self):
        """2^|b| + 2^|c| + 2^|a| instead of 2^(|a|+|b|+|c|)."""
        result = geffe_correlation_attack(keystream(), TAPS_A, TAPS_B, TAPS_C)
        assert result.naive_keyspace == 1 << 30
        assert result.candidates_tested < 1 << 13
        assert result.speedup > 100_000

    def test_different_seeds_also_fall(self):
        ks = keystream(seeds=(0x17, 0x89, 0x41))
        result = geffe_correlation_attack(ks, TAPS_A, TAPS_B, TAPS_C)
        assert result.succeeded
        assert (result.seed_a, result.seed_b, result.seed_c) == \
            (0x17, 0x89, 0x41)
