"""Two-pass assembler: encodings, labels, directives, errors."""

import pytest

from repro.isa import AssemblerError, Op, assemble


class TestEncodings:
    def test_mov_a_imm(self):
        assert assemble("MOV A, #0x42") == bytes([Op.MOV_A_IMM, 0x42])

    def test_mov_a_dir(self):
        assert assemble("MOV A, 0x1234") == bytes([Op.MOV_A_DIR, 0x34, 0x12])

    def test_mov_dir_a(self):
        assert assemble("MOV 0x80, A") == bytes([Op.MOV_DIR_A, 0x80, 0x00])

    def test_mov_register_forms(self):
        assert assemble("MOV R3, #9") == bytes([Op.MOV_R_IMM, 3, 9])
        assert assemble("MOV A, R5") == bytes([Op.MOV_A_R, 5])
        assert assemble("MOV R2, A") == bytes([Op.MOV_R_A, 2])

    def test_alu_immediates(self):
        assert assemble("ADD A, #1") == bytes([Op.ADD_A_IMM, 1])
        assert assemble("XRL A, #2") == bytes([Op.XRL_A_IMM, 2])
        assert assemble("ANL A, #3") == bytes([Op.ANL_A_IMM, 3])
        assert assemble("ORL A, #4") == bytes([Op.ORL_A_IMM, 4])

    def test_alu_registers(self):
        assert assemble("ADD A, R1") == bytes([Op.ADD_A_R, 1])
        assert assemble("SUB A, R2") == bytes([Op.SUB_A_R, 2])

    def test_inc_dec(self):
        assert assemble("INC") == bytes([Op.INC_A])
        assert assemble("INC A") == bytes([Op.INC_A])
        assert assemble("INC R7") == bytes([Op.INC_R, 7])
        assert assemble("DEC") == bytes([Op.DEC_A])

    def test_control_flow(self):
        assert assemble("JMP 0x0005") == bytes([Op.JMP, 5, 0])
        assert assemble("JZ 10") == bytes([Op.JZ, 10, 0])
        assert assemble("DJNZ R1, 0") == bytes([Op.DJNZ, 1, 0, 0])
        assert assemble("RET") == bytes([Op.RET])

    def test_simple_ops(self):
        assert assemble("NOP") == bytes([Op.NOP])
        assert assemble("OUT") == bytes([Op.OUT])
        assert assemble("HALT") == bytes([Op.HALT])
        assert assemble("MOVI") == bytes([Op.MOVI_A])
        assert assemble("MOVIST") == bytes([Op.MOVI_ST])

    def test_decimal_and_hex(self):
        assert assemble("MOV A, #255") == assemble("MOV A, #0xFF")


class TestLabels:
    def test_forward_reference(self):
        code = assemble("JMP end\n NOP\n end: HALT")
        assert code == bytes([Op.JMP, 4, 0, Op.NOP, Op.HALT])

    def test_backward_reference(self):
        code = assemble("start: NOP\n JMP start")
        assert code == bytes([Op.NOP, Op.JMP, 0, 0])

    def test_label_on_own_line(self):
        code = assemble("loop:\n NOP\n JMP loop")
        assert code == bytes([Op.NOP, Op.JMP, 0, 0])

    def test_unresolved_label(self):
        with pytest.raises(AssemblerError):
            assemble("JMP nowhere")


class TestDirectives:
    def test_org(self):
        code = assemble("NOP\n .org 0x10\n HALT")
        assert code[0] == Op.NOP
        assert code[0x10] == Op.HALT
        assert len(code) == 0x11

    def test_byte(self):
        code = assemble(".byte 1, 2, 0xFF")
        assert code == bytes([1, 2, 0xFF])

    def test_comments_ignored(self):
        assert assemble("NOP ; comment\n; whole line\nHALT") == \
            bytes([Op.NOP, Op.HALT])

    def test_size_parameter(self):
        code = assemble("NOP", size=16)
        assert len(code) == 16

    def test_empty_source(self):
        assert assemble("") == b""
        assert assemble("", size=8) == bytes(8)


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError):
            assemble("FLY A, #1")

    def test_bad_register(self):
        with pytest.raises(AssemblerError):
            assemble("MOV A, R9")

    def test_sub_immediate_unsupported(self):
        """The ISA design choice the Kuhn model leans on (see mcu.py)."""
        with pytest.raises(AssemblerError):
            assemble("SUB A, #1")

    def test_mov_needs_two_operands(self):
        with pytest.raises(AssemblerError):
            assemble("MOV A")

    def test_bad_number(self):
        with pytest.raises(AssemblerError):
            assemble("MOV A, #zz")
