"""LZ77 and RLE codecs: roundtrips, compression effectiveness, corruption."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import (
    lz77_compress,
    lz77_decompress,
    rle_compress,
    rle_decompress,
)


class TestLZ77:
    def test_roundtrip_text(self):
        data = b"abracadabra abracadabra abracadabra" * 8
        assert lz77_decompress(lz77_compress(data)) == data

    def test_roundtrip_empty(self):
        assert lz77_decompress(lz77_compress(b"")) == b""

    def test_roundtrip_no_matches(self):
        data = bytes(range(256))
        assert lz77_decompress(lz77_compress(data)) == data

    def test_repetitive_data_compresses(self):
        data = b"0123456789ABCDEF" * 256
        assert len(lz77_compress(data)) < len(data) // 2

    def test_overlapping_match(self):
        """Distance < length exercises the RLE-like overlap copy."""
        data = b"ab" * 300
        assert lz77_decompress(lz77_compress(data)) == data

    def test_long_literal_runs_split(self):
        data = bytes((i * 101 + 7) & 0xFF for i in range(1000))
        assert lz77_decompress(lz77_compress(data)) == data

    def test_truncated_blob(self):
        with pytest.raises(ValueError):
            lz77_decompress(b"ab")

    def test_corrupt_distance(self):
        # match token with distance beyond output
        blob = (10).to_bytes(4, "big") + b"\x01\xff\xff\x08"
        with pytest.raises(ValueError):
            lz77_decompress(blob)

    def test_unknown_tag(self):
        blob = (1).to_bytes(4, "big") + b"\x07"
        with pytest.raises(ValueError):
            lz77_decompress(blob)

    def test_exhausted_stream(self):
        blob = (100).to_bytes(4, "big") + b"\x00\x01a"
        with pytest.raises(ValueError):
            lz77_decompress(blob)


class TestRLE:
    def test_roundtrip(self):
        data = b"\x00" * 100 + b"abc" + b"\xff" * 50
        assert rle_decompress(rle_compress(data)) == data

    def test_roundtrip_empty(self):
        assert rle_decompress(rle_compress(b"")) == b""

    def test_long_run_split(self):
        data = b"z" * 1000
        assert rle_decompress(rle_compress(data)) == data

    def test_zero_runs_compress_well(self):
        data = bytes(4096)
        assert len(rle_compress(data)) < 64

    def test_alternating_data_expands(self):
        data = bytes(i & 1 for i in range(100))
        assert len(rle_compress(data)) > len(data)

    def test_truncated(self):
        with pytest.raises(ValueError):
            rle_decompress(b"ab")

    def test_odd_payload(self):
        with pytest.raises(ValueError):
            rle_decompress((1).to_bytes(4, "big") + b"\x01")

    def test_zero_run_rejected(self):
        with pytest.raises(ValueError):
            rle_decompress((1).to_bytes(4, "big") + b"\x00\x41")

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            rle_decompress((5).to_bytes(4, "big") + b"\x01\x41")


@settings(max_examples=50, deadline=None)
@given(data=st.binary(max_size=1024))
def test_lz77_roundtrip_property(data):
    assert lz77_decompress(lz77_compress(data)) == data


@settings(max_examples=50, deadline=None)
@given(data=st.binary(max_size=1024))
def test_rle_roundtrip_property(data):
    assert rle_decompress(rle_compress(data)) == data
