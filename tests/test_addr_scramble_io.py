"""Address-scrambled engine wrapper and din-format trace I/O."""

import io

import pytest

from repro.attacks import BusProbe, classify_pattern, profile_probe
from repro.core import (
    AddressScrambledEngine,
    StreamCipherEngine,
    XomAesEngine,
)
from repro.sim import CacheConfig, MemoryConfig, SecureSystem
from repro.traces import (
    Access,
    AccessKind,
    TraceFormatError,
    load_trace,
    make_workload,
    save_trace,
    sequential_code,
)

KEY = b"0123456789abcdef"
REGION = 8192


def make_system(engine):
    return SecureSystem(
        engine=engine,
        cache_config=CacheConfig(size=1024, line_size=32, associativity=2),
        mem_config=MemoryConfig(size=1 << 21),
    )


def scrambled(inner=None):
    inner = inner or StreamCipherEngine(KEY, line_size=32)
    return AddressScrambledEngine(
        inner, addr_key=b"address-key", region_lines=REGION // 32,
    )


class TestFunctional:
    def test_install_and_execute(self):
        engine = scrambled()
        system = make_system(engine)
        image = bytes((i * 7 + 3) & 0xFF for i in range(REGION))
        system.install_image(0, image)
        system.step(Access(AccessKind.LOAD, 0x140))
        assert bytes(system._line_data[0x140 // 32]) == image[0x140:0x160]

    def test_store_flush_roundtrip(self):
        engine = scrambled()
        system = make_system(engine)
        system.install_image(0, bytes(REGION))
        system.step(Access(AccessKind.STORE, 0x80, 4), data=b"\x11\x22\x33\x44")
        system.flush()
        # Read back through the engine (logical address).
        port_view = engine.decrypt_line(
            0x80, system.memory.dump(engine.physical(0x80), 32)
        )
        assert port_view[:4] == b"\x11\x22\x33\x44"

    def test_memory_layout_is_permuted(self):
        engine = scrambled()
        memory_scrambled = make_system(engine)
        memory_plain = make_system(StreamCipherEngine(KEY, line_size=32))
        image = bytes((i * 3) & 0xFF for i in range(REGION))
        memory_scrambled.install_image(0, image)
        memory_plain.install_image(0, image)
        assert memory_scrambled.memory.dump(0, REGION) != \
            memory_plain.memory.dump(0, REGION)

    def test_outside_region_rejected(self):
        engine = scrambled()
        with pytest.raises(ValueError):
            engine.physical(REGION + 64)

    def test_works_with_block_inner(self):
        engine = scrambled(inner=XomAesEngine(KEY))
        system = make_system(engine)
        image = bytes((i * 11) & 0xFF for i in range(REGION))
        system.install_image(0, image)
        system.step(Access(AccessKind.FETCH, 0x200))
        assert bytes(system._line_data[0x200 // 32]) == image[0x200:0x220]


class TestPatternHiding:
    def run_probe(self, engine):
        system = make_system(engine)
        probe = BusProbe()
        system.bus.attach_probe(probe)
        system.install_image(0, bytes(REGION))
        for access in sequential_code(2000, code_size=REGION):
            system.step(access)
        return probe

    def test_sequentiality_hidden(self):
        """The first-order pattern leak closes: a sequential victim reads
        as random on the scrambled bus."""
        plain_probe = self.run_probe(StreamCipherEngine(KEY, line_size=32))
        scrambled_probe = self.run_probe(scrambled())
        assert classify_pattern(plain_probe) == "sequential"
        assert classify_pattern(scrambled_probe) == "random"

    def test_working_set_still_leaks(self):
        """The honest limit: the fixed permutation hides order, not size."""
        probe = self.run_probe(scrambled())
        prof = profile_probe(probe)
        assert prof.distinct_addresses == REGION // 32 - 6  # cache-resident tail

    def test_revisit_structure_still_leaks(self):
        """Line reuse is preserved one-to-one by a fixed permutation."""
        engine = scrambled()
        system = make_system(engine)
        probe = BusProbe()
        system.bus.attach_probe(probe)
        system.install_image(0, bytes(REGION))
        # Visit the same far-apart lines repeatedly, thrashing the cache.
        stride = 16 * 32
        for _ in range(10):
            for i in range(6):
                system.step(Access(AccessKind.LOAD, i * stride))
        prof = profile_probe(probe)
        assert prof.revisit_fraction > 0.5


class TestTraceIO:
    def test_roundtrip(self):
        trace = make_workload("mixed", n=200)
        buf = io.StringIO()
        count = save_trace(trace, buf)
        buf.seek(0)
        assert load_trace(buf) == trace
        assert count == len(trace)

    def test_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "trace.din")
        trace = sequential_code(50)
        save_trace(trace, path)
        assert load_trace(path) == trace

    def test_format(self):
        buf = io.StringIO()
        save_trace([Access(AccessKind.STORE, 0x1F4, 8)], buf)
        assert buf.getvalue() == "1 1f4 8\n"

    def test_two_column_variant(self):
        trace = load_trace(io.StringIO("2 400\n0 80\n"))
        assert trace[0] == Access(AccessKind.FETCH, 0x400, 4)
        assert trace[1] == Access(AccessKind.LOAD, 0x80, 4)

    def test_comments_and_blanks(self):
        text = "# header\n\n2 0 4  # fetch\n"
        assert len(load_trace(io.StringIO(text))) == 1

    def test_bad_label(self):
        with pytest.raises(TraceFormatError):
            load_trace(io.StringIO("9 400 4\n"))

    def test_bad_field_count(self):
        with pytest.raises(TraceFormatError):
            load_trace(io.StringIO("2 400 4 extra\n"))

    def test_bad_number(self):
        with pytest.raises(TraceFormatError):
            load_trace(io.StringIO("2 zz 4\n"))


class TestBinaryTraceIO:
    """The BTRC1 binary format: bounded-memory streams, typed errors."""

    def round_trip(self, trace):
        from repro.traces import load_trace_bin, save_trace_bin

        buf = io.BytesIO()
        count = save_trace_bin(trace, buf)
        buf.seek(0)
        assert count == len(trace)
        assert load_trace_bin(buf) == trace

    def test_round_trip(self):
        self.round_trip(make_workload("mixed", n=2000))

    def test_empty_trace(self):
        self.round_trip([])

    def test_generator_input_streams(self):
        from repro.traces import iter_workload, load_trace_bin, save_trace_bin

        buf = io.BytesIO()
        save_trace_bin(iter_workload("mixed", n=300), buf)
        buf.seek(0)
        assert load_trace_bin(buf) == make_workload("mixed", n=300)

    def test_iter_is_lazy(self):
        from repro.traces import iter_trace_bin, save_trace_bin

        buf = io.BytesIO()
        save_trace_bin(sequential_code(100), buf)
        buf.seek(0)
        it = iter_trace_bin(buf)
        assert next(it) == Access(AccessKind.FETCH, 0, 4)

    def test_bad_magic(self):
        from repro.traces import iter_trace_bin

        with pytest.raises(TraceFormatError, match="magic"):
            list(iter_trace_bin(io.BytesIO(b"not-a-trace")))

    def test_truncated_trailing_record(self):
        from repro.traces import load_trace_bin, save_trace_bin

        buf = io.BytesIO()
        save_trace_bin(sequential_code(10), buf)
        clipped = io.BytesIO(buf.getvalue()[:-5])  # shear the last record
        with pytest.raises(TraceFormatError,
                           match=r"record 10: truncated record \(8 of 13"):
            load_trace_bin(clipped)

    def test_unknown_label(self):
        from repro.traces import BTRC_MAGIC, load_trace_bin

        record = bytes([9]) + (0).to_bytes(8, "big") + (4).to_bytes(4, "big")
        with pytest.raises(TraceFormatError, match="unknown access label 9"):
            load_trace_bin(io.BytesIO(BTRC_MAGIC + record))

    def test_zero_size_record(self):
        from repro.traces import BTRC_MAGIC, load_trace_bin

        record = bytes([2]) + (0).to_bytes(8, "big") + (0).to_bytes(4, "big")
        with pytest.raises(TraceFormatError, match="invalid size"):
            load_trace_bin(io.BytesIO(BTRC_MAGIC + record))


class TestDinStreaming:
    def test_iter_trace_is_lazy(self):
        from repro.traces import iter_trace

        it = iter_trace(io.StringIO("2 400 4\n0 80 4\n"))
        assert next(it) == Access(AccessKind.FETCH, 0x400, 4)

    def test_invalid_record_values(self):
        from repro.traces import iter_trace

        with pytest.raises(TraceFormatError, match="invalid record"):
            list(iter_trace(io.StringIO("2 400 0\n")))
