"""Workload generators: determinism, parameter effects, statistics."""

import pytest

from repro.crypto import DRBG
from repro.traces import (
    Access,
    AccessKind,
    WORKLOAD_NAMES,
    branchy_code,
    data_stream,
    make_workload,
    mixed_workload,
    pointer_chase,
    random_data,
    sequential_code,
    standard_suite,
    synthetic_code_image,
    trace_stats,
    write_burst,
)


class TestAccess:
    def test_validation(self):
        with pytest.raises(ValueError):
            Access(AccessKind.LOAD, -1)
        with pytest.raises(ValueError):
            Access(AccessKind.LOAD, 0, size=0)

    def test_is_write(self):
        assert Access(AccessKind.STORE, 0).is_write
        assert not Access(AccessKind.FETCH, 0).is_write


class TestGenerators:
    def test_sequential_addresses(self):
        trace = sequential_code(10, base=100, step=4)
        assert [a.addr for a in trace[:3]] == [100, 104, 108]
        assert all(a.kind is AccessKind.FETCH for a in trace)

    def test_sequential_wraps(self):
        trace = sequential_code(5, step=4, code_size=8)
        assert [a.addr for a in trace] == [0, 4, 0, 4, 0]

    def test_branchy_determinism(self):
        a = branchy_code(100, DRBG(1))
        b = branchy_code(100, DRBG(1))
        assert a == b

    def test_branchy_p_taken_extremes(self):
        never = branchy_code(50, DRBG(1), p_taken=0.0)
        deltas = {never[i + 1].addr - never[i].addr for i in range(49)}
        assert deltas <= {4, 4 - 64 * 1024}
        always = branchy_code(200, DRBG(1), p_taken=1.0)
        jumps = sum(
            1 for i in range(199)
            if always[i + 1].addr - always[i].addr != 4
        )
        assert jumps > 150

    def test_data_stream_write_fraction(self):
        trace = data_stream(2000, DRBG(2), write_fraction=0.5)
        stats = trace_stats(trace)
        assert 0.4 < stats["write_fraction"] < 0.6

    def test_data_stream_read_only(self):
        trace = data_stream(100, DRBG(2), write_fraction=0.0)
        assert trace_stats(trace)["stores"] == 0

    def test_data_stream_validation(self):
        with pytest.raises(ValueError):
            data_stream(10, DRBG(1), write_fraction=1.5)
        with pytest.raises(ValueError):
            data_stream(10, DRBG(1), locality=-0.1)

    def test_random_data_is_cache_hostile(self):
        trace = random_data(500, DRBG(3), working_set=1 << 20)
        addrs = {a.addr for a in trace}
        assert len(addrs) > 400  # essentially no reuse

    def test_pointer_chase_visits_nodes(self):
        trace = pointer_chase(100, DRBG(4), nodes=100, node_size=32)
        assert len({a.addr for a in trace}) == 100

    def test_write_burst(self):
        trace = write_burst(10, base=0, write_size=4)
        assert all(a.kind is AccessKind.STORE and a.size == 4 for a in trace)
        assert trace[1].addr == 4

    def test_write_burst_stride(self):
        trace = write_burst(4, base=0, write_size=2, stride=64)
        assert [a.addr for a in trace] == [0, 64, 128, 192]

    def test_mixed_workload_composition(self):
        trace = mixed_workload(2000, DRBG(5))
        stats = trace_stats(trace)
        assert stats["fetches"] > 0 and stats["loads"] > 0
        assert stats["accesses"] == 2000


class TestSuite:
    def test_all_names_build(self):
        suite = standard_suite(n=200)
        assert set(suite) == set(WORKLOAD_NAMES)
        assert all(len(t) > 0 for t in suite.values())

    def test_deterministic(self):
        assert make_workload("branchy", n=100) == make_workload("branchy", n=100)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_workload("spec2006")


class TestCodeImage:
    def test_size_and_determinism(self):
        a = synthetic_code_image(size=4096)
        b = synthetic_code_image(size=4096)
        assert len(a) == 4096 and a == b

    def test_different_seeds_differ(self):
        assert synthetic_code_image(seed=1) != synthetic_code_image(seed=2)

    def test_code_like_redundancy(self):
        """The image must be compressible (skewed words + idioms)."""
        from repro.compression import shannon_entropy
        image = synthetic_code_image(size=16 * 1024)
        assert shannon_entropy(image) < 7.0

    def test_size_validation(self):
        with pytest.raises(ValueError):
            synthetic_code_image(size=13)


class TestGeneratorValidation:
    """Degenerate parameters fail fast with a one-line ValueError."""

    def test_zero_accesses(self):
        for name in WORKLOAD_NAMES:
            with pytest.raises(ValueError, match="positive access count"):
                make_workload(name, n=0)

    def test_negative_accesses(self):
        with pytest.raises(ValueError, match="positive access count"):
            sequential_code(-5)

    def test_step_and_code_size(self):
        with pytest.raises(ValueError):
            sequential_code(10, step=0)
        with pytest.raises(ValueError):
            sequential_code(10, step=64, code_size=32)

    def test_branchy_probability_range(self):
        for bad in (-0.1, 1.5):
            with pytest.raises(ValueError):
                branchy_code(10, DRBG(1), p_taken=bad)

    def test_working_set_bounds(self):
        with pytest.raises(ValueError):
            data_stream(10, DRBG(1), working_set=2, size=8)

    def test_mixed_fetch_fraction(self):
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(ValueError):
                mixed_workload(10, DRBG(1), fetch_fraction=bad)


class TestEventsRoundTrip:
    """events_to_trace preserves size/kind for every event shape."""

    def test_obs_round_trip(self):
        from repro.traces import events_to_trace, trace_to_events

        trace = make_workload("mixed", n=500)
        assert events_to_trace(trace_to_events(trace)) == trace

    def test_non_access_kinds_skipped(self):
        from repro.obs.events import TraceEvent
        from repro.traces import events_to_trace

        events = [
            TraceEvent(kind="access", addr=0x40, size=4, detail="load"),
            TraceEvent(kind="hit", addr=0x40, size=4),
            TraceEvent(kind="bus-read", addr=0x40, size=32),
        ]
        trace = events_to_trace(events)
        assert trace == [Access(AccessKind.LOAD, 0x40, 4)]

    def test_unknown_kind_rejected(self):
        from repro.obs.events import TraceEvent
        from repro.traces import events_to_trace

        with pytest.raises(ValueError, match="unknown event kind"):
            events_to_trace([TraceEvent(kind="telepathy", addr=0, size=1)])

    def test_unknown_detail_rejected(self):
        from repro.obs.events import TraceEvent
        from repro.traces import events_to_trace

        with pytest.raises(ValueError, match="unknown detail"):
            events_to_trace(
                [TraceEvent(kind="access", addr=0, size=4, detail="poke")])

    def test_non_positive_size_rejected(self):
        from repro.obs.events import TraceEvent
        from repro.traces import events_to_trace

        with pytest.raises(ValueError, match="non-positive size"):
            events_to_trace(
                [TraceEvent(kind="access", addr=0, size=0, detail="load")])

    def test_foreign_object_rejected(self):
        from repro.traces import events_to_trace

        with pytest.raises(ValueError, match="neither"):
            events_to_trace([object()])

    def test_mcu_step_events_are_byte_sized(self):
        from repro.isa.programs import fibonacci_program, mcu_trace
        from repro.traces import events_to_trace

        events = mcu_trace(fibonacci_program(count=5), memory_size=2048,
                           max_steps=2000)
        trace = events_to_trace(events)
        assert trace and all(a.size == 1 for a in trace)
