"""Two-level hierarchy with a movable EDU, and the energy model."""

import pytest

from repro.core import StreamCipherEngine, XomAesEngine
from repro.crypto import DRBG
from repro.sim import (
    EDU_L1_L2,
    EDU_L2_MEMORY,
    CacheConfig,
    EnergyModel,
    EnergyReport,
    MemoryConfig,
    TwoLevelSystem,
    estimate_run,
)
from repro.traces import Access, AccessKind, make_workload, sequential_code

KEY = b"0123456789abcdef"


def make_system(engine=None, edu_level=EDU_L2_MEMORY, **kwargs):
    defaults = dict(
        l1_config=CacheConfig(size=1024, line_size=32, associativity=2,
                              hit_latency=1),
        l2_config=CacheConfig(size=8192, line_size=32, associativity=4,
                              hit_latency=8),
        mem_config=MemoryConfig(size=1 << 20, latency=60),
    )
    defaults.update(kwargs)
    return TwoLevelSystem(engine=engine, edu_level=edu_level, **defaults)


class TestHierarchyBasics:
    def test_l2_filters_memory_traffic(self):
        system = make_system()
        trace = sequential_code(2000, code_size=4096)  # fits L2, not L1
        system.run(list(trace))
        # Second pass over the same code: L2 hits, no new memory reads.
        reads_after_warmup = system.memory.reads
        for access in sequential_code(2000, code_size=4096):
            system.step(access)
        assert system.memory.reads == reads_after_warmup

    def test_l1_l2_line_size_must_match(self):
        with pytest.raises(ValueError):
            TwoLevelSystem(
                l1_config=CacheConfig(size=1024, line_size=32, associativity=2),
                l2_config=CacheConfig(size=8192, line_size=64, associativity=4),
            )

    def test_bad_edu_level(self):
        with pytest.raises(ValueError):
            make_system(edu_level="l3-dram")

    def test_two_levels_beat_one_on_reuse(self):
        """The L2 pays off when the working set fits it but not L1."""
        from repro.sim import SecureSystem

        trace = sequential_code(4000, code_size=4096)
        single = SecureSystem(
            cache_config=CacheConfig(size=1024, line_size=32, associativity=2),
            mem_config=MemoryConfig(size=1 << 20, latency=60),
        )
        double = make_system()
        single.run(list(trace))
        double.run(list(trace))
        assert double.cycles < single.cycles


class TestFunctionalConsistency:
    IMAGE_SIZE = 8192

    @pytest.mark.parametrize("edu_level", [EDU_L2_MEMORY, EDU_L1_L2])
    def test_install_and_execute(self, edu_level):
        engine = XomAesEngine(KEY)
        system = make_system(engine=engine, edu_level=edu_level)
        image = DRBG(9).random_bytes(self.IMAGE_SIZE)
        system.install_image(0, image)
        for addr in (0, 32, 4096, self.IMAGE_SIZE - 32):
            system.step(Access(AccessKind.LOAD, addr))
            line = bytes(system._l1_data[addr // 32])
            assert line == image[addr: addr + 32]

    @pytest.mark.parametrize("edu_level", [EDU_L2_MEMORY, EDU_L1_L2])
    def test_store_flush_roundtrip(self, edu_level):
        engine = StreamCipherEngine(KEY, line_size=32)
        system = make_system(engine=engine, edu_level=edu_level)
        system.install_image(0, bytes(self.IMAGE_SIZE))
        payload = b"\xAB\xCD\xEF\x01"
        system.step(Access(AccessKind.STORE, 0x40, 4), data=payload)
        system.flush()
        assert system.read_plaintext(0x40, 4) == payload

    def test_l2_holds_ciphertext_when_edu_at_l1(self):
        engine = XomAesEngine(KEY)
        system = make_system(engine=engine, edu_level=EDU_L1_L2)
        image = DRBG(10).random_bytes(self.IMAGE_SIZE)
        system.install_image(0, image)
        system.step(Access(AccessKind.LOAD, 0))
        # The L2's copy is ciphertext, the L1's is plaintext.
        assert bytes(system._l2_data[0]) != image[:32]
        assert bytes(system._l1_data[0]) == image[:32]

    def test_l2_holds_plaintext_when_edu_at_memory(self):
        engine = XomAesEngine(KEY)
        system = make_system(engine=engine, edu_level=EDU_L2_MEMORY)
        image = DRBG(10).random_bytes(self.IMAGE_SIZE)
        system.install_image(0, image)
        system.step(Access(AccessKind.LOAD, 0))
        assert bytes(system._l2_data[0]) == image[:32]


class TestPlacementTradeoff:
    def test_edu_at_l1_pays_on_l2_hits(self):
        """With good L2 locality, crypto at the L1 boundary runs far more
        often than crypto at the memory boundary."""
        trace = [
            type(a)(a.kind, a.addr % 8192, a.size)
            for a in make_workload("mixed", n=3000)
        ]
        results = {}
        for level in (EDU_L2_MEMORY, EDU_L1_L2):
            engine = XomAesEngine(KEY, functional=False)
            system = make_system(engine=engine, edu_level=level)
            system.install_image(0, bytes(8192))
            system.run(list(trace))
            results[level] = (system.cycles, engine.stats.lines_decrypted)
        assert results[EDU_L1_L2][1] > results[EDU_L2_MEMORY][1]
        assert results[EDU_L1_L2][0] > results[EDU_L2_MEMORY][0]


class TestEnergyModel:
    def test_report_accumulates(self):
        report = EnergyReport()
        report.add("x", 100.0).add("x", 50.0).add("y", 25.0)
        assert report.total_pj == 175.0
        assert report.items["x"] == 150.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            EnergyReport().add("x", -1.0)

    def test_unknown_event(self):
        with pytest.raises(KeyError):
            EnergyModel().cost("warp_core")

    def test_custom_costs(self):
        model = EnergyModel({"cpu_cycle": 1.0})
        assert model.cost("cpu_cycle") == 1.0
        assert model.cost("bus_beat") > 1.0  # defaults retained

    def test_engine_energy_included(self):
        from repro.sim import SecureSystem

        engine = XomAesEngine(KEY, functional=False)
        system = SecureSystem(
            engine=engine,
            cache_config=CacheConfig(size=512, line_size=32, associativity=2),
            mem_config=MemoryConfig(size=1 << 18),
        )
        report = system.run(sequential_code(500, code_size=4096))
        energy = estimate_run(report, engine)
        assert energy.items["cipher"] > 0
        assert energy.total_pj > energy.items["cipher"]

    def test_encryption_costs_energy(self):
        from repro.sim import SecureSystem

        trace = sequential_code(800, code_size=8192)

        def run(engine):
            system = SecureSystem(
                engine=engine,
                cache_config=CacheConfig(size=512, line_size=32,
                                         associativity=2),
                mem_config=MemoryConfig(size=1 << 18),
            )
            report = system.run(list(trace))
            return estimate_run(report, engine)

        baseline = run(None)
        secured = run(XomAesEngine(KEY, functional=False))
        assert secured.total_pj > baseline.total_pj
        assert secured.overhead_vs(baseline) > 0

    def test_str_renders(self):
        report = EnergyReport().add("bus", 2e6)
        assert "uJ" in str(report)
