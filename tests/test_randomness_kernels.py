"""FIPS 140-1 battery and the MCU kernel workloads."""

import pytest

from repro.analysis import (
    fips_140_1,
    long_run_test,
    monobit_test,
    poker_test,
    runs_test,
)
from repro.attacks import geffe_correlation_attack
from repro.crypto import AES, CTR, DRBG, RC4, BestCipher
from repro.crypto.lfsr import AlternatingStepGenerator, GeffeGenerator
from repro.isa import MCU, assemble, bubble_sort_program, memcpy_program
from repro.traces import MCU_KERNELS, mcu_workload, trace_stats

SAMPLE = 2500  # bytes = 20,000 bits


class TestFipsBattery:
    def test_good_generators_pass(self):
        for label, stream in (
            ("rc4", RC4(b"fips-key").keystream(SAMPLE)),
            ("drbg", DRBG(12).random_bytes(SAMPLE)),
            ("aes-ctr", CTR(AES(b"0123456789abcdef"),
                            nonce=bytes(12)).keystream(SAMPLE)),
            ("asg", AlternatingStepGenerator(7, 77, 777).keystream(SAMPLE)),
        ):
            assert fips_140_1(stream).passed, label

    def test_constant_fails_everything(self):
        result = fips_140_1(bytes(SAMPLE))
        assert not result.monobit_ok
        assert not result.poker_ok
        assert not result.long_run_ok
        assert not result.passed

    def test_biased_stream_fails_monobit(self):
        rng = DRBG(3)
        biased = bytes(
            b | 0x11 for b in rng.random_bytes(SAMPLE)  # extra ones
        )
        ok, ones = monobit_test(biased)
        assert not ok and ones > 10_346

    def test_alternating_fails_runs(self):
        data = bytes([0b01010101] * SAMPLE)
        ok, counts = runs_test(data)
        assert not ok
        # All runs have length 1.
        assert counts[0][2] == 0 and counts[1][2] == 0

    def test_long_run_detection(self):
        rng = DRBG(4)
        data = bytearray(rng.random_bytes(SAMPLE))
        data[100:105] = b"\xFF" * 5  # 40-bit run of ones
        ok, longest = long_run_test(bytes(data))
        assert not ok and longest >= 34

    def test_short_input_rejected(self):
        with pytest.raises(ValueError):
            fips_140_1(bytes(100))

    def test_poker_bounds(self):
        ok, stat = poker_test(DRBG(5).random_bytes(SAMPLE))
        assert ok and 1.03 < stat < 57.4

    def test_fips_pass_is_not_security(self):
        """§4's trap, pinned: the Geffe generator passes the certification
        battery and still surrenders its full state to correlation."""
        taps = ((9, 5), (10, 7), (11, 9))
        gen = GeffeGenerator(0x1F3, 0x2A5, 0x3B7, taps_a=taps[0],
                             taps_b=taps[1], taps_c=taps[2])
        stream = gen.keystream(SAMPLE)
        assert fips_140_1(stream).passed

        fresh = GeffeGenerator(0x1F3, 0x2A5, 0x3B7, taps_a=taps[0],
                               taps_b=taps[1], taps_c=taps[2])
        keystream_bits = [fresh.step() for _ in range(300)]
        result = geffe_correlation_attack(keystream_bits, *taps)
        assert result.succeeded

    def test_best_ciphertext_of_structured_data_fails(self):
        """Best's engine output over repetitive plaintext flunks the
        battery AES-grade engines pass — E06's gap, certification style."""
        cipher = BestCipher(b"best-key", num_alphabets=4)
        plaintext = (b"\x00" * 8 + b"\xff" * 8) * (SAMPLE // 16 + 1)
        ct = bytearray()
        for i in range(0, len(plaintext) - 7, 8):
            ct += cipher.encrypt(i, plaintext[i: i + 8])
        assert not fips_140_1(bytes(ct)).passed

        aes_ct = CTR(AES(b"0123456789abcdef"), nonce=bytes(12)).encrypt(
            plaintext[:SAMPLE]
        )
        assert fips_140_1(aes_ct).passed


class TestMcuKernels:
    def test_bubble_sort_sorts(self):
        mcu = MCU(bytearray(assemble(bubble_sort_program(table_len=10,
                                                         seed=42), size=1024)))
        mcu.run(max_steps=50000)
        assert mcu.port_log == sorted(mcu.port_log)
        assert len(mcu.port_log) == 10

    def test_memcpy_copies(self):
        mcu = MCU(bytearray(assemble(memcpy_program(length=16, seed=8),
                                     size=1024)))
        mcu.run()
        assert bytes(mcu.memory[0x300:0x310]) == bytes(mcu.memory[0x200:0x210])

    def test_all_kernels_produce_traces(self):
        for kernel in MCU_KERNELS:
            trace = mcu_workload(kernel, repeat=1)
            stats = trace_stats(trace)
            assert stats["accesses"] > 100, kernel
            assert stats["fetches"] > 0, kernel

    def test_repeat_multiplies(self):
        single = mcu_workload("checksum", repeat=1)
        triple = mcu_workload("checksum", repeat=3)
        assert len(triple) == 3 * len(single)

    def test_unknown_kernel(self):
        with pytest.raises(KeyError):
            mcu_workload("raytracer")

    def test_kernels_have_distinct_characters(self):
        """The kernels span the workload axes: memset writes, search reads."""
        memset_stats = trace_stats(mcu_workload("memset", repeat=1))
        search_stats = trace_stats(mcu_workload("search", repeat=1))
        assert memset_stats["write_fraction"] > 0.05
        assert search_stats["write_fraction"] == 0.0

    def test_kernel_traces_drive_engines(self):
        from repro.analysis import measure_overhead
        from repro.core import StreamCipherEngine
        from repro.sim import CacheConfig

        trace = mcu_workload("sort", repeat=2)
        result = measure_overhead(
            lambda: StreamCipherEngine(b"0123456789abcdef",
                                       functional=False),
            trace, workload="mcu-sort",
            cache_config=CacheConfig(size=256, line_size=32, associativity=2),
        )
        assert result.secured.cycles >= result.baseline.cycles
