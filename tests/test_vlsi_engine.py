"""VLSI secure-DMA page engine: page faults, residency, dirty writeback
(Figure 4 / E07)."""

import pytest

from repro.core import VlsiDmaEngine
from repro.core.engine import MemoryPort
from repro.sim import Bus, CacheConfig, MainMemory, MemoryConfig, SecureSystem
from repro.traces import Access, AccessKind, sequential_code

KEY = b"0123456789abcdef01234567"


def make_engine(**kwargs):
    defaults = dict(page_size=256, buffer_pages=2)
    defaults.update(kwargs)
    return VlsiDmaEngine(KEY, **defaults)


def make_port(size=1 << 16):
    return MemoryPort(MainMemory(MemoryConfig(size=size)), Bus())


class TestFunctional:
    IMAGE = bytes((i * 11 + 1) & 0xFF for i in range(2048))

    def test_install_and_read_plain(self):
        engine = make_engine()
        memory = MainMemory(MemoryConfig(size=1 << 16))
        engine.install_image(memory, 0, self.IMAGE)
        assert engine.read_plain(memory, 100, 64) == self.IMAGE[100:164]

    def test_memory_is_ciphertext(self):
        engine = make_engine()
        memory = MainMemory(MemoryConfig(size=1 << 16))
        engine.install_image(memory, 0, self.IMAGE)
        assert memory.dump(0, 256) != self.IMAGE[:256]

    def test_fill_line_returns_plaintext(self):
        engine = make_engine()
        port = make_port()
        engine.install_image(port.memory, 0, self.IMAGE)
        line, _ = engine.fill_line(port, 512, 32)
        assert line == self.IMAGE[512:544]

    def test_write_roundtrip_through_flush(self):
        engine = make_engine()
        port = make_port()
        engine.install_image(port.memory, 0, self.IMAGE)
        engine.write_line(port, 256, bytes(range(32)))
        engine.flush(port)
        assert engine.read_plain(port.memory, 256, 32) == bytes(range(32))

    def test_unaligned_base_rejected(self):
        engine = make_engine()
        memory = MainMemory(MemoryConfig(size=1 << 16))
        with pytest.raises(ValueError):
            engine.install_image(memory, 100, self.IMAGE)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            VlsiDmaEngine(KEY, page_size=100)
        with pytest.raises(ValueError):
            VlsiDmaEngine(KEY, buffer_pages=0)


class TestPaging:
    def test_first_touch_faults(self):
        engine = make_engine()
        port = make_port()
        engine.install_image(port.memory, 0, bytes(2048))
        engine.fill_line(port, 0, 32)
        assert engine.page_faults == 1

    def test_resident_page_no_fault(self):
        engine = make_engine()
        port = make_port()
        engine.install_image(port.memory, 0, bytes(2048))
        engine.fill_line(port, 0, 32)
        engine.fill_line(port, 64, 32)   # same page
        assert engine.page_faults == 1

    def test_resident_access_is_cheap(self):
        engine = make_engine()
        port = make_port()
        engine.install_image(port.memory, 0, bytes(2048))
        _, fault_cycles = engine.fill_line(port, 0, 32)
        _, hit_cycles = engine.fill_line(port, 64, 32)
        assert hit_cycles == engine.sram_latency
        assert fault_cycles > 50 * hit_cycles

    def test_lru_eviction(self):
        engine = make_engine(buffer_pages=2)
        port = make_port()
        engine.install_image(port.memory, 0, bytes(2048))
        engine.fill_line(port, 0, 32)      # page 0
        engine.fill_line(port, 256, 32)    # page 1
        engine.fill_line(port, 512, 32)    # page 2 evicts page 0
        engine.fill_line(port, 0, 32)      # page 0 faults again
        assert engine.page_faults == 4

    def test_dirty_page_written_back(self):
        engine = make_engine(buffer_pages=1)
        port = make_port()
        engine.install_image(port.memory, 0, bytes(2048))
        engine.write_line(port, 0, b"\xEE" * 32)
        engine.fill_line(port, 256, 32)  # evicts dirty page 0
        assert engine.page_writebacks == 1
        assert engine.read_plain(port.memory, 0, 32) == b"\xEE" * 32

    def test_clean_page_not_written_back(self):
        engine = make_engine(buffer_pages=1)
        port = make_port()
        engine.install_image(port.memory, 0, bytes(2048))
        engine.fill_line(port, 0, 32)
        engine.fill_line(port, 256, 32)
        assert engine.page_writebacks == 0

    def test_partial_write_absorbed(self):
        """The page buffer removes the sub-block write penalty entirely."""
        engine = make_engine()
        port = make_port()
        engine.install_image(port.memory, 0, bytes(2048))
        engine.write_partial(port, 5, b"\x99", 32)
        assert engine.stats.rmw_operations == 0
        engine.flush(port)
        assert engine.read_plain(port.memory, 5, 1) == b"\x99"


class TestSystemLevel:
    def test_sequential_amortizes_faults(self):
        engine = make_engine(page_size=1024, buffer_pages=4)
        system = SecureSystem(
            engine=engine,
            cache_config=CacheConfig(size=512, line_size=32, associativity=2),
            mem_config=MemoryConfig(size=1 << 16),
        )
        system.install_image(0, bytes(4096))
        for access in sequential_code(1000, code_size=4096):
            system.step(access)
        # 4 pages cover the whole image: at most 4 faults.
        assert engine.page_faults == 4

    def test_area_includes_page_buffer(self):
        small = make_engine(buffer_pages=2).area().total
        large = make_engine(buffer_pages=16).area().total
        assert large > small
