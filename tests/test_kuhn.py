"""Kuhn's cipher instruction search: the DS5002FP break end-to-end, and
why the DS5240 resists it (E05)."""

import pytest

from repro.attacks import (
    AttackFailure,
    DallasBoard,
    KuhnAttack,
    block_diffusion_probe,
    brute_force_tries,
)
from repro.crypto import SmallBlockCipher, TweakableFeistel
from repro.isa import Op, assemble, secret_table_program


@pytest.fixture(scope="module")
def broken_board():
    firmware = assemble(secret_table_program(seed=77, table_len=32), size=512)
    cipher = SmallBlockCipher(b"factory-secret-key")
    return firmware, DallasBoard(cipher, firmware, memory_size=512)


@pytest.fixture(scope="module")
def attack_report(broken_board):
    firmware, board = broken_board
    report = KuhnAttack(board).run()
    return firmware, board, report


class TestFullAttack:
    def test_plaintext_fully_recovered(self, attack_report):
        firmware, _, report = attack_report
        assert report.plaintext == firmware

    def test_no_ambiguity_for_this_firmware(self, attack_report):
        """The victim starts with MOV R0,#imm — uniquely classifiable."""
        _, _, report = attack_report
        assert report.fully_determined

    def test_probe_count_is_256_scale(self, attack_report):
        """'exhaustive attack (8-bit instruction <=> 256 possibilities)':
        the probe budget is a few multiples of 256 plus one run per byte."""
        _, _, report = attack_report
        assert report.probe_runs < 6 * 256 + 512 + 50

    def test_d_tables_are_real_decryption(self, attack_report):
        firmware, board, report = attack_report
        # Independent check against the sealed cipher via a fresh board.
        cipher = SmallBlockCipher(b"factory-secret-key")
        for cell, table in report.d_tables.items():
            for c in (0, 1, 77, 200, 255):
                assert table[c] == cipher.decrypt_byte(cell, c)

    def test_board_restored_after_attack(self, attack_report):
        firmware, board, _ = attack_report
        cipher = SmallBlockCipher(b"factory-secret-key")
        expected = cipher.encrypt(0, firmware.ljust(512, b"\x00"))
        assert bytes(board.memory) == expected

    def test_key_never_needed(self, attack_report):
        """The attack object holds tables, not keys."""
        _, _, report = attack_report
        assert not hasattr(report, "key")


class TestAttackMechanics:
    def test_dump_range(self):
        firmware = assemble(secret_table_program(seed=3, table_len=8), size=256)
        board = DallasBoard(SmallBlockCipher(b"k2"), firmware, memory_size=256)
        report = KuhnAttack(board).run(dump_range=(16, 48))
        assert report.plaintext == firmware[16:48]

    def test_bad_dump_range(self):
        firmware = assemble("HALT", size=64)
        board = DallasBoard(SmallBlockCipher(b"k3"), firmware, memory_size=64)
        with pytest.raises(ValueError):
            KuhnAttack(board).run(dump_range=(50, 20))

    def test_different_keys_still_broken(self):
        """The attack is key-independent — any key falls in ~256-way
        search, which is the survey's entire point about 8-bit blocks."""
        firmware = assemble(secret_table_program(seed=5, table_len=16),
                            size=256)
        for key in (b"a", b"another-key", bytes(16)):
            board = DallasBoard(SmallBlockCipher(key), firmware,
                                memory_size=256)
            report = KuhnAttack(board).run(dump_range=(0, len(firmware)))
            assert report.plaintext[: len(firmware)] == firmware

    def test_ambiguous_cell0_reported(self):
        """Firmware starting with NOP: cell 0 is behaviourally ambiguous
        with PUSH/POP/undefined — the attack must say so, and everything
        else must still be exact."""
        firmware = assemble("NOP\n MOV A, #7\n OUT\n HALT", size=128)
        board = DallasBoard(SmallBlockCipher(b"kx"), firmware, memory_size=128)
        report = KuhnAttack(board).run()
        assert 0 in report.ambiguous_cells
        assert Op.NOP in report.ambiguous_cells[0]
        assert report.plaintext[1:] == firmware[1:]

    def test_jump_start_decoded(self):
        firmware = assemble("JMP 0x10\n .org 0x10\n MOV A, #1\n OUT\n HALT",
                            size=128)
        board = DallasBoard(SmallBlockCipher(b"ky"), firmware, memory_size=128)
        report = KuhnAttack(board).run()
        # JMP/JZ/CALL are equivalent from reset: reported as an ambiguity
        # set containing the truth.
        assert report.plaintext[1:] == firmware[1:]
        if report.ambiguous_cells:
            assert Op.JMP in report.ambiguous_cells[0]


class TestDS5240Resistance:
    def test_search_space_explodes(self):
        assert brute_force_tries(8) == 256
        assert brute_force_tries(64) == 2 ** 64

    def test_diffusion_denies_byte_search(self):
        """64-bit blocks: one flipped bit garbles ~half the block, so
        per-byte tabulation cannot get a foothold."""
        cipher = TweakableFeistel(b"ds5240-key", block_bits=64)
        assert 0.35 < block_diffusion_probe(cipher) < 0.65

    def test_8bit_block_has_no_diffusion_room(self):
        cipher = TweakableFeistel(b"ds5002-key", block_bits=8)
        # Diffusion bounded by the tiny block: the whole output is 8 bits.
        assert block_diffusion_probe(cipher) <= 1.0

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            brute_force_tries(0)


class TestBoardModel:
    def test_firmware_too_large(self):
        with pytest.raises(ValueError):
            DallasBoard(SmallBlockCipher(b"k"), bytes(600), memory_size=512)

    def test_raw_access(self):
        board = DallasBoard(SmallBlockCipher(b"k"), b"\x00" * 16,
                            memory_size=64)
        board.write_raw(10, b"\xAB")
        assert board.read_raw(10) == b"\xAB"

    def test_reset_and_step_counts_runs(self):
        board = DallasBoard(SmallBlockCipher(b"k"), assemble("HALT", size=64),
                            memory_size=64)
        board.reset_and_step(3)
        board.reset_and_step(3)
        assert board.runs == 2
