"""DES / 3DES: FIPS vectors, structure, and error handling."""

import pytest

from repro.crypto import DES, TripleDES


class TestDESVectors:
    def test_all_zero_key_and_block(self):
        assert DES(bytes(8)).encrypt_block(bytes(8)).hex() == "8ca64de9c1b123a7"

    def test_classic_walkthrough_vector(self):
        # The widely published FIPS walkthrough pair.
        key = bytes.fromhex("133457799BBCDFF1")
        plain = bytes.fromhex("0123456789ABCDEF")
        assert DES(key).encrypt_block(plain).hex() == "85e813540f0ab405"

    def test_all_ones(self):
        key = bytes.fromhex("FFFFFFFFFFFFFFFF")
        plain = bytes.fromhex("FFFFFFFFFFFFFFFF")
        assert DES(key).encrypt_block(plain).hex() == "7359b2163e4edc58"

    def test_known_vector_3(self):
        key = bytes.fromhex("0113B970FD34F2CE")
        plain = bytes.fromhex("059B5E0851CF143A")
        assert DES(key).encrypt_block(plain).hex() == "86a560f10ec6d85b"


class TestDESStructure:
    def test_roundtrip(self):
        des = DES(b"8bytekey")
        block = b"ABCDEFGH"
        assert des.decrypt_block(des.encrypt_block(block)) == block

    def test_roundtrip_many_blocks(self):
        des = DES(b"\x01\x23\x45\x67\x89\xab\xcd\xef")
        for i in range(32):
            block = bytes([(i * 17 + j) & 0xFF for j in range(8)])
            assert des.decrypt_block(des.encrypt_block(block)) == block

    def test_encryption_is_not_identity(self):
        des = DES(b"8bytekey")
        assert des.encrypt_block(bytes(8)) != bytes(8)

    def test_different_keys_different_ciphertext(self):
        block = b"constant"
        assert DES(b"key-one!").encrypt_block(block) != \
            DES(b"key-two!").encrypt_block(block)

    def test_avalanche_one_plaintext_bit(self):
        """Flipping one input bit flips roughly half the output bits."""
        des = DES(b"avalanch")
        a = des.encrypt_block(bytes(8))
        b = des.encrypt_block(bytes([0x80] + [0] * 7))
        diff = sum(bin(x ^ y).count("1") for x, y in zip(a, b))
        assert 16 <= diff <= 48

    def test_avalanche_one_key_bit(self):
        block = bytes(8)
        a = DES(bytes(8)).encrypt_block(block)
        # Flip a non-parity key bit (bit 2 of first byte).
        b = DES(bytes([0x04] + [0] * 7)).encrypt_block(block)
        diff = sum(bin(x ^ y).count("1") for x, y in zip(a, b))
        assert 16 <= diff <= 48

    def test_complementation_property(self):
        """DES's complementation: E_~k(~p) == ~E_k(p)."""
        key = bytes.fromhex("133457799BBCDFF1")
        plain = bytes.fromhex("0123456789ABCDEF")
        ct = DES(key).encrypt_block(plain)
        comp_key = bytes(b ^ 0xFF for b in key)
        comp_plain = bytes(b ^ 0xFF for b in plain)
        comp_ct = DES(comp_key).encrypt_block(comp_plain)
        assert comp_ct == bytes(b ^ 0xFF for b in ct)


class TestDESErrors:
    def test_bad_key_length(self):
        with pytest.raises(ValueError):
            DES(b"short")

    def test_bad_block_length_encrypt(self):
        with pytest.raises(ValueError):
            DES(b"8bytekey").encrypt_block(b"tiny")

    def test_bad_block_length_decrypt(self):
        with pytest.raises(ValueError):
            DES(b"8bytekey").decrypt_block(b"way-too-long!")


class TestTripleDES:
    def test_roundtrip_24_byte_key(self):
        tdes = TripleDES(bytes(range(24)))
        block = b"3DES-blk"
        assert tdes.decrypt_block(tdes.encrypt_block(block)) == block

    def test_roundtrip_16_byte_key(self):
        tdes = TripleDES(bytes(range(16)))
        block = b"3DES-blk"
        assert tdes.decrypt_block(tdes.encrypt_block(block)) == block

    def test_degenerates_to_single_des_with_equal_keys(self):
        key = b"8bytekey"
        block = b"whatever"
        assert TripleDES(key).encrypt_block(block) == \
            DES(key).encrypt_block(block)

    def test_degenerates_with_repeated_24_byte_key(self):
        key = b"8bytekey"
        assert TripleDES(key * 3).encrypt_block(b"whatever") == \
            DES(key).encrypt_block(b"whatever")

    def test_three_distinct_keys_differ_from_single(self):
        block = b"whatever"
        assert TripleDES(bytes(range(24))).encrypt_block(block) != \
            DES(bytes(range(8))).encrypt_block(block)

    def test_bad_key_length(self):
        with pytest.raises(ValueError):
            TripleDES(bytes(10))

    def test_known_3des_vector(self):
        # SP 800-67 style EDE with K1=K2=K3 equals single DES on the
        # published pair — cross-checks the EDE ordering.
        key = bytes.fromhex("133457799BBCDFF1")
        plain = bytes.fromhex("0123456789ABCDEF")
        assert TripleDES(key * 3).encrypt_block(plain).hex() == \
            "85e813540f0ab405"
