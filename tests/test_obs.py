"""repro.obs: the event taxonomy, sinks, scopes and the stats facade."""

import io
import json

import pytest

from repro import obs
from repro.obs import (
    BUS_KINDS,
    CACHE_KINDS,
    CIPHER_KINDS,
    EVENT_KINDS,
    CounterSink,
    JsonlSink,
    NullSink,
    RecordingSink,
    RingBufferSink,
    TeeSink,
    TraceEvent,
    current_sink,
    merge_observability,
    observability_section,
    replay,
    scope,
)
from repro.core.registry import make_engine
from repro.sim import CacheConfig, MemoryConfig, SecureSystem, SimStats
from repro.traces import make_workload


def _run_system(sink, engine="stream", n=600, seed=11):
    system = SecureSystem(
        engine=make_engine(engine, functional=False),
        cache_config=CacheConfig(size=1024, line_size=32, associativity=2),
        mem_config=MemoryConfig(size=1 << 21, latency=40),
        sink=sink,
    )
    report = system.run(make_workload("mixed", n=n, seed=seed))
    return system, report


class TestTraceEvent:
    def test_defaults(self):
        ev = TraceEvent(kind="hit")
        assert (ev.addr, ev.size, ev.cycle, ev.detail, ev.data) == \
            (0, 0, 0, "", b"")

    def test_json_dict_drops_empties_hexes_payload(self):
        ev = TraceEvent(kind="bus-read", addr=0x40, size=4, cycle=9,
                        data=b"\xde\xad")
        doc = ev.to_json_dict()
        assert doc == {"kind": "bus-read", "addr": 0x40, "size": 4,
                       "cycle": 9, "data": "dead"}
        assert "detail" not in doc
        json.dumps(doc)  # must be serializable as-is

    def test_kind_groups_are_inside_the_taxonomy(self):
        for group in (CIPHER_KINDS, BUS_KINDS, CACHE_KINDS):
            assert set(group) <= set(EVENT_KINDS)


class TestSinks:
    EVENTS = [
        TraceEvent(kind="bus-read", addr=0, size=32),
        TraceEvent(kind="bus-read", addr=32, size=32),
        TraceEvent(kind="decipher", addr=0, size=32),
        TraceEvent(kind="stall", size=7, detail="read"),
    ]

    def test_counter_sink_counts_and_bytes(self):
        sink = replay(self.EVENTS, CounterSink())
        assert sink.get("bus-read") == 2
        assert sink.bytes_for("bus-read") == 64
        assert sink.get("never-seen") == 0
        assert sink.summary() == {"bus-read": 2, "decipher": 1, "stall": 1}
        assert sink.bytes_summary()["stall"] == 7

    def test_ring_buffer_keeps_the_tail(self):
        sink = RingBufferSink(capacity=2)
        replay(self.EVENTS, sink)
        assert [e.kind for e in sink.events] == ["decipher", "stall"]
        assert sink.dropped == 2
        assert sink.get("bus-read") == 2     # counters still see everything

    def test_ring_buffer_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            RingBufferSink(capacity=0)

    def test_recording_sink_keeps_the_head(self):
        sink = RecordingSink(max_events=3)
        replay(self.EVENTS, sink)
        assert [e.kind for e in sink.events] == \
            ["bus-read", "bus-read", "decipher"]
        assert sink.dropped == 1
        assert sum(sink.counts.values()) == 4

    def test_jsonl_sink_streams_parseable_lines(self):
        buf = io.StringIO()
        sink = JsonlSink(buf)
        replay(self.EVENTS, sink)
        lines = buf.getvalue().splitlines()
        assert sink.events_written == len(self.EVENTS) == len(lines)
        assert json.loads(lines[0])["kind"] == "bus-read"

    def test_tee_fans_out_and_skips_none(self):
        a, b = CounterSink(), CounterSink()
        replay(self.EVENTS, TeeSink(a, None, b))
        assert a.summary() == b.summary()

    def test_null_sink_accepts_everything(self):
        replay(self.EVENTS, NullSink())  # must not raise


class TestScope:
    def test_no_ambient_sink_by_default(self):
        assert current_sink() is None

    def test_scopes_nest_and_restore(self):
        outer, inner = CounterSink(), CounterSink()
        with scope(outer) as got:
            assert got is outer and current_sink() is outer
            with scope(inner):
                assert current_sink() is inner
            assert current_sink() is outer
        assert current_sink() is None

    def test_scope_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with scope(CounterSink()):
                raise RuntimeError("boom")
        assert current_sink() is None

    def test_system_picks_up_ambient_sink(self):
        with scope(CounterSink()) as sink:
            _run_system(sink=None, n=200)
        assert sink.get("access") == 200


class TestSystemIntegration:
    def test_counters_agree_with_the_report(self):
        sink = CounterSink()
        _, report = _run_system(sink)
        stats = SimStats(sink)
        assert stats.accesses == report.accesses
        assert stats.cache_hits == report.cache_hits
        assert stats.cache_misses == report.cache_misses
        assert stats.bus_transactions == report.bus_transactions
        assert stats.bus_bytes == report.bus_bytes
        assert stats.miss_rate == pytest.approx(report.miss_rate)
        assert stats.lines_deciphered == report.lines_decrypted
        assert stats.bytes_enciphered == report.bytes_enciphered

    def test_observation_does_not_perturb_the_simulation(self):
        _, observed = _run_system(CounterSink())
        _, plain = _run_system(None)
        assert observed == plain

    def test_null_engine_emits_no_cipher_events(self):
        sink = CounterSink()
        system = SecureSystem(sink=sink)
        system.run(make_workload("mixed", n=300, seed=3))
        assert sink.get("encipher") == 0 and sink.get("decipher") == 0
        assert sink.get("access") == 300

    def test_bus_events_carry_the_wire_payload(self):
        sink = RecordingSink()
        _run_system(sink, n=200)
        bus_reads = [e for e in sink.events if e.kind == "bus-read"]
        assert bus_reads and all(len(e.data) == e.size for e in bus_reads)


class TestBusProbeAsSink:
    def test_sink_probe_matches_legacy_attach(self):
        from repro.attacks import BusProbe

        as_sink = BusProbe()
        _run_system(as_sink)

        legacy = BusProbe()
        system = SecureSystem(
            engine=make_engine("stream", functional=False),
            cache_config=CacheConfig(size=1024, line_size=32,
                                     associativity=2),
            mem_config=MemoryConfig(size=1 << 21, latency=40),
        )
        system.bus.attach_probe(legacy)
        system.run(make_workload("mixed", n=600, seed=11))

        assert len(as_sink.transactions) == len(legacy.transactions)
        assert [(t.op, t.addr, t.data) for t in as_sink.transactions] == \
            [(t.op, t.addr, t.data) for t in legacy.transactions]

    def test_probe_ignores_non_bus_kinds(self):
        from repro.attacks import BusProbe

        probe = BusProbe()
        replay([TraceEvent(kind="hit"), TraceEvent(kind="decipher")], probe)
        assert probe.transactions == []


class TestSimStats:
    def test_read_only(self):
        stats = SimStats(CounterSink())
        with pytest.raises(AttributeError, match="read-only"):
            stats.cache_misses = 7

    def test_requires_counter_sink(self):
        with pytest.raises(TypeError):
            SimStats(NullSink())

    def test_as_dict_round_trips_json(self):
        sink = CounterSink()
        _run_system(sink)
        doc = SimStats(sink).as_dict()
        assert json.loads(json.dumps(doc)) == doc
        assert doc["accesses"] == 600


class TestSummary:
    def test_section_totals_derive_from_counters(self):
        sink = CounterSink()
        _run_system(sink)
        section = observability_section(sink)
        totals = section["totals"]
        assert totals["events"] == sum(section["counters"].values())
        assert totals["bus_transactions"] == \
            sum(section["counters"].get(k, 0) for k in BUS_KINDS)
        assert totals["stall_cycles"] == \
            section["bytes_by_kind"].get("stall", 0)

    def test_merge_equals_one_big_sink(self):
        a, b = CounterSink(), CounterSink()
        both = CounterSink()
        events_a = [TraceEvent(kind="hit"), TraceEvent(kind="miss", size=32)]
        events_b = [TraceEvent(kind="hit"), TraceEvent(kind="stall", size=5)]
        replay(events_a, a), replay(events_b, b)
        replay(events_a + events_b, both)
        merged = merge_observability(
            [observability_section(a), observability_section(b)]
        )
        assert merged == observability_section(both)

    def test_merge_of_merges_is_stable(self):
        sink = CounterSink()
        replay([TraceEvent(kind="encipher", size=32)], sink)
        section = observability_section(sink)
        once = merge_observability([section])
        assert merge_observability([once]) == once

    def test_format_counter_table_lists_every_kind(self):
        sink = CounterSink()
        _run_system(sink)
        table = obs.format_counter_table(sink, title="t")
        for kind in sink.counts:
            assert kind in table


class TestEmitBench:
    def test_micro_benchmark_runs_all_tiers(self):
        from repro.obs.bench import measure_emit_overhead

        results = measure_emit_overhead(accesses=300, repeats=1)
        assert [label for label, _ in results] == \
            ["disabled (sink=None)", "NullSink", "CounterSink"]
        assert all(wall > 0 for _, wall in results)
