"""AES: FIPS 197 vectors, S-box algebra, structure, errors."""

import pytest

from repro.crypto import AES
from repro.crypto.aes import INV_SBOX, SBOX, gf_mul


class TestFIPSVectors:
    PLAIN = bytes.fromhex("00112233445566778899aabbccddeeff")

    def test_aes128_appendix_c1(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        assert AES(key).encrypt_block(self.PLAIN).hex() == \
            "69c4e0d86a7b0430d8cdb78070b4c55a"

    def test_aes192_appendix_c2(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f1011121314151617")
        assert AES(key).encrypt_block(self.PLAIN).hex() == \
            "dda97ca4864cdfe06eaf70a0ec0d7191"

    def test_aes256_appendix_c3(self):
        key = bytes.fromhex(
            "000102030405060708090a0b0c0d0e0f"
            "101112131415161718191a1b1c1d1e1f"
        )
        assert AES(key).encrypt_block(self.PLAIN).hex() == \
            "8ea2b7ca516745bfeafc49904b496089"

    def test_aes128_appendix_b(self):
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        plain = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
        assert AES(key).encrypt_block(plain).hex() == \
            "3925841d02dc09fbdc118597196a0b32"

    @pytest.mark.parametrize("key_len", [16, 24, 32])
    def test_decrypt_inverts_fips_vectors(self, key_len):
        key = bytes(range(key_len))
        aes = AES(key)
        assert aes.decrypt_block(aes.encrypt_block(self.PLAIN)) == self.PLAIN


class TestSboxAlgebra:
    def test_sbox_is_permutation(self):
        assert sorted(SBOX) == list(range(256))

    def test_inv_sbox_inverts(self):
        for v in range(256):
            assert INV_SBOX[SBOX[v]] == v

    def test_sbox_known_entries(self):
        # FIPS 197 Figure 7 corners.
        assert SBOX[0x00] == 0x63
        assert SBOX[0x01] == 0x7C
        assert SBOX[0x53] == 0xED
        assert SBOX[0xFF] == 0x16

    def test_sbox_has_no_fixed_points(self):
        assert all(SBOX[v] != v for v in range(256))

    def test_gf_mul_identity(self):
        for v in (0, 1, 0x53, 0xFF):
            assert gf_mul(v, 1) == v

    def test_gf_mul_known_product(self):
        # FIPS 197 §4.2: {57} x {83} = {c1}
        assert gf_mul(0x57, 0x83) == 0xC1

    def test_gf_mul_commutative(self):
        for a, b in [(3, 7), (0x57, 0x13), (0xAA, 0x55)]:
            assert gf_mul(a, b) == gf_mul(b, a)

    def test_gf_mul_distributes_over_xor(self):
        a, b, c = 0x57, 0x83, 0x1F
        assert gf_mul(a, b ^ c) == gf_mul(a, b) ^ gf_mul(a, c)


class TestStructure:
    def test_roundtrip_various_keys(self):
        for key_len in (16, 24, 32):
            aes = AES(bytes(range(100, 100 + key_len)))
            for i in range(8):
                block = bytes([(i * 31 + j) & 0xFF for j in range(16)])
                assert aes.decrypt_block(aes.encrypt_block(block)) == block

    def test_avalanche(self):
        aes = AES(b"0123456789abcdef")
        a = aes.encrypt_block(bytes(16))
        b = aes.encrypt_block(bytes([1] + [0] * 15))
        diff = sum(bin(x ^ y).count("1") for x, y in zip(a, b))
        assert 40 <= diff <= 88

    def test_key_sensitivity(self):
        block = bytes(16)
        a = AES(b"0123456789abcdef").encrypt_block(block)
        b = AES(b"0123456789abcdeg").encrypt_block(block)
        assert a != b

    def test_rounds_by_key_size(self):
        assert AES(bytes(16))._rounds == 10
        assert AES(bytes(24))._rounds == 12
        assert AES(bytes(32))._rounds == 14


class TestErrors:
    def test_bad_key_length(self):
        with pytest.raises(ValueError):
            AES(bytes(15))

    def test_bad_block_length(self):
        with pytest.raises(ValueError):
            AES(bytes(16)).encrypt_block(bytes(15))

    def test_bad_block_length_decrypt(self):
        with pytest.raises(ValueError):
            AES(bytes(16)).decrypt_block(bytes(17))
