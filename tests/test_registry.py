"""Engine registry: every spec constructs, round-trips, and overrides."""

import pytest

from repro.core.registry import (
    DEFAULT_KEYS,
    ENGINE_SPECS,
    engine_names,
    get_spec,
    list_engines,
    make_engine,
)

LINE = bytes(range(32))
ADDR = 0x400


class TestConstruction:
    @pytest.mark.parametrize("name", sorted(ENGINE_SPECS))
    def test_every_spec_builds(self, name):
        engine = make_engine(name)
        assert engine.name
        assert engine.area().total > 0

    @pytest.mark.parametrize("name", sorted(ENGINE_SPECS))
    def test_instances_are_fresh(self, name):
        assert make_engine(name) is not make_engine(name)

    def test_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="aegis"):
            make_engine("enigma")

    def test_survey_subset(self):
        survey = engine_names(survey_only=True)
        assert len(survey) == 9
        assert "merkle-stream" not in survey
        assert "merkle-stream" in engine_names()
        assert [n for n, _ in list_engines()] == engine_names()


class TestRoundTrip:
    @pytest.mark.parametrize(
        "name",
        [n for n, s in sorted(ENGINE_SPECS.items()) if s.line_roundtrip],
    )
    def test_encrypt_decrypt_roundtrip(self, name):
        engine = make_engine(name)
        ciphertext = engine.encrypt_line(ADDR, LINE)
        assert ciphertext != LINE
        assert engine.decrypt_line(ADDR, ciphertext) == LINE


class TestOverrides:
    def test_key_override(self):
        custom = make_engine("stream", key=b"another-16B-key!")
        default = make_engine("stream")
        assert custom.encrypt_line(ADDR, LINE) != \
            default.encrypt_line(ADDR, LINE)

    def test_defaults_applied_and_overridable(self):
        assert get_spec("vlsi").defaults["page_size"] == 1024
        assert make_engine("vlsi").page_size == 1024
        assert make_engine("vlsi", page_size=2048).page_size == 2048

    def test_functional_false_sticks_on_wrapper(self):
        engine = make_engine("integrity-stream", functional=False)
        assert engine.functional is False
        assert engine.inner.functional is False

    def test_default_keys_match_specs(self):
        for name, spec in ENGINE_SPECS.items():
            assert spec.key_bytes in DEFAULT_KEYS, name
