"""Golden-schema regression for the committed bench metrics document.

``BENCH_quick_metrics.json`` is the repository's reference run: the
``repro-bench-metrics/3`` document ``make bench-quick`` regenerates
byte-identically for any worker count.  These tests pin its shape — keys,
canonical serialization, observability sections and the E19 detection
matrix — so schema drift fails tier-1 instead of silently landing in a
committed artifact.
"""

import json
from pathlib import Path

import pytest

from repro.faults import FAULT_KINDS, campaign_labels
from repro.runner.runner import METRICS_SCHEMA, to_canonical_json

GOLDEN = Path(__file__).resolve().parent.parent / "BENCH_quick_metrics.json"

EXPERIMENT_IDS = [f"e{n:02d}" for n in range(1, 20)]


@pytest.fixture(scope="module")
def document():
    assert GOLDEN.exists(), (
        "BENCH_quick_metrics.json is missing; regenerate it with "
        "`make bench-quick`"
    )
    return json.loads(GOLDEN.read_text(encoding="utf-8"))


class TestDocumentShape:
    def test_schema_version(self, document):
        assert document["schema"] == METRICS_SCHEMA == "repro-bench-metrics/3"
        assert document["quick"] is True

    def test_top_level_keys(self, document):
        assert set(document) == {
            "schema", "quick", "experiments", "detection_matrix",
        }

    def test_canonical_serialization(self, document):
        # The committed artifact is exactly what the runner would write:
        # stable key order, stable float formatting, trailing newline.
        assert GOLDEN.read_text(encoding="utf-8") \
            == to_canonical_json(document)

    def test_every_experiment_present_and_passing(self, document):
        experiments = document["experiments"]
        assert sorted(experiments) == EXPERIMENT_IDS
        for exp_id, doc in experiments.items():
            assert {"title", "section", "checks", "tasks"} <= set(doc), exp_id
            assert doc["checks"]["passed"] is True, exp_id
            assert doc["tasks"], exp_id

    def test_observability_sections(self, document):
        for exp_id, doc in document["experiments"].items():
            obs = doc.get("observability")
            assert obs is not None, exp_id
            assert set(obs["tasks"]) == set(doc["tasks"]), exp_id
            assert obs["total"]["totals"]["events"] > 0, exp_id

    def test_e19_observability_counts_faults(self, document):
        totals = (document["experiments"]["e19"]["observability"]
                  ["total"]["totals"])
        # 16 labels x 4 fault kinds, one injection each; every injection
        # resolves to a detection or a silent corruption except the one
        # replay that is a no-op against read-only compressed code.
        assert totals["faults_injected"] == 64
        assert totals["faults_detected"] > 0
        assert totals["faults_silent"] > 0
        assert (totals["faults_detected"] + totals["faults_silent"]
                == totals["faults_injected"] - 1)


class TestDetectionMatrix:
    def test_matrix_covers_every_campaign_label(self, document):
        matrix = document["detection_matrix"]
        assert matrix["attack_kinds"] == list(FAULT_KINDS)
        assert sorted(matrix["engines"]) == campaign_labels()

    def test_every_cell_conforms(self, document):
        for label, entry in document["detection_matrix"]["engines"].items():
            attacks = entry["attacks"]
            assert set(attacks) == {"baseline", *FAULT_KINDS}, label
            assert attacks["baseline"]["verdict"] == "clean", label
            for kind, cell in attacks.items():
                assert cell["conforms"] is True, (label, kind)
                assert cell["injected"] == (0 if kind == "baseline" else 1)
                if cell["expected_detect"]:
                    assert cell["verdict"] == "detected", (label, kind)

    def test_survey_integrity_claims(self, document):
        engines = document["detection_matrix"]["engines"]
        detectors = ("gi-auth", "integrity-stream", "integrity-xom",
                     "merkle-stream")
        for label in detectors:
            for kind in FAULT_KINDS:
                assert engines[label]["attacks"][kind]["verdict"] \
                    == "detected", (label, kind)
        # The E15 replay hole and the read-only no-op stay documented.
        assert (engines["integrity-stream-unversioned"]["attacks"]["replay"]
                ["verdict"]) == "silent-corruption"
        assert engines["compress"]["attacks"]["replay"]["verdict"] == "missed"
