"""Integrity shield engine (the survey's §5 future work, experiment E15):
tamper detection, replay protection, and its costs."""

import pytest

from repro.core import (
    IntegrityShieldEngine,
    StreamCipherEngine,
    TamperDetected,
    XomAesEngine,
)
from repro.core.engine import MemoryPort
from repro.sim import Bus, CacheConfig, MainMemory, MemoryConfig, SecureSystem
from repro.traces import Access, AccessKind, sequential_code

KEY = b"0123456789abcdef"
MAC_KEY = b"integrity-mac-key"
TAG_BASE = 0x8000


def make_engine(versioned=True, inner=None):
    inner = inner if inner is not None else XomAesEngine(KEY)
    return IntegrityShieldEngine(
        inner, mac_key=MAC_KEY, tag_region_base=TAG_BASE,
        versioned=versioned,
    )


def make_port(size=1 << 17):
    return MemoryPort(MainMemory(MemoryConfig(size=size)), Bus())


class TestFunctional:
    IMAGE = bytes((i * 3 + 7) & 0xFF for i in range(1024))

    def test_install_fill_roundtrip(self):
        engine = make_engine()
        port = make_port()
        engine.install_image(port.memory, 0, self.IMAGE)
        line, _ = engine.fill_line(port, 64, 32)
        assert line == self.IMAGE[64:96]
        assert engine.verdicts.checks == 1

    def test_write_then_fill_roundtrip(self):
        engine = make_engine()
        port = make_port()
        engine.install_image(port.memory, 0, self.IMAGE)
        engine.write_line(port, 0, bytes(range(32)))
        line, _ = engine.fill_line(port, 0, 32)
        assert line == bytes(range(32))

    def test_partial_write_roundtrip(self):
        engine = make_engine()
        port = make_port()
        engine.install_image(port.memory, 0, self.IMAGE)
        engine.write_partial(port, 5, b"\xAA\xBB", 32)
        line, _ = engine.fill_line(port, 0, 32)
        assert line[5:7] == b"\xAA\xBB"
        assert line[:5] == self.IMAGE[:5]
        assert engine.stats.rmw_operations == 1

    def test_tag_bytes_validation(self):
        with pytest.raises(ValueError):
            IntegrityShieldEngine(XomAesEngine(KEY), MAC_KEY, TAG_BASE,
                                  tag_bytes=2)


class TestTamperDetection:
    IMAGE = bytes(1024)

    def test_modified_instruction_detected(self):
        """'attacks based on the modification of the fetched
        instructions' — the exact §5 threat."""
        engine = make_engine()
        port = make_port()
        engine.install_image(port.memory, 0, self.IMAGE)
        # Attacker flips one ciphertext bit at line 2.
        raw = port.memory.dump(64, 1)[0] ^ 0x80
        port.memory.load_image(64, bytes([raw]))
        with pytest.raises(TamperDetected):
            engine.fill_line(port, 64, 32)
        assert engine.verdicts.tampers == 1

    def test_spoofed_tag_detected(self):
        engine = make_engine()
        port = make_port()
        engine.install_image(port.memory, 0, self.IMAGE)
        tag_addr = engine._tag_addr(0, 32)
        port.memory.load_image(tag_addr, bytes(8))
        with pytest.raises(TamperDetected):
            engine.fill_line(port, 0, 32)

    def test_relocation_detected(self):
        """Moving a valid (line, tag) pair to another address fails: the
        address is inside the MAC."""
        engine = make_engine(versioned=False)
        port = make_port()
        engine.install_image(port.memory, 0, self.IMAGE)
        line0 = port.memory.dump(0, 32)
        tag0 = port.memory.dump(engine._tag_addr(0, 32), 8)
        port.memory.load_image(32, line0)
        port.memory.load_image(engine._tag_addr(32, 32), tag0)
        with pytest.raises(TamperDetected):
            engine.fill_line(port, 32, 32)

    def test_clean_lines_pass(self):
        engine = make_engine()
        port = make_port()
        engine.install_image(port.memory, 0, self.IMAGE)
        for addr in range(0, 1024, 32):
            engine.fill_line(port, addr, 32)
        assert engine.verdicts.tampers == 0


class TestReplayProtection:
    """The versioned/unversioned ablation: why real designs keep on-chip
    freshness state."""

    def _replay(self, versioned: bool) -> bool:
        engine = make_engine(versioned=versioned,
                             inner=StreamCipherEngine(KEY, line_size=32))
        port = make_port()
        engine.install_image(port.memory, 0, bytes(64))

        secret_v1 = b"ACCESS=DENIED..." * 2
        engine.write_line(port, 0, secret_v1)
        # Attacker records the bus image of version 1.
        recorded_line = port.memory.dump(0, 32)
        recorded_tag = port.memory.dump(engine._tag_addr(0, 32), 8)

        secret_v2 = b"ACCESS=GRANTED!!" * 2
        engine.write_line(port, 0, secret_v2)
        # Replay the stale pair; the attacker waits out the small on-chip
        # tag cache (modeled by clearing it — the worst case).
        port.memory.load_image(0, recorded_line)
        port.memory.load_image(engine._tag_addr(0, 32), recorded_tag)
        engine._tag_cache.clear()
        try:
            line, _ = engine.fill_line(port, 0, 32)
            return False  # replay accepted (and decrypts to stale data)
        except TamperDetected:
            return True

    def test_versioned_engine_rejects_replay(self):
        assert self._replay(versioned=True)

    def test_unversioned_engine_accepts_replay(self):
        """The measurable hole: without versions the stale pair verifies."""
        assert not self._replay(versioned=False)


class TestCosts:
    def test_fill_costs_more_than_inner(self):
        inner = XomAesEngine(KEY)
        shielded = make_engine(inner=XomAesEngine(KEY))
        port_a, port_b = make_port(), make_port()
        inner.install_image(port_a.memory, 0, bytes(64))
        shielded.install_image(port_b.memory, 0, bytes(64))
        _, plain_cycles = inner.fill_line(port_a, 0, 32)
        _, shield_cycles = shielded.fill_line(port_b, 0, 32)
        assert shield_cycles > plain_cycles + shielded.hash_latency - 1

    def test_tag_memory_overhead(self):
        engine = make_engine()
        assert engine.tag_overhead_fraction(32) == pytest.approx(0.25)

    def test_area_includes_version_table(self):
        versioned = make_engine(versioned=True).area().total
        bare = make_engine(versioned=False).area().total
        assert versioned > bare

    def test_system_level_run(self):
        engine = make_engine()
        system = SecureSystem(
            engine=engine,
            cache_config=CacheConfig(size=512, line_size=32, associativity=2),
            mem_config=MemoryConfig(size=1 << 17),
        )
        system.install_image(0, bytes(4096))
        for access in sequential_code(300, code_size=4096):
            system.step(access)
        assert engine.verdicts.checks > 0
        assert engine.verdicts.tampers == 0


class TestDeprecatedCounters:
    """The pre-verdict counter attributes survive as warning aliases."""

    def test_aliases_track_the_verdict_path(self):
        engine = make_engine()
        port = make_port()
        engine.install_image(port.memory, 0, TestFunctional.IMAGE)
        engine.fill_line(port, 64, 32)
        with pytest.warns(DeprecationWarning, match="verdicts.checks"):
            assert engine.tags_verified == engine.verdicts.checks == 1
        with pytest.warns(DeprecationWarning, match="verdicts.tampers"):
            assert engine.tampers_detected == engine.verdicts.tampers == 0

    def test_merkle_and_gi_aliases(self):
        from repro.core.registry import make_engine as build
        merkle = build("merkle-stream")
        with pytest.warns(DeprecationWarning, match="verdicts.tampers"):
            assert merkle.tampers_detected == 0
        with pytest.warns(DeprecationWarning, match="verdicts.checks"):
            assert merkle.paths_verified == 0
        gi = build("gi")
        with pytest.warns(DeprecationWarning, match="verdicts.tampers"):
            assert gi.tamper_detected == 0
