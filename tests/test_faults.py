"""Tests for the fault-injection subsystem (`repro.faults`).

Three layers: plan validation and injector trigger mechanics on a bare
memory, deterministic campaign behaviour per engine (the E19 conformance
surface), and property-based checks that the whole pipeline is a pure
function of its seeds.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.faults import (
    FAULT_KINDS,
    CampaignResult,
    FaultInjector,
    FaultPlan,
    campaign_labels,
    detection_matrix,
    run_campaign,
)
from repro.obs import CounterSink
from repro.sim.memory import MainMemory, MemoryConfig

#: Labels whose ``detects`` claim covers every fault kind — the engines the
#: survey credits with real integrity (plus the ablation that adds it).
DETECTORS = ("gi-auth", "integrity-stream", "integrity-xom", "merkle-stream")

_CAMPAIGN_SETTINGS = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _memory(size=4096, fill=b"\x00"):
    memory = MainMemory(MemoryConfig(size=size))
    memory.load_image(0, fill * size)
    return memory


# -- FaultPlan validation --------------------------------------------------


class TestFaultPlan:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan("rowhammer", 0)

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError, match="size"):
            FaultPlan("spoof", 0, size=0)
        with pytest.raises(ValueError, match="addr"):
            FaultPlan("spoof", -32)

    def test_splice_requires_source(self):
        with pytest.raises(ValueError, match="source"):
            FaultPlan("splice", 0)
        FaultPlan("splice", 0, source=64)  # fine with a donor

    def test_glitch_requires_bits(self):
        with pytest.raises(ValueError, match="bits"):
            FaultPlan("glitch", 0, bits=0)

    def test_triggers_mutually_exclusive(self):
        with pytest.raises(ValueError, match="mutually exclusive"):
            FaultPlan("spoof", 0, nth_read=1, after_ops=10)
        with pytest.raises(ValueError, match="1-based"):
            FaultPlan("spoof", 0, nth_read=0)

    def test_armed_mode_and_overlap(self):
        plan = FaultPlan("spoof", 64, size=32)
        assert plan.armed_mode
        assert not FaultPlan("spoof", 64, nth_read=1).armed_mode
        assert plan.overlaps(32, 33)
        assert plan.overlaps(95, 1)
        assert not plan.overlaps(32, 32)
        assert not plan.overlaps(96, 32)


# -- injector trigger mechanics on a bare memory ---------------------------


class TestFaultInjector:
    def test_nth_read_fires_on_exactly_that_read(self):
        memory = _memory()
        plan = FaultPlan("spoof", 0, size=32, nth_read=2)
        with FaultInjector(memory, [plan], sink=None) as injector:
            first = memory.read(0, 32)
            assert injector.injected == 0
            second = memory.read(0, 32)
            assert injector.injected == 1
            assert first == b"\x00" * 32
            assert second != first
        record = injector.faults[0]
        assert (record.kind, record.addr, record.read_addr) == ("spoof", 0, 0)

    def test_nth_read_counts_only_overlapping_reads(self):
        memory = _memory()
        plan = FaultPlan("spoof", 0, size=32, nth_read=2)
        with FaultInjector(memory, [plan], sink=None) as injector:
            memory.read(512, 32)  # elsewhere: not eligible
            memory.read(0, 32)
            assert injector.injected == 0
            memory.read(0, 32)
            assert injector.injected == 1

    def test_after_ops_counts_all_traffic(self):
        memory = _memory()
        plan = FaultPlan("spoof", 0, size=32, after_ops=3)
        with FaultInjector(memory, [plan], sink=None) as injector:
            memory.read(0, 32)        # op 1: eligible but below threshold
            memory.write(512, b"x")   # op 2: writes count as traffic
            assert injector.injected == 0
            memory.read(0, 32)        # op 3: fires
            assert injector.injected == 1

    def test_armed_mode_waits_for_arm_and_fires_once(self):
        memory = _memory()
        plan = FaultPlan("spoof", 0, size=32)
        with FaultInjector(memory, [plan], sink=None) as injector:
            memory.read(0, 32)
            assert injector.injected == 0
            injector.arm()
            memory.read(0, 32)
            memory.read(0, 32)
            assert injector.injected == 1  # plans are one-shot

    def test_spoof_is_persistent_and_seed_deterministic(self):
        results = []
        for _ in range(2):
            memory = _memory()
            plan = FaultPlan("spoof", 0, size=32, nth_read=1, seed=7)
            with FaultInjector(memory, [plan], sink=None):
                returned = memory.read(0, 32)
            assert memory.dump(0, 32) == returned  # stored, not transient
            results.append(returned)
        assert results[0] == results[1]

    def test_splice_copies_donor_bytes(self):
        memory = _memory()
        memory.load_image(64, b"\xab" * 32)
        plan = FaultPlan("splice", 0, size=32, source=64, nth_read=1)
        with FaultInjector(memory, [plan], sink=None):
            assert memory.read(0, 32) == b"\xab" * 32
        assert memory.dump(64, 32) == b"\xab" * 32  # donor untouched

    def test_replay_restores_snapshot(self):
        memory = _memory()
        plan = FaultPlan("replay", 0, size=32, nth_read=1)
        with FaultInjector(memory, [plan], sink=None) as injector:
            injector.snapshot()
            memory.write(0, b"\xff" * 32)
            assert memory.read(0, 32) == b"\x00" * 32  # rolled back
        assert memory.dump(0, 32) == b"\x00" * 32

    def test_replay_without_snapshot_is_an_error(self):
        memory = _memory()
        plan = FaultPlan("replay", 0, size=32, nth_read=1)
        with FaultInjector(memory, [plan], sink=None):
            with pytest.raises(RuntimeError, match="snapshot"):
                memory.read(0, 32)

    def test_glitch_is_transient(self):
        memory = _memory()
        plan = FaultPlan("glitch", 0, size=32, nth_read=1, bits=3, seed=11)
        with FaultInjector(memory, [plan], sink=None):
            garbled = memory.read(0, 32)
        assert garbled != b"\x00" * 32
        assert sum(bin(b).count("1") for b in garbled) == 3
        assert memory.dump(0, 32) == b"\x00" * 32  # the wires, not the chip
        # Same plan seed flips the same bits.
        memory2 = _memory()
        with FaultInjector(memory2, [plan], sink=None):
            assert memory2.read(0, 32) == garbled

    def test_injected_event_reaches_the_sink(self):
        memory = _memory()
        sink = CounterSink()
        plan = FaultPlan("spoof", 0, size=32, nth_read=1)
        with FaultInjector(memory, [plan], sink=sink):
            memory.read(0, 32)
        assert sink.counts["fault.injected"] == 1


# -- campaigns: the E19 conformance surface --------------------------------


class TestCampaigns:
    @pytest.mark.parametrize("label", campaign_labels())
    def test_fault_free_baseline_is_clean(self, label):
        result = run_campaign(label, None, quick=True)
        assert result.verdict == "clean"
        assert result.conforms
        assert result.injected == 0
        assert result.tampers == 0

    def test_known_replay_hole_stays_open(self):
        # E15's finding: tags without on-chip versions pass a stale MAC.
        result = run_campaign("integrity-stream-unversioned", "replay",
                              quick=True)
        assert result.verdict == "silent-corruption"
        assert result.conforms  # the engine never claimed replay detection

    def test_compress_replay_is_a_no_op(self):
        # Compressed code is read-only; replaying memory that never
        # changed serves the very bytes the audit expects.
        result = run_campaign("compress", "replay", quick=True)
        assert result.verdict == "missed"
        assert result.conforms

    def test_detection_emits_events(self):
        sink = CounterSink()
        result = run_campaign("integrity-stream", "spoof", quick=True,
                              sink=sink)
        assert result.verdict == "detected"
        assert result.tampers == 1
        assert sink.counts["fault.injected"] == 1
        assert sink.counts["fault.detected"] == 1
        assert "fault.silent" not in sink.counts

    def test_silent_corruption_emits_events(self):
        sink = CounterSink()
        result = run_campaign("stream", "spoof", quick=True, sink=sink)
        assert result.verdict == "silent-corruption"
        assert sink.counts["fault.injected"] == 1
        assert sink.counts["fault.silent"] == 1

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            run_campaign("stream", "rowhammer", quick=True)

    @settings(max_examples=6, **_CAMPAIGN_SETTINGS)
    @given(
        label=st.sampled_from(DETECTORS),
        kind=st.sampled_from(FAULT_KINDS),
    )
    def test_integrity_engines_detect_every_fault(self, label, kind):
        result = run_campaign(label, kind, quick=True)
        assert result.expected_detect
        assert result.verdict == "detected"
        assert result.conforms
        assert result.injected == 1
        assert result.tampers >= 1

    @settings(max_examples=4, **_CAMPAIGN_SETTINGS)
    @given(
        seed=st.integers(min_value=0, max_value=2 ** 16),
        kind=st.sampled_from((None,) + FAULT_KINDS),
    )
    def test_campaigns_are_pure_functions_of_the_seed(self, seed, kind):
        first = run_campaign("ds5002fp", kind, seed=seed, quick=True)
        second = run_campaign("ds5002fp", kind, seed=seed, quick=True)
        assert first.to_metrics() == second.to_metrics()


# -- matrix assembly -------------------------------------------------------


class TestDetectionMatrix:
    def _results(self):
        return [
            run_campaign("ds5002fp", None, quick=True),
            run_campaign("ds5002fp", "spoof", quick=True),
        ]

    def test_accepts_results_and_their_dict_form(self):
        results = self._results()
        from_objects = detection_matrix(results)
        from_dicts = detection_matrix([r.to_metrics() for r in results])
        assert from_objects == from_dicts
        assert from_objects["attack_kinds"] == list(FAULT_KINDS)
        entry = from_objects["engines"]["ds5002fp"]
        assert set(entry["attacks"]) == {"baseline", "spoof"}
        assert entry["attacks"]["baseline"]["verdict"] == "clean"

    def test_verdict_taxonomy(self):
        base = dict(label="x", engine_name="x", kind="spoof",
                    expected_detect=True, injected=1)
        assert CampaignResult(**base, detected=True,
                              corrupted=False).verdict == "detected"
        assert CampaignResult(**base, detected=False,
                              corrupted=True).verdict == "silent-corruption"
        assert CampaignResult(**base, detected=False,
                              corrupted=False).verdict == "missed"
        clean = dict(base, kind=None, expected_detect=False, injected=0)
        assert CampaignResult(**clean, detected=False,
                              corrupted=False).verdict == "clean"
        assert CampaignResult(**clean, detected=False,
                              corrupted=True).verdict == "broken"
