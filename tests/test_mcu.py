"""MCU core: instruction semantics, observable events, encrypted execution."""

import pytest

from repro.crypto import SmallBlockCipher
from repro.isa import INSTRUCTION_LENGTHS, MCU, Op, assemble


def run_mcu(source: str, size: int = 512, decrypt=None, encrypt=None,
            encrypt_image=None):
    image = assemble(source, size=size)
    if encrypt_image is not None:
        image = encrypt_image(image)
    mcu = MCU(bytearray(image), decrypt=decrypt, encrypt=encrypt)
    mcu.run()
    return mcu


class TestInstructions:
    def test_mov_a_imm_and_out(self):
        mcu = run_mcu("MOV A, #0x42\n OUT\n HALT")
        assert mcu.port_log == [0x42]

    def test_registers(self):
        mcu = run_mcu("""
            MOV R3, #7
            MOV A, R3
            OUT
            MOV A, #1
            MOV R3, A
            MOV A, R3
            OUT
            HALT
        """)
        assert mcu.port_log == [7, 1]

    def test_arithmetic(self):
        mcu = run_mcu("""
            MOV A, #250
            ADD A, #10      ; wraps to 4
            OUT
            MOV R1, #3
            SUB A, R1       ; 1
            OUT
            INC
            INC
            OUT             ; 3
            DEC
            OUT             ; 2
            HALT
        """)
        assert mcu.port_log == [4, 1, 3, 2]

    def test_logic(self):
        mcu = run_mcu("""
            MOV A, #0x0F
            XRL A, #0xFF
            OUT             ; 0xF0
            ANL A, #0x3C
            OUT             ; 0x30
            ORL A, #0x03
            OUT             ; 0x33
            HALT
        """)
        assert mcu.port_log == [0xF0, 0x30, 0x33]

    def test_jumps(self):
        mcu = run_mcu("""
            MOV A, #0
            JZ taken
            MOV A, #1       ; skipped
        taken:
            OUT             ; 0
            MOV A, #5
            JNZ also
            MOV A, #2       ; skipped
        also:
            OUT             ; 5
            JMP end
            MOV A, #3       ; skipped
        end:
            OUT             ; 5
            HALT
        """)
        assert mcu.port_log == [0, 5, 5]

    def test_djnz_loop(self):
        mcu = run_mcu("""
            MOV R2, #3
            MOV A, #0
        loop:
            INC
            DJNZ R2, loop
            OUT
            HALT
        """)
        assert mcu.port_log == [3]

    def test_call_ret(self):
        mcu = run_mcu("""
            CALL sub
            OUT             ; A = 9 after return
            HALT
        sub:
            MOV A, #9
            RET
        """)
        assert mcu.port_log == [9]

    def test_push_pop(self):
        mcu = run_mcu("""
            MOV A, #7
            PUSH
            MOV A, #0
            POP
            OUT
            HALT
        """)
        assert mcu.port_log == [7]

    def test_direct_memory(self):
        mcu = run_mcu("""
            MOV A, #0x5A
            MOV 0x100, A
            MOV A, #0
            MOV A, 0x100
            OUT
            HALT
        """)
        assert mcu.port_log == [0x5A]

    def test_indirect_memory(self):
        mcu = run_mcu("""
            MOV R0, #1      ; high byte
            MOV R1, #0      ; low byte -> 0x0100
            MOV A, #0x77
            MOVIST
            MOV A, #0
            MOVI
            OUT
            HALT
        """)
        assert mcu.port_log == [0x77]

    def test_inc_r(self):
        mcu = run_mcu("""
            MOV R4, #41
            INC R4
            MOV A, R4
            OUT
            HALT
        """)
        assert mcu.port_log == [42]

    def test_undefined_opcode_is_nop(self):
        image = bytearray(64)
        image[0] = 0xAB          # undefined
        image[1] = Op.OUT
        image[2] = Op.HALT
        mcu = MCU(image)
        mcu.run()
        assert mcu.port_log == [0]
        assert mcu.halted


class TestEvents:
    def test_fetch_addresses_reported(self):
        mcu = MCU(bytearray(assemble("MOV A, #1\n HALT", size=64)))
        ev = mcu.step()
        assert ev.fetched == [0, 1]
        assert ev.next_pc == 2

    def test_data_read_event(self):
        mcu = MCU(bytearray(assemble("MOV A, 0x123\n HALT", size=512)))
        ev = mcu.step()
        assert ev.data_read == 0x123

    def test_data_write_event(self):
        mcu = MCU(bytearray(assemble("MOV 0x80, A\n HALT", size=512)))
        ev = mcu.step()
        assert ev.data_write == 0x80

    def test_port_event(self):
        mcu = MCU(bytearray(assemble("MOV A, #9\n OUT\n HALT", size=64)))
        mcu.step()
        ev = mcu.step()
        assert ev.port_write == 9

    def test_halt_event(self):
        mcu = MCU(bytearray(assemble("HALT", size=64)))
        ev = mcu.step()
        assert ev.halted
        assert mcu.step().halted  # stays halted

    def test_reset_restores_state(self):
        mcu = MCU(bytearray(assemble("MOV A, #5\n HALT", size=64)))
        mcu.run()
        mcu.reset()
        assert mcu.a == 0 and mcu.pc == 0 and not mcu.halted


class TestEncryptedExecution:
    def test_program_runs_identically_under_encryption(self):
        """The DS5002FP property: with matching encrypt/decrypt hooks the
        encrypted part behaves exactly like the clear one."""
        source = """
            MOV R2, #5
            MOV A, #0
        loop:
            ADD A, #3
            OUT
            DJNZ R2, loop
            HALT
        """
        clear = run_mcu(source)
        cipher = SmallBlockCipher(b"secret")
        encrypted = run_mcu(
            source,
            decrypt=cipher.decrypt_byte,
            encrypt=cipher.encrypt_byte,
            encrypt_image=lambda img: bytearray(cipher.encrypt(0, bytes(img))),
        )
        assert encrypted.port_log == clear.port_log

    def test_memory_holds_ciphertext(self):
        source = "MOV A, #0x42\n OUT\n HALT"
        image = assemble(source, size=64)
        cipher = SmallBlockCipher(b"secret")
        mcu = MCU(
            bytearray(cipher.encrypt(0, image)),
            decrypt=cipher.decrypt_byte,
            encrypt=cipher.encrypt_byte,
        )
        mcu.run()
        assert mcu.port_log == [0x42]
        assert bytes(mcu.memory[:8]) != image[:8]

    def test_data_writes_encrypted(self):
        source = """
            MOV A, #0x5A
            MOV 0x30, A
            HALT
        """
        cipher = SmallBlockCipher(b"secret")
        image = assemble(source, size=64)
        mcu = MCU(
            bytearray(cipher.encrypt(0, image)),
            decrypt=cipher.decrypt_byte,
            encrypt=cipher.encrypt_byte,
        )
        mcu.run()
        assert mcu.memory[0x30] == cipher.encrypt_byte(0x30, 0x5A)
        assert mcu.memory[0x30] != 0x5A or cipher.encrypt_byte(0x30, 0x5A) == 0x5A


class TestLengthTable:
    def test_lengths_match_execution(self):
        """INSTRUCTION_LENGTHS (public ISA knowledge the attack uses) must
        agree with the core's actual fetch counts."""
        for opcode, length in INSTRUCTION_LENGTHS.items():
            if opcode in (Op.JMP, Op.JZ, Op.JNZ, Op.DJNZ, Op.CALL, Op.RET,
                          Op.HALT):
                continue
            image = bytearray(64)
            image[0] = opcode
            mcu = MCU(image)
            ev = mcu.step()
            assert len(ev.fetched) == length, f"opcode {opcode:#x}"
