"""Stream generators: RC4 vectors, LFSR periods, combiner properties."""

import pytest

from repro.crypto import LFSR, AlternatingStepGenerator, GeffeGenerator, RC4
from repro.crypto.lfsr import MAXIMAL_TAPS
from repro.compression import shannon_entropy


class TestRC4:
    def test_wikipedia_vector_key(self):
        assert RC4(b"Key").process(b"Plaintext").hex().upper() == \
            "BBF316E8D940AF0AD3"

    def test_wikipedia_vector_wiki(self):
        assert RC4(b"Wiki").process(b"pedia").hex().upper() == \
            "1021BF0420"

    def test_wikipedia_vector_secret(self):
        assert RC4(b"Secret").process(b"Attack at dawn").hex().upper() == \
            "45A01F645FC35B383552544B9BF5"

    def test_symmetric(self):
        ct = RC4(b"key").process(b"message")
        assert RC4(b"key").process(ct) == b"message"

    def test_keystream_is_stateful(self):
        rc4 = RC4(b"key")
        a = rc4.keystream(16)
        b = rc4.keystream(16)
        assert a != b

    def test_keystream_matches_fresh_offset(self):
        rc4 = RC4(b"key")
        combined = rc4.keystream(32)
        fresh = RC4(b"key")
        assert fresh.keystream(16) == combined[:16]
        assert fresh.keystream(16) == combined[16:]

    def test_bad_key_length(self):
        with pytest.raises(ValueError):
            RC4(b"")

    def test_keystream_entropy(self):
        stream = RC4(b"entropy-test-key").keystream(4096)
        assert shannon_entropy(stream) > 7.5


class TestLFSR:
    def test_period_of_maximal_4bit(self):
        # x^4 + x^3 + 1 is maximal: period 2^4 - 1 = 15.
        lfsr = LFSR((4, 3), seed=1)
        assert lfsr.period() == 15

    def test_period_of_maximal_8bit(self):
        lfsr = LFSR(MAXIMAL_TAPS[8], seed=1)
        assert lfsr.period() == 255

    def test_period_of_maximal_16bit(self):
        lfsr = LFSR(MAXIMAL_TAPS[16], seed=0xACE1)
        assert lfsr.period() == 65535

    def test_zero_seed_rejected(self):
        with pytest.raises(ValueError):
            LFSR((4, 3), seed=0)

    def test_empty_taps_rejected(self):
        with pytest.raises(ValueError):
            LFSR((), seed=1)

    def test_deterministic(self):
        a = LFSR((16, 15, 13, 4), seed=0xBEEF).bits(64)
        b = LFSR((16, 15, 13, 4), seed=0xBEEF).bits(64)
        assert a == b

    def test_balanced_output(self):
        """Maximal LFSR output over a full period is nearly balanced."""
        bits = LFSR(MAXIMAL_TAPS[8], seed=1).bits(255)
        ones = sum(bits)
        assert ones == 128  # 2^(n-1) ones in a maximal sequence


class TestGeffe:
    def test_deterministic(self):
        a = GeffeGenerator(1, 2, 3).keystream(64)
        b = GeffeGenerator(1, 2, 3).keystream(64)
        assert a == b

    def test_seed_sensitivity(self):
        assert GeffeGenerator(1, 2, 3).keystream(64) != \
            GeffeGenerator(1, 2, 4).keystream(64)

    def test_correlation_weakness(self):
        """The Geffe output correlates ~75% with LFSR b — the textbook flaw.

        This is the quantitative gap between a cheap combiner and a proper
        cipher that §4's 'sufficiently random to be secure' worries about.
        """
        gen = GeffeGenerator(0x1ACE, 0x2BEEF, 0x3CAFE)
        shadow_b = LFSR(MAXIMAL_TAPS[23], 0x2BEEF)
        matches = 0
        n = 4000
        for _ in range(n):
            out = gen.step()
            # Keep the shadow register in lockstep with the real b.
            if shadow_b.step() == out:
                matches += 1
        assert 0.70 <= matches / n <= 0.80

    def test_keystream_entropy(self):
        stream = GeffeGenerator(11, 222, 3333).keystream(4096)
        assert shannon_entropy(stream) > 7.0


class TestAlternatingStep:
    def test_deterministic(self):
        a = AlternatingStepGenerator(5, 6, 7).keystream(64)
        b = AlternatingStepGenerator(5, 6, 7).keystream(64)
        assert a == b

    def test_differs_from_geffe(self):
        assert AlternatingStepGenerator(1, 2, 3).keystream(32) != \
            GeffeGenerator(1, 2, 3).keystream(32)

    def test_keystream_entropy(self):
        stream = AlternatingStepGenerator(11, 222, 3333).keystream(4096)
        assert shannon_entropy(stream) > 7.0
