"""Entropy estimators and the compress-before-encrypt ordering claim."""

import pytest

from repro.compression import (
    block_collision_rate,
    byte_histogram,
    chi_square_uniform,
    lz77_compress,
    redundancy,
    shannon_entropy,
)
from repro.crypto import AES, CTR, DRBG


class TestShannonEntropy:
    def test_empty(self):
        assert shannon_entropy(b"") == 0.0

    def test_constant(self):
        assert shannon_entropy(b"\x00" * 100) == 0.0

    def test_two_equal_symbols(self):
        assert shannon_entropy(b"ab" * 50) == pytest.approx(1.0)

    def test_uniform_max(self):
        assert shannon_entropy(bytes(range(256)) * 4) == pytest.approx(8.0)

    def test_bounds(self):
        data = b"some typical english-like text with structure"
        assert 0.0 < shannon_entropy(data) < 8.0


class TestRedundancy:
    def test_constant_is_fully_redundant(self):
        assert redundancy(b"\x00" * 64) == pytest.approx(1.0)

    def test_uniform_has_none(self):
        assert redundancy(bytes(range(256)) * 2) == pytest.approx(0.0)


class TestCollisionRate:
    def test_no_duplicates(self):
        data = bytes(range(64))
        assert block_collision_rate(data, 8) == 0.0

    def test_all_duplicates(self):
        data = b"ABCDEFGH" * 8
        assert block_collision_rate(data, 8) == pytest.approx(7 / 8)

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            block_collision_rate(b"x", 0)

    def test_empty(self):
        assert block_collision_rate(b"", 8) == 0.0


class TestChiSquare:
    def test_uniform_near_dof(self):
        data = DRBG(5).random_bytes(65536)
        assert 150 < chi_square_uniform(data) < 400  # dof = 255

    def test_constant_is_huge(self):
        assert chi_square_uniform(b"\x00" * 1000) > 100_000

    def test_empty(self):
        assert chi_square_uniform(b"") == 0.0


class TestHistogram:
    def test_counts(self):
        hist = byte_histogram(b"aab")
        assert hist[ord("a")] == 2
        assert hist[ord("b")] == 1


class TestOrderingClaim:
    """§4: compression must precede encryption."""

    def test_ciphertext_does_not_compress(self):
        plain = b"compressible structured data! " * 200
        ct = CTR(AES(b"0123456789abcdef"), nonce=bytes(12)).encrypt(plain)
        assert len(lz77_compress(ct)) > 0.95 * len(ct)

    def test_plaintext_does_compress(self):
        plain = b"compressible structured data! " * 200
        assert len(lz77_compress(plain)) < 0.5 * len(plain)

    def test_encryption_raises_entropy(self):
        """'compression increases the message entropy' — so does ciphering;
        a structured message gains entropy through AES-CTR."""
        plain = b"low entropy plaintext " * 100
        ct = CTR(AES(b"0123456789abcdef"), nonce=bytes(12)).encrypt(plain)
        assert shannon_entropy(ct) > shannon_entropy(plain) + 2.0
