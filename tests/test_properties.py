"""Cross-cutting property-based tests (hypothesis) on the core invariants.

Invariants exercised:
* every engine decrypts what it encrypted, at any address, for any line;
* external memory after any store/flush sequence decrypts to what the
  system thinks it wrote (the functional-consistency invariant);
* the cache never exceeds its capacity and never double-caches a line;
* encryption engines never *lose* cycles (secured >= baseline);
* AES/DES encrypt-decrypt are inverse permutations over random blocks.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AegisEngine,
    BestEngine,
    DS5002FPEngine,
    DS5240Engine,
    GilmontEngine,
    StreamCipherEngine,
    XomAesEngine,
)
from repro.crypto import AES, DES, DRBG
from repro.sim import Cache, CacheConfig, MemoryConfig, SecureSystem
from repro.traces import Access, AccessKind

KEY16 = b"0123456789abcdef"
KEY24 = b"0123456789abcdef01234567"

ENGINE_BUILDERS = [
    lambda: XomAesEngine(KEY16),
    lambda: AegisEngine(KEY16),
    lambda: GilmontEngine(KEY24),
    lambda: BestEngine(KEY16),
    lambda: DS5002FPEngine(KEY16),
    lambda: DS5240Engine(KEY16),
    lambda: StreamCipherEngine(KEY16, line_size=32),
]


@settings(max_examples=20, deadline=None)
@given(
    engine_idx=st.integers(0, len(ENGINE_BUILDERS) - 1),
    line_index=st.integers(0, 1 << 14),
    seed=st.integers(0, 2 ** 32),
)
def test_engine_line_roundtrip(engine_idx, line_index, seed):
    engine = ENGINE_BUILDERS[engine_idx]()
    addr = line_index * 32
    line = DRBG(seed).random_bytes(32)
    assert engine.decrypt_line(addr, engine.encrypt_line(addr, line)) == line


@settings(max_examples=20, deadline=None)
@given(
    engine_idx=st.integers(0, len(ENGINE_BUILDERS) - 1),
    seed=st.integers(0, 2 ** 32),
)
def test_engine_install_matches_read_plaintext(engine_idx, seed):
    engine = ENGINE_BUILDERS[engine_idx]()
    system = SecureSystem(
        engine=engine,
        cache_config=CacheConfig(size=512, line_size=32, associativity=2),
        mem_config=MemoryConfig(size=1 << 16),
    )
    image = DRBG(seed).random_bytes(256)
    system.install_image(0, image)
    assert system.read_plaintext(0, 256) == image


@settings(max_examples=15, deadline=None)
@given(
    engine_idx=st.integers(0, len(ENGINE_BUILDERS) - 1),
    writes=st.lists(
        st.tuples(st.integers(0, 15), st.integers(0, 255)),
        min_size=1, max_size=12,
    ),
)
def test_store_flush_consistency(engine_idx, writes):
    """Whatever sequence of stores the CPU performs, flushing leaves the
    external image decrypting to exactly the final values."""
    engine = ENGINE_BUILDERS[engine_idx]()
    system = SecureSystem(
        engine=engine,
        cache_config=CacheConfig(size=256, line_size=32, associativity=2),
        mem_config=MemoryConfig(size=1 << 16),
    )
    system.install_image(0, bytes(512))
    expected = bytearray(512)
    for line_idx, value in writes:
        addr = line_idx * 32
        payload = bytes([value] * 4)
        system.step(Access(AccessKind.STORE, addr, 4), data=payload)
        expected[addr: addr + 4] = payload
    system.flush()
    assert system.read_plaintext(0, 512) == bytes(expected)


@settings(max_examples=30, deadline=None)
@given(
    addrs=st.lists(st.integers(0, 255), min_size=1, max_size=200),
    write_mask=st.integers(0, 2 ** 16),
)
def test_cache_capacity_invariant(addrs, write_mask):
    cache = Cache(CacheConfig(size=256, line_size=32, associativity=2))
    for i, line_idx in enumerate(addrs):
        cache.access(line_idx * 32, is_write=bool((write_mask >> (i % 16)) & 1))
        occupancy = sum(len(s) for s in cache._sets)
        assert occupancy <= cache.config.size // cache.config.line_size
        for cache_set in cache._sets:
            assert len(cache_set) <= cache.config.associativity
    assert cache.hits + cache.misses == len(addrs)


@settings(max_examples=30, deadline=None)
@given(
    addrs=st.lists(st.integers(0, 1023), min_size=1, max_size=100),
)
def test_secured_never_faster(addrs):
    """An encryption engine can only add cycles."""
    trace = [Access(AccessKind.LOAD, a * 32) for a in addrs]
    baseline = SecureSystem(
        cache_config=CacheConfig(size=512, line_size=32, associativity=2),
        mem_config=MemoryConfig(size=1 << 16),
    )
    secured = SecureSystem(
        engine=XomAesEngine(KEY16, functional=False),
        cache_config=CacheConfig(size=512, line_size=32, associativity=2),
        mem_config=MemoryConfig(size=1 << 16),
    )
    baseline.run(list(trace))
    secured.run(list(trace))
    assert secured.cycles >= baseline.cycles


@settings(max_examples=50, deadline=None)
@given(block=st.binary(min_size=16, max_size=16),
       key=st.binary(min_size=16, max_size=16))
def test_aes_inverse_property(block, key):
    aes = AES(key)
    assert aes.decrypt_block(aes.encrypt_block(block)) == block
    assert aes.encrypt_block(aes.decrypt_block(block)) == block


@settings(max_examples=50, deadline=None)
@given(block=st.binary(min_size=8, max_size=8),
       key=st.binary(min_size=8, max_size=8))
def test_des_inverse_property(block, key):
    des = DES(key)
    assert des.decrypt_block(des.encrypt_block(block)) == block
    assert des.encrypt_block(des.decrypt_block(block)) == block


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2 ** 32), n=st.integers(1, 64))
def test_drbg_streams_are_prefix_consistent(seed, n):
    a = DRBG(seed).random_bytes(n)
    b = DRBG(seed).random_bytes(128)
    assert b[:n] == a
