"""PKCS#7 padding: roundtrips and malformed-input rejection."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import PaddingError, pad, unpad


class TestPad:
    def test_basic(self):
        assert pad(b"abc", 8) == b"abc\x05\x05\x05\x05\x05"

    def test_exact_multiple_adds_full_block(self):
        assert pad(b"12345678", 8) == b"12345678" + b"\x08" * 8

    def test_empty_input(self):
        assert pad(b"", 4) == b"\x04" * 4

    def test_result_is_multiple(self):
        for n in range(20):
            assert len(pad(bytes(n), 8)) % 8 == 0

    def test_bad_block_size(self):
        with pytest.raises(ValueError):
            pad(b"x", 0)
        with pytest.raises(ValueError):
            pad(b"x", 256)


class TestUnpad:
    def test_roundtrip(self):
        for n in range(32):
            data = bytes(range(n))
            assert unpad(pad(data, 16), 16) == data

    def test_empty_buffer_rejected(self):
        with pytest.raises(PaddingError):
            unpad(b"", 8)

    def test_non_multiple_rejected(self):
        with pytest.raises(PaddingError):
            unpad(b"abc", 8)

    def test_pad_byte_zero_rejected(self):
        with pytest.raises(PaddingError):
            unpad(b"1234567\x00", 8)

    def test_pad_byte_too_large_rejected(self):
        with pytest.raises(PaddingError):
            unpad(b"1234567\x09", 8)

    def test_inconsistent_pad_rejected(self):
        with pytest.raises(PaddingError):
            unpad(b"12345\x02\x03\x03", 8)


@settings(max_examples=100, deadline=None)
@given(data=st.binary(max_size=100),
       block=st.integers(min_value=1, max_value=32))
def test_pad_roundtrip_property(data, block):
    assert unpad(pad(data, block), block) == data
