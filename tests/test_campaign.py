"""Campaigns: grid expansion, sharding, deterministic merge, resume."""

import json
import random

import pytest

from repro.campaign import (
    CampaignCoordinator,
    CampaignSpec,
    build_document,
    merge_shard_documents,
    shard_document,
)
from repro.runner import ResultCache, stable_floats, task_seed, \
    to_canonical_json

SMALL = CampaignSpec(
    engines=("stream", "xom"),
    workloads=("mixed", "sequential"),
    accesses=(256,),
    cache_sizes=(1024, 4096),
    latencies=(20,),
)


class TestSpec:
    def test_size_matches_expansion(self):
        assert SMALL.size == 8
        assert len(SMALL.points()) == 8

    def test_points_are_sorted_and_named(self):
        names = [p.name for p in SMALL.points()]
        assert names == sorted(names)
        assert "stream/mixed/n256/c1024x32x2/l20/s2005" in names

    def test_task_keys_are_stable_and_distinct(self):
        points = SMALL.points()
        keys = [p.task_key() for p in points]
        assert len(set(keys)) == len(keys)
        assert keys == [p.task_key() for p in SMALL.points()]

    def test_task_key_differs_from_experiment_namespace(self):
        point = SMALL.points()[0]
        clash = ResultCache.task_key(
            point.kind, point.name, dict(point.params), quick=False)
        assert point.task_key() != clash

    def test_dict_round_trip(self):
        assert CampaignSpec.from_dict(SMALL.to_dict()) == SMALL

    def test_unknown_spec_field_rejected(self):
        doc = SMALL.to_dict()
        doc["ciphers"] = ["aes"]
        with pytest.raises(ValueError, match="ciphers"):
            CampaignSpec.from_dict(doc)

    def test_unknown_engine_and_workload_rejected(self):
        with pytest.raises(KeyError, match="sealer"):
            CampaignSpec(engines=("sealer",)).points()
        with pytest.raises(KeyError, match="weird"):
            CampaignSpec(workloads=("weird",)).points()

    def test_invalid_cache_geometry_names_the_combo(self):
        spec = CampaignSpec(cache_sizes=(1000,), line_sizes=(32,),
                            associativities=(3,))
        with pytest.raises(ValueError, match="1000x32x3"):
            spec.points()

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="engines"):
            CampaignSpec(engines=())

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            CampaignSpec(kind="latency")

    def test_faults_axes(self):
        spec = CampaignSpec(kind="faults", engines=("stream",),
                            fault_kinds=(None, "spoof"))
        names = [p.name for p in spec.points()]
        assert names == ["stream/baseline/s2005", "stream/spoof/s2005"]
        with pytest.raises(KeyError, match="bogus"):
            CampaignSpec(kind="faults", engines=("bogus",)).points()


class TestSharding:
    def test_offset_striding_membership(self):
        coordinator = CampaignCoordinator(SMALL, workers=1, shards=3,
                                          cache_dir=None)
        assert [coordinator.shard_of(i) for i in range(7)] == \
            [0, 1, 2, 0, 1, 2, 0]

    def test_plan_assigns_every_point_once(self, tmp_path):
        coordinator = CampaignCoordinator(SMALL, workers=1, shards=3,
                                          cache_dir=tmp_path / "cache")
        results, shard_items, shard_stats = coordinator.plan()
        assert not results
        names = [item[0] for items in shard_items.values()
                 for item in items]
        assert sorted(names) == [p.name for p in SMALL.points()]
        assert sum(s["misses"] for s in shard_stats.values()) == SMALL.size

    def test_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            CampaignCoordinator(SMALL, workers=0)
        with pytest.raises(ValueError):
            CampaignCoordinator(SMALL, workers=1, shards=0)


class TestDeterminism:
    def test_multiworker_output_byte_identical(self, tmp_path):
        one = CampaignCoordinator(SMALL, workers=1,
                                  cache_dir=tmp_path / "c1").run()
        four = CampaignCoordinator(SMALL, workers=4, shards=8,
                                   cache_dir=tmp_path / "c4").run()
        assert one.metrics_json() == four.metrics_json()
        assert four.profile["shards"] == 8

    def test_cached_replay_is_byte_identical(self, tmp_path):
        fresh = CampaignCoordinator(SMALL, workers=1,
                                    cache_dir=tmp_path / "c").run()
        replay = CampaignCoordinator(SMALL, workers=1,
                                     cache_dir=tmp_path / "c").run()
        assert replay.executed == 0
        assert replay.metrics_json() == fresh.metrics_json()

    def test_no_cache_still_deterministic(self):
        one = CampaignCoordinator(SMALL, workers=1, cache_dir=None).run()
        two = CampaignCoordinator(SMALL, workers=1, cache_dir=None).run()
        assert one.metrics_json() == two.metrics_json()
        assert one.profile["cache"]["dir"] is None


class TestMerge:
    def _shards(self, result, shards=4):
        names = sorted(result.points)
        return [
            shard_document(s, [(n, result.points[n])
                               for n in names[s::shards]])
            for s in range(shards)
        ]

    def test_shuffled_shard_arrival_is_byte_identical(self, tmp_path):
        # Regression (shard merge determinism): whatever order shards
        # complete in, the reduced document must be the same bytes.
        result = CampaignCoordinator(SMALL, workers=1,
                                     cache_dir=tmp_path / "c").run()
        docs = self._shards(result)
        reference = to_canonical_json(
            build_document(SMALL, merge_shard_documents(docs)))
        rng = random.Random(2005)
        for _ in range(5):
            rng.shuffle(docs)
            shuffled = to_canonical_json(
                build_document(SMALL, merge_shard_documents(docs)))
            assert shuffled == reference
        assert reference == result.metrics_json()

    def test_duplicate_points_must_agree(self):
        agree = [shard_document(0, [("p", {"x": 1})]),
                 shard_document(1, [("p", {"x": 1})])]
        assert merge_shard_documents(agree) == {"p": {"x": 1}}
        clash = [shard_document(0, [("p", {"x": 1})]),
                 shard_document(1, [("p", {"x": 2})])]
        with pytest.raises(ValueError, match="conflicting"):
            merge_shard_documents(clash)

    def test_stable_floats_canonicalize(self):
        assert stable_floats({"a": 0.1234567891}) == {"a": 0.123457}
        assert stable_floats([-0.0000001]) == [0.0]
        assert stable_floats((1, "x", 2.0)) == [1, "x", 2.0]
        value = {"nested": {"overhead": -0.011364}}
        assert stable_floats(value) == value


class TestResume:
    def test_interrupt_then_resume_executes_only_the_rest(self, tmp_path):
        cache_dir = tmp_path / "cache"
        uninterrupted = CampaignCoordinator(
            SMALL, workers=1, cache_dir=tmp_path / "reference").run()

        # Kill the coordinator after 3 completed points (the progress
        # callback fires after each point is published to the cache).
        done = []

        def killer(line):
            if "[done]" in line:
                done.append(line)
                if len(done) == 3:
                    raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            CampaignCoordinator(SMALL, workers=1, cache_dir=cache_dir,
                                progress=killer).run()

        # Rerun: the 3 completed points replay as hits, only the
        # remaining 5 execute, and the merged metrics match an
        # uninterrupted run byte-for-byte.
        resumed = CampaignCoordinator(SMALL, workers=1,
                                      cache_dir=cache_dir).run()
        cache = resumed.profile["cache"]
        assert cache["hits"] == 3
        assert cache["misses"] == SMALL.size - 3
        assert resumed.executed == SMALL.size - 3
        per_shard = cache["per_shard"]
        assert sum(s["hits"] for s in per_shard.values()) == 3
        assert sum(s["misses"] for s in per_shard.values()) == SMALL.size - 3
        assert resumed.metrics_json() == uninterrupted.metrics_json()

    def test_schema_bump_invalidates_cached_points(self, tmp_path):
        point = SMALL.points()[0]
        cache = ResultCache(tmp_path / "c")
        cache.put(point.task_key(schema="repro-campaign-metrics/0"),
                  {"metrics": {"stale": True}})
        assert cache.get(point.task_key()) is None


class TestFaultsCampaign:
    def test_faults_grid_runs_and_summarizes(self, tmp_path):
        spec = CampaignSpec(kind="faults",
                            engines=("stream", "integrity-stream"),
                            fault_kinds=("spoof",))
        result = CampaignCoordinator(spec, workers=1,
                                     cache_dir=tmp_path / "c").run()
        assert result.summary["points"] == 2
        assert result.summary["conforming"] == 2
        detected = result.points["integrity-stream/spoof/s2005"]
        assert detected["verdict"] == "detected"
        silent = result.points["stream/spoof/s2005"]
        assert silent["verdict"] == "silent-corruption"


class TestSeedNamespace:
    def test_task_seed_generalizes_without_breaking_pairs(self):
        assert task_seed("e01", "cost-gap") == task_seed("e01", "cost-gap")
        assert task_seed("campaign", "overhead", "p1") != \
            task_seed("campaign", "overhead", "p2")
        # The multi-part form is the joined two-part form.
        assert task_seed("campaign", "overhead", "p1") == \
            task_seed("campaign", "overhead:p1")


class TestCampaignCli:
    def test_cli_writes_metrics_and_profile(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "metrics.json"
        rc = main([
            "campaign", "--engines", "stream", "--workloads", "mixed",
            "--latencies", "20", "40",
            "--cache-dir", str(tmp_path / "cache"), "--out", str(out),
        ])
        assert rc == 0
        stdout = capsys.readouterr().out
        assert "2 points" in stdout
        doc = json.loads(out.read_text())
        assert doc["schema"] == "repro-campaign-metrics/1"
        assert len(doc["points"]) == 2
        profile = json.loads(
            (tmp_path / "metrics_profile.json").read_text())
        assert profile["workers"] == 1

    def test_cli_spec_file_with_override(self, tmp_path, capsys):
        from repro.cli import main

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(
            CampaignSpec(engines=("stream",), latencies=(20,)).to_dict()))
        out = tmp_path / "metrics.json"
        rc = main([
            "campaign", "--spec", str(spec_path),
            "--engines", "stream", "xom",
            "--cache-dir", str(tmp_path / "cache"), "--out", str(out),
        ])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert sorted(doc["spec"]["engines"]) == ["stream", "xom"]

    def test_cli_rejects_unknown_engine(self, tmp_path, capsys):
        from repro.cli import main

        rc = main([
            "campaign", "--engines", "sealer", "--no-cache",
            "--out", str(tmp_path / "m.json"),
        ])
        assert rc == 2
        assert "unknown engine" in capsys.readouterr().err

    def test_cli_empty_grid_is_a_one_line_error(self, tmp_path, capsys):
        from repro.cli import main

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({"engines": []}))
        rc = main([
            "campaign", "--spec", str(spec_path), "--no-cache",
            "--out", str(tmp_path / "m.json"),
        ])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("campaign: ")
        assert len(err.strip().splitlines()) == 1
        assert "Traceback" not in err
        assert not (tmp_path / "m.json").exists()

    def test_cli_non_object_spec_rejected(self, tmp_path, capsys):
        from repro.cli import main

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(["stream"]))
        rc = main([
            "campaign", "--spec", str(spec_path), "--no-cache",
            "--out", str(tmp_path / "m.json"),
        ])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("campaign: ")
        assert "Traceback" not in err

    def test_cli_missing_spec_file_rejected(self, tmp_path, capsys):
        from repro.cli import main

        rc = main([
            "campaign", "--spec", str(tmp_path / "nope.json"),
            "--no-cache", "--out", str(tmp_path / "m.json"),
        ])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("campaign: ")
        assert "Traceback" not in err
