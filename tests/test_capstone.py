"""Capstone: the whole survey narrative in one executable story.

A software editor ships firmware to a secure SoC over an open network
(Figure 1); the SoC installs it behind a modern engine stack
(stream cipher + Merkle integrity); the firmware's real execution trace
drives the simulator; a passive probe learns nothing about content; an
active attacker's modification and replay attempts are caught; and the
same firmware on the legacy DS5002FP falls to the Kuhn attack.
"""

import pytest

from repro.attacks import (
    BusProbe,
    DallasBoard,
    KuhnAttack,
    analyze_ciphertext,
)
from repro.core import (
    MerkleTamperDetected,
    MerkleTreeEngine,
    StreamCipherEngine,
    run_distribution,
)
from repro.core.engine import MemoryPort
from repro.crypto import SmallBlockCipher
from repro.isa import assemble, mcu_trace, secret_table_program
from repro.sim import Bus, CacheConfig, MainMemory, MemoryConfig, SecureSystem
from repro.traces import events_to_trace

KEY = b"0123456789abcdef"
MAC = b"capstone-mac-key"
REGION = 2048


@pytest.fixture(scope="module")
def firmware():
    return assemble(secret_table_program(seed=2005, table_len=48),
                    size=REGION)


class TestFullStory:
    def test_distribution_to_protected_execution(self, firmware):
        # -- Figure 1: ship it over the open network --------------------
        engine = MerkleTreeEngine(
            StreamCipherEngine(KEY, line_size=32), mac_key=MAC,
            region_base=0, region_size=REGION, tree_base=0x10000,
        )
        system = SecureSystem(
            engine=engine,
            cache_config=CacheConfig(size=512, line_size=32, associativity=2),
            mem_config=MemoryConfig(size=1 << 17),
        )
        probe = BusProbe()
        system.bus.attach_probe(probe)

        processor, eve, session_key = run_distribution(
            firmware, seed=99, key_bits=512, engine=engine,
            memory=system.memory,
        )
        assert not eve.saw(session_key)
        assert not eve.saw(firmware[:16])

        # -- run the REAL firmware trace through the protected system ---
        trace = events_to_trace(
            mcu_trace(secret_table_program(seed=2005, table_len=48),
                      memory_size=REGION)
        )
        for access in trace:
            system.step(access)
        # Execution saw correct plaintext throughout (spot check a line the
        # firmware fetched).
        assert system.read_plaintext(0, 32) == firmware[:32]
        # The probe saw only high-entropy bytes, never the program.
        recon = probe.reconstruct_memory()
        code_view = b"".join(
            data for addr, data in sorted(recon.items()) if addr < REGION
        )
        assert firmware[:32] not in code_view
        # The kernel touches only a few lines; looks_random handles the
        # small-sample entropy bias.
        assert analyze_ciphertext(code_view, 8).looks_random
        assert engine.verdicts.tampers == 0

    def test_active_attacks_are_caught(self, firmware):
        engine = MerkleTreeEngine(
            StreamCipherEngine(KEY, line_size=32), mac_key=MAC,
            region_base=0, region_size=REGION, tree_base=0x10000,
        )
        port = MemoryPort(MainMemory(MemoryConfig(size=1 << 17)), Bus())
        engine.install_image(port.memory, 0, firmware)

        # Modification of a fetched instruction (§5's threat).
        flipped = port.memory.dump(0x40, 1)[0] ^ 1
        port.memory.load_image(0x40, bytes([flipped]))
        with pytest.raises(MerkleTamperDetected):
            engine.fill_line(port, 0x40, 32)
        port.memory.load_image(0x40, bytes([flipped ^ 1]))

        # Replay of a stale line + leaf after a legitimate update.
        stale_line = port.memory.dump(0x80, 32)
        stale_leaf = port.memory.dump(engine._node_addr(0, 4), 16)
        engine.write_line(port, 0x80, b"PATCHED!" * 4)
        port.memory.load_image(0x80, stale_line)
        port.memory.load_image(engine._node_addr(0, 4), stale_leaf)
        engine._node_cache.clear()
        with pytest.raises(MerkleTamperDetected):
            engine.fill_line(port, 0x80, 32)

    def test_same_firmware_falls_on_the_legacy_part(self, firmware):
        """The survey's arc in one assertion pair: the 2003-era stack
        resists the class-II attacker that strips the 1995-era part bare."""
        board = DallasBoard(SmallBlockCipher(b"legacy-factory-key"),
                            firmware, memory_size=REGION)
        report = KuhnAttack(board).run()
        assert report.plaintext == firmware           # total break
        # The secret table itself, recovered byte for byte:
        assert report.plaintext[0x100:0x130] == firmware[0x100:0x130]
