"""Tweakable Feistel / DS5002FP-style byte cipher: bijectivity, tweak
separation, and the structural properties the Kuhn attack exploits."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import SmallBlockCipher, TweakableFeistel


class TestTweakableFeistel:
    def test_roundtrip_8bit(self):
        cipher = TweakableFeistel(b"key", block_bits=8)
        for v in range(256):
            assert cipher.decrypt_int(cipher.encrypt_int(v, 7), 7) == v

    def test_roundtrip_64bit(self):
        cipher = TweakableFeistel(b"key", block_bits=64)
        for v in (0, 1, 0xDEADBEEF, (1 << 64) - 1):
            assert cipher.decrypt_int(cipher.encrypt_int(v, 3), 3) == v

    def test_is_bijection_per_tweak(self):
        cipher = TweakableFeistel(b"key", block_bits=8)
        images = {cipher.encrypt_int(v, 42) for v in range(256)}
        assert len(images) == 256

    def test_tweak_changes_mapping(self):
        """The DS5002FP property: same byte, different address, different
        ciphertext."""
        cipher = TweakableFeistel(b"key", block_bits=8)
        maps = [
            tuple(cipher.encrypt_int(v, t) for v in range(16))
            for t in range(8)
        ]
        assert len(set(maps)) == 8

    def test_key_changes_mapping(self):
        a = TweakableFeistel(b"key-a", block_bits=8)
        b = TweakableFeistel(b"key-b", block_bits=8)
        assert any(
            a.encrypt_int(v, 0) != b.encrypt_int(v, 0) for v in range(256)
        )

    def test_block_bytes_interface(self):
        cipher = TweakableFeistel(b"key", block_bits=64)
        block = b"8 bytes!"
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    def test_odd_block_bits_rejected(self):
        with pytest.raises(ValueError):
            TweakableFeistel(b"key", block_bits=7)

    def test_too_few_rounds_rejected(self):
        with pytest.raises(ValueError):
            TweakableFeistel(b"key", rounds=1)

    def test_bad_block_length(self):
        with pytest.raises(ValueError):
            TweakableFeistel(b"key", block_bits=64).encrypt_block(b"short")

    def test_64bit_diffusion(self):
        """One flipped input bit flips ~half the output (why the DS5240
        resists byte-at-a-time search)."""
        cipher = TweakableFeistel(b"key", block_bits=64)
        base = cipher.encrypt_int(0x0123456789ABCDEF, 0)
        flipped = cipher.encrypt_int(0x0123456789ABCDEE, 0)
        diff = bin(base ^ flipped).count("1")
        assert 16 <= diff <= 48


class TestSmallBlockCipher:
    def test_roundtrip_bytes(self):
        cipher = SmallBlockCipher(b"dallas")
        data = bytes(range(64))
        assert cipher.decrypt(0x100, cipher.encrypt(0x100, data)) == data

    def test_per_address_independence(self):
        """Each byte depends only on its own address — the attack's
        foothold."""
        cipher = SmallBlockCipher(b"dallas")
        whole = cipher.encrypt(0, bytes(range(16)))
        for i in range(16):
            assert cipher.encrypt_byte(i, i) == whole[i]

    def test_only_256_ciphertexts_per_address(self):
        cipher = SmallBlockCipher(b"dallas")
        images = {cipher.encrypt_byte(5, v) for v in range(256)}
        assert len(images) == 256  # a permutation of the byte space

    def test_byte_range_validation(self):
        cipher = SmallBlockCipher(b"dallas")
        with pytest.raises(ValueError):
            cipher.encrypt_byte(0, 256)
        with pytest.raises(ValueError):
            cipher.decrypt_byte(0, -1)

    def test_address_changes_encryption(self):
        cipher = SmallBlockCipher(b"dallas")
        encs = {cipher.encrypt_byte(addr, 0x42) for addr in range(64)}
        assert len(encs) > 32  # overwhelmingly distinct across addresses


@settings(max_examples=50, deadline=None)
@given(
    value=st.integers(min_value=0, max_value=(1 << 16) - 1),
    tweak=st.integers(min_value=0, max_value=1 << 32),
)
def test_feistel_roundtrip_property(value, tweak):
    cipher = TweakableFeistel(b"prop-key", block_bits=16)
    assert cipher.decrypt_int(cipher.encrypt_int(value, tweak), tweak) == value


@settings(max_examples=30, deadline=None)
@given(data=st.binary(min_size=1, max_size=64),
       addr=st.integers(min_value=0, max_value=1 << 20))
def test_small_block_roundtrip_property(data, addr):
    cipher = SmallBlockCipher(b"prop-key")
    assert cipher.decrypt(addr, cipher.encrypt(addr, data)) == data
