"""Passive attacks: bus probe, ECB analysis, known-plaintext dictionary."""

import pytest

from repro.attacks import (
    BusProbe,
    KnownPlaintextDictionary,
    analyze_ciphertext,
    ecb_distinguisher,
    matching_block_pairs,
)
from repro.crypto import AES, CBC, DRBG, ECB
from repro.sim import Bus


class TestBusProbe:
    def test_records_transactions(self):
        bus = Bus()
        probe = BusProbe()
        bus.attach_probe(probe)
        bus.transfer("read", 0x40, b"\x01\x02", 5)
        bus.transfer("write", 0x80, b"\x03", 6)
        assert len(probe.transactions) == 2
        assert probe.bytes_observed == 3

    def test_observed_bytes_filter(self):
        bus = Bus()
        probe = BusProbe()
        bus.attach_probe(probe)
        bus.transfer("read", 0, b"RR", 0)
        bus.transfer("write", 0, b"WW", 0)
        assert probe.observed_bytes("read") == b"RR"
        assert probe.observed_bytes("write") == b"WW"
        assert probe.observed_bytes() == b"RRWW"

    def test_reconstruct_memory_keeps_latest(self):
        bus = Bus()
        probe = BusProbe()
        bus.attach_probe(probe)
        bus.transfer("read", 0x40, b"old!", 0)
        bus.transfer("write", 0x40, b"new!", 1)
        assert probe.reconstruct_memory()[0x40] == b"new!"

    def test_address_histogram(self):
        bus = Bus()
        probe = BusProbe()
        bus.attach_probe(probe)
        for _ in range(3):
            bus.transfer("read", 0x100, b"x", 0)
        bus.transfer("read", 0x200, b"x", 0)
        hist = probe.address_histogram()
        assert hist[0x100] == 3 and hist[0x200] == 1

    def test_repeated_payloads(self):
        bus = Bus()
        probe = BusProbe()
        bus.attach_probe(probe)
        bus.transfer("read", 0, b"same", 0)
        bus.transfer("read", 64, b"same", 0)
        bus.transfer("read", 128, b"diff", 0)
        repeats = probe.repeated_payloads()
        assert repeats == {b"same": 2}

    def test_capacity_limit(self):
        bus = Bus()
        probe = BusProbe(max_transactions=2)
        bus.attach_probe(probe)
        for i in range(5):
            bus.transfer("read", i, b"x", 0)
        assert len(probe.transactions) == 2

    def test_clear(self):
        probe = BusProbe()
        probe(type("T", (), {"op": "read", "addr": 0, "data": b"", "cycle": 0})())
        probe.clear()
        assert not probe.transactions


class TestECBAnalysis:
    @pytest.fixture(scope="class")
    def structured_image(self):
        # Code-like image with heavy 8-byte repetition.
        return (b"\x01\x02\x03\x04\x05\x06\x07\x08" * 4 + bytes(range(32))) * 32

    def test_ecb_leaks(self, structured_image):
        ct = ECB(AES(b"0123456789abcdef")).encrypt(
            structured_image[: len(structured_image) // 16 * 16]
        )
        assert ecb_distinguisher(ct, block_size=16)

    def test_cbc_does_not_leak(self, structured_image):
        ct = CBC(AES(b"0123456789abcdef"), bytes(16)).encrypt(
            structured_image[: len(structured_image) // 16 * 16]
        )
        assert not ecb_distinguisher(ct, block_size=16)

    def test_random_data_not_flagged(self):
        data = DRBG(1).random_bytes(8192)
        assert not ecb_distinguisher(data, block_size=8)

    def test_analysis_counts(self):
        data = b"ABCDEFGH" * 10
        analysis = analyze_ciphertext(data, block_size=8)
        assert analysis.total_blocks == 10
        assert analysis.distinct_blocks == 1
        assert analysis.block_collision_rate == pytest.approx(0.9)

    def test_looks_random_heuristic(self):
        random = DRBG(2).random_bytes(16384)
        assert analyze_ciphertext(random, 8).looks_random
        assert not analyze_ciphertext(b"\x00" * 16384, 8).looks_random

    def test_matching_pairs(self):
        data = b"AAAAAAAA" + b"BBBBBBBB" + b"AAAAAAAA"
        assert matching_block_pairs(data, 8) == [(0, 16)]


class TestKnownPlaintext:
    def test_learn_and_recover(self):
        d = KnownPlaintextDictionary(block_size=8)
        d.learn(0x100, b"libcfunc", b"CIPHERTX")
        assert d.recover(0x100, b"CIPHERTX") == b"libcfunc"
        assert d.recover(0x108, b"CIPHERTX") is None

    def test_address_free_dictionary_transfers(self):
        d = KnownPlaintextDictionary(block_size=8, address_tweaked=False)
        d.learn(0x100, b"libcfunc", b"CIPHERTX")
        assert d.recover(0x9999, b"CIPHERTX") == b"libcfunc"

    def test_recover_image_fraction(self):
        d = KnownPlaintextDictionary(block_size=8)
        plain = b"known-A!" + b"known-B!" + b"unknown!"
        cipher = b"ct-for-A" + b"ct-for-B" + b"ct-for-C"
        d.learn(0, plain[:16], cipher[:16])
        recovered, fraction = d.recover_image(0, cipher)
        assert fraction == pytest.approx(2 / 3)
        assert recovered[:16] == plain[:16]
        assert recovered[16:] == bytes(8)

    def test_length_mismatch(self):
        d = KnownPlaintextDictionary()
        with pytest.raises(ValueError):
            d.learn(0, b"abc", b"ab")

    def test_len(self):
        d = KnownPlaintextDictionary(block_size=8)
        d.learn(0, bytes(16), bytes(16))
        assert len(d) == 2

    def test_against_real_xom_engine(self):
        """XOM's deterministic address-tweaked ECB admits per-address
        dictionaries (noted in the taxonomy), though not cross-address."""
        from repro.core import XomAesEngine
        engine = XomAesEngine(b"0123456789abcdef")
        d = KnownPlaintextDictionary(block_size=16, address_tweaked=True)
        plain = bytes(range(32))
        ct = engine.encrypt_line(0x200, plain)
        d.learn(0x200, plain, ct)
        # The same line re-encrypted at the same address is recognized.
        again = engine.encrypt_line(0x200, plain)
        assert d.recover(0x200, again[:16]) == plain[:16]
