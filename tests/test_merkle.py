"""Merkle-tree integrity engine: verification, tamper/replay rejection,
node-cache behaviour and costs."""

import pytest

from repro.core import (
    MerkleTamperDetected,
    MerkleTreeEngine,
    StreamCipherEngine,
    XomAesEngine,
)
from repro.core.engine import MemoryPort
from repro.crypto import DRBG
from repro.sim import Bus, MainMemory, MemoryConfig

KEY = b"0123456789abcdef"
MAC = b"merkle-mac-key"
REGION = 4096
TREE_BASE = 0x10000


def make_engine(node_cache_size=16, inner=None):
    inner = inner or StreamCipherEngine(KEY, line_size=32)
    return MerkleTreeEngine(
        inner, mac_key=MAC, region_base=0, region_size=REGION,
        tree_base=TREE_BASE, node_cache_size=node_cache_size,
    )


def make_port():
    return MemoryPort(MainMemory(MemoryConfig(size=1 << 17)), Bus())


@pytest.fixture
def installed():
    engine = make_engine()
    port = make_port()
    image = DRBG(5).random_bytes(REGION)
    engine.install_image(port.memory, 0, image)
    return engine, port, image


class TestGeometry:
    def test_levels(self):
        assert make_engine().levels == 7  # 128 lines

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            MerkleTreeEngine(
                StreamCipherEngine(KEY), MAC, region_base=0,
                region_size=96 * 32, tree_base=TREE_BASE,
            )

    def test_node_addresses_distinct(self):
        engine = make_engine()
        seen = set()
        for level in range(engine.levels):
            for index in range(engine.n_lines >> level):
                addr = engine._node_addr(level, index)
                assert addr not in seen
                seen.add(addr)

    def test_tree_overhead(self):
        engine = make_engine()
        # 16-byte nodes at 32-byte lines: leaves + internals ~ region size.
        assert 0.9 * REGION < engine.tree_overhead_bytes() <= REGION


class TestVerification:
    def test_all_lines_fill_correctly(self, installed):
        engine, port, image = installed
        for addr in range(0, REGION, 32):
            line, _ = engine.fill_line(port, addr, 32)
            assert line == image[addr: addr + 32]
        assert engine.verdicts.tampers == 0

    def test_write_then_read(self, installed):
        engine, port, _ = installed
        engine.write_line(port, 96, bytes(range(32)))
        line, _ = engine.fill_line(port, 96, 32)
        assert line == bytes(range(32))

    def test_sibling_unaffected_by_write(self, installed):
        engine, port, image = installed
        engine.write_line(port, 0, bytes(32))
        line, _ = engine.fill_line(port, 32, 32)  # the written line's sibling
        assert line == image[32:64]

    def test_root_changes_on_write(self, installed):
        engine, port, _ = installed
        root_before = engine.root
        engine.write_line(port, 0, bytes(range(32)))
        assert engine.root != root_before

    def test_outside_region_rejected(self, installed):
        engine, port, _ = installed
        with pytest.raises(ValueError):
            engine.fill_line(port, REGION + 32, 32)


class TestTamperAndReplay:
    def test_line_tamper_detected(self, installed):
        engine, port, _ = installed
        flipped = port.memory.dump(128, 1)[0] ^ 1
        port.memory.load_image(128, bytes([flipped]))
        with pytest.raises(MerkleTamperDetected):
            engine.fill_line(port, 128, 32)

    def test_node_tamper_detected(self, installed):
        """Corrupting a stored internal node breaks verification for the
        lines that use it as a *sibling* (the walk recomputes its own path
        nodes, so lines under the tampered node are unaffected)."""
        engine, port, _ = installed
        node_addr = engine._node_addr(1, 0)   # parent of lines 0-1
        port.memory.load_image(node_addr, bytes(16))
        engine._node_cache.clear()
        # Line 2's level-1 sibling is exactly node (1, 0): detection fires.
        with pytest.raises(MerkleTamperDetected):
            engine.fill_line(port, 64, 32)
        # Line 0 recomputes node (1, 0) from its children: still verifies.
        engine._node_cache.clear()
        engine.fill_line(port, 0, 32)

    def test_replay_rejected_without_on_chip_counters(self, installed):
        """The tree's raison d'etre: a recorded (line, leaf) pair replayed
        after a newer write fails against the moved root — with only 16
        bytes of on-chip state."""
        engine, port, _ = installed
        stale_line = port.memory.dump(256, 32)
        stale_leaf = port.memory.dump(engine._node_addr(0, 8), 16)
        engine.write_line(port, 256, b"NEWDATA!" * 4)
        port.memory.load_image(256, stale_line)
        port.memory.load_image(engine._node_addr(0, 8), stale_leaf)
        engine._node_cache.clear()   # worst case for the defender
        with pytest.raises(MerkleTamperDetected):
            engine.fill_line(port, 256, 32)

    def test_full_stale_path_replay_rejected(self, installed):
        """Even replaying the *entire* stale path fails: the root moved."""
        engine, port, _ = installed
        snapshot = bytes(port.memory.dump(TREE_BASE, engine.tree_overhead_bytes()))
        stale_line = port.memory.dump(0, 32)
        engine.write_line(port, 0, b"\xEE" * 32)
        port.memory.load_image(0, stale_line)
        port.memory.load_image(TREE_BASE, snapshot)
        engine._node_cache.clear()
        with pytest.raises(MerkleTamperDetected):
            engine.fill_line(port, 0, 32)


class TestNodeCache:
    def test_cache_stops_walks_early(self, installed):
        engine, port, _ = installed
        engine.fill_line(port, 0, 32)
        stops_before = engine.cache_stops
        engine.fill_line(port, 0, 32)   # leaf now trusted
        assert engine.cache_stops == stops_before + 1

    def test_cached_refill_is_cheaper(self, installed):
        engine, port, _ = installed
        _, first = engine.fill_line(port, 0, 32)
        _, second = engine.fill_line(port, 0, 32)
        assert second < first

    def test_zero_cache_always_full_paths(self):
        engine = make_engine(node_cache_size=0)
        port = make_port()
        engine.install_image(port.memory, 0, bytes(REGION))
        _, first = engine.fill_line(port, 0, 32)
        _, second = engine.fill_line(port, 0, 32)
        assert first == second
        assert engine.cache_stops == 0

    def test_cache_capacity_bounded(self, installed):
        engine, port, _ = installed
        for addr in range(0, REGION, 32):
            engine.fill_line(port, addr, 32)
        assert len(engine._node_cache) <= engine.node_cache_size


class TestCosts:
    def test_verification_cost_scales_with_depth(self):
        small = make_engine()
        big = MerkleTreeEngine(
            StreamCipherEngine(KEY, line_size=32), MAC, region_base=0,
            region_size=4 * REGION, tree_base=TREE_BASE, node_cache_size=0,
        )
        small.node_cache_size = 0
        port_s, port_b = make_port(), make_port()
        small.install_image(port_s.memory, 0, bytes(REGION))
        big.install_image(port_b.memory, 0, bytes(4 * REGION))
        _, small_cycles = small.fill_line(port_s, 0, 32)
        _, big_cycles = big.fill_line(port_b, 0, 32)
        assert big_cycles > small_cycles

    def test_partial_write_rmw(self, installed):
        engine, port, image = installed
        engine.write_partial(port, 3, b"\x9A", 32)
        assert engine.stats.rmw_operations == 1
        line, _ = engine.fill_line(port, 0, 32)
        assert line[3] == 0x9A
        assert line[:3] == image[:3]

    def test_area_has_tiny_state(self):
        engine = make_engine(node_cache_size=0)
        area = engine.area()
        assert area.items["root-register"] < 1000  # 16 bytes of SRAM

    def test_works_with_block_inner(self):
        engine = make_engine(inner=XomAesEngine(KEY))
        port = make_port()
        image = DRBG(6).random_bytes(REGION)
        engine.install_image(port.memory, 0, image)
        line, _ = engine.fill_line(port, 512, 32)
        assert line == image[512:544]
