"""IBM taxonomy ratings and the analysis layer (overhead grids, security
scoring, report tables)."""

import pytest

from repro.analysis import (
    format_gates,
    format_percent,
    format_table,
    measure_overhead,
    overhead_grid,
    score_engine_ciphertext,
)
from repro.attacks import (
    CLASS_CAPABILITIES,
    ENGINE_RATINGS,
    AttackerClass,
    Capability,
    rate_engine,
)
from repro.core import BestEngine, NullEngine, XomAesEngine
from repro.sim import CacheConfig
from repro.traces import sequential_code, synthetic_code_image

KEY = b"0123456789abcdef"


class TestTaxonomy:
    def test_capabilities_are_cumulative(self):
        c1 = CLASS_CAPABILITIES[AttackerClass.CLASS_I]
        c2 = CLASS_CAPABILITIES[AttackerClass.CLASS_II]
        c3 = CLASS_CAPABILITIES[AttackerClass.CLASS_III]
        assert c1 < c2 < c3

    def test_plaintext_broken_by_everyone(self):
        rating = rate_engine("plaintext")
        assert rating.highest_class_withstood == 0

    def test_ds5002fp_falls_to_class_ii(self):
        """§2.3: 'only attacks and adversaries classified in class II are
        taken into account' — and the DS5002FP fails exactly there."""
        rating = rate_engine("ds5002fp")
        assert rating.withstands(AttackerClass.CLASS_I)
        assert not rating.withstands(AttackerClass.CLASS_II)
        assert rating.highest_class_withstood == 1

    def test_best_falls_to_class_i(self):
        rating = rate_engine("best-1979")
        assert rating.highest_class_withstood == 0

    def test_ds5240_survives_class_ii(self):
        rating = rate_engine("ds5240")
        assert rating.withstands(AttackerClass.CLASS_II)
        assert not rating.withstands(AttackerClass.CLASS_III)

    def test_aes_engines_survive_the_model(self):
        for name in ("xom-aes", "aegis-aes-cbc", "stream-ctr"):
            assert rate_engine(name).highest_class_withstood >= 2

    def test_all_builtin_engines_rated(self):
        assert len(ENGINE_RATINGS) >= 11

    def test_unknown_engine(self):
        with pytest.raises(KeyError):
            rate_engine("quantum-engine")

    def test_describe_text(self):
        text = AttackerClass.CLASS_II.describe()
        assert "insider" in text


class TestOverheadAnalysis:
    def test_measure_overhead_null_is_zero(self):
        trace = sequential_code(300)
        result = measure_overhead(lambda: NullEngine(), trace, "seq")
        assert result.overhead == pytest.approx(0.0)
        assert "seq" in str(result)

    def test_grid_shape(self):
        engines = {
            "plain": lambda: NullEngine(),
            "xom": lambda: XomAesEngine(KEY, functional=False),
        }
        workloads = {
            "seq": sequential_code(300),
            "seq2": sequential_code(300, base=1 << 16),
        }
        grid = overhead_grid(
            engines, workloads,
            cache_config=CacheConfig(size=1024, line_size=32, associativity=2),
        )
        assert len(grid) == 4
        names = {(r.engine_name, r.workload) for r in grid}
        assert ("xom", "seq") in names

    def test_overhead_percent(self):
        trace = sequential_code(300)
        result = measure_overhead(
            lambda: XomAesEngine(KEY, functional=False), trace,
            cache_config=CacheConfig(size=1024, line_size=32, associativity=2),
        )
        assert result.overhead_percent == pytest.approx(100 * result.overhead)


class TestSecurityScoring:
    def test_best_scores_worse_than_xom(self):
        image = (b"\x00" * 64 + b"\xFF" * 64) * 64  # repetitive
        best = score_engine_ciphertext(BestEngine(KEY, num_alphabets=4), image)
        xom = score_engine_ciphertext(XomAesEngine(KEY), image)
        assert best.block_collision_rate > xom.block_collision_rate
        assert best.entropy_bits_per_byte < xom.entropy_bits_per_byte
        assert best.leak_count >= xom.leak_count

    def test_xom_identical_line_leak(self):
        """Deterministic engines re-encrypt identical lines identically."""
        image = synthetic_code_image(size=4096)
        xom = score_engine_ciphertext(XomAesEngine(KEY), image)
        assert xom.identical_line_leak

    def test_stream_engine_hides_rewrites(self):
        from repro.core import StreamCipherEngine
        image = synthetic_code_image(size=4096)
        score = score_engine_ciphertext(
            StreamCipherEngine(KEY, line_size=32), image
        )
        assert not score.identical_line_leak


class TestReportFormatting:
    def test_format_percent(self):
        assert format_percent(0.253) == "+25.3%"
        assert format_percent(-0.1) == "-10.0%"
        assert format_percent(0.5, signed=False) == "50.0%"

    def test_format_gates(self):
        assert format_gates(500) == "500 gates"
        assert format_gates(312_345) == "312k gates"
        assert format_gates(1_500_000) == "1.50M gates"

    def test_format_table_alignment(self):
        table = format_table(
            ["engine", "overhead"],
            [["xom", "+26%"], ["aegis-aes-cbc", "+60%"]],
            title="Survey",
        )
        lines = table.splitlines()
        assert lines[0] == "Survey"
        assert "engine" in lines[2]
        assert all("aegis" in line for line in lines if "+60%" in line)
