"""CLI: every subcommand runs and produces the expected structure."""

import json

import pytest

from repro.cli import build_parser, main
from repro.core.registry import engine_names, make_engine


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for cmd in ("list", "survey", "area"):
            args = parser.parse_args([cmd])
            assert args.command == cmd

    def test_overhead_defaults(self):
        args = build_parser().parse_args(["overhead", "stream"])
        assert args.workload == "mixed"
        assert args.accesses == 4000

    def test_bad_workload_rejected(self, capsys):
        # Unknown workloads reach the command handler (not argparse) so
        # the error is one line on stderr + exit 2, naming the options.
        assert main(["overhead", "stream", "not-a-load"]) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "unknown workload" in err and "mixed" in err

    def test_bench_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.workers == 1
        assert not args.quick
        assert not args.no_obs
        assert args.out == "BENCH_metrics.json"

    def test_trace_defaults(self):
        args = build_parser().parse_args(["trace", "e02"])
        assert args.experiment == "e02"
        assert not args.full
        assert args.limit == 40
        assert args.jsonl is None


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "aegis" in out and "Workloads:" in out

    def test_list_all_includes_wrappers(self, capsys):
        assert main(["list", "--all"]) == 0
        out = capsys.readouterr().out
        assert "merkle-stream" in out

    def test_overhead(self, capsys):
        rc = main(["overhead", "stream", "sequential", "--accesses", "500"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "overhead" in out and "stream" in out

    def test_overhead_unknown_engine(self, capsys):
        assert main(["overhead", "quantum"]) == 2

    def test_attack(self, capsys):
        rc = main(["attack", "--quiet", "--memory", "256"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "256/256" in out

    def test_protocol(self, capsys):
        rc = main(["protocol", "--size", "512", "--key-bits", "256"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "eavesdropper saw K" in out
        assert "False" in out

    def test_area(self, capsys):
        assert main(["area"]) == 0
        out = capsys.readouterr().out
        for name in engine_names(survey_only=True):
            assert make_engine(name).name in out


class TestBench:
    def test_unknown_experiment_rejected(self, capsys):
        assert main(["bench", "--experiments", "e99", "--no-cache"]) == 2
        assert "unknown experiments" in capsys.readouterr().err

    def test_bench_smoke(self, tmp_path, capsys):
        out = tmp_path / "metrics.json"
        rc = main([
            "bench", "--experiments", "e01", "--quick",
            "--out", str(out), "--cache-dir", str(tmp_path / "cache"),
        ])
        assert rc == 0
        stdout = capsys.readouterr().out
        assert "1 checks passed" in stdout

        metrics = json.loads(out.read_text())
        assert metrics["schema"] == "repro-bench-metrics/3"
        assert metrics["quick"] is True
        e01 = metrics["experiments"]["e01"]
        assert e01["checks"]["passed"] is True
        assert "cost-gap" in e01["tasks"]
        obs = e01["observability"]
        assert set(obs["tasks"]) == set(e01["tasks"])
        assert obs["total"]["totals"]["events"] > 0

        profile = json.loads(
            (tmp_path / "metrics_profile.json").read_text())
        assert profile["wall_seconds"] >= 0
        assert profile["cache"]["misses"] == 2

        # Second run: served entirely from the on-disk cache, same bytes.
        first = out.read_text()
        rc = main([
            "bench", "--experiments", "e01", "--quick",
            "--out", str(out), "--cache-dir", str(tmp_path / "cache"),
        ])
        capsys.readouterr()
        assert rc == 0
        assert out.read_text() == first

    def test_bench_no_obs_omits_section_and_keeps_metrics(self, tmp_path,
                                                          capsys):
        with_obs = tmp_path / "obs.json"
        without = tmp_path / "no_obs.json"
        for path, extra in ((with_obs, []), (without, ["--no-obs"])):
            rc = main([
                "bench", "--experiments", "e01", "--quick", "--no-cache",
                "--out", str(path), *extra,
            ])
            capsys.readouterr()
            assert rc == 0
        observed = json.loads(with_obs.read_text())
        plain = json.loads(without.read_text())
        assert "observability" not in plain["experiments"]["e01"]
        # Dropping observation must not perturb the metrics themselves.
        del observed["experiments"]["e01"]["observability"]
        assert observed == plain


class TestTrace:
    def test_trace_smoke(self, capsys):
        rc = main(["trace", "e01", "--limit", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "protocol-msg" in out
        assert "e01 events" in out
        assert "checks passed" in out

    def test_trace_unknown_experiment(self, capsys):
        assert main(["trace", "e99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_trace_jsonl_dump(self, tmp_path, capsys):
        path = tmp_path / "events.jsonl"
        rc = main(["trace", "e01", "--limit", "1", "--jsonl", str(path)])
        assert rc == 0
        capsys.readouterr()
        lines = path.read_text().splitlines()
        assert lines
        first = json.loads(lines[0])
        assert set(first) >= {"kind", "addr", "size", "cycle"}


class TestDeprecatedFactories:
    def test_engine_factories_shim_is_gone(self):
        # The PR-1 compatibility dict was removed with the repro.api
        # finalization; the registry is the only construction path.
        import repro.cli as cli
        with pytest.raises(AttributeError):
            cli.ENGINE_FACTORIES


class TestFaults:
    def test_unknown_label_rejected(self, capsys):
        assert main(["faults", "bogus"]) == 2
        assert "unknown campaign label" in capsys.readouterr().err

    def test_single_engine_conforms(self, capsys):
        rc = main(["faults", "ds5002fp", "--kinds", "spoof"])
        stdout = capsys.readouterr().out
        assert rc == 0
        assert "silent-corruption" in stdout   # no integrity claimed...
        assert "2/2 campaigns conform" in stdout  # ...so silence conforms


class TestStreamCommand:
    def test_stream_runs(self, capsys):
        assert main(["stream", "baseline", "dma-burst",
                     "--accesses", "5000", "--chunk-size", "512"]) == 0
        out = capsys.readouterr().out
        assert "Chunk-streamed execution" in out
        assert "accesses/sec" in out

    def test_stream_defaults(self):
        args = build_parser().parse_args(["stream"])
        assert args.engine is None
        assert args.workload == "mixed"
        assert args.chunk_size == 65536


class TestDegenerateParamsExitTwo:
    """Operator mistakes are one stderr line + exit 2, never tracebacks."""

    @pytest.mark.parametrize("argv", [
        ["overhead", "stream", "nope"],
        ["overhead", "stream", "mixed", "--accesses", "0"],
        ["overhead", "stream", "mixed", "--accesses", "-3"],
        ["survey", "--accesses", "0"],
        ["stream", "baseline", "nope"],
        ["stream", "baseline", "mixed", "--accesses", "0"],
        ["stream", "baseline", "mixed", "--chunk-size", "-1"],
        ["stream", "enigma", "mixed"],
    ])
    def test_exit_two_one_line(self, argv, capsys):
        assert main(argv) == 2
        captured = capsys.readouterr()
        assert captured.err.count("\n") == 1
        assert captured.err.startswith(f"{argv[0]}: ")

    def test_unknown_engine_still_exits_two(self, capsys):
        assert main(["overhead", "enigma"]) == 2
        assert "unknown engine" in capsys.readouterr().err
