"""CLI: every subcommand runs and produces the expected structure."""

import pytest

from repro.cli import ENGINE_FACTORIES, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for cmd in ("list", "survey", "area"):
            args = parser.parse_args([cmd])
            assert args.command == cmd

    def test_overhead_defaults(self):
        args = build_parser().parse_args(["overhead", "stream"])
        assert args.workload == "mixed"
        assert args.accesses == 4000

    def test_bad_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["overhead", "stream", "not-a-load"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "aegis" in out and "Workloads:" in out

    def test_overhead(self, capsys):
        rc = main(["overhead", "stream", "sequential", "--accesses", "500"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "overhead" in out and "stream" in out

    def test_overhead_unknown_engine(self, capsys):
        assert main(["overhead", "quantum"]) == 2

    def test_attack(self, capsys):
        rc = main(["attack", "--quiet", "--memory", "256"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "256/256" in out

    def test_protocol(self, capsys):
        rc = main(["protocol", "--size", "512", "--key-bits", "256"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "eavesdropper saw K" in out
        assert "False" in out

    def test_area(self, capsys):
        assert main(["area"]) == 0
        out = capsys.readouterr().out
        for name in ENGINE_FACTORIES:
            engine_name = ENGINE_FACTORIES[name]().name
            assert engine_name in out
