"""Cross-module integration: the survey's full story in executable form.

Each test wires several subsystems together: distribution protocol ->
engine-installed memory -> trace-driven execution -> bus observation ->
attack.
"""

import pytest

from repro.analysis import measure_overhead
from repro.attacks import (
    BusProbe,
    DallasBoard,
    KnownPlaintextDictionary,
    KuhnAttack,
    ecb_distinguisher,
)
from repro.core import (
    AegisEngine,
    DS5002FPEngine,
    GilmontEngine,
    StreamCipherEngine,
    XomAesEngine,
    run_distribution,
)
from repro.crypto import SmallBlockCipher
from repro.isa import assemble, mcu_trace, secret_table_program
from repro.sim import CacheConfig, MemoryConfig, SecureSystem
from repro.traces import Access, AccessKind, make_workload

KEY = b"0123456789abcdef"


def events_to_trace(events):
    """Convert MCU step events into a simulator access trace."""
    trace = []
    for ev in events:
        for addr in ev.fetched:
            trace.append(Access(AccessKind.FETCH, addr, 1))
        if ev.data_read is not None:
            trace.append(Access(AccessKind.LOAD, ev.data_read, 1))
        if ev.data_write is not None:
            trace.append(Access(AccessKind.STORE, ev.data_write, 1))
    return trace


class TestDistributionToExecution:
    """Figure 1 end to end, then the installed program actually runs."""

    def test_protocol_install_execute_probe(self):
        software = assemble(secret_table_program(seed=9, table_len=16),
                            size=1024)
        engine = XomAesEngine(KEY)
        system = SecureSystem(
            engine=engine,
            cache_config=CacheConfig(size=512, line_size=32, associativity=2),
            mem_config=MemoryConfig(size=1 << 16),
        )
        probe = BusProbe()
        system.bus.attach_probe(probe)

        processor, eve, _ = run_distribution(
            software, seed=13, key_bits=512, engine=engine,
            memory=system.memory,
        )
        # Nothing secret crossed the network...
        assert not eve.saw(software[:16])
        # ...and executing the program leaks only ciphertext on the bus.
        events = mcu_trace(secret_table_program(seed=9, table_len=16),
                           memory_size=1024)
        for access in events_to_trace(events):
            system.step(access)
        assert software[:32] not in probe.observed_bytes("read")
        # The system still computes with correct plaintext.
        assert system.read_plaintext(0, 64) == software[:64]


class TestMcuTraceThroughSimulator:
    def test_real_instruction_trace_drives_engines(self):
        events = mcu_trace(secret_table_program(seed=4, table_len=32),
                           memory_size=2048)
        trace = events_to_trace(events)
        assert len(trace) > 100
        result = measure_overhead(
            lambda: GilmontEngine(b"0123456789abcdef01234567",
                                  functional=False),
            trace,
            workload="mcu-checksum",
            cache_config=CacheConfig(size=256, line_size=32, associativity=2),
        )
        assert result.baseline.cycles > 0
        assert result.overhead >= 0.0


class TestEngineVersusAttacks:
    def test_ds5002fp_system_falls_but_memory_was_hidden(self):
        """The full DS5002FP story: the bus/memory shows ciphertext (probe
        learns nothing), yet the class-II attack recovers everything."""
        firmware = assemble(secret_table_program(seed=21, table_len=24),
                            size=512)
        cipher = SmallBlockCipher(b"ds5002fp-key")
        board = DallasBoard(cipher, firmware, memory_size=512)

        # Passive: the ciphertext image does not reveal the firmware.
        assert firmware[:32] not in bytes(board.memory)

        # Active class-II attack: total break.
        report = KuhnAttack(board).run()
        assert report.plaintext == firmware

    def test_aegis_rewrite_hides_known_plaintext(self):
        """AEGIS's versioned IVs defeat the rewrite-recognition dictionary
        that works against deterministic engines."""
        aegis = AegisEngine(KEY)
        xom = XomAesEngine(KEY)
        d_aegis = KnownPlaintextDictionary(block_size=16)
        d_xom = KnownPlaintextDictionary(block_size=16)
        plain = bytes(range(32))

        d_xom.learn(0, plain, xom.encrypt_line(0, plain))
        assert d_xom.recover(0, xom.encrypt_line(0, plain)[:16]) is not None

        d_aegis.learn(0, plain, aegis.encrypt_line(0, plain))
        assert d_aegis.recover(0, aegis.encrypt_line(0, plain)[:16]) is None

    def test_full_memory_image_statistics(self):
        """Install a structured image through each engine; only weak or
        absent encryption leaves distinguishable structure."""
        image = (b"\x00" * 8 + b"\x11" * 8) * 256
        strong = XomAesEngine(KEY)
        system = SecureSystem(engine=strong,
                              mem_config=MemoryConfig(size=1 << 16))
        system.install_image(0, image)
        assert not ecb_distinguisher(system.memory.dump(0, len(image)), 8)

        clear = SecureSystem(mem_config=MemoryConfig(size=1 << 16))
        clear.install_image(0, image)
        assert ecb_distinguisher(clear.memory.dump(0, len(image)), 8)


class TestWorkloadSuiteSanity:
    @pytest.mark.parametrize("name", ["sequential", "branchy", "data-random"])
    def test_all_engines_complete_suite(self, name):
        trace = make_workload(name, n=800)
        for factory in (
            lambda: StreamCipherEngine(KEY, functional=False),
            lambda: AegisEngine(KEY, functional=False),
            lambda: DS5002FPEngine(KEY, functional=False),
        ):
            result = measure_overhead(
                factory, trace, workload=name,
                cache_config=CacheConfig(size=2048, line_size=32,
                                         associativity=2),
            )
            assert result.secured.cycles >= result.baseline.cycles
