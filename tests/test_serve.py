"""The serve layer: codec, concurrency battery, dedup, byte-identity.

Everything here drives a live :class:`repro.serve.ExperimentServer` on
an ephemeral port inside one ``asyncio.run`` per test.  ``workers=0``
(in-process thread execution) is the default so executors can be
instrumented; the fork-pool path is exercised by the resume test and by
``make serve-smoke``.
"""

import asyncio
import contextlib
import json
import time
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import run_campaign, run_experiment
from repro.campaign import CAMPAIGN_SCHEMA, CampaignSpec
from repro.runner import ResultCache, to_canonical_json
from repro.serve import (
    ExperimentServer,
    FrameDecodeError,
    FrameDecoder,
    FrameStream,
    FrameTooLarge,
    encode_frame,
)
from repro.serve import handlers as serve_handlers
from repro.serve.protocol import HEADER


# -- harness ---------------------------------------------------------------


@contextlib.asynccontextmanager
async def serve(**kwargs):
    kwargs.setdefault("workers", 0)
    kwargs.setdefault("cache_dir", None)
    kwargs.setdefault("idle_timeout", 10.0)
    server = ExperimentServer(port=0, **kwargs)
    await server.start()
    try:
        yield server
    finally:
        await server.stop()


@contextlib.contextmanager
def patched_executor(monkeypatch, op, fn):
    monkeypatch.setitem(serve_handlers.EXECUTORS, op, fn)
    yield


async def connect(server):
    return await FrameStream.connect("127.0.0.1", server.port)


# -- frame codec (hypothesis round trip) -----------------------------------

JSON_VALUES = st.recursive(
    st.none() | st.booleans() | st.integers(-(2**40), 2**40)
    | st.floats(allow_nan=False, allow_infinity=False) | st.text(),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=12,
)


class TestFrameCodec:
    @settings(max_examples=120, deadline=None)
    @given(payloads=st.lists(JSON_VALUES, max_size=6), data=st.data())
    def test_round_trip_any_chunking(self, payloads, data):
        """Arbitrary payloads survive arbitrary TCP read fragmentation."""
        wire = b"".join(encode_frame(p) for p in payloads)
        decoder = FrameDecoder()
        decoded = []
        offset = 0
        while offset < len(wire):
            size = data.draw(st.integers(1, len(wire) - offset),
                             label="chunk")
            decoded.extend(decoder.feed(wire[offset:offset + size]))
            offset += size
        decoded.extend(decoder.feed(b""))
        assert decoded == payloads
        assert decoder.pending_bytes == 0

    @settings(max_examples=60, deadline=None)
    @given(payloads=st.lists(JSON_VALUES, min_size=1, max_size=6))
    def test_round_trip_single_read(self, payloads):
        wire = b"".join(encode_frame(p) for p in payloads)
        assert FrameDecoder().feed(wire) == payloads

    def test_oversized_header_rejected_before_payload(self):
        decoder = FrameDecoder(max_frame=1024)
        with pytest.raises(FrameTooLarge):
            # Header alone: the advertised size is rejected with zero
            # payload bytes buffered (slow-loris cannot pin memory).
            decoder.feed(HEADER.pack(10 * 1024 * 1024))

    def test_malformed_payload_rejected(self):
        body = b"{not json"
        with pytest.raises(FrameDecodeError):
            FrameDecoder().feed(HEADER.pack(len(body)) + body)

    def test_encode_respects_limit(self):
        with pytest.raises(FrameTooLarge):
            encode_frame({"blob": "x" * 2048}, max_frame=1024)


# -- protocol edges against a live server ----------------------------------


class TestProtocolEdges:
    def test_malformed_frame_gets_typed_error_then_close(self):
        async def scenario():
            async with serve() as server:
                stream = await connect(server)
                body = b"!!not json!!"
                stream.writer.write(HEADER.pack(len(body)) + body)
                await stream.writer.drain()
                reply = await stream.recv(timeout=5)
                assert reply["type"] == "error"
                assert reply["error"]["code"] == "bad-frame"
                assert await stream.recv(timeout=5) is None  # closed
                await stream.close()

        asyncio.run(scenario())

    def test_oversized_frame_gets_typed_error_then_close(self):
        async def scenario():
            async with serve(max_frame=1024) as server:
                stream = await connect(server)
                stream.writer.write(HEADER.pack(5 * 1024 * 1024))
                await stream.writer.drain()
                reply = await stream.recv(timeout=5)
                assert reply["type"] == "error"
                assert reply["error"]["code"] == "frame-too-large"
                assert await stream.recv(timeout=5) is None
                await stream.close()

        asyncio.run(scenario())

    def test_non_object_request_rejected(self):
        async def scenario():
            async with serve() as server:
                stream = await connect(server)
                await stream.send(["not", "a", "request"])
                reply = await stream.recv(timeout=5)
                assert reply["type"] == "error"
                assert reply["error"]["code"] == "bad-request"
                await stream.close()

        asyncio.run(scenario())

    def test_unknown_op_keeps_connection_alive(self):
        async def scenario():
            async with serve() as server:
                stream = await connect(server)
                reply = await stream.request("frobnicate", id=1, timeout=5)
                assert reply["type"] == "error"
                assert reply["error"]["code"] == "unknown-op"
                pong = await stream.request("ping", id=2, timeout=5)
                assert pong["type"] == "response"
                assert pong["result"]["pong"] is True
                await stream.close()

        asyncio.run(scenario())

    def test_unknown_experiment_and_bad_campaign_rejected(self):
        async def scenario():
            async with serve() as server:
                stream = await connect(server)
                reply = await stream.request(
                    "run_experiment", {"experiment": "e99"}, timeout=5)
                assert reply["error"]["code"] == "unknown-experiment"
                reply = await stream.request(
                    "run_campaign", {"spec": {"engines": []}}, timeout=5)
                assert reply["error"]["code"] == "bad-campaign"
                reply = await stream.request(
                    "run_campaign", {"spec": "not-a-spec"}, timeout=5)
                assert reply["error"]["code"] == "bad-campaign"
                await stream.close()

        asyncio.run(scenario())


# -- idle timeout and slow loris -------------------------------------------


class TestIdleTimeout:
    def test_idle_connection_disconnected_with_typed_error(self):
        async def scenario():
            async with serve(idle_timeout=0.2) as server:
                stream = await connect(server)
                reply = await stream.recv(timeout=5)
                assert reply["type"] == "error"
                assert reply["error"]["code"] == "idle-timeout"
                assert await stream.recv(timeout=5) is None
                assert server.stats.idle_timeouts == 1
                await stream.close()

        asyncio.run(scenario())

    def test_slow_loris_partial_frame_times_out_others_served(self):
        async def scenario():
            async with serve(idle_timeout=0.3) as server:
                loris = await connect(server)
                # Header promising 64 bytes, then stall halfway through.
                loris.writer.write(HEADER.pack(64) + b'{"op": "pi')
                await loris.writer.drain()

                good = await connect(server)
                pong = await good.request("ping", id=1, timeout=5)
                assert pong["type"] == "response"
                await good.close()

                reply = await loris.recv(timeout=5)
                assert reply["type"] == "error"
                assert reply["error"]["code"] == "idle-timeout"
                assert await loris.recv(timeout=5) is None
                await loris.close()

        asyncio.run(scenario())

    def test_connection_awaiting_response_is_not_idle(self, monkeypatch):
        def slow(experiment_id, quick):
            time.sleep(0.5)
            return {"experiment": experiment_id}

        async def scenario():
            with patched_executor(monkeypatch, "run_experiment", slow):
                async with serve(idle_timeout=0.15) as server:
                    stream = await connect(server)
                    reply = await stream.request(
                        "run_experiment", {"experiment": "e01"}, timeout=10)
                    assert reply["type"] == "response"
                    assert reply["result"] == {"experiment": "e01"}
                    assert server.stats.idle_timeouts == 0
                    await stream.close()

        asyncio.run(scenario())


# -- accept-many battery ---------------------------------------------------


class TestAcceptMany:
    def test_hundreds_of_concurrent_clients_all_answered(self, monkeypatch):
        clients = 200

        def fake(experiment_id, quick):
            time.sleep(0.005)
            return {"experiment": experiment_id, "quick": quick}

        async def one(server, i):
            stream = await connect(server)
            try:
                pong = await stream.request("ping", {"payload": i},
                                            id=f"p{i}", timeout=30)
                exp = await stream.request(
                    "run_experiment",
                    {"experiment": f"e0{1 + i % 3}"},
                    id=f"x{i}", timeout=30)
                return pong, exp
            finally:
                await stream.close()

        async def scenario():
            with patched_executor(monkeypatch, "run_experiment", fake):
                async with serve(max_pending=clients) as server:
                    replies = await asyncio.gather(
                        *(one(server, i) for i in range(clients)))
                    assert len(replies) == clients
                    for i, (pong, exp) in enumerate(replies):
                        assert pong["type"] == "response"
                        assert pong["result"]["payload"] == i
                        assert exp["type"] == "response"
                        assert exp["result"]["experiment"] \
                            == f"e0{1 + i % 3}"
                    stats = server.stats
                    assert stats.connections == clients
                    assert stats.requests == 2 * clients
                    assert stats.responses == 2 * clients
                    assert stats.errors == 0
                    assert stats.overloaded == 0
                    # Three distinct task keys -> exactly three
                    # executions, everything else coalesced or cache-free
                    # replays of the in-flight future.
                    assert server.inflight.leads == stats.executed
                    assert stats.executed <= 3 * 2  # racy tail, bounded
                    assert server.inflight.joins + stats.executed \
                        == clients

        asyncio.run(scenario())

    def test_overload_answered_with_explicit_frames(self, monkeypatch):
        def slow(experiment_id, quick):
            time.sleep(0.4)
            return {"experiment": experiment_id}

        async def scenario():
            with patched_executor(monkeypatch, "run_experiment", slow):
                async with serve(max_pending=1) as server:
                    stream = await connect(server)
                    for i, exp in enumerate(("e01", "e02", "e03")):
                        await stream.send({
                            "op": "run_experiment", "id": i,
                            "params": {"experiment": exp},
                        })
                    replies = [await stream.recv(timeout=10)
                               for _ in range(3)]
                    kinds = sorted(r["type"] for r in replies)
                    assert kinds == ["overloaded", "overloaded", "response"]
                    overloaded = [r for r in replies
                                  if r["type"] == "overloaded"]
                    assert all(r["pending"] >= 1 for r in overloaded)
                    assert server.stats.overloaded == 2
                    assert server.stats.executed == 1
                    await stream.close()

        asyncio.run(scenario())


# -- in-flight dedup regression --------------------------------------------


class TestDedup:
    def test_concurrent_identical_requests_execute_once(self, tmp_path):
        """Two concurrent identical requests -> one runner execution.

        Asserted three ways: the server's execution counter, the disk
        cache's hit/miss accounting, and the obs counter totals inside
        the returned documents (identical, and identical to a local
        run's — one execution produced them all).
        """
        async def one(server, i):
            stream = await connect(server)
            try:
                return await stream.request(
                    "run_experiment",
                    {"experiment": "e01", "quick": True},
                    id=i, timeout=60)
            finally:
                await stream.close()

        async def scenario():
            async with serve(cache_dir=tmp_path) as server:
                a, b = await asyncio.gather(one(server, 1), one(server, 2))
                third = await one(server, 3)
                return server.stats.executed, server.cache.counters(), \
                    server.inflight.counters(), a, b, third

        executed, cache, dedup, a, b, third = asyncio.run(scenario())

        assert executed == 1
        assert dedup["leads"] == 1
        assert dedup["joins"] == 1
        # Leader missed the disk cache once; the post-completion request
        # replayed from disk without executing.
        assert cache == {"hits": 1, "misses": 1}
        assert sorted((a["served_from"], b["served_from"])) \
            == ["coalesced", "execution"]
        assert third["served_from"] == "cache"

        # One execution, three byte-identical documents.
        docs = [to_canonical_json(r["result"]) for r in (a, b, third)]
        assert len(set(docs)) == 1

        # Obs counter totals agree with an independent local run.
        local = run_experiment("e01", quick=True).to_document()
        assert a["result"]["observability"]["total"] \
            == local["observability"]["total"]


# -- server vs local byte-identity -----------------------------------------

SMALL_CAMPAIGN = CampaignSpec(
    name="serve-test",
    engines=("stream", "xom"),
    workloads=("mixed",),
    accesses=(256,),
    cache_sizes=(1024, 4096),
    latencies=(20,),
)


class TestByteIdentity:
    def test_experiment_documents_match_local_run(self):
        async def scenario():
            async with serve() as server:
                stream = await connect(server)
                try:
                    reply = await stream.request(
                        "run_experiment",
                        {"experiment": "e01", "quick": True}, timeout=60)
                finally:
                    await stream.close()
                return reply

        reply = asyncio.run(scenario())
        assert reply["type"] == "response"
        local = run_experiment("e01", quick=True).to_document()
        assert to_canonical_json(reply["result"]) \
            == to_canonical_json(local)

    def test_campaign_documents_match_local_run(self, tmp_path):
        async def scenario():
            async with serve(cache_dir=tmp_path / "serve") as server:
                stream = await connect(server)
                try:
                    reply = await stream.request(
                        "run_campaign",
                        {"spec": SMALL_CAMPAIGN.to_dict()}, timeout=120)
                finally:
                    await stream.close()
                return reply

        reply = asyncio.run(scenario())
        assert reply["type"] == "response"
        local = run_campaign(SMALL_CAMPAIGN, workers=1, cache_dir=None)
        assert to_canonical_json(reply["result"]["metrics"]) \
            == local.metrics_json()
        assert reply["result"]["profile"]["points"] == SMALL_CAMPAIGN.size

    def test_kill_server_mid_campaign_then_reserve_resumes(self, tmp_path):
        """A server killed mid-campaign leaves completed points behind;
        re-serving the same spec resumes from the cache and still
        produces byte-identical metrics."""
        spec = CampaignSpec(
            name="serve-resume",
            engines=("stream", "xom"),
            workloads=("mixed", "sequential"),
            accesses=(512, 1024),
            cache_sizes=(1024,),
            latencies=(20,),
        )
        cache_dir = tmp_path / "serve"
        doc_key = ResultCache.task_key(
            "serve/campaign", spec.name, spec.to_dict(),
            schema=CAMPAIGN_SCHEMA, quick=False)

        async def first_run():
            # Fork-pool worker so a hard stop genuinely kills the
            # execution mid-sweep (a thread could not be killed).
            server = ExperimentServer(port=0, workers=1,
                                      cache_dir=cache_dir)
            await server.start()
            stream = await connect(server)
            await stream.send({"op": "run_campaign", "id": 1,
                               "params": {"spec": spec.to_dict()}})
            # Wait until at least two points have been published, then
            # pull the plug without draining.
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if len(list(cache_dir.glob("*.json"))) >= 2:
                    break
                await asyncio.sleep(0.005)
            else:
                pytest.fail("no campaign points were ever published")
            await server.stop(drain=False)
            await stream.close()

        asyncio.run(first_run())
        # If the sweep won the race and completed, drop the top-level
        # response document — the kill is only interesting for points.
        (cache_dir / f"{doc_key}.json").unlink(missing_ok=True)
        published = len(list(cache_dir.glob("*.json")))
        assert published >= 2

        async def second_run():
            async with serve(workers=0, cache_dir=cache_dir) as server:
                stream = await connect(server)
                try:
                    return await stream.request(
                        "run_campaign", {"spec": spec.to_dict()},
                        timeout=120)
                finally:
                    await stream.close()

        reply = asyncio.run(second_run())
        assert reply["type"] == "response"
        profile = reply["result"]["profile"]
        assert profile["cache"]["hits"] >= 2          # resumed, not redone
        assert profile["cache"]["hits"] + profile["executed"] == spec.size

        local = run_campaign(spec, workers=1, cache_dir=None)
        assert to_canonical_json(reply["result"]["metrics"]) \
            == local.metrics_json()


# -- clean shutdown --------------------------------------------------------


class TestShutdown:
    def test_shutdown_drains_in_flight_work(self, monkeypatch):
        def slow(experiment_id, quick):
            time.sleep(0.3)
            return {"experiment": experiment_id, "slow": True}

        async def scenario():
            with patched_executor(monkeypatch, "run_experiment", slow):
                async with serve() as server:
                    worker = await connect(server)
                    await worker.send({"op": "run_experiment", "id": "w",
                                       "params": {"experiment": "e01"}})
                    await asyncio.sleep(0.05)  # let the execution start
                    admin = await connect(server)
                    bye = await admin.request("shutdown", id="bye",
                                              timeout=10)
                    assert bye["type"] == "response"
                    assert bye["result"] == {"stopping": True}
                    # The in-flight execution still completes and its
                    # response is still delivered before the stop.
                    reply = await worker.recv(timeout=10)
                    assert reply["type"] == "response"
                    assert reply["result"]["slow"] is True
                    await server._stopped.wait()
                    assert server.stats.executed == 1
                    assert server.stats.responses == 2
                    await worker.close()
                    await admin.close()

        asyncio.run(scenario())

    def test_disconnected_leader_does_not_orphan_followers(self,
                                                           monkeypatch):
        def slow(experiment_id, quick):
            time.sleep(0.3)
            return {"experiment": experiment_id}

        async def scenario():
            with patched_executor(monkeypatch, "run_experiment", slow):
                async with serve() as server:
                    leader = await connect(server)
                    await leader.send({"op": "run_experiment", "id": 1,
                                       "params": {"experiment": "e01"}})
                    await asyncio.sleep(0.05)
                    follower = await connect(server)
                    await follower.send({"op": "run_experiment", "id": 2,
                                         "params": {"experiment": "e01"}})
                    await asyncio.sleep(0.05)
                    await leader.close()  # leader walks away mid-run
                    reply = await follower.recv(timeout=10)
                    assert reply["type"] == "response"
                    assert reply["result"] == {"experiment": "e01"}
                    assert server.stats.executed == 1
                    await follower.close()

        asyncio.run(scenario())

    def test_failed_execution_returns_typed_error(self, monkeypatch):
        def boom(experiment_id, quick):
            raise RuntimeError("engine melted")

        async def scenario():
            with patched_executor(monkeypatch, "run_experiment", boom):
                async with serve() as server:
                    stream = await connect(server)
                    reply = await stream.request(
                        "run_experiment", {"experiment": "e01"},
                        timeout=10)
                    assert reply["type"] == "error"
                    assert reply["error"]["code"] == "execution-failed"
                    assert "engine melted" in reply["error"]["message"]
                    assert server.stats.failed == 1
                    await stream.close()

        asyncio.run(scenario())


# -- the cheap ops ---------------------------------------------------------


class TestCheapOps:
    def test_list_experiments_and_stats(self):
        async def scenario():
            async with serve() as server:
                stream = await connect(server)
                exps = await stream.request("list_experiments", timeout=10)
                stats = await stream.request("stats", timeout=10)
                await stream.close()
                return exps, stats

        exps, stats = asyncio.run(scenario())
        assert "e01" in exps["result"]["experiments"]
        assert exps["result"]["experiments"] \
            == sorted(exps["result"]["experiments"])
        counters = stats["result"]["counters"]
        assert counters["requests"] == 2
        assert stats["result"]["dedup"] == {"leads": 0, "joins": 0,
                                            "in_flight": 0}

    def test_result_documents_are_json_clean(self):
        async def scenario():
            async with serve() as server:
                stream = await connect(server)
                reply = await stream.request(
                    "list_engines", {"survey_only": True}, timeout=10)
                await stream.close()
                return reply

        reply = asyncio.run(scenario())
        engines = reply["result"]["engines"]
        assert any(e["name"] == "stream" for e in engines)
        json.dumps(engines)  # must already be JSON-clean


# -- streaming: slow executions vs the idle clock, trace sessions ----------


class TestIdleClockCoversOnlyWaiting:
    def test_long_execution_then_quiet_client_still_served(self,
                                                           monkeypatch):
        """Regression: the idle clock must restart when a request
        *completes*, not when its bytes arrived.

        A client that sends one slow request (longer than the idle
        timeout), reads the response, thinks for most of another idle
        window and then pings again was reaped by the old
        arrival-stamped clock."""

        def slow(experiment_id, quick):
            time.sleep(0.6)  # 1.5x the idle timeout
            return {"experiment": experiment_id}

        async def scenario():
            with patched_executor(monkeypatch, "run_experiment", slow):
                async with serve(idle_timeout=0.4) as server:
                    stream = await connect(server)
                    reply = await stream.request(
                        "run_experiment", {"experiment": "e01"}, timeout=10)
                    assert reply["type"] == "response"
                    # Quiet for most of an idle window *after* the
                    # response; the connection must still be alive.
                    await asyncio.sleep(0.3)
                    pong = await stream.request("ping", id=2, timeout=5)
                    assert pong["type"] == "response"
                    assert server.stats.idle_timeouts == 0
                    await stream.close()

        asyncio.run(scenario())

    def test_in_flight_stream_session_not_reaped(self):
        """Feeding trace chunks continuously must hold off the reaper,
        and a session spanning several idle windows must finish."""

        async def scenario():
            async with serve(idle_timeout=0.4) as server:
                stream = await connect(server)
                begin = await stream.request(
                    "trace_begin", {"engine": "xom"}, timeout=10)
                sid = begin["result"]["session"]
                records = [[2, (i * 4) % 4096, 4] for i in range(512)]
                for i in range(8):
                    await asyncio.sleep(0.15)  # 8 x 0.15s > idle_timeout
                    fed = await stream.request(
                        "trace_chunk",
                        {"session": sid, "records": records}, timeout=10)
                    assert fed["type"] == "response"
                done = await stream.request(
                    "trace_end", {"session": sid}, timeout=10)
                assert done["type"] == "response"
                assert done["result"]["accesses"] == 8 * 512
                assert server.stats.idle_timeouts == 0
                await stream.close()

        asyncio.run(scenario())


class TestStreamSessions:
    def test_session_metrics_match_local_run_stream(self):
        """A trace fed frame by frame lands on the same canonical
        metrics as repro.api.run_stream generating it locally."""
        from repro.api import run_stream
        from repro.traces import iter_workload

        accesses = [[{"fetch": 2, "load": 0, "store": 1}[a.kind.name.lower()],
                     a.addr % (32 * 1024), a.size]
                    for a in iter_workload("mixed", n=6000)]
        local = run_stream(engine="xom", workload="mixed", accesses=6000)

        async def scenario():
            async with serve() as server:
                stream = await connect(server)
                begin = await stream.request(
                    "trace_begin", {"engine": "xom"}, timeout=10)
                sid = begin["result"]["session"]
                for i in range(0, len(accesses), 1024):
                    await stream.request(
                        "trace_chunk",
                        {"session": sid,
                         "records": accesses[i:i + 1024]}, timeout=10)
                done = await stream.request(
                    "trace_end", {"session": sid}, timeout=10)
                await stream.close()
                return done

        done = asyncio.run(scenario())
        assert done["result"]["accesses"] == 6000
        assert done["result"]["metrics"] == local["metrics"]

    def test_run_stream_op_matches_local(self):
        from repro.api import run_stream

        local = run_stream(engine=None, workload="dma-burst", accesses=4000,
                           chunk_size=512)

        async def scenario():
            async with serve() as server:
                stream = await connect(server)
                reply = await stream.request(
                    "run_stream",
                    {"workload": "dma-burst", "accesses": 4000,
                     "chunk_size": 512}, timeout=30)
                await stream.close()
                return reply

        reply = asyncio.run(scenario())
        assert reply["type"] == "response"
        assert reply["result"] == local

    def test_typed_stream_errors(self):
        async def scenario():
            async with serve() as server:
                stream = await connect(server)
                bad_engine = await stream.request(
                    "trace_begin", {"engine": "enigma"}, timeout=10)
                bad_session = await stream.request(
                    "trace_chunk", {"session": "s999", "records": []},
                    timeout=10)
                begin = await stream.request("trace_begin", {}, timeout=10)
                sid = begin["result"]["session"]
                bad_record = await stream.request(
                    "trace_chunk",
                    {"session": sid, "records": [[7, 0, 4]]}, timeout=10)
                bad_shape = await stream.request(
                    "trace_chunk",
                    {"session": sid, "records": [[1, 2]]}, timeout=10)
                bad_values = await stream.request(
                    "trace_chunk",
                    {"session": sid, "records": [[0, -4, 0]]}, timeout=10)
                await stream.close()
                return (bad_engine, bad_session, bad_record, bad_shape,
                        bad_values)

        replies = asyncio.run(scenario())
        for reply in replies:
            assert reply["type"] == "error"
        codes = [r["error"]["code"] for r in replies]
        assert codes[0] == "bad-stream"
        assert codes[1] == "unknown-session"
        assert all(c == "bad-stream" for c in codes[2:])

    def test_abandoned_session_cleaned_up_on_disconnect(self):
        async def scenario():
            async with serve() as server:
                stream = await connect(server)
                begin = await stream.request(
                    "trace_begin", {"engine": "xom"}, timeout=10)
                sid = begin["result"]["session"]
                await stream.request(
                    "trace_chunk",
                    {"session": sid,
                     "records": [[2, 0, 4]] * 64}, timeout=10)
                await stream.close()  # vanish mid-session
                # The server must survive and accept new work.
                fresh = await connect(server)
                pong = await fresh.request("ping", timeout=5)
                assert pong["type"] == "response"
                await fresh.close()

        asyncio.run(scenario())
