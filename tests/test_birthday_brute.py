"""Birthday/IV analysis and brute-force lifetime modeling."""

import math

import pytest

from repro.attacks import (
    CLASS_I_ADVERSARY,
    CLASS_III_ADVERSARY,
    collision_probability,
    count_collisions,
    effective_key_bits_after,
    expected_writes_to_collision,
    first_collision_index,
    moore_speedup,
    years_to_break,
)
from repro.core import AegisEngine
from repro.crypto import DRBG

KEY = b"0123456789abcdef"


class TestBirthdayMath:
    def test_zero_or_one_write_never_collides(self):
        assert collision_probability(0, 32) == 0.0
        assert collision_probability(1, 32) == 0.0

    def test_full_space_certain(self):
        assert collision_probability(2 ** 8, 8) == 1.0

    def test_classic_birthday_paradox(self):
        """23 people, 365 days ~ 50%: sanity anchor with ~2^8.5 space."""
        # Use the formula with vector space 365 ~ 8.51 bits.
        p = 1 - math.exp(-23 * 22 / (2 * 365))
        assert 0.4 < p < 0.6  # the anchor itself

    def test_monotone_in_writes(self):
        probs = [collision_probability(n, 32) for n in (10, 1000, 100000)]
        assert probs == sorted(probs)

    def test_expected_writes_scale(self):
        """sqrt scaling: 32-bit vectors collide near 2^16 writes."""
        expected = expected_writes_to_collision(32)
        assert 2 ** 15 < expected < 2 ** 18

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            collision_probability(10, 0)
        with pytest.raises(ValueError):
            expected_writes_to_collision(-1)


class TestEmpiricalCollisions:
    def test_count_and_first_index(self):
        vectors = [1, 2, 3, 2, 1, 4]
        assert count_collisions(vectors) == 2
        assert first_collision_index(vectors) == 3

    def test_no_collisions(self):
        assert count_collisions(range(100)) == 0
        assert first_collision_index(list(range(100))) == -1

    def test_aegis_random_iv_collides_at_birthday_scale(self):
        """A (deliberately narrow) 8-bit random vector collides within a
        few dozen writes — the attack AEGIS's counter mode prevents."""
        engine = AegisEngine(KEY, iv_mode="random", vector_bits=8,
                             rng=DRBG(11))
        line = bytes(32)
        for i in range(64):
            engine.encrypt_line(i * 32, line)
        assert count_collisions(engine.issued_vectors) > 0

    def test_aegis_counter_iv_never_collides(self):
        engine = AegisEngine(KEY, iv_mode="counter", vector_bits=8)
        line = bytes(32)
        for i in range(200):
            engine.encrypt_line(i * 32, line)
        # Counter wraps at 256; within 200 writes: zero collisions.
        assert count_collisions(engine.issued_vectors) == 0

    def test_aegis_rejects_bad_iv_mode(self):
        with pytest.raises(ValueError):
            AegisEngine(KEY, iv_mode="timestamp")
        with pytest.raises(ValueError):
            AegisEngine(KEY, vector_bits=0)


class TestBruteForce:
    def test_moore_speedup(self):
        assert moore_speedup(0) == 1.0
        assert moore_speedup(1.5) == pytest.approx(2.0)
        assert moore_speedup(15) == pytest.approx(2 ** 10)

    def test_effective_bits_decay(self):
        """The survey's 10-year lifetime costs ~6.7 bits of margin."""
        assert effective_key_bits_after(56, 10) == pytest.approx(56 - 10 / 1.5)

    def test_years_to_break_scales_exponentially(self):
        fast = years_to_break(40, 1e9)
        slow = years_to_break(56, 1e9)
        assert slow / fast == pytest.approx(2 ** 16)

    def test_des_falls_to_class_iii(self):
        """56-bit DES (the DS5240's single-DES option) is inside a funded
        organization's 10-year budget; AES-128 is not."""
        assert CLASS_III_ADVERSARY.breaks_within_lifetime(56)
        assert not CLASS_III_ADVERSARY.breaks_within_lifetime(128)

    def test_class_i_cannot_touch_des(self):
        assert not CLASS_I_ADVERSARY.breaks_within_lifetime(56)

    def test_validation(self):
        with pytest.raises(ValueError):
            years_to_break(56, 0)
        with pytest.raises(ValueError):
            moore_speedup(-1)
