"""Cipher-kernel microbenchmarks — the tentpole speedup, measured.

Thin wrapper: the equivalence sweep and the timing bodies live in
:mod:`repro.crypto.bench_kernels` (shared with ``python -m
repro.crypto.bench_kernels``).  Each bench times the batched kernel path
on the same workload the CLI table reports, after asserting the kernels
still match the reference ciphers bit-for-bit.
"""

from benchmarks.common import print_table

_NBLOCKS = 2000


def _data(block_size: int) -> bytes:
    return bytes(range(256)) * (block_size * _NBLOCKS // 256)


def test_kernel_equivalence(benchmark):
    from repro.crypto.bench_kernels import check_equivalence

    failures = benchmark.pedantic(
        lambda: check_equivalence(blocks_per_key=200), rounds=1, iterations=1
    )
    assert failures == []


def test_aes_kernel_throughput(benchmark):
    from repro.crypto.kernels import aes_kernel

    kernel = aes_kernel(bytes(range(16)))
    data = _data(16)
    out = benchmark(kernel.encrypt_blocks, data)
    assert kernel.decrypt_blocks(out) == data
    print_table(f"aes-128 kernel: {_NBLOCKS} blocks per round")


def test_tdes_kernel_throughput(benchmark):
    from repro.crypto.kernels import tdes_kernel

    kernel = tdes_kernel(bytes(range(24)))
    data = _data(8)
    out = benchmark(kernel.encrypt_blocks, data)
    assert kernel.decrypt_blocks(out) == data
    print_table(f"3des-ede3 kernel: {_NBLOCKS} blocks per round")
