"""E16 — extension: the placement question with an L2, plus energy.

Thin wrapper: the measurement body, tables and claim checks live in
:mod:`repro.runner.experiments.e16` (shared with ``python -m repro.cli
bench``).
"""

from benchmarks.common import run_experiment_benchmark


def test_e16(benchmark):
    run_experiment_benchmark(benchmark, "e16")
