"""E16 (extension) — the placement question with an L2, plus energy.

Generalizes Figure 7 to a two-level hierarchy: the EDU can guard the
L2-memory boundary (both caches plaintext, crypto on off-chip traffic only)
or the L1-L2 boundary (ciphertext L2 — tolerates on-chip probing of the
big array, §4's class-III concern — at crypto-per-L1-miss cost).  Also
prices the engines in energy, the survey constraint ("power consumption")
E14 leaves unquantified, and shows compression saving bus energy.
"""

import pytest

from benchmarks.common import KEY16, KEY24, N_ACCESSES, print_table
from repro.analysis import format_percent, format_table, measure_overhead
from repro.core import (
    BestEngine,
    CompressedEncryptionEngine,
    DS5240Engine,
    StreamCipherEngine,
    XomAesEngine,
)
from repro.sim import (
    EDU_L1_L2,
    EDU_L2_MEMORY,
    CacheConfig,
    MemoryConfig,
    SecureSystem,
    TwoLevelSystem,
    estimate_run,
)
from repro.traces import make_workload, sequential_code, synthetic_code_image

L1 = CacheConfig(size=2048, line_size=32, associativity=2, hit_latency=1)
L2 = CacheConfig(size=16 * 1024, line_size=32, associativity=4, hit_latency=8)
MEM = MemoryConfig(size=1 << 21, latency=60)
IMAGE_SIZE = 32 * 1024


def hierarchy_rows():
    trace = [
        type(a)(a.kind, a.addr % IMAGE_SIZE, a.size)
        for a in make_workload("mixed", n=N_ACCESSES)
    ]
    rows = []
    baseline = TwoLevelSystem(l1_config=L1, l2_config=L2, mem_config=MEM)
    baseline.install_image(0, bytes(IMAGE_SIZE))
    base_report = baseline.run(list(trace))

    for level in (EDU_L2_MEMORY, EDU_L1_L2):
        engine = XomAesEngine(KEY16, functional=False)
        system = TwoLevelSystem(
            engine=engine, l1_config=L1, l2_config=L2, mem_config=MEM,
            edu_level=level,
        )
        system.install_image(0, bytes(IMAGE_SIZE))
        report = system.run(list(trace))
        rows.append({
            "level": level,
            "overhead": report.overhead_vs(base_report),
            "crypto_ops": engine.stats.lines_decrypted
            + engine.stats.lines_encrypted,
        })
    return rows


def energy_rows():
    trace = sequential_code(N_ACCESSES, code_size=IMAGE_SIZE)
    image = synthetic_code_image(size=IMAGE_SIZE)
    cache = CacheConfig(size=1024, line_size=32, associativity=2)
    narrow = MemoryConfig(size=1 << 21, latency=40, bus_width=2,
                          cycles_per_beat=2)
    rows = []
    engines = [
        ("baseline", None),
        ("best-1979", BestEngine(KEY16, functional=False)),
        ("ds5240", DS5240Engine(KEY16, functional=False)),
        ("xom-aes", XomAesEngine(KEY16, functional=False)),
        ("stream-ctr", StreamCipherEngine(KEY16, functional=False)),
        ("compress+encrypt",
         CompressedEncryptionEngine(KEY16, line_size=32, functional=False)),
    ]
    for label, engine in engines:
        system = SecureSystem(engine=engine, cache_config=cache,
                              mem_config=narrow)
        system.install_image(0, image)
        report = system.run(list(trace))
        energy = estimate_run(report, engine)
        rows.append({
            "engine": label,
            "cycles": report.cycles,
            "bus_bytes": report.bus_bytes,
            "energy_uj": energy.total_uj,
        })
    return rows


def test_e16_l2_placement(benchmark):
    rows = benchmark.pedantic(hierarchy_rows, rounds=1, iterations=1)
    print_table(format_table(
        ["EDU boundary", "overhead vs 2-level baseline", "crypto line-ops"],
        [[r["level"], format_percent(r["overhead"]), r["crypto_ops"]]
         for r in rows],
        title="E16a: Figure 7, generalized to an L1/L2 hierarchy",
    ))
    by_level = {r["level"]: r for r in rows}
    # Guarding the inner boundary costs more crypto work and more cycles.
    assert by_level[EDU_L1_L2]["crypto_ops"] > \
        by_level[EDU_L2_MEMORY]["crypto_ops"]
    assert by_level[EDU_L1_L2]["overhead"] >= \
        by_level[EDU_L2_MEMORY]["overhead"]


def test_e16_energy(benchmark):
    rows = benchmark.pedantic(energy_rows, rounds=1, iterations=1)
    print_table(format_table(
        ["engine", "cycles", "bus bytes", "energy (uJ)"],
        [[r["engine"], r["cycles"], r["bus_bytes"],
          f"{r['energy_uj']:.1f}"] for r in rows],
        title="E16b: the survey's unquantified constraint — energy "
              "(narrow-bus memory)",
    ))
    by_name = {r["engine"]: r for r in rows}
    # Every engine costs energy over the baseline...
    for name in ("best-1979", "ds5240", "xom-aes", "stream-ctr"):
        assert by_name[name]["energy_uj"] > by_name["baseline"]["energy_uj"]
    # ...except compression, which can pay for its own crypto by moving
    # fewer bytes across the expensive external bus.
    assert by_name["compress+encrypt"]["bus_bytes"] < \
        by_name["baseline"]["bus_bytes"]
    assert by_name["compress+encrypt"]["energy_uj"] < \
        by_name["xom-aes"]["energy_uj"]


if __name__ == "__main__":
    print(hierarchy_rows())
    print(energy_rows())
