"""E02 — Figure 2a/2b / §2.2: stream vs block cipher on the miss path.

Paper claims reproduced:
* "stream cipher seems to be more suitable in term of performance: the key
  stream generation can be parallelised with external data fetch";
* "the shortcoming of block cipher cryptosystems is that deciphering cannot
  start until a complete block has been received";
* ablation: pad-ahead depth of the stream engine.

The bench sweeps external memory latency: the stream engine's overhead is
flat and tiny (pad generation hides behind the fetch); the block engine
always pays its pipeline drain on top of the fetch.
"""

import pytest

from benchmarks.common import CACHE, KEY16, N_ACCESSES, print_table
from repro.analysis import ascii_plot, format_percent, format_table, measure_overhead
from repro.core import StreamCipherEngine, XomAesEngine
from repro.sim import MemoryConfig
from repro.traces import make_workload


def sweep_memory_latency(latencies=(5, 20, 40, 80, 160)):
    trace = make_workload("branchy", n=N_ACCESSES)
    rows = []
    for latency in latencies:
        mem = MemoryConfig(size=1 << 21, latency=latency)
        stream = measure_overhead(
            lambda: StreamCipherEngine(KEY16, functional=False,
                                       pad_ahead_depth=2),
            trace, cache_config=CACHE, mem_config=mem,
        ).overhead
        block = measure_overhead(
            lambda: XomAesEngine(KEY16, functional=False),
            trace, cache_config=CACHE, mem_config=mem,
        ).overhead
        rows.append({"latency": latency, "stream": stream, "block": block})
    return rows


def sweep_pad_ahead(depths=(0, 1, 2, 4, 8)):
    # Fast memory: the fetch is too short to hide pad generation, so the
    # precomputed pads are what keeps the miss path clean.
    fast_mem = MemoryConfig(size=1 << 21, latency=5)
    trace = make_workload("sequential", n=N_ACCESSES)
    rows = []
    for depth in depths:
        value = measure_overhead(
            lambda: StreamCipherEngine(KEY16, functional=False,
                                       pad_ahead_depth=depth,
                                       pad_cache_lines=max(2, 2 * depth)),
            trace, cache_config=CACHE, mem_config=fast_mem,
        ).overhead
        rows.append({"depth": depth, "overhead": value})
    return rows


def test_e02_stream_vs_block(benchmark):
    rows = benchmark.pedantic(sweep_memory_latency, rounds=1, iterations=1)
    print_table(format_table(
        ["memory latency", "stream overhead", "block overhead"],
        [[r["latency"], format_percent(r["stream"]),
          format_percent(r["block"])] for r in rows],
        title="E02: stream vs block cipher overhead vs memory latency "
              "(survey Fig. 2)",
    ))
    print(ascii_plot(
        {"stream": [(r["latency"], 100 * r["stream"]) for r in rows],
         "block": [(r["latency"], 100 * r["block"]) for r in rows]},
        title="E02 figure: overhead (%) vs memory latency",
        x_label="memory latency (cycles)", y_label="%",
    ))
    # Shape: block always worse than stream; stream stays small once the
    # fetch is slow enough to hide pad generation.
    for r in rows:
        assert r["block"] > r["stream"]
    assert rows[-1]["stream"] < 0.05


def test_e02_pad_ahead_ablation(benchmark):
    rows = benchmark.pedantic(sweep_pad_ahead, rounds=1, iterations=1)
    print_table(format_table(
        ["pad-ahead depth", "stream overhead (sequential, fast memory)"],
        [[r["depth"], format_percent(r["overhead"])] for r in rows],
        title="E02 ablation: pad-ahead depth",
    ))
    # With fast memory the pads no longer hide behind the fetch: depth >= 1
    # must beat depth 0, and deeper never hurts on sequential code.
    assert rows[1]["overhead"] < rows[0]["overhead"]
    assert rows[-1]["overhead"] <= rows[1]["overhead"] + 1e-9


if __name__ == "__main__":
    test_e02_pad_ahead_ablation()
