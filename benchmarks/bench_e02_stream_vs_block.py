"""E02 — Figure 2a/2b / §2.2: stream vs block cipher on the miss path.

Thin wrapper: the measurement body, tables and claim checks live in
:mod:`repro.runner.experiments.e02` (shared with ``python -m repro.cli
bench``).
"""

from benchmarks.common import run_experiment_benchmark


def test_e02(benchmark):
    run_experiment_benchmark(benchmark, "e02")
