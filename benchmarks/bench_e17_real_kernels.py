"""E17 — extension: the engine suite on real program traces.

Thin wrapper: the measurement body, tables and claim checks live in
:mod:`repro.runner.experiments.e17` (shared with ``python -m repro.cli
bench``).
"""

from benchmarks.common import run_experiment_benchmark


def test_e17(benchmark):
    run_experiment_benchmark(benchmark, "e17")
