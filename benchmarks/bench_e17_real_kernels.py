"""E17 (extension) — the engine suite on *real* program traces.

The synthetic workload generators control miss rate and write mix
parametrically; these traces come from actually executing kernels (sort,
memcpy, memset, search, checksum) on the MCU model.  The experiment checks
that the survey-table orderings measured on synthetic workloads survive
contact with real instruction streams, and certifies every keystream
generator against the survey-era FIPS 140-1 battery.
"""

import pytest

from benchmarks.common import KEY16, print_table
from repro.analysis import (
    fips_140_1,
    format_percent,
    format_table,
    measure_overhead,
)
from repro.core import AegisEngine, DS5240Engine, StreamCipherEngine, XomAesEngine
from repro.crypto import AES, CTR, DRBG, RC4
from repro.crypto.lfsr import AlternatingStepGenerator, GeffeGenerator
from repro.sim import CacheConfig, MemoryConfig
from repro.traces import MCU_KERNELS, mcu_workload

CACHE = CacheConfig(size=512, line_size=32, associativity=2)
MEM = MemoryConfig(size=1 << 16, latency=40)

ENGINES = {
    "stream-ctr": lambda: StreamCipherEngine(KEY16, functional=False),
    "xom-aes": lambda: XomAesEngine(KEY16, functional=False),
    "aegis-aes-cbc": lambda: AegisEngine(KEY16, functional=False),
    "ds5240": lambda: DS5240Engine(KEY16, functional=False),
}


def kernel_grid():
    rows = []
    for kernel in MCU_KERNELS:
        trace = mcu_workload(kernel, repeat=3)
        row = {"kernel": kernel}
        for name, factory in ENGINES.items():
            row[name] = measure_overhead(
                factory, trace, workload=kernel,
                cache_config=CACHE, mem_config=MEM,
            ).overhead
        rows.append(row)
    return rows


def keystream_certification():
    sample = 2500
    taps = ((9, 5), (10, 7), (11, 9))
    streams = {
        "AES-CTR": CTR(AES(KEY16), nonce=bytes(12)).keystream(sample),
        "RC4": RC4(b"cert-key").keystream(sample),
        "Geffe combiner": GeffeGenerator(
            0x1F3, 0x2A5, 0x3B7, taps_a=taps[0], taps_b=taps[1],
            taps_c=taps[2],
        ).keystream(sample),
        "Alternating step": AlternatingStepGenerator(7, 77, 777)
        .keystream(sample),
        "repro DRBG": DRBG(2005).random_bytes(sample),
    }
    return {label: fips_140_1(stream) for label, stream in streams.items()}


def test_e17_engines_on_real_kernels(benchmark):
    rows = benchmark.pedantic(kernel_grid, rounds=1, iterations=1)
    print_table(format_table(
        ["kernel"] + list(ENGINES),
        [[r["kernel"]] + [format_percent(r[name]) for name in ENGINES]
         for r in rows],
        title="E17a: engine overhead on real MCU kernel traces",
    ))
    # The synthetic-suite ordering holds on real programs, per kernel:
    # stream <= xom <= aegis, and the iterative-DES engine trails them.
    for r in rows:
        assert r["stream-ctr"] <= r["xom-aes"] + 1e-9, r["kernel"]
        assert r["xom-aes"] <= r["aegis-aes-cbc"] + 1e-9, r["kernel"]
        assert r["ds5240"] >= r["xom-aes"], r["kernel"]


def test_e17_fips_certification(benchmark):
    results = benchmark.pedantic(keystream_certification, rounds=1,
                                 iterations=1)
    print_table(format_table(
        ["generator", "FIPS 140-1", "monobit ones", "poker", "longest run"],
        [[label, "PASS" if r.passed else "FAIL", r.monobit_ones,
          f"{r.poker_statistic:.1f}", r.longest_run]
         for label, r in results.items()],
        title="E17b: survey-era certification battery on the keystream "
              "generators",
    ))
    assert all(r.passed for r in results.values())
    # The battery is necessary, not sufficient: the Geffe combiner passes
    # here and falls to the correlation attack in E15d.


if __name__ == "__main__":
    print(kernel_grid())
