"""E12 — Figure 7 / §4: EDU placement, CPU-cache vs cache-memory.

Paper claims reproduced:
* 7b stored-keystream variant needs "an on-chip memory equivalent to the
  cache memory in term of size" — §5 calls the doubling unaffordable;
* 7b generate-on-demand "implies important performance loss" (the
  generator latency lands on every cache access);
* "this scheme seems to provide no benefit in term of performance when
  compared to a stream cipher located between cache memory and memory
  controller."
"""

import pytest

from benchmarks.common import KEY16, N_ACCESSES, print_table
from repro.analysis import format_gates, format_percent, format_table
from repro.core import compare_placements
from repro.sim import CacheConfig, MemoryConfig, sram_gates
from repro.traces import make_workload

CACHE = CacheConfig(size=8192, line_size=32, associativity=2)
MEM = MemoryConfig(size=1 << 21, latency=40)


def run_comparison(workload="mixed"):
    trace = make_workload(workload, n=N_ACCESSES)
    return compare_placements(trace, key=KEY16, cache_config=CACHE,
                              mem_config=MEM)


def test_e12_placement(benchmark):
    comparison = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    overheads = comparison.overheads()
    print_table(format_table(
        ["design point", "overhead", "engine area"],
        [[name, format_percent(overheads[name]),
          format_gates(comparison.areas[name])] for name in overheads],
        title="E12: EDU placement (survey Fig. 7 / §4)",
    ))
    # No performance benefit from the CPU-cache placement...
    assert overheads["cpu-cache stored pad (7b)"] >= \
        overheads["cache-memory (7a)"] - 1e-9
    # ...and the on-demand variant is far worse.
    assert overheads["cpu-cache generated pad (7b)"] > \
        5 * max(overheads["cache-memory (7a)"], 0.001)
    # The stored variant pays an SRAM bill equal to the whole cache.
    premium = (comparison.areas["cpu-cache stored pad (7b)"]
               - comparison.areas["cpu-cache generated pad (7b)"])
    assert premium == sram_gates(CACHE.size)


def test_e12_cache_sensitivity(benchmark):
    """The per-access tax of 7b scales with hit volume: the more the cache
    does its job, the worse 7b compares."""
    def run():
        rows = []
        for size in (1024, 4096, 16384):
            trace = make_workload("data-local", n=N_ACCESSES)
            comparison = compare_placements(
                trace, key=KEY16,
                cache_config=CacheConfig(size=size, line_size=32,
                                         associativity=2),
                mem_config=MEM,
            )
            o = comparison.overheads()
            rows.append({
                "cache": size,
                "edu_7a": o["cache-memory (7a)"],
                "edu_7b": o["cpu-cache stored pad (7b)"],
            })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(format_table(
        ["cache size", "7a overhead", "7b (stored) overhead"],
        [[r["cache"], format_percent(r["edu_7a"]),
          format_percent(r["edu_7b"])] for r in rows],
        title="E12b: placement vs cache size",
    ))
    # The 7b/7a *relative* gap widens as hits dominate.
    ratios = [
        (r["edu_7b"] + 1e-9) / (r["edu_7a"] + 1e-9) for r in rows
    ]
    assert ratios[-1] > ratios[0]


if __name__ == "__main__":
    c = run_comparison()
    print(c.overheads())
