"""E12 — Figure 7 / §4: EDU placement, CPU-cache vs cache-memory.

Thin wrapper: the measurement body, tables and claim checks live in
:mod:`repro.runner.experiments.e12` (shared with ``python -m repro.cli
bench``).
"""

from benchmarks.common import run_experiment_benchmark


def test_e12(benchmark):
    run_experiment_benchmark(benchmark, "e12")
