"""E19 — extension: fault-injection campaigns, the active-attack matrix.

Thin wrapper: the campaign scripts, tables and conformance checks live in
:mod:`repro.runner.experiments.e19` (shared with ``python -m repro.cli
bench``).
"""

from benchmarks.common import run_experiment_benchmark


def test_e19(benchmark):
    run_experiment_benchmark(benchmark, "e19")
