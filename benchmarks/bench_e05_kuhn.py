"""E05 — §2.3 / Figure 6: the Kuhn attack on the DS5002FP, and the DS5240's
answer.

Paper claims reproduced:
* "The hacker circumvents the cryptographic problem by ... applying
  exhaustive attack (8-bit instruction <=> 256 possibilities).  After
  having identified the MOV instruction, he dumped the external memory
  content in clear form through the parallel-port" — executed end to end;
* "the 8-bit based ciphering passes to 64-bit based ciphering" — quantified
  as search-space explosion (2^8 -> 2^64) and block diffusion.
"""

import pytest

from benchmarks.common import print_table
from repro.analysis import format_table
from repro.attacks import (
    DallasBoard,
    KuhnAttack,
    PortBasedKuhnAttack,
    ScrambledDallasBoard,
    block_diffusion_probe,
    brute_force_tries,
)
from repro.crypto import AddressScrambler, SmallBlockCipher, TweakableFeistel
from repro.isa import assemble, secret_table_program

MEMORY_SIZE = 1024


def run_attack():
    firmware = assemble(secret_table_program(seed=2005, table_len=64),
                        size=MEMORY_SIZE)
    board = DallasBoard(SmallBlockCipher(b"ds5002fp-factory-key"), firmware,
                        memory_size=MEMORY_SIZE)
    report = KuhnAttack(board).run()
    return firmware, report


def run_scrambled_attack():
    """The same break with the address bus enciphered as well."""
    firmware = assemble(secret_table_program(seed=2005, table_len=64),
                        size=MEMORY_SIZE)
    board = ScrambledDallasBoard(
        SmallBlockCipher(b"ds5002fp-factory-key"), firmware,
        memory_size=MEMORY_SIZE,
        scrambler=AddressScrambler(b"address-bus-key", size=MEMORY_SIZE),
    )
    report = PortBasedKuhnAttack(board).run()
    return firmware, report


def resistance_rows():
    rows = []
    for label, bits in (("DS5002FP", 8), ("DS5240 (DES)", 64)):
        cipher = TweakableFeistel(b"key", block_bits=bits)
        rows.append({
            "device": label,
            "block_bits": bits,
            "tries_per_address": brute_force_tries(bits),
            "diffusion": block_diffusion_probe(cipher),
        })
    return rows


def test_e05_kuhn_attack_dumps_memory(benchmark):
    firmware, report = benchmark.pedantic(run_attack, rounds=1, iterations=1)
    print_table(format_table(
        ["metric", "value"],
        [
            ["memory dumped (bytes)", len(report.plaintext)],
            ["bytes exactly recovered",
             sum(a == b for a, b in zip(report.plaintext, firmware))],
            ["probe runs", report.probe_runs],
            ["instructions single-stepped", report.steps_executed],
            ["ambiguous cells", len(report.ambiguous_cells)],
        ],
        title="E05a: cipher instruction search vs DS5002FP (survey §2.3)",
    ))
    assert report.plaintext == firmware
    # Kuhn's scale: a few 256-candidate sweeps plus one run per byte.
    assert report.probe_runs < 6 * 256 + MEMORY_SIZE + 64


def test_e05_address_scrambling_does_not_save_it(benchmark):
    """Enciphering the address bus (which the real part did) only adds a
    constant number of probe sweeps: the port-based variant of the attack
    learns the address permutation from the CPU's own fetch pattern."""
    firmware, report = benchmark.pedantic(run_scrambled_attack, rounds=1,
                                          iterations=1)
    print_table(format_table(
        ["metric", "value"],
        [
            ["memory dumped (bytes)", len(report.plaintext)],
            ["bytes exactly recovered",
             sum(a == b for a, b in zip(report.plaintext, firmware))],
            ["probe runs", report.probe_runs],
        ],
        title="E05c: the attack vs data + address encryption",
    ))
    assert report.plaintext == firmware
    assert report.probe_runs < 8 * 256 + MEMORY_SIZE + 64


def test_e05_ds5240_resists(benchmark):
    rows = benchmark.pedantic(resistance_rows, rounds=1, iterations=1)
    print_table(format_table(
        ["device", "block bits", "tries/address", "bit diffusion"],
        [[r["device"], r["block_bits"], f"{r['tries_per_address']:.2e}",
          f"{r['diffusion']:.2f}"] for r in rows],
        title="E05b: why 64-bit blocks stop the search (survey §3)",
    ))
    ds5002, ds5240 = rows
    assert ds5002["tries_per_address"] == 256
    assert ds5240["tries_per_address"] == 2 ** 64
    # The 64-bit block diffuses: a single-byte probe garbles the block.
    assert 0.35 < ds5240["diffusion"] < 0.65


if __name__ == "__main__":
    fw, rep = run_attack()
    print("recovered:", rep.plaintext == fw, "runs:", rep.probe_runs)
