"""E05 — §2.3 / Figure 6: the Kuhn attack on the DS5002FP, and the DS5240's answer.

Thin wrapper: the measurement body, tables and claim checks live in
:mod:`repro.runner.experiments.e05` (shared with ``python -m repro.cli
bench``).
"""

from benchmarks.common import run_experiment_benchmark


def test_e05(benchmark):
    run_experiment_benchmark(benchmark, "e05")
