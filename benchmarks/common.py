"""Shared configuration for the experiment benches.

Every bench regenerates one survey figure/claim (see DESIGN.md §4 and
EXPERIMENTS.md).  Benches print their tables so that

    pytest benchmarks/ --benchmark-only -s

reproduces the full experiment log; each bench also asserts the *shape* of
the paper's claim so regressions fail loudly.
"""

from __future__ import annotations

from repro.sim import CacheConfig, MemoryConfig

KEY16 = b"0123456789abcdef"
KEY24 = b"0123456789abcdef01234567"

#: The standard simulated SoC for overhead measurements.
CACHE = CacheConfig(size=4096, line_size=32, associativity=2)
MEM = MemoryConfig(size=1 << 21, latency=40)

#: Small trace length keeping each bench comfortably under a minute.
N_ACCESSES = 4000


def print_table(table: str) -> None:
    print()
    print(table)
    print()
