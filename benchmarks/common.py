"""Shared harness for the experiment benches.

Every bench regenerates one survey figure/claim (see DESIGN.md §4 and
EXPERIMENTS.md).  The measurement bodies live in the experiment registry
(:mod:`repro.runner.experiments`) — shared with ``python -m repro.cli
bench`` — so each bench file is a thin wrapper:

    pytest benchmarks/ --benchmark-only -s

reproduces the full experiment log; each experiment's ``check`` asserts
the *shape* of the paper's claim so regressions fail loudly.
"""

from __future__ import annotations


def print_table(table: str) -> None:
    print()
    print(table)
    print()


def run_experiment_benchmark(benchmark, experiment_id: str):
    """Run one registry experiment under pytest-benchmark and check it.

    Runs all of the experiment's tasks (full scale, serial) as a single
    timed round, prints the experiment's human-readable tables, and
    re-raises its claim checks as test assertions.
    """
    from repro.runner import TaskContext, get_experiment

    experiment = get_experiment(experiment_id)
    results = benchmark.pedantic(
        lambda: experiment.run(TaskContext(quick=False)),
        rounds=1, iterations=1,
    )
    if experiment.render is not None:
        print_table(experiment.render(results))
    if experiment.check is not None:
        experiment.check(results)
    return results
