"""E09 — §3 (Gilmont et al. [3]): fetch prediction + pipelined 3DES.

Paper claims reproduced:
* "They assume to keep the deciphering cost under 2,5% in term of
  performance cost" — holds on the workload class the paper scopes
  (static, sequential code) and degrades with branchiness;
* "this work only addresses static code ciphering and consequently authors
  are not confronted to smaller-than-block-size memory operations" — the
  write-side blind spot measured on a write-bearing workload;
* ablation: predictor depth.
"""

import pytest

from benchmarks.common import CACHE, KEY24, N_ACCESSES, print_table
from repro.analysis import ascii_plot, format_percent, format_table, measure_overhead
from repro.core import GilmontEngine
from repro.crypto import DRBG
from repro.sim import CacheConfig, MemoryConfig, WritePolicy
from repro.traces import branchy_code, make_workload


def sweep_branchiness(p_takens=(0.0, 0.05, 0.15, 0.3, 0.5)):
    rows = []
    for p in p_takens:
        trace = branchy_code(N_ACCESSES, DRBG(100), p_taken=p,
                             code_size=1 << 18)
        result = measure_overhead(
            lambda: GilmontEngine(KEY24, functional=False),
            trace, cache_config=CACHE,
        )
        rows.append({"p_taken": p, "overhead": result.overhead})
    return rows


def sweep_depth(depths=(0, 1, 2, 4)):
    trace = branchy_code(N_ACCESSES, DRBG(101), p_taken=0.1,
                         code_size=1 << 18)
    rows = []
    for depth in depths:
        result = measure_overhead(
            lambda: GilmontEngine(KEY24, prediction_depth=depth,
                                  functional=False),
            trace, cache_config=CACHE,
        )
        rows.append({"depth": depth, "overhead": result.overhead})
    return rows


def write_blind_spot():
    """Data writes through the engine: the paper never measured these."""
    trace = make_workload("write-heavy", n=N_ACCESSES)
    wt_cache = CacheConfig(
        size=4096, line_size=32, associativity=2,
        write_policy=WritePolicy.WRITE_THROUGH, write_allocate=False,
    )
    return measure_overhead(
        lambda: GilmontEngine(KEY24, functional=False),
        trace, cache_config=wt_cache,
        mem_config=MemoryConfig(size=1 << 21, latency=40),
        write_buffer=False,
    )


def test_e09_fetch_prediction(benchmark):
    rows = benchmark.pedantic(sweep_branchiness, rounds=1, iterations=1)
    print_table(format_table(
        ["taken-branch probability", "overhead"],
        [[f"{r['p_taken']:.2f}", format_percent(r["overhead"])]
         for r in rows],
        title="E09: Gilmont fetch prediction vs branchiness (survey §3)",
    ))
    print(ascii_plot(
        {"gilmont-3des": [(r["p_taken"], 100 * r["overhead"]) for r in rows]},
        title="E09 figure: overhead (%) vs taken-branch probability",
        x_label="p(taken)", y_label="%",
    ))
    by_p = {r["p_taken"]: r["overhead"] for r in rows}
    # The published claim, within its scope: sequential code < 2.5%.
    assert by_p[0.0] < 0.025
    # Branchy code defeats the predictor: monotone degradation.
    overheads = [r["overhead"] for r in rows]
    assert overheads == sorted(overheads)
    assert by_p[0.5] > 0.05


def test_e09_depth_ablation(benchmark):
    rows = benchmark.pedantic(sweep_depth, rounds=1, iterations=1)
    print_table(format_table(
        ["prediction depth", "overhead"],
        [[r["depth"], format_percent(r["overhead"])] for r in rows],
        title="E09 ablation: predictor depth on lightly branchy code",
    ))
    assert rows[-1]["overhead"] < rows[0]["overhead"]


def test_e09_write_blind_spot(benchmark):
    result = benchmark.pedantic(write_blind_spot, rounds=1, iterations=1)
    print_table(format_table(
        ["metric", "value"],
        [["write-heavy overhead", format_percent(result.overhead)],
         ["read-modify-writes", result.secured.rmw_operations]],
        title="E09b: the write-side blind spot (survey §3)",
    ))
    # Far outside the paper's 2.5% envelope once writes appear.
    assert result.overhead > 0.10
    assert result.secured.rmw_operations > 0


if __name__ == "__main__":
    print(sweep_branchiness())
