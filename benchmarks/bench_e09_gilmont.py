"""E09 — §3 (Gilmont et al.): fetch prediction + pipelined 3DES.

Thin wrapper: the measurement body, tables and claim checks live in
:mod:`repro.runner.experiments.e09` (shared with ``python -m repro.cli
bench``).
"""

from benchmarks.common import run_experiment_benchmark


def test_e09(benchmark):
    run_experiment_benchmark(benchmark, "e09")
