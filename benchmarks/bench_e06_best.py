"""E06 — Figure 3 / §3: Best's 1979 engine — cheap and fast, statistically
weak.

Paper claims reproduced:
* Best's cipher is built from "basic cryptographic functions such as mono
  and poly-alphabetic substitutions and byte transpositions" — near-zero
  latency and tiny area compared to NIST-grade cores;
* "the principle allowing a strong security is known: hardware
  implementation of algorithm approved by the NIST" — the statistical gap
  between Best and AES on the same image is the measurable content of that
  judgment.
"""

import pytest

from benchmarks.common import CACHE, KEY16, N_ACCESSES, print_table
from repro.analysis import (
    format_gates,
    format_percent,
    format_table,
    measure_overhead,
    score_engine_ciphertext,
)
from repro.core import BestEngine, XomAesEngine
from repro.traces import make_workload, synthetic_code_image


def _timing_only(factory):
    """Wrap a factory so the produced engine skips functional crypto."""
    def make():
        engine = factory()
        engine.functional = False
        return engine
    return make


def build_rows():
    image = synthetic_code_image(size=32 * 1024)
    trace = make_workload("mixed", n=N_ACCESSES)
    rows = []
    for label, factory in (
        ("best-1979", lambda: BestEngine(KEY16, num_alphabets=16)),
        ("xom-aes", lambda: XomAesEngine(KEY16)),
    ):
        engine = factory()
        score = score_engine_ciphertext(engine, image)
        perf = measure_overhead(
            _timing_only(factory), trace, cache_config=CACHE,
        )
        rows.append({
            "engine": label,
            "overhead": perf.overhead,
            "area": engine.area().total,
            "entropy": score.entropy_bits_per_byte,
            "collisions": score.block_collision_rate,
            "distinguishable": score.distinguishable,
        })
    return rows


def test_e06_best_vs_aes(benchmark):
    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    print_table(format_table(
        ["engine", "overhead", "area", "ct entropy", "block collisions",
         "distinguishable?"],
        [[r["engine"], format_percent(r["overhead"]),
          format_gates(r["area"]), f"{r['entropy']:.2f}",
          f"{r['collisions']:.4f}", r["distinguishable"]] for r in rows],
        title="E06: Best 1979 vs pipelined AES (survey Fig. 3 / §3)",
    ))
    best, xom = rows
    # Cheap and fast...
    assert best["overhead"] < xom["overhead"]
    assert best["area"] < xom["area"] / 10
    # ...but statistically weaker on structured images.
    assert best["collisions"] > xom["collisions"]
    assert best["entropy"] <= xom["entropy"] + 1e-9


if __name__ == "__main__":
    print(build_rows())
