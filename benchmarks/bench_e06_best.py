"""E06 — Figure 3 / §3: Best's 1979 engine — cheap and fast, statistically weak.

Thin wrapper: the measurement body, tables and claim checks live in
:mod:`repro.runner.experiments.e06` (shared with ``python -m repro.cli
bench``).
"""

from benchmarks.common import run_experiment_benchmark


def test_e06(benchmark):
    run_experiment_benchmark(benchmark, "e06")
