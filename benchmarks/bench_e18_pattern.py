"""E18 — extension: address confidentiality — what it costs, what it buys.

Thin wrapper: the measurement body, tables and claim checks live in
:mod:`repro.runner.experiments.e18` (shared with ``python -m repro.cli
bench``).
"""

from benchmarks.common import run_experiment_benchmark


def test_e18(benchmark):
    run_experiment_benchmark(benchmark, "e18")
