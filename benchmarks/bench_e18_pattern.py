"""E18 (extension) — address confidentiality: what it costs, what it buys.

The survey's engines encrypt the data bus; Best's patents and the DS5002FP
also obscured the *address* bus, and General Instrument's patent title
promises "block reordering".  This bench measures both mechanisms against
the access-pattern side channel:

* line-address scrambling (`AddressScrambledEngine`) hides sequentiality
  from a probe at ~zero performance cost — but not the working-set size or
  revisit structure;
* GI block reordering hides the chain order inside a region, at the price
  of the sequential chain shortcut (every fill becomes a region burst).
"""

import pytest

from benchmarks.common import KEY16, KEY24, N_ACCESSES, print_table
from repro.analysis import format_percent, format_table, measure_overhead
from repro.attacks import BusProbe, classify_pattern, profile_probe
from repro.core import (
    AddressScrambledEngine,
    GeneralInstrumentEngine,
    StreamCipherEngine,
)
from repro.sim import CacheConfig, MemoryConfig, SecureSystem
from repro.traces import sequential_code

CACHE = CacheConfig(size=1024, line_size=32, associativity=2)
MEM = MemoryConfig(size=1 << 21, latency=40)
IMAGE_SIZE = 16 * 1024


def probe_rows():
    trace = sequential_code(N_ACCESSES, code_size=IMAGE_SIZE)
    rows = []
    for label, engine in (
        ("stream (addresses in clear)",
         StreamCipherEngine(KEY16, line_size=32)),
        ("stream + address scrambling",
         AddressScrambledEngine(
             StreamCipherEngine(KEY16, line_size=32),
             addr_key=b"addr-key", region_lines=IMAGE_SIZE // 32,
         )),
    ):
        system = SecureSystem(engine=engine, cache_config=CACHE,
                              mem_config=MEM)
        probe = BusProbe()
        system.bus.attach_probe(probe)
        system.install_image(0, bytes(IMAGE_SIZE))
        for access in trace:
            system.step(access)
        prof = profile_probe(probe)
        baseline = SecureSystem(cache_config=CACHE, mem_config=MEM)
        baseline.install_image(0, bytes(IMAGE_SIZE))
        base_report = baseline.run(list(trace))
        rows.append({
            "design": label,
            "verdict": classify_pattern(probe),
            "seq_fraction": prof.sequential_fraction,
            "working_set": prof.distinct_addresses,
            "overhead": system.report("x").overhead_vs(base_report),
        })
    return rows


def reorder_rows():
    trace = sequential_code(N_ACCESSES, code_size=IMAGE_SIZE)
    rows = []
    for label, reorder in (("chained layout", False),
                           ("chained + reordered", True)):
        result = measure_overhead(
            lambda r=reorder: GeneralInstrumentEngine(
                KEY24, region_size=512, authenticate=False, reorder=r,
                functional=False,
            ),
            trace, image=bytes(IMAGE_SIZE), cache_config=CACHE,
            mem_config=MEM,
        )
        rows.append({"design": label, "overhead": result.overhead})
    return rows


def test_e18_address_scrambling(benchmark):
    rows = benchmark.pedantic(probe_rows, rounds=1, iterations=1)
    print_table(format_table(
        ["design", "probe verdict", "sequential transitions",
         "working set (lines)", "overhead"],
        [[r["design"], r["verdict"], f"{r['seq_fraction']:.0%}",
          r["working_set"], format_percent(r["overhead"])] for r in rows],
        title="E18a: line-address scrambling vs the pattern probe",
    ))
    clear, hidden = rows
    assert clear["verdict"] == "sequential"
    assert hidden["verdict"] == "random"
    # Cheap: a cycle per transfer, no crypto added.
    assert hidden["overhead"] - clear["overhead"] < 0.05
    # And honest: the working set stays fully visible.
    assert hidden["working_set"] >= clear["working_set"] - 8


def test_e18_gi_reordering(benchmark):
    rows = benchmark.pedantic(reorder_rows, rounds=1, iterations=1)
    print_table(format_table(
        ["design", "sequential-code overhead"],
        [[r["design"], format_percent(r["overhead"])] for r in rows],
        title="E18b: GI block reordering forfeits the chain shortcut",
    ))
    chained, reordered = rows
    assert reordered["overhead"] > chained["overhead"]


if __name__ == "__main__":
    print(probe_rows())
    print(reorder_rows())
