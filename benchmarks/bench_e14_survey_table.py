"""E14 — §3/§5 synthesis: the survey's comparison, made quantitative.

Thin wrapper: the measurement body, tables and claim checks live in
:mod:`repro.runner.experiments.e14` (shared with ``python -m repro.cli
bench``).
"""

from benchmarks.common import run_experiment_benchmark


def test_e14(benchmark):
    run_experiment_benchmark(benchmark, "e14")
