"""E14 — §3/§5 synthesis: the survey's comparison, made quantitative.

One row per surveyed engine: performance overhead on the workload suite,
silicon area, random-access support, sub-block-write behaviour, and the
highest IBM adversary class the engine's confidentiality withstands.  This
is the table the survey never printed but constantly argues about — the
trade between "intended security (robustness) and affordable performance
loss" (§2.2).
"""

import pytest

from benchmarks.common import KEY16, KEY24, N_ACCESSES, print_table
from repro.analysis import (
    format_gates,
    format_percent,
    format_table,
    measure_overhead,
)
from repro.attacks import rate_engine
from repro.core import (
    AegisEngine,
    BestEngine,
    CompressedEncryptionEngine,
    DS5002FPEngine,
    DS5240Engine,
    GeneralInstrumentEngine,
    GilmontEngine,
    StreamCipherEngine,
    VlsiDmaEngine,
    XomAesEngine,
)
from repro.sim import CacheConfig, MemoryConfig
from repro.traces import make_workload, sequential_code

CACHE = CacheConfig(size=4096, line_size=32, associativity=2)
MEM = MemoryConfig(size=1 << 21, latency=40)
IMAGE_SIZE = 32 * 1024

ENGINES = {
    "best-1979": lambda: BestEngine(KEY16),
    "ds5002fp": lambda: DS5002FPEngine(KEY16),
    "ds5240": lambda: DS5240Engine(KEY16),
    "vlsi-secure-dma": lambda: VlsiDmaEngine(KEY24, page_size=1024,
                                             buffer_pages=8),
    "general-instrument-3des-cbc": lambda: GeneralInstrumentEngine(
        KEY24, region_size=1024, authenticate=False),
    "gilmont-3des": lambda: GilmontEngine(KEY24),
    "xom-aes": lambda: XomAesEngine(KEY16),
    "aegis-aes-cbc": lambda: AegisEngine(KEY16),
    "stream-ctr": lambda: StreamCipherEngine(KEY16, line_size=32),
}

#: Smallest independently decryptable unit per engine.
RANDOM_ACCESS_GRANULARITY = {
    "best-1979": "block",
    "ds5002fp": "byte",
    "ds5240": "block",
    "vlsi-secure-dma": "page",
    "general-instrument-3des-cbc": "region",
    "gilmont-3des": "block",
    "xom-aes": "block",
    "aegis-aes-cbc": "line",
    "stream-ctr": "byte",
}
#: Granularities that keep per-line random access cheap.
RANDOM_ACCESS_OK = {"byte", "block", "line"}


def _timing_only(factory):
    def make():
        engine = factory()
        engine.functional = False
        return engine
    return make


def build_table():
    workloads = {
        "code": sequential_code(N_ACCESSES, code_size=IMAGE_SIZE),
        "mixed": [
            type(a)(a.kind, a.addr % IMAGE_SIZE, a.size)
            for a in make_workload("mixed", n=N_ACCESSES)
        ],
    }
    rows = []
    for name, factory in ENGINES.items():
        overheads = {}
        for wname, trace in workloads.items():
            overheads[wname] = measure_overhead(
                _timing_only(factory), trace,
                image=bytes(IMAGE_SIZE),
                cache_config=CACHE, mem_config=MEM,
            ).overhead
        engine = factory()
        rating = rate_engine(engine.name)
        granularity = RANDOM_ACCESS_GRANULARITY[name]
        rows.append({
            "engine": name,
            "code": overheads["code"],
            "mixed": overheads["mixed"],
            "area": engine.area().total,
            "granularity": granularity,
            "random_access": granularity in RANDOM_ACCESS_OK,
            "class": rating.highest_class_withstood,
        })
    return rows


def test_e14_survey_table(benchmark):
    rows = benchmark.pedantic(build_table, rounds=1, iterations=1)
    print_table(format_table(
        ["engine", "code overhead", "mixed overhead", "area",
         "access granularity", "withstands class"],
        [[r["engine"], format_percent(r["code"]),
          format_percent(r["mixed"]), format_gates(r["area"]),
          r["granularity"],
          r["class"] or "none"] for r in rows],
        title="E14: the survey's comparison, quantified (survey §3/§5)",
    ))
    by_name = {r["engine"]: r for r in rows}

    # §5's conclusion in data form.
    # 1. The broken/weak engines are the cheap fast ones.
    assert by_name["best-1979"]["class"] == 0
    assert by_name["ds5002fp"]["class"] == 1
    assert by_name["best-1979"]["area"] < 50_000
    # 2. The NIST-grade engines withstand the consumer-market threat
    #    (class II) but pay for it in area or cycles.
    for strong in ("xom-aes", "aegis-aes-cbc", "stream-ctr"):
        assert by_name[strong]["class"] >= 2
        assert by_name[strong]["area"] > 100_000
    # 3. Whole-region chaining forfeits random access and pays the most on
    #    mixed workloads among the 3DES designs.
    assert not by_name["general-instrument-3des-cbc"]["random_access"]
    assert by_name["general-instrument-3des-cbc"]["mixed"] > \
        by_name["aegis-aes-cbc"]["mixed"]
    # 4. The stream engine is the overall performance winner among
    #    class-II-resistant designs.
    strong_named = ["xom-aes", "aegis-aes-cbc", "stream-ctr",
                    "gilmont-3des"]
    best_mixed = min(by_name[n]["mixed"] for n in strong_named)
    assert by_name["stream-ctr"]["mixed"] == best_mixed


def test_e14_security_vs_speed_frontier(benchmark):
    """No engine is simultaneously the fastest and the most secure — the
    survey's 'challenge' stated as a Pareto fact."""
    rows = benchmark.pedantic(build_table, rounds=1, iterations=1)
    fastest = min(rows, key=lambda r: r["mixed"])
    most_secure = [r for r in rows if r["class"] == max(x["class"] for x in rows)]
    cheapest = min(rows, key=lambda r: r["area"])
    # The cheapest engine is not among the most secure.
    assert cheapest["engine"] not in {r["engine"] for r in most_secure}


if __name__ == "__main__":
    for row in build_table():
        print(row)
