"""E08 — Figure 5 / §3: General Instrument's 3DES-CBC + keyed hash.

Thin wrapper: the measurement body, tables and claim checks live in
:mod:`repro.runner.experiments.e08` (shared with ``python -m repro.cli
bench``).
"""

from benchmarks.common import run_experiment_benchmark


def test_e08(benchmark):
    run_experiment_benchmark(benchmark, "e08")
