"""E08 — Figure 5 / §3: General Instrument's 3DES-CBC + keyed hash.

Paper claims reproduced:
* "cipher block chaining technique is very robust but implies unacceptable
  CPU performance degradation for random accesses in external memory" —
  swept over chain-region size, with the sequential case as contrast;
* "the possibility to authenticate the data coming from external memory
  thanks to a keyed hash algorithm" — tamper detection demonstrated and
  its verification cost measured;
* chain-granularity ablation: region = line degenerates into AEGIS-style
  per-line chaining and the penalty vanishes.
"""

import pytest

from benchmarks.common import KEY24, N_ACCESSES, print_table
from repro.analysis import ascii_plot, format_percent, format_table, measure_overhead
from repro.core import AuthenticationError, GeneralInstrumentEngine
from repro.core.engine import MemoryPort
from repro.sim import Bus, CacheConfig, MainMemory, MemoryConfig
from repro.traces import make_workload

CACHE = CacheConfig(size=1024, line_size=32, associativity=2)
MEM = MemoryConfig(size=1 << 21, latency=40)
IMAGE_SIZE = 32 * 1024


def clamp(trace, size=IMAGE_SIZE):
    return [type(a)(a.kind, a.addr % size, a.size) for a in trace]


def sweep_region_size(workload, region_sizes=(32, 256, 1024, 4096)):
    trace = clamp(make_workload(workload, n=N_ACCESSES))
    rows = []
    for region in region_sizes:
        result = measure_overhead(
            lambda: GeneralInstrumentEngine(
                KEY24, region_size=region, authenticate=False,
                functional=False,
            ),
            trace, image=bytes(IMAGE_SIZE), cache_config=CACHE,
            mem_config=MEM,
        )
        rows.append({"region": region, "overhead": result.overhead})
    return rows


def run_sweeps():
    return {
        "sequential": sweep_region_size("sequential"),
        "data-random": sweep_region_size("data-random"),
    }


def test_e08_random_access_degradation(benchmark):
    sweeps = benchmark.pedantic(run_sweeps, rounds=1, iterations=1)
    for workload, rows in sweeps.items():
        print_table(format_table(
            ["chain region (B)", "overhead"],
            [[r["region"], format_percent(r["overhead"])] for r in rows],
            title=f"E08: 3DES-CBC chain-region sweep — {workload} "
                  "(survey Fig. 5)",
        ))
    print(ascii_plot(
        {name: [(r["region"], 100 * r["overhead"]) for r in rows]
         for name, rows in sweeps.items()},
        title="E08 figure: overhead (%) vs chain-region size",
        x_label="chain region (bytes)", y_label="%",
    ))
    rnd = {r["region"]: r["overhead"] for r in sweeps["data-random"]}
    seq = {r["region"]: r["overhead"] for r in sweeps["sequential"]}
    # Random access degrades sharply with the chain length...
    assert rnd[4096] > 5 * rnd[32]
    # ...while per-line chaining (the AEGIS fixed point) is bounded by the
    # iterative core's drain, not the chain (AEGIS + a pipelined core gets
    # this down to ~25%, see E11).
    assert rnd[32] < 6.0
    # Sequential access is insulated by the chain register at every size.
    assert seq[4096] < rnd[4096] / 3


def test_e08_authentication(benchmark):
    def run():
        engine = GeneralInstrumentEngine(KEY24, region_size=1024)
        port = MemoryPort(MainMemory(MemoryConfig(size=1 << 16)), Bus())
        image = bytes((i * 7) & 0xFF for i in range(4096))
        engine.install_image(port.memory, 0, image)
        _, clean_cycles = engine.fill_line(port, 0, 32)
        # Attacker flips one external bit.
        tampered = port.memory.dump(2048, 1) [0] ^ 1
        port.memory.load_image(2048, bytes([tampered]))
        try:
            engine.fill_line(port, 2048, 32)
            detected = False
        except AuthenticationError:
            detected = True
        return clean_cycles, detected, engine.tamper_detected

    clean_cycles, detected, count = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print_table(format_table(
        ["metric", "value"],
        [["clean first-touch cycles (incl. hash)", clean_cycles],
         ["single-bit tamper detected", detected],
         ["tamper events counted", count]],
        title="E08b: keyed-hash authentication (survey Fig. 5)",
    ))
    assert detected
    assert count == 1


if __name__ == "__main__":
    print(run_sweeps())
