"""E13 — Figure 8 / §4: compression before encryption.

Thin wrapper: the measurement body, tables and claim checks live in
:mod:`repro.runner.experiments.e13` (shared with ``python -m repro.cli
bench``).
"""

from benchmarks.common import run_experiment_benchmark


def test_e13(benchmark):
    run_experiment_benchmark(benchmark, "e13")
