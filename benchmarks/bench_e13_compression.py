"""E13 — Figure 8 / §4: compression before encryption.

Paper claims reproduced:
* CodePack-class code compression: "an increase of memory density of 35%"
  — measured from the packed image;
* "The performance impact is claimed to be about +/- 10% (depends on the
  type of memory used)" — the sign flips across the memory-latency sweep;
* "The compression has to be done before ciphering, if not, compression
  will have a very poor ratio due to the strong stochastic properties of
  encrypted data" — compress-then-encrypt vs encrypt-then-compress ratios;
* "compression increases the message entropy" — entropy columns.
"""

import pytest

from benchmarks.common import KEY16, N_ACCESSES, print_table
from repro.analysis import format_percent, format_table, measure_overhead
from repro.compression import (
    CodePack,
    lz77_compress,
    shannon_entropy,
)
from repro.core import CompressedEncryptionEngine
from repro.crypto import AES, CTR
from repro.sim import CacheConfig, MemoryConfig
from repro.traces import sequential_code, synthetic_code_image

CACHE = CacheConfig(size=1024, line_size=32, associativity=2)
IMAGE_SIZE = 32 * 1024


def density_and_ordering():
    image = synthetic_code_image(size=IMAGE_SIZE)
    compressed = CodePack(block_size=32).compress_image(image)
    ciphertext = CTR(AES(KEY16), nonce=bytes(12)).encrypt(image)

    compress_then_encrypt = len(lz77_compress(image))  # then encrypt: same size
    encrypt_then_compress = len(lz77_compress(ciphertext))
    return {
        "codepack_ratio": compressed.ratio,
        "density_gain": compressed.density_gain,
        "plain_entropy": shannon_entropy(image),
        "compressed_entropy": shannon_entropy(b"".join(compressed.blocks)),
        "cipher_entropy": shannon_entropy(ciphertext),
        "cte_ratio": compress_then_encrypt / len(image),
        "etc_ratio": encrypt_then_compress / len(ciphertext),
    }


#: "Depends on the type of memory used": (label, latency, bus bytes/beat,
#: cycles/beat) from fast wide SDR down to slow narrow ROM-class memory.
MEMORY_TYPES = (
    ("fast wide (8B/beat)", 10, 8, 1),
    ("moderate (4B/beat)", 40, 4, 1),
    ("slow narrow (2B, 2cyc)", 40, 2, 2),
    ("serial ROM (1B, 4cyc)", 60, 1, 4),
)


def memory_type_sweep(memory_types=MEMORY_TYPES):
    image = synthetic_code_image(size=IMAGE_SIZE)
    trace = sequential_code(N_ACCESSES, code_size=IMAGE_SIZE)
    rows = []
    for label, latency, width, cpb in memory_types:
        mem = MemoryConfig(size=1 << 20, latency=latency, bus_width=width,
                           cycles_per_beat=cpb)
        result = measure_overhead(
            lambda: CompressedEncryptionEngine(KEY16, line_size=32,
                                               functional=False),
            trace, image=image, cache_config=CACHE, mem_config=mem,
        )
        rows.append({"memory": label, "overhead": result.overhead})
    return rows


def test_e13_density_and_ordering(benchmark):
    stats = benchmark.pedantic(density_and_ordering, rounds=1, iterations=1)
    print_table(format_table(
        ["metric", "value"],
        [
            ["CodePack compression ratio", f"{stats['codepack_ratio']:.2f}"],
            ["memory density gain", format_percent(stats["density_gain"])],
            ["plain image entropy (bits/B)", f"{stats['plain_entropy']:.2f}"],
            ["compressed entropy", f"{stats['compressed_entropy']:.2f}"],
            ["ciphertext entropy", f"{stats['cipher_entropy']:.2f}"],
            ["compress-then-encrypt size ratio", f"{stats['cte_ratio']:.2f}"],
            ["encrypt-then-compress size ratio", f"{stats['etc_ratio']:.2f}"],
        ],
        title="E13a: density, entropy and the ordering rule (survey Fig. 8)",
    ))
    # The survey's 35% density figure: our code-like image lands nearby.
    assert stats["density_gain"] > 0.20
    # Compression raises entropy toward the cipher's.
    assert stats["compressed_entropy"] > stats["plain_entropy"]
    # Ordering: compressing ciphertext achieves (essentially) nothing.
    assert stats["etc_ratio"] > 0.95
    assert stats["cte_ratio"] < 0.7


def test_e13_plus_minus_ten_percent(benchmark):
    rows = benchmark.pedantic(memory_type_sweep, rounds=1, iterations=1)
    print_table(format_table(
        ["memory type", "compress+encrypt overhead"],
        [[r["memory"], format_percent(r["overhead"])] for r in rows],
        title="E13b: the '+/- 10%' — sign depends on the type of memory "
              "(survey §4)",
    ))
    overheads = [r["overhead"] for r in rows]
    # The sweep crosses zero: a loss on a fast wide bus (the decoder can't
    # hide behind the few saved beats), a win on transfer-bound memory.
    assert overheads[0] > 0.0       # fast wide: compression costs
    assert overheads[-1] < 0.0      # slow narrow: compression pays
    # Monotone: the narrower/slower the transfer, the better compression
    # looks.
    assert overheads == sorted(overheads, reverse=True)


if __name__ == "__main__":
    print(density_and_ordering())
    print(memory_type_sweep())
