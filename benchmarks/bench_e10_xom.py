"""E10 — §3 (XOM): the pipelined AES and the latency-vs-system-cost caveat.

Thin wrapper: the measurement body, tables and claim checks live in
:mod:`repro.runner.experiments.e10` (shared with ``python -m repro.cli
bench``).
"""

from benchmarks.common import run_experiment_benchmark


def test_e10(benchmark):
    run_experiment_benchmark(benchmark, "e10")
