"""E10 — §3 (XOM [13]): the pipelined AES and the latency-vs-system-cost
caveat.

Paper claims reproduced:
* "a pipelined AES block cipher as cipher unit which features a low latency
  of 14 latency cycles, while a throughput of one encrypted/decrypted data
  per clock cycle is claimed" — the microbenchmark rows;
* "taking into account only the latency doesn't inform about the overall
  system cost" — the same unit produces wildly different overheads across
  the workload suite, tracking miss rate rather than the constant 14.
"""

import pytest

from benchmarks.common import CACHE, KEY16, MEM, N_ACCESSES, print_table
from repro.analysis import format_percent, format_table, measure_overhead
from repro.core import XomAesEngine
from repro.sim import XOM_AES_PIPE, PipelinedUnit
from repro.traces import WORKLOAD_NAMES, make_workload


def microbench_rows():
    rows = []
    for nblocks in (1, 2, 8, 32, 128):
        rows.append({
            "blocks": nblocks,
            "cycles": XOM_AES_PIPE.time_for(nblocks),
            "per_block": XOM_AES_PIPE.time_for(nblocks) / nblocks,
        })
    return rows


def system_rows():
    from repro.traces import sequential_code

    workloads = {
        # Cache-resident loop: the engine is nearly invisible.
        "loop-resident": sequential_code(2 * N_ACCESSES, code_size=2048),
        # Working set slightly over the cache: moderate miss traffic.
        "loop-spill": sequential_code(2 * N_ACCESSES, code_size=8192),
    }
    workloads.update(
        (name, make_workload(name, n=N_ACCESSES)) for name in WORKLOAD_NAMES
    )
    rows = []
    for name, trace in workloads.items():
        result = measure_overhead(
            lambda: XomAesEngine(KEY16, functional=False),
            trace, workload=name, cache_config=CACHE, mem_config=MEM,
        )
        rows.append({
            "workload": name,
            "overhead": result.overhead,
            "miss_rate": result.baseline.miss_rate,
        })
    return rows


def test_e10_unit_microbench(benchmark):
    rows = benchmark.pedantic(microbench_rows, rounds=1, iterations=1)
    print_table(format_table(
        ["blocks", "cycles", "cycles/block"],
        [[r["blocks"], r["cycles"], f"{r['per_block']:.2f}"] for r in rows],
        title="E10a: XOM pipelined AES unit (14-cycle latency, II=1)",
    ))
    assert rows[0]["cycles"] == 14                       # published latency
    assert rows[-1]["per_block"] < 1.2                   # ~1 block/cycle


def test_e10_latency_does_not_predict_system_cost(benchmark):
    rows = benchmark.pedantic(system_rows, rounds=1, iterations=1)
    print_table(format_table(
        ["workload", "baseline miss rate", "overhead (same 14-cycle unit)"],
        [[r["workload"], f"{r['miss_rate']:.1%}",
          format_percent(r["overhead"])] for r in rows],
        title="E10b: one latency, many system costs (survey §3)",
    ))
    overheads = [r["overhead"] for r in rows]
    assert max(overheads) > 4 * max(min(overheads), 1e-4)
    # Overhead tracks the miss rate, not the unit latency: the rank
    # correlation between the two columns must be strongly positive.
    miss = [r["miss_rate"] for r in rows]
    rank = lambda xs: {i: sorted(xs).index(x) for i, x in enumerate(xs)}
    rm, ro = rank(miss), rank(overheads)
    agreements = sum(
        1
        for i in range(len(rows))
        for j in range(i + 1, len(rows))
        if (rm[i] - rm[j]) * (ro[i] - ro[j]) > 0
    )
    pairs = len(rows) * (len(rows) - 1) // 2
    assert agreements / pairs > 0.7


def test_e10_iterative_vs_pipelined(benchmark):
    """Ablation: the same AES algorithm without pipelining."""
    def run():
        trace = make_workload("branchy", n=N_ACCESSES)
        iterative = PipelinedUnit("aes-iter", latency=11,
                                  initiation_interval=11)
        pipe = measure_overhead(
            lambda: XomAesEngine(KEY16, functional=False),
            trace, cache_config=CACHE, mem_config=MEM,
        ).overhead
        iter_ = measure_overhead(
            lambda: XomAesEngine(KEY16, unit=iterative, functional=False),
            trace, cache_config=CACHE, mem_config=MEM,
        ).overhead
        return pipe, iter_

    pipe, iter_ = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(format_table(
        ["unit", "overhead"],
        [["pipelined (II=1)", format_percent(pipe)],
         ["iterative (II=11)", format_percent(iter_)]],
        title="E10c ablation: pipelining the AES core",
    ))
    assert iter_ > pipe


if __name__ == "__main__":
    print(system_rows())
