"""E15 (extension) — §5 future work: integrity against instruction
modification.

"In future exploration, it might also be relevant to take into account the
problem of integrity, to thwart attacks based on the modification of the
fetched instructions."

The survey stops there; this bench builds the obvious next engine and
measures what the sentence costs:

* per-line MAC tags detect modified/spoofed/relocated instructions;
* anti-replay needs on-chip version state — the versioned/unversioned
  ablation shows the replay hole and its price (SRAM + nothing on the
  miss path);
* performance and memory overhead of the shield on top of a
  confidentiality engine.

Also includes the keystream-quality experiment §4 implies: the Geffe
correlation attack recovering a cheap combiner's full state from observed
keystream.
"""

import pytest

from benchmarks.common import CACHE, KEY16, MEM, N_ACCESSES, print_table
from repro.analysis import (
    format_gates,
    format_percent,
    format_table,
    measure_overhead,
)
from repro.attacks import geffe_correlation_attack
from repro.core import (
    IntegrityShieldEngine,
    StreamCipherEngine,
    TamperDetected,
    XomAesEngine,
)
from repro.core.engine import MemoryPort
from repro.crypto.lfsr import GeffeGenerator
from repro.sim import Bus, MainMemory, MemoryConfig
from repro.traces import make_workload

MAC_KEY = b"integrity-mac-key"
TAG_BASE = 1 << 20


def shield_factory(versioned=True, functional=False):
    def make():
        inner = XomAesEngine(KEY16, functional=functional)
        engine = IntegrityShieldEngine(
            inner, mac_key=MAC_KEY, tag_region_base=TAG_BASE,
            versioned=versioned,
        )
        engine.functional = functional
        return engine
    return make


def overhead_rows():
    rows = []
    for name in ("sequential", "mixed", "write-heavy"):
        trace = make_workload(name, n=N_ACCESSES)
        bare = measure_overhead(
            lambda: XomAesEngine(KEY16, functional=False),
            trace, cache_config=CACHE, mem_config=MEM,
        ).overhead
        shielded = measure_overhead(
            shield_factory(), trace, cache_config=CACHE, mem_config=MEM,
        ).overhead
        rows.append({"workload": name, "bare": bare, "shielded": shielded})
    return rows


def tamper_and_replay():
    def run_case(versioned):
        engine = IntegrityShieldEngine(
            StreamCipherEngine(KEY16, line_size=32),
            mac_key=MAC_KEY, tag_region_base=TAG_BASE, versioned=versioned,
        )
        port = MemoryPort(MainMemory(MemoryConfig(size=1 << 21)), Bus())
        engine.install_image(port.memory, 0, bytes(64))
        engine.write_line(port, 0, b"v1-data-" * 4)
        stale_line = port.memory.dump(0, 32)
        stale_tag = port.memory.dump(engine._tag_addr(0, 32), 8)
        engine.write_line(port, 0, b"v2-data-" * 4)
        port.memory.load_image(0, stale_line)
        port.memory.load_image(engine._tag_addr(0, 32), stale_tag)
        engine._tag_cache.clear()
        try:
            engine.fill_line(port, 0, 32)
            return False
        except TamperDetected:
            return True

    return {
        "versioned": run_case(True),
        "unversioned": run_case(False),
    }


def test_e15_integrity_overhead(benchmark):
    rows = benchmark.pedantic(overhead_rows, rounds=1, iterations=1)
    shield = shield_factory()()
    print_table(format_table(
        ["workload", "XOM alone", "XOM + integrity shield"],
        [[r["workload"], format_percent(r["bare"]),
          format_percent(r["shielded"])] for r in rows],
        title="E15a: the cost of §5's integrity sentence",
    ))
    print_table(format_table(
        ["cost", "value"],
        [["external memory for tags",
          format_percent(shield.tag_overhead_fraction(32), signed=False)],
         ["engine area", format_gates(shield.area().total)]],
        title="E15b: integrity space costs",
    ))
    for r in rows:
        assert r["shielded"] > r["bare"]
    assert shield.tag_overhead_fraction(32) == 0.25


def test_e15_replay_ablation(benchmark):
    outcome = benchmark.pedantic(tamper_and_replay, rounds=1, iterations=1)
    versioned_area = shield_factory(versioned=True)().area().total
    bare_area = shield_factory(versioned=False)().area().total
    print_table(format_table(
        ["design", "replay detected?", "area"],
        [["versioned tags (on-chip counters)", outcome["versioned"],
          format_gates(versioned_area)],
         ["unversioned tags", outcome["unversioned"],
          format_gates(bare_area)]],
        title="E15c: anti-replay needs on-chip freshness state",
    ))
    assert outcome["versioned"] is True
    assert outcome["unversioned"] is False


def merkle_vs_versions():
    """Same security goal, two state budgets: per-line on-chip counters vs
    a 16-byte root + hash tree."""
    from repro.core import MerkleTreeEngine
    from repro.sim import CacheConfig, SecureSystem
    from repro.traces import sequential_code

    region = 32 * 1024
    trace = sequential_code(N_ACCESSES, code_size=region)
    cache = CacheConfig(size=2048, line_size=32, associativity=2)
    rows = []

    def run(make_engine, label, onchip_bytes, mem_overhead):
        engine = make_engine()
        engine.functional = False
        engine.inner.functional = False
        system = SecureSystem(engine=engine, cache_config=cache,
                              mem_config=MEM)
        system.install_image(0, bytes(region))
        report = system.run(list(trace))
        baseline = SecureSystem(cache_config=cache, mem_config=MEM)
        baseline.install_image(0, bytes(region))
        base_report = baseline.run(list(trace))
        rows.append({
            "design": label,
            "overhead": report.overhead_vs(base_report),
            "onchip_bytes": onchip_bytes,
            "mem_overhead": mem_overhead,
        })

    n_lines = region // 32
    run(
        lambda: IntegrityShieldEngine(
            StreamCipherEngine(KEY16, line_size=32), mac_key=MAC_KEY,
            tag_region_base=TAG_BASE, versioned=True, tracked_lines=n_lines,
        ),
        "MAC tags + on-chip version table",
        onchip_bytes=4 * n_lines,
        mem_overhead=8 / 32,
    )
    run(
        lambda: MerkleTreeEngine(
            StreamCipherEngine(KEY16, line_size=32), mac_key=MAC_KEY,
            region_base=0, region_size=region, tree_base=TAG_BASE,
            node_cache_size=64,
        ),
        "Merkle tree (root on chip)",
        onchip_bytes=16 + 64 * 16,
        mem_overhead=1.0,
    )
    return rows


def test_e15_merkle_vs_version_table(benchmark):
    rows = benchmark.pedantic(merkle_vs_versions, rounds=1, iterations=1)
    print_table(format_table(
        ["anti-replay design", "overhead", "on-chip state (B)",
         "ext. memory overhead"],
        [[r["design"], format_percent(r["overhead"]), r["onchip_bytes"],
          format_percent(r["mem_overhead"], signed=False)] for r in rows],
        title="E15e: two roads past §5 — counters vs a hash tree",
    ))
    versions, merkle = rows
    # The tree trades on-chip state (KBs -> a root + small cache) for
    # longer verification paths and a bigger external footprint.
    assert merkle["onchip_bytes"] < versions["onchip_bytes"] / 3
    assert merkle["overhead"] > versions["overhead"]
    assert merkle["mem_overhead"] > versions["mem_overhead"]


def test_e15_keystream_quality(benchmark):
    """§4's 'sufficiently random to be secure', enforced: a cheap Geffe
    combiner's full state falls to correlation analysis."""
    def attack():
        taps = ((9, 5), (10, 7), (11, 9))
        gen = GeffeGenerator(0x101, 0x202, 0x303, taps_a=taps[0],
                             taps_b=taps[1], taps_c=taps[2])
        ks = [gen.step() for _ in range(300)]
        return geffe_correlation_attack(ks, *taps)

    result = benchmark.pedantic(attack, rounds=1, iterations=1)
    print_table(format_table(
        ["metric", "value"],
        [["seeds recovered", result.succeeded],
         ["candidates tested", result.candidates_tested],
         ["naive keyspace", f"{result.naive_keyspace:,}"],
         ["divide-and-conquer speedup", f"{result.speedup:,.0f}x"]],
        title="E15d: correlation attack on a cheap keystream generator",
    ))
    assert result.succeeded
    assert result.speedup > 10_000


if __name__ == "__main__":
    print(overhead_rows())
    print(tamper_and_replay())
