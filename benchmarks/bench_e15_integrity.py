"""E15 — §5 future work: integrity against instruction modification.

Thin wrapper: the measurement body, tables and claim checks live in
:mod:`repro.runner.experiments.e15` (shared with ``python -m repro.cli
bench``).
"""

from benchmarks.common import run_experiment_benchmark


def test_e15(benchmark):
    run_experiment_benchmark(benchmark, "e15")
