"""E03 — §2.2: ECB's determinism leak vs CBC's random-access problem.

Thin wrapper: the measurement body, tables and claim checks live in
:mod:`repro.runner.experiments.e03` (shared with ``python -m repro.cli
bench``).
"""

from benchmarks.common import run_experiment_benchmark


def test_e03(benchmark):
    run_experiment_benchmark(benchmark, "e03")
