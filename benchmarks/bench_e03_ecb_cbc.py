"""E03 — §2.2: ECB's determinism leak vs CBC's random-access problem.

Paper claims reproduced:
* ECB: "a same data will be ciphered to the same value; which is the main
  security weakness of that mode" — measured as block-collision rate and
  the ECB distinguisher on a code-like image;
* CBC: "provides improved security ... Its use proves limited in a
  processor-memory system due to the random data access problem (JUMP
  instructions)" — measured as whole-image-chained read cost under
  sequential vs branchy fetch streams.
"""

import pytest

from benchmarks.common import KEY24, N_ACCESSES, print_table
from repro.analysis import format_percent, format_table, measure_overhead
from repro.attacks import analyze_ciphertext, ecb_distinguisher
from repro.core import GeneralInstrumentEngine
from repro.crypto import CBC, ECB, TripleDES
from repro.sim import CacheConfig
from repro.traces import make_workload, synthetic_code_image


def security_rows(image_size=32 * 1024):
    image = synthetic_code_image(size=image_size)
    tdes = TripleDES(KEY24)
    ecb_ct = ECB(tdes).encrypt(image)
    cbc_ct = CBC(tdes, bytes(8)).encrypt(image)
    rows = []
    for label, data in (("plaintext", image), ("ECB", ecb_ct),
                        ("CBC", cbc_ct)):
        analysis = analyze_ciphertext(data, block_size=8)
        rows.append({
            "mode": label,
            "entropy": analysis.entropy_bits_per_byte,
            "collisions": analysis.block_collision_rate,
            "distinguishable": ecb_distinguisher(data, block_size=8),
        })
    return rows


def performance_rows():
    """Whole-image CBC chaining vs per-JUMP random access."""
    cache = CacheConfig(size=1024, line_size=32, associativity=2)
    image = bytes(16 * 1024)
    rows = []
    for name in ("sequential", "branchy"):
        trace = [a for a in make_workload(name, n=N_ACCESSES)]
        # Clamp addresses into the chained image.
        trace = [type(a)(a.kind, a.addr % (16 * 1024), a.size) for a in trace]
        value = measure_overhead(
            lambda: GeneralInstrumentEngine(
                KEY24, region_size=4096, authenticate=False, functional=False,
            ),
            trace, image=image, cache_config=cache,
        ).overhead
        rows.append({"workload": name, "overhead": value})
    return rows


def test_e03_ecb_leak(benchmark):
    rows = benchmark.pedantic(security_rows, rounds=1, iterations=1)
    print_table(format_table(
        ["mode", "entropy (bits/B)", "block collision rate", "ECB leak?"],
        [[r["mode"], f"{r['entropy']:.2f}", f"{r['collisions']:.3f}",
          r["distinguishable"]] for r in rows],
        title="E03a: ECB determinism leak on a code-like image (survey §2.2)",
    ))
    by_mode = {r["mode"]: r for r in rows}
    assert by_mode["ECB"]["distinguishable"]
    assert not by_mode["CBC"]["distinguishable"]
    assert by_mode["ECB"]["collisions"] > 10 * max(
        by_mode["CBC"]["collisions"], 1e-6
    )


def test_e03_cbc_random_access_penalty(benchmark):
    rows = benchmark.pedantic(performance_rows, rounds=1, iterations=1)
    print_table(format_table(
        ["workload", "chained-CBC overhead"],
        [[r["workload"], format_percent(r["overhead"])] for r in rows],
        title="E03b: whole-region CBC vs access pattern (survey §2.2)",
    ))
    by_name = {r["workload"]: r["overhead"] for r in rows}
    # Random access (branchy) pays dramatically more than sequential.
    assert by_name["branchy"] > 1.5 * by_name["sequential"]
    assert by_name["branchy"] > 1.0  # "unacceptable" territory


if __name__ == "__main__":
    print(security_rows())
    print(performance_rows())
