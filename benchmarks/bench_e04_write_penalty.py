"""E04 — §2.2: the smaller-than-block write penalty.

Paper claim reproduced: "The writing operation of a data smaller than the
ciphered block size is penalizing because implies the following steps:
read the block from memory, decipher it, modify the corresponding sequence
into the block, re-cipher it, write it back in memory."

The bench sweeps store size below and at the cipher block size on a
write-through/no-allocate system (where stores hit memory directly) and
reports the per-store cost inflation, plus the contrast cases: a
byte-granular engine (DS5002FP) and the write-back cache that absorbs the
problem.
"""

import pytest

from benchmarks.common import KEY16, print_table
from repro.analysis import format_table, measure_overhead
from repro.core import DS5002FPEngine, DS5240Engine, XomAesEngine
from repro.sim import CacheConfig, MemoryConfig, WritePolicy
from repro.traces import write_burst

N_STORES = 300
WT_CACHE = CacheConfig(
    size=1024, line_size=32, associativity=2,
    write_policy=WritePolicy.WRITE_THROUGH, write_allocate=False,
)
WB_CACHE = CacheConfig(size=1024, line_size=32, associativity=2)


def sweep_store_size(engine_factory, sizes=(1, 2, 4, 8, 16)):
    rows = []
    for size in sizes:
        trace = write_burst(N_STORES, base=0, write_size=size, stride=64)
        result = measure_overhead(
            engine_factory, trace,
            cache_config=WT_CACHE,
            mem_config=MemoryConfig(size=1 << 20, latency=40),
            write_buffer=False,
        )
        rows.append({
            "size": size,
            "overhead": result.overhead,
            "rmw": result.secured.rmw_operations,
            "cycles_per_store": result.secured.cycles / N_STORES,
        })
    return rows


def run_all():
    return {
        "ds5240 (8B block)": sweep_store_size(
            lambda: DS5240Engine(KEY16, functional=False)),
        "xom (16B block)": sweep_store_size(
            lambda: XomAesEngine(KEY16, functional=False)),
        "ds5002fp (1B block)": sweep_store_size(
            lambda: DS5002FPEngine(KEY16, functional=False)),
    }


def test_e04_write_penalty(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    for label, rows in results.items():
        print_table(format_table(
            ["store size (B)", "overhead", "RMW ops", "cycles/store"],
            [[r["size"], f"{r['overhead'] * 100:+.0f}%", r["rmw"],
              f"{r['cycles_per_store']:.0f}"] for r in rows],
            title=f"E04: sub-block write penalty — {label} (survey §2.2)",
        ))

    ds5240 = {r["size"]: r for r in results["ds5240 (8B block)"]}
    xom = {r["size"]: r for r in results["xom (16B block)"]}
    byte_engine = {r["size"]: r for r in results["ds5002fp (1B block)"]}

    # Sub-block stores trigger the five-step RMW; block-aligned ones don't.
    assert ds5240[4]["rmw"] == N_STORES
    assert ds5240[8]["rmw"] == 0
    assert xom[8]["rmw"] == N_STORES
    assert xom[16]["rmw"] == 0
    # The RMW inflates the per-store cost substantially.
    assert ds5240[4]["cycles_per_store"] > 1.7 * ds5240[8]["cycles_per_store"]
    # A byte-granular cipher never pays it.
    assert all(r["rmw"] == 0 for r in byte_engine.values())


def test_e04_write_back_cache_absorbs(benchmark):
    """With write-allocate + write-back, the line fetch doubles as the
    'read the block' step and the penalty folds into normal miss traffic."""
    def run():
        trace = write_burst(N_STORES, base=0, write_size=4, stride=64)
        return measure_overhead(
            lambda: DS5240Engine(KEY16, functional=False), trace,
            cache_config=WB_CACHE,
            mem_config=MemoryConfig(size=1 << 20, latency=40),
        )
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.secured.rmw_operations == 0


if __name__ == "__main__":
    print(run_all())
