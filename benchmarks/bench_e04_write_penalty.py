"""E04 — §2.2: the smaller-than-block write penalty.

Thin wrapper: the measurement body, tables and claim checks live in
:mod:`repro.runner.experiments.e04` (shared with ``python -m repro.cli
bench``).
"""

from benchmarks.common import run_experiment_benchmark


def test_e04(benchmark):
    run_experiment_benchmark(benchmark, "e04")
