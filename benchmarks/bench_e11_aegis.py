"""E11 — §3 (AEGIS): per-cache-line AES-CBC, the 25% overhead, birthday-proof IVs.

Thin wrapper: the measurement body, tables and claim checks live in
:mod:`repro.runner.experiments.e11` (shared with ``python -m repro.cli
bench``).
"""

from benchmarks.common import run_experiment_benchmark


def test_e11(benchmark):
    run_experiment_benchmark(benchmark, "e11")
