"""E11 — §3 (AEGIS [14]): per-cache-line AES-CBC, the 25% overhead and
the birthday-proof IVs.

Paper claims reproduced:
* "the ciphering block chain corresponds to a cache block, thus allowing
  random access to external memory" — AEGIS's random-access overhead stays
  bounded where whole-region chaining (E08) explodes;
* "they estimate the performance overhead induced by the encryption engine
  to 25%" — the mixed-workload overhead lands in that neighbourhood;
* "a pipelined AES (300,000 gates)" — the area estimate;
* IV "composed by the block address and by a random vector; to thwart the
  birthday attack it is possible to replace the random vector by a
  counter" — collision statistics for both modes.
"""

import pytest

from benchmarks.common import KEY16, N_ACCESSES, print_table
from repro.analysis import (
    format_gates,
    format_percent,
    format_table,
    measure_overhead,
)
from repro.attacks import (
    collision_probability,
    count_collisions,
    expected_writes_to_collision,
)
from repro.core import AegisEngine, GeneralInstrumentEngine
from repro.crypto import DRBG
from repro.sim import CacheConfig, MemoryConfig
from repro.traces import WORKLOAD_NAMES, make_workload

CACHE = CacheConfig(size=4096, line_size=32, associativity=2)
MEM = MemoryConfig(size=1 << 21, latency=40)


def overhead_rows():
    from repro.traces import sequential_code

    workloads = {
        # Mostly cache-resident loop: realistic low miss rate.
        "loop-resident": sequential_code(2 * N_ACCESSES, code_size=2048),
        "loop-spill": sequential_code(2 * N_ACCESSES, code_size=8192),
    }
    workloads.update(
        (name, make_workload(name, n=N_ACCESSES)) for name in WORKLOAD_NAMES
    )
    rows = []
    for name, trace in workloads.items():
        result = measure_overhead(
            lambda: AegisEngine(KEY16, functional=False),
            trace, workload=name, cache_config=CACHE, mem_config=MEM,
        )
        rows.append({"workload": name, "overhead": result.overhead})
    return rows


def random_access_contrast():
    trace = [
        type(a)(a.kind, a.addr % (32 * 1024), a.size)
        for a in make_workload("data-random", n=N_ACCESSES)
    ]
    aegis = measure_overhead(
        lambda: AegisEngine(KEY16, functional=False),
        trace, cache_config=CACHE, mem_config=MEM,
    ).overhead
    chained = measure_overhead(
        lambda: GeneralInstrumentEngine(
            b"0123456789abcdef01234567", region_size=4096,
            authenticate=False, functional=False,
        ),
        trace, image=bytes(32 * 1024), cache_config=CACHE, mem_config=MEM,
    ).overhead
    return aegis, chained


def iv_rows(n_writes=600, vector_bits=16):
    rows = []
    for mode in ("random", "counter"):
        engine = AegisEngine(KEY16, iv_mode=mode, vector_bits=vector_bits,
                             rng=DRBG(31))
        line = bytes(32)
        for i in range(n_writes):
            engine.encrypt_line((i % 64) * 32, line)
        rows.append({
            "iv_mode": mode,
            "collisions": count_collisions(engine.issued_vectors),
            # A counter cannot repeat before wrapping at 2^bits writes.
            "predicted_p": (
                collision_probability(n_writes, vector_bits)
                if mode == "random" else 0.0
            ),
        })
    return rows


def test_e11_overhead_near_25_percent(benchmark):
    rows = benchmark.pedantic(overhead_rows, rounds=1, iterations=1)
    print_table(format_table(
        ["workload", "AEGIS overhead"],
        [[r["workload"], format_percent(r["overhead"])] for r in rows],
        title="E11a: AEGIS per-line AES-CBC overhead (survey: ~25%)",
    ))
    values = [r["overhead"] for r in rows]
    # The suite brackets the published 25% figure.
    assert min(values) < 0.25 < max(values) * 1.5
    assert sum(values) / len(values) < 1.0


def test_e11_random_access_preserved(benchmark):
    aegis, chained = benchmark.pedantic(random_access_contrast, rounds=1,
                                        iterations=1)
    print_table(format_table(
        ["engine", "random-access overhead"],
        [["AEGIS (chain = cache line)", format_percent(aegis)],
         ["GI (chain = 4 KiB region)", format_percent(chained)]],
        title="E11b: per-line chaining preserves random access (survey §3)",
    ))
    assert chained > 10 * aegis


def test_e11_iv_birthday(benchmark):
    rows = benchmark.pedantic(iv_rows, rounds=1, iterations=1)
    print_table(format_table(
        ["IV mode", "observed collisions", "predicted P(collision)"],
        [[r["iv_mode"], r["collisions"], f"{r['predicted_p']:.2f}"]
         for r in rows],
        title="E11c: random vs counter vector, 16-bit, 600 writes "
              "(survey §3)",
    ))
    by_mode = {r["iv_mode"]: r for r in rows}
    # Random vectors collide at the birthday scale; counters never do.
    assert by_mode["random"]["collisions"] > 0
    assert by_mode["counter"]["collisions"] == 0
    assert expected_writes_to_collision(16) < 600


def test_e11_area(benchmark):
    area = benchmark.pedantic(
        lambda: AegisEngine(KEY16).area(), rounds=1, iterations=1
    )
    print_table(format_table(
        ["component", "gates"],
        [[label, format_gates(g)] for label, g in
         sorted(area.items.items(), key=lambda kv: -kv[1])],
        title="E11d: AEGIS area (survey: 300k-gate pipelined AES)",
    ))
    assert area.items["aes_pipelined"] == 300_000


if __name__ == "__main__":
    print(overhead_rows())
