"""E01 — Figure 1 / §2.1-2.2: session-key exchange and the asymmetric vs symmetric cost gap.

Thin wrapper: the measurement body, tables and claim checks live in
:mod:`repro.runner.experiments.e01` (shared with ``python -m repro.cli
bench``).
"""

from benchmarks.common import run_experiment_benchmark


def test_e01(benchmark):
    run_experiment_benchmark(benchmark, "e01")
