"""E01 — Figure 1 / §2.1-2.2: session-key exchange and the asymmetric
vs symmetric cost gap.

Paper claims reproduced:
* the eavesdropper on the insecure channel learns neither K nor the
  software;
* asymmetric algorithms "are often based on modular arithmetic, and operate
  on huge integers (512-2048 bits).  They require more processing power
  (due to modular exponentiation) than symmetric algorithm" — and
  "ciphered text is longer than the original clear text; larger memories
  are thus needed";
* hence "only symmetric algorithms will be considered" for the bus (§2.2).

Cost metric: modeled *hardware* cycles, not Python wall time (a native
bigint pow against interpreted AES would compare interpreters, not
engines).  RSA cost = modular multiplications (counted by the key objects)
x the cycles of a 32-bit-multiplier schoolbook modmul; AES cost = blocks x
the iterative core's 11 cycles.
"""

import pytest

from repro.analysis import format_table
from repro.core import run_distribution
from repro.crypto import AES, CTR, DRBG, generate_keypair
from repro.sim.pipeline import AES_ITERATIVE


def modmul_cycles(modulus_bits: int) -> int:
    """Schoolbook modular multiply on a 32-bit datapath: (n/32)^2 MACs."""
    words = -(-modulus_bits // 32)
    return words * words


def measure_cost_gap(payload_sizes=(1024, 4096, 16384), key_bits=512):
    """Modeled hardware cycles for RSA vs AES-CTR over growing payloads."""
    rng = DRBG(1)
    keypair = generate_keypair(key_bits, rng)
    per_modmul = modmul_cycles(key_bits)
    rows = []
    for size in payload_sizes:
        payload = rng.random_bytes(size)

        chunk = keypair.public.modulus_bytes - 11
        keypair.private.modmul_count = 0
        ct_rsa = b""
        for i in range(0, size, chunk):
            block_ct = keypair.public.encrypt(payload[i: i + chunk], rng)
            keypair.private.decrypt(block_ct)   # the processor-side cost
            ct_rsa += block_ct
        rsa_cycles = keypair.private.modmul_count * per_modmul

        ct_aes = CTR(AES(b"0123456789abcdef"), nonce=bytes(12)).encrypt(payload)
        aes_cycles = AES_ITERATIVE.time_for(-(-size // 16))

        rows.append({
            "size": size,
            "rsa_cycles": rsa_cycles,
            "aes_cycles": aes_cycles,
            "ratio": rsa_cycles / max(aes_cycles, 1),
            "rsa_expansion": len(ct_rsa) / size,
            "aes_expansion": len(ct_aes) / size,
        })
    return rows


def run_protocol(software_size=2048):
    software = DRBG(2).random_bytes(software_size)
    processor, eve, session_key = run_distribution(software, seed=3)
    return software, processor, eve, session_key


def test_e01_protocol_secrecy(benchmark):
    software, processor, eve, session_key = benchmark(run_protocol)
    assert processor._session_key == session_key
    assert not eve.saw(session_key)
    assert not eve.saw(software[:16])
    assert eve.total_bytes > len(software)  # the traffic itself was seen


def test_e01_asymmetric_cost_gap(benchmark):
    rows = benchmark.pedantic(measure_cost_gap, rounds=1, iterations=1)
    table = format_table(
        ["payload", "RSA-512 decrypt (cycles)", "AES-CTR (cycles)",
         "RSA/AES", "RSA expansion", "AES expansion"],
        [
            [r["size"], f"{r['rsa_cycles']:,}", f"{r['aes_cycles']:,}",
             f"{r['ratio']:.0f}x", f"{r['rsa_expansion']:.2f}x",
             f"{r['aes_expansion']:.2f}x"]
            for r in rows
        ],
        title="E01: asymmetric vs symmetric bulk encryption, modeled "
              "hardware cycles (survey §2.2)",
    )
    print()
    print(table)
    # Shape: RSA costs orders of magnitude more per byte and expands the
    # ciphertext; AES does neither.
    for r in rows:
        assert r["ratio"] > 100
        assert r["rsa_expansion"] > 1.05
        assert r["aes_expansion"] == 1.0


if __name__ == "__main__":
    for row in measure_cost_gap():
        print(row)
