"""E07 — Figure 4 / §3: VLSI Technology's page-wise secure DMA.

Paper claims reproduced:
* "data transfers to and from the external memory are done page-by-page
  ... This system allows the use of block cipher techniques (robustness)"
  — the page transfer amortizes a heavyweight 3DES-CBC over many accesses;
* the implied trade: large pages win when locality is high (few faults,
  on-chip hits are nearly free) and lose when access is scattered
  (fault cost scales with the page size).
"""

import pytest

from benchmarks.common import KEY24, N_ACCESSES, print_table
from repro.analysis import ascii_plot, format_percent, format_table, measure_overhead
from repro.core import VlsiDmaEngine
from repro.sim import CacheConfig, MemoryConfig
from repro.traces import make_workload

CACHE = CacheConfig(size=1024, line_size=32, associativity=2)
MEM = MemoryConfig(size=1 << 21, latency=40)
BUFFER_BYTES = 8192  # constant on-chip budget across the sweep


def sweep_page_size(workload, page_sizes=(256, 512, 1024, 2048, 4096)):
    trace = make_workload(workload, n=N_ACCESSES)
    rows = []
    for page_size in page_sizes:
        engine = VlsiDmaEngine(
            KEY24, page_size=page_size,
            buffer_pages=max(1, BUFFER_BYTES // page_size),
            functional=False,
        )
        result = measure_overhead(
            lambda e=engine: e, trace, workload=workload,
            cache_config=CACHE, mem_config=MEM,
        )
        rows.append({
            "page_size": page_size,
            "overhead": result.overhead,
            "faults": engine.page_faults,
            "writebacks": engine.page_writebacks,
        })
    return rows


def run_sweeps():
    return {
        "sequential": sweep_page_size("sequential"),
        "data-random": sweep_page_size("data-random"),
    }


def test_e07_page_size_tradeoff(benchmark):
    sweeps = benchmark.pedantic(run_sweeps, rounds=1, iterations=1)
    for workload, rows in sweeps.items():
        print_table(format_table(
            ["page size", "overhead", "page faults", "page writebacks"],
            [[r["page_size"], format_percent(r["overhead"]), r["faults"],
              r["writebacks"]] for r in rows],
            title=f"E07: secure-DMA page-size sweep — {workload} "
                  "(survey Fig. 4)",
        ))
    print(ascii_plot(
        {name: [(r["page_size"], 100 * r["overhead"]) for r in rows]
         for name, rows in sweeps.items()},
        title="E07 figure: overhead (%) vs page size",
        x_label="page size (bytes)", y_label="%",
    ))
    seq = {r["page_size"]: r for r in sweeps["sequential"]}
    rnd = {r["page_size"]: r for r in sweeps["data-random"]}

    # High locality: bigger pages mean fewer faults.
    assert seq[4096]["faults"] < seq[256]["faults"]
    # Scattered access: every fault drags a whole page across the bus, so
    # the random workload suffers far more than the sequential one at any
    # page size.
    for size in (256, 1024, 4096):
        assert rnd[size]["overhead"] > 3 * max(seq[size]["overhead"], 0.01)
    # And for the random workload, growing pages past the sweet spot hurts.
    assert rnd[4096]["overhead"] > rnd[256]["overhead"]


def test_e07_locality_makes_dma_competitive(benchmark):
    """With strong locality the page buffer behaves like an L2: most
    accesses never reach the bus at all."""
    def run():
        trace = make_workload("sequential", n=N_ACCESSES)
        engine = VlsiDmaEngine(KEY24, page_size=2048, buffer_pages=4,
                               functional=False)
        return measure_overhead(
            lambda: engine, trace, cache_config=CACHE, mem_config=MEM,
        )
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    # Bulk 3DES per page amortized over 64 lines: modest overhead.
    assert result.overhead < 3.0


if __name__ == "__main__":
    print(run_sweeps())
