"""E07 — Figure 4 / §3: VLSI Technology's page-wise secure DMA.

Thin wrapper: the measurement body, tables and claim checks live in
:mod:`repro.runner.experiments.e07` (shared with ``python -m repro.cli
bench``).
"""

from benchmarks.common import run_experiment_benchmark


def test_e07(benchmark):
    run_experiment_benchmark(benchmark, "e07")
