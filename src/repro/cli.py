"""Command-line interface: run the survey's experiments without writing code.

Usage::

    python -m repro.cli list
    python -m repro.cli survey                 # the E14 comparison table
    python -m repro.cli overhead aegis mixed   # one engine, one workload
    python -m repro.cli attack --memory 512    # Kuhn attack demo
    python -m repro.cli protocol               # Figure-1 walkthrough
    python -m repro.cli area                   # gate counts for all engines
    python -m repro.cli bench --quick          # the full E01-E19 suite
    python -m repro.cli trace e02              # one experiment's event trace
    python -m repro.cli faults integrity-stream # fault-injection campaigns
    python -m repro.cli campaign --engines stream xom  # design-space sweep
    python -m repro.cli serve --port 7205      # simulation-as-a-service
    python -m repro.cli stream xom dma-burst --accesses 1000000
                                               # chunk-streamed execution

Engine construction goes through the registry (:mod:`repro.core.registry`);
``bench`` drives the parallel experiment runner (:mod:`repro.runner`) and
writes machine-readable metrics JSON; ``campaign`` drives the sharded
design-space coordinator (:mod:`repro.campaign`).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional

from .analysis import format_gates, format_percent, format_table
from .api import attack_summary, engine_overhead, trace_experiment
from .attacks import rate_engine
from .core import run_distribution
from .core.registry import engine_names, list_engines, make_engine
from .crypto import DRBG
from .traces import LONG_HORIZON_NAMES, MCU_KERNELS, WORKLOAD_NAMES


def cmd_list(args: argparse.Namespace) -> int:
    rows = []
    for name, spec in list_engines(survey_only=not args.all):
        engine = make_engine(name)
        # Wrapper engines (integrity/Merkle/scrambling) are rated by their
        # inner confidentiality engine.
        rated = getattr(engine, "inner", engine)
        try:
            withstands = rate_engine(rated.name).highest_class_withstood
        except KeyError:
            withstands = None
        rows.append([
            name, spec.section,
            withstands or "none",
            spec.summary,
        ])
    print(format_table(
        ["engine", "survey section", "class withstood", "summary"],
        rows, title="Engines",
    ))
    print()
    print("Workloads:", ", ".join(WORKLOAD_NAMES))
    print("Long-horizon (streaming):", ", ".join(LONG_HORIZON_NAMES))
    print("MCU kernels:", ", ".join(f"mcu-{k}" for k in MCU_KERNELS))
    return 0


def cmd_overhead(args: argparse.Namespace) -> int:
    if args.engine not in engine_names():
        print(f"unknown engine {args.engine!r}; see `list`", file=sys.stderr)
        return 2
    # An unknown workload name or a degenerate trace parameter (zero
    # accesses, an out-of-range probability) is an operator mistake:
    # one line on stderr and exit 2, never a traceback.
    try:
        result = engine_overhead(
            args.engine, args.workload, accesses=args.accesses,
            cache_size=args.cache, mem_latency=args.latency,
        )
    except (KeyError, ValueError) as exc:
        message = exc.args[0] if exc.args else type(exc).__name__
        print(f"overhead: {message}", file=sys.stderr)
        return 2
    print(format_table(
        ["metric", "value"],
        [
            ["engine", args.engine],
            ["workload", args.workload],
            ["accesses", result.secured.accesses],
            ["baseline miss rate", f"{result.baseline.miss_rate:.1%}"],
            ["baseline cycles", result.baseline.cycles],
            ["secured cycles", result.secured.cycles],
            ["bus transactions", result.secured.bus_transactions],
            ["bytes enciphered", result.secured.bytes_enciphered],
            ["overhead", format_percent(result.overhead)],
        ],
        title="Overhead measurement",
    ))
    return 0


def cmd_survey(args: argparse.Namespace) -> int:
    rows = []
    for name in engine_names(survey_only=True):
        try:
            result = engine_overhead(name, "mixed", accesses=args.accesses)
        except ValueError as exc:
            message = exc.args[0] if exc.args else type(exc).__name__
            print(f"survey: {message}", file=sys.stderr)
            return 2
        engine = make_engine(name)
        rating = rate_engine(engine.name)
        rows.append([
            name, format_percent(result.overhead),
            format_gates(engine.area().total),
            rating.highest_class_withstood or "none",
        ])
    print(format_table(
        ["engine", "mixed overhead", "area", "withstands class"],
        rows, title="The survey, measured (mixed workload)",
    ))
    return 0


def cmd_attack(args: argparse.Namespace) -> int:
    summary = attack_summary(memory=args.memory, seed=args.seed,
                             verbose=not args.quiet)
    print(format_table(
        ["result", "value"],
        [
            ["bytes recovered",
             f"{summary['bytes_recovered']}/{summary['memory_bytes']}"],
            ["probe runs", summary["probe_runs"]],
            ["ambiguous cells", summary["ambiguous_cells"]],
        ],
        title="Cipher Instruction Search",
    ))
    return 0 if summary["fully_recovered"] else 1


def cmd_protocol(args: argparse.Namespace) -> int:
    software = DRBG(args.seed).random_bytes(args.size)
    processor, eve, session_key = run_distribution(
        software, seed=args.seed, key_bits=args.key_bits,
    )
    print(format_table(
        ["check", "value"],
        [
            ["session key established",
             processor._session_key == session_key],
            ["eavesdropper saw K", eve.saw(session_key)],
            ["eavesdropper saw software", eve.saw(software[:16])],
            ["messages observed", len(eve.transcript)],
            ["bytes observed", eve.total_bytes],
        ],
        title="Figure-1 distribution protocol",
    ))
    return 0


def cmd_area(args: argparse.Namespace) -> int:
    for name in engine_names(survey_only=True):
        print(make_engine(name).area())
        print()
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from .runner import ExperimentRunner, to_canonical_json
    from .runner.experiments import EXPERIMENTS

    if args.workers < 1:
        print(f"--workers must be >= 1, got {args.workers}", file=sys.stderr)
        return 2
    experiments = args.experiments or sorted(EXPERIMENTS)
    unknown = [e for e in experiments if e not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}; "
              f"known: {', '.join(sorted(EXPERIMENTS))}", file=sys.stderr)
        return 2

    progress = (lambda line: print(f"  {line}", flush=True)) \
        if args.verbose else None
    runner = ExperimentRunner(
        experiments=experiments,
        workers=args.workers,
        quick=args.quick,
        cache_dir=None if args.no_cache else Path(args.cache_dir),
        render=args.tables,
        observe=not args.no_obs,
        progress=progress,
    )
    result = runner.run()

    if args.tables:
        for exp_id in experiments:
            if exp_id in result.renders:
                print()
                print(result.renders[exp_id])

    out = Path(args.out)
    out.write_text(result.metrics_json(), encoding="utf-8")
    profile_path = out.with_name(out.stem + "_profile.json")
    profile_path.write_text(to_canonical_json(result.profile),
                            encoding="utf-8")

    checks = {
        exp_id: doc["checks"]
        for exp_id, doc in result.metrics["experiments"].items()
    }
    failed = sorted(e for e, c in checks.items() if c["passed"] is False)
    print(f"bench: {len(checks)} experiments, "
          f"{sum(1 for c in checks.values() if c['passed'])} checks passed"
          f", wall {result.profile['wall_seconds']}s"
          f" (cache hits {result.profile['cache']['hits']})")
    print(f"bench: metrics -> {out}, profile -> {profile_path}")
    if failed:
        for exp_id in failed:
            print(f"bench: CHECK FAILED {exp_id}: {checks[exp_id]['error']}",
                  file=sys.stderr)
        return 1
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from .serve import ExperimentServer

    if args.workers < 0:
        print(f"--workers must be >= 0, got {args.workers}", file=sys.stderr)
        return 2

    async def _serve() -> dict:
        server = ExperimentServer(
            host=args.host,
            port=args.port,
            workers=args.workers,
            max_pending=args.max_pending,
            idle_timeout=args.idle_timeout,
            cache_dir=None if args.no_cache else Path(args.cache_dir),
            log=(lambda line: print(f"serve: {line}", flush=True)),
        )
        await server.start()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(
                sig, lambda: asyncio.ensure_future(server.stop(drain=True)))
        await server.serve_forever()
        return server.stats_document()

    stats = asyncio.run(_serve())
    counters = stats["counters"]
    print(f"serve: {counters['connections']} connections, "
          f"{counters['requests']} requests "
          f"({counters['responses']} responses, {counters['errors']} errors"
          f", {counters['overloaded']} overloaded), "
          f"{counters['executed']} executions, "
          f"dedup joins {stats['dedup']['joins']}")
    return 0


def cmd_stream(args: argparse.Namespace) -> int:
    import time

    from .api import run_stream

    engine = None if args.engine in (None, "", "baseline") else args.engine
    try:
        start = time.perf_counter()
        doc = run_stream(
            engine=engine, workload=args.workload, accesses=args.accesses,
            chunk_size=args.chunk_size, seed=args.seed,
        )
        wall = time.perf_counter() - start
    except (KeyError, ValueError) as exc:
        message = exc.args[0] if exc.args else type(exc).__name__
        print(f"stream: {message}", file=sys.stderr)
        return 2
    metrics = doc["metrics"]
    rate = args.accesses / wall if wall else 0.0
    print(format_table(
        ["metric", "value"],
        [
            ["engine", doc["engine"]],
            ["workload", doc["workload"]],
            ["accesses", metrics["accesses"]],
            ["chunk size", doc["chunk_size"] or "whole trace"],
            ["cycles", metrics["cycles"]],
            ["cache hit rate", f"{metrics['cache_hit_rate']:.1%}"],
            ["bus transactions", metrics["bus_transactions"]],
            ["bytes enciphered", metrics["bytes_enciphered"]],
            ["wall seconds", f"{wall:.2f}"],
            ["accesses/sec", f"{rate:,.0f}"],
        ],
        title="Chunk-streamed execution",
    ))
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from .runner.experiments import EXPERIMENTS

    if args.experiment not in EXPERIMENTS:
        print(f"unknown experiment {args.experiment!r}; "
              f"known: {', '.join(sorted(EXPERIMENTS))}", file=sys.stderr)
        return 2

    summary = trace_experiment(
        args.experiment, quick=not args.full, max_events=args.max_events,
    )

    if args.jsonl:
        import json
        with open(args.jsonl, "w", encoding="utf-8") as fh:
            for event in summary.events:
                fh.write(json.dumps(event.to_json_dict(), sort_keys=True))
                fh.write("\n")
        print(f"trace: {len(summary.events)} events -> {args.jsonl}")

    shown = summary.events[: args.limit] if args.limit else summary.events
    for event in shown:
        parts = [f"{event.kind:16s}"]
        if event.addr:
            parts.append(f"addr={event.addr:#08x}")
        if event.size:
            parts.append(f"size={event.size}")
        if event.cycle:
            parts.append(f"cycle={event.cycle}")
        if event.detail:
            parts.append(f"({event.detail})")
        print("  " + " ".join(parts))
    hidden = len(summary.events) - len(shown)
    if hidden or summary.dropped:
        print(f"  ... {hidden + summary.dropped} more events not shown")

    print()
    print(summary.format())
    print()
    totals = summary.totals
    print(f"trace: {summary.total_events} events, "
          f"{totals['bus_transactions']} bus transactions, "
          f"{totals['lines_enciphered']} cipher ops, "
          f"checks {'passed' if summary.result.passed else 'FAILED'}")
    return 0 if summary.result.passed else 1


def cmd_faults(args: argparse.Namespace) -> int:
    from .api import fault_campaign
    from .attacks import attack_class_required
    from .faults import FAULT_KINDS, campaign_labels

    labels = campaign_labels()
    if args.engine == "all":
        selected = labels
    elif args.engine in labels:
        selected = [args.engine]
    else:
        print(f"unknown campaign label {args.engine!r}; known: "
              f"{', '.join(labels)} (or 'all')", file=sys.stderr)
        return 2
    kinds = [None] + [k for k in FAULT_KINDS
                      if not args.kinds or k in args.kinds]

    rows = []
    all_conform = True
    for label in selected:
        for result in fault_campaign(label, kinds, seed=args.seed,
                                     quick=not args.full):
            all_conform = all_conform and result.conforms
            attacker = ("-" if result.kind is None else
                        f"class {int(attack_class_required(result.kind))}")
            rows.append([
                result.label, result.kind or "baseline", attacker,
                result.verdict,
                "yes" if result.expected_detect else "no",
                "yes" if result.conforms else "NO",
            ])
    print(format_table(
        ["engine", "attack", "adversary", "verdict", "claims detect",
         "conforms"],
        rows, title="Fault-injection campaigns (active-attack matrix)",
    ))
    conforming = sum(1 for row in rows if row[-1] == "yes")
    print(f"faults: {conforming}/{len(rows)} campaigns conform")
    return 0 if all_conform else 1


def cmd_campaign(args: argparse.Namespace) -> int:
    import json

    from .api import run_campaign
    from .campaign import CampaignSpec
    from .runner import to_canonical_json

    if args.workers < 1:
        print(f"--workers must be >= 1, got {args.workers}", file=sys.stderr)
        return 2
    # A degenerate grid (empty axis, unknown field, unreadable or invalid
    # spec file) is an operator mistake: report it as one line, never as
    # a traceback.
    try:
        if args.spec:
            doc = json.loads(Path(args.spec).read_text(encoding="utf-8"))
            if not isinstance(doc, dict):
                raise ValueError(
                    f"campaign spec {args.spec} must be a JSON object"
                )
            # Inline axis flags override the spec file's values.
            overrides = {
                "kind": args.kind, "engines": args.engines,
                "workloads": args.workloads, "accesses": args.accesses,
                "cache_sizes": args.cache_sizes,
                "line_sizes": args.line_sizes,
                "associativities": args.associativities,
                "latencies": args.latencies, "seeds": args.seeds,
                "fault_kinds": args.fault_kinds,
            }
            doc.update({k: v for k, v in overrides.items() if v})
            spec = CampaignSpec.from_dict(doc)
        else:
            spec = CampaignSpec(
                kind=args.kind or "overhead",
                engines=tuple(args.engines or ("stream",)),
                workloads=tuple(args.workloads or ("mixed",)),
                accesses=tuple(args.accesses or (256,)),
                cache_sizes=tuple(args.cache_sizes or (4096,)),
                line_sizes=tuple(args.line_sizes or (32,)),
                associativities=tuple(args.associativities or (2,)),
                latencies=tuple(args.latencies or (40,)),
                seeds=tuple(args.seeds or (2005,)),
                fault_kinds=tuple(args.fault_kinds) if args.fault_kinds
                else (None,),
            )
        spec.validate()
    except (KeyError, OSError, TypeError, ValueError) as exc:
        message = str(exc) or type(exc).__name__
        print(f"campaign: {message}", file=sys.stderr)
        return 2

    progress = (lambda line: print(f"  {line}", flush=True)) \
        if args.verbose else None
    try:
        result = run_campaign(
            spec,
            workers=args.workers,
            shards=args.shards,
            cache_dir=None if args.no_cache else Path(args.cache_dir),
            progress=progress,
        )
    except (KeyError, ValueError) as exc:
        print(f"campaign: {exc}", file=sys.stderr)
        return 2

    out = Path(args.out)
    out.write_text(result.metrics_json(), encoding="utf-8")
    profile_path = out.with_name(out.stem + "_profile.json")
    profile_path.write_text(to_canonical_json(result.profile),
                            encoding="utf-8")

    profile = result.profile
    print(f"campaign: {profile['points']} points "
          f"({result.executed} executed, {result.cached} cached) in "
          f"{profile['wall_seconds']}s — {result.tasks_per_second} tasks/s "
          f"on {profile['workers']} worker(s), {profile['shards']} shard(s)")
    if spec.kind == "overhead":
        rows = [
            [engine, stats["points"],
             format_percent(stats["mean_overhead"]),
             format_percent(stats["max_overhead"])]
            for engine, stats in result.summary["by_engine"].items()
        ]
        print(format_table(
            ["engine", "points", "mean overhead", "max overhead"],
            rows, title="Campaign summary",
        ))
    else:
        summary = result.summary
        print(f"campaign: {summary['conforming']}/{summary['points']} "
              f"fault points conform; verdicts: "
              + ", ".join(f"{v}={n}" for v, n in
                          summary["verdicts"].items()))
    print(f"campaign: metrics -> {out}, profile -> {profile_path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Bus-encryption engines: the DATE 2005 survey, runnable.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("list", help="list engines and workloads")
    p.add_argument("--all", action="store_true",
                   help="include extension/wrapper engines")

    p = sub.add_parser("overhead", help="measure one engine on one workload")
    p.add_argument("engine", help="engine name (see `list`)")
    p.add_argument(
        "workload", nargs="?", default="mixed",
        help="workload name (see `list`); unknown names exit 2 with the "
             "known list on stderr",
    )
    p.add_argument("--accesses", type=int, default=4000)
    p.add_argument("--cache", type=int, default=4096)
    p.add_argument("--latency", type=int, default=40)

    p = sub.add_parser("survey", help="the full engine comparison table")
    p.add_argument("--accesses", type=int, default=4000)

    p = sub.add_parser("attack", help="run the Kuhn attack demo")
    p.add_argument("--memory", type=int, default=512)
    p.add_argument("--seed", type=int, default=2005)
    p.add_argument("--quiet", action="store_true")

    p = sub.add_parser("protocol", help="run the Figure-1 key exchange")
    p.add_argument("--size", type=int, default=2048)
    p.add_argument("--seed", type=int, default=2005)
    p.add_argument("--key-bits", type=int, default=512)

    sub.add_parser("area", help="gate-count estimates for all engines")

    p = sub.add_parser(
        "bench",
        help="run the E01-E19 experiment suite, write metrics JSON",
    )
    p.add_argument("--experiments", nargs="*", metavar="EXP",
                   help="experiment ids (default: all)")
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes (metrics are identical for any "
                        "count)")
    p.add_argument("--quick", action="store_true",
                   help="scaled-down traces, sub-minute full suite")
    p.add_argument("--out", default="BENCH_metrics.json",
                   help="metrics JSON path (profile JSON lands next to it)")
    p.add_argument("--cache-dir", default=".bench_cache",
                   help="on-disk result cache directory")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the result cache")
    p.add_argument("--tables", action="store_true",
                   help="also print each experiment's human-readable tables")
    p.add_argument("--no-obs", action="store_true",
                   help="skip event-counter aggregation (omits the "
                        "observability sections from the metrics JSON)")
    p.add_argument("-v", "--verbose", action="store_true",
                   help="print per-task progress lines")

    p = sub.add_parser(
        "faults",
        help="run fault-injection campaigns against an engine "
             "(or 'all' for the full matrix)",
    )
    p.add_argument("engine",
                   help="campaign label (see `list --all`), or 'all'")
    p.add_argument("--kinds", nargs="*", metavar="KIND",
                   choices=("spoof", "splice", "replay", "glitch"),
                   help="fault classes to run (default: all four + "
                        "baseline)")
    p.add_argument("--seed", type=int, default=2005)
    p.add_argument("--full", action="store_true",
                   help="full-size campaign sweeps (default: quick)")

    p = sub.add_parser(
        "campaign",
        help="run a sharded, resumable design-space sweep "
             "(engine x workload x cache geometry x latency grid)",
    )
    p.add_argument("--spec", metavar="PATH",
                   help="JSON campaign spec (inline axis flags override "
                        "its fields)")
    p.add_argument("--kind", choices=("overhead", "faults"),
                   help="point family (default: overhead)")
    p.add_argument("--engines", nargs="*", metavar="ENGINE",
                   help="engine names (faults: campaign labels)")
    p.add_argument("--workloads", nargs="*", metavar="NAME")
    p.add_argument("--accesses", nargs="*", type=int, metavar="N")
    p.add_argument("--cache-sizes", nargs="*", type=int, metavar="BYTES")
    p.add_argument("--line-sizes", nargs="*", type=int, metavar="BYTES")
    p.add_argument("--associativities", nargs="*", type=int, metavar="WAYS")
    p.add_argument("--latencies", nargs="*", type=int, metavar="CYCLES")
    p.add_argument("--seeds", nargs="*", type=int, metavar="SEED")
    p.add_argument("--fault-kinds", nargs="*", metavar="KIND",
                   choices=("spoof", "splice", "replay", "glitch"),
                   help="fault classes for --kind faults")
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes (metrics are identical for any "
                        "count)")
    p.add_argument("--shards", type=int, default=None,
                   help="key-space partitions (default: one per worker)")
    p.add_argument("--out", default="BENCH_campaign_metrics.json",
                   help="metrics JSON path (profile JSON lands next to it)")
    p.add_argument("--cache-dir", default=".bench_campaign_cache",
                   help="on-disk result cache (enables resume after an "
                        "interrupt)")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the result cache (and resume)")
    p.add_argument("-v", "--verbose", action="store_true",
                   help="print per-point progress lines")

    p = sub.add_parser(
        "serve",
        help="serve experiments and campaigns over the framed "
             "socket protocol (see repro.serve)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7205,
                   help="listen port (0 = ephemeral; the actual port is "
                        "printed at startup)")
    p.add_argument("--workers", type=int, default=2,
                   help="fork-pool worker processes (0 = execute "
                        "in-process on a thread)")
    p.add_argument("--max-pending", type=int, default=64,
                   help="admission bound: queued-or-running executions "
                        "beyond this get explicit overloaded frames")
    p.add_argument("--idle-timeout", type=float, default=30.0,
                   help="seconds before an idle connection is dropped")
    p.add_argument("--cache-dir", default=".bench_serve_cache",
                   help="on-disk result cache (completed requests and "
                        "campaign points; enables resume)")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the result cache")

    p = sub.add_parser(
        "stream",
        help="run a chunk-streamed workload in bounded memory "
             "(long-horizon generators: phased, multi-tenant, dma-burst)",
    )
    p.add_argument("engine", nargs="?", default=None,
                   help="engine name, or 'baseline'/omitted for the "
                        "plaintext baseline")
    p.add_argument("workload", nargs="?", default="mixed",
                   help="workload name (named suite, long-horizon "
                        "generators, or mcu-<kernel>)")
    p.add_argument("--accesses", type=int, default=200_000)
    p.add_argument("--chunk-size", type=int, default=65536,
                   help="accesses per executed chunk (0 = materialize "
                        "the whole trace; metrics are identical)")
    p.add_argument("--seed", type=int, default=2005)

    p = sub.add_parser(
        "trace",
        help="run one experiment recording its event stream",
    )
    p.add_argument("experiment", help="experiment id (e.g. e02)")
    p.add_argument("--full", action="store_true",
                   help="full-size traces (default: quick)")
    p.add_argument("--limit", type=int, default=40,
                   help="events to print (0 = all recorded)")
    p.add_argument("--max-events", type=int, default=10000,
                   help="events to record verbatim before dropping")
    p.add_argument("--jsonl", metavar="PATH",
                   help="also dump recorded events as JSON lines")
    return parser


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "list": cmd_list,
        "overhead": cmd_overhead,
        "survey": cmd_survey,
        "attack": cmd_attack,
        "protocol": cmd_protocol,
        "area": cmd_area,
        "bench": cmd_bench,
        "campaign": cmd_campaign,
        "serve": cmd_serve,
        "stream": cmd_stream,
        "trace": cmd_trace,
        "faults": cmd_faults,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
