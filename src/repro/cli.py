"""Command-line interface: run the survey's experiments without writing code.

Usage::

    python -m repro.cli list
    python -m repro.cli survey                 # the E14 comparison table
    python -m repro.cli overhead aegis mixed   # one engine, one workload
    python -m repro.cli attack --memory 512    # Kuhn attack demo
    python -m repro.cli protocol               # Figure-1 walkthrough
    python -m repro.cli area                   # gate counts for all engines
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Optional

from .analysis import (
    format_gates,
    format_percent,
    format_table,
    measure_overhead,
)
from .attacks import DallasBoard, KuhnAttack, rate_engine
from .core import (
    AegisEngine,
    BestEngine,
    DS5002FPEngine,
    DS5240Engine,
    GeneralInstrumentEngine,
    GilmontEngine,
    StreamCipherEngine,
    VlsiDmaEngine,
    XomAesEngine,
    run_distribution,
)
from .crypto import DRBG, SmallBlockCipher
from .isa import assemble, secret_table_program
from .sim import CacheConfig, MemoryConfig
from .traces import MCU_KERNELS, WORKLOAD_NAMES, make_workload, mcu_workload

KEY16 = b"0123456789abcdef"
KEY24 = b"0123456789abcdef01234567"

ENGINE_FACTORIES: Dict[str, Callable] = {
    "best": lambda: BestEngine(KEY16),
    "ds5002fp": lambda: DS5002FPEngine(KEY16),
    "ds5240": lambda: DS5240Engine(KEY16),
    "vlsi": lambda: VlsiDmaEngine(KEY24, page_size=1024, buffer_pages=8),
    "gi": lambda: GeneralInstrumentEngine(KEY24, region_size=1024,
                                          authenticate=False),
    "gilmont": lambda: GilmontEngine(KEY24),
    "xom": lambda: XomAesEngine(KEY16),
    "aegis": lambda: AegisEngine(KEY16),
    "stream": lambda: StreamCipherEngine(KEY16, line_size=32),
}


def _timing_factory(name: str) -> Callable:
    def make():
        engine = ENGINE_FACTORIES[name]()
        engine.functional = False
        return engine
    return make


def cmd_list(args: argparse.Namespace) -> int:
    print(format_table(
        ["engine", "class withstood", "notes"],
        [
            [name, rate_engine(ENGINE_FACTORIES[name]().name)
             .highest_class_withstood or "none",
             rate_engine(ENGINE_FACTORIES[name]().name).notes]
            for name in sorted(ENGINE_FACTORIES)
        ],
        title="Engines",
    ))
    print()
    print("Workloads:", ", ".join(WORKLOAD_NAMES))
    print("MCU kernels:", ", ".join(f"mcu-{k}" for k in MCU_KERNELS))
    return 0


def cmd_overhead(args: argparse.Namespace) -> int:
    if args.engine not in ENGINE_FACTORIES:
        print(f"unknown engine {args.engine!r}; see `list`", file=sys.stderr)
        return 2
    if args.workload.startswith("mcu-"):
        trace = mcu_workload(args.workload[4:], repeat=5)
    else:
        trace = [
            type(a)(a.kind, a.addr % (32 * 1024), a.size)
            for a in make_workload(args.workload, n=args.accesses)
        ]
    result = measure_overhead(
        _timing_factory(args.engine), trace, workload=args.workload,
        image=bytes(32 * 1024),
        cache_config=CacheConfig(size=args.cache, line_size=32,
                                 associativity=2),
        mem_config=MemoryConfig(size=1 << 21, latency=args.latency),
    )
    print(format_table(
        ["metric", "value"],
        [
            ["engine", args.engine],
            ["workload", args.workload],
            ["accesses", result.secured.accesses],
            ["baseline miss rate", f"{result.baseline.miss_rate:.1%}"],
            ["baseline cycles", result.baseline.cycles],
            ["secured cycles", result.secured.cycles],
            ["overhead", format_percent(result.overhead)],
        ],
        title="Overhead measurement",
    ))
    return 0


def cmd_survey(args: argparse.Namespace) -> int:
    trace = [
        type(a)(a.kind, a.addr % (32 * 1024), a.size)
        for a in make_workload("mixed", n=args.accesses)
    ]
    rows = []
    for name in sorted(ENGINE_FACTORIES):
        result = measure_overhead(
            _timing_factory(name), trace, image=bytes(32 * 1024),
            cache_config=CacheConfig(size=4096, line_size=32, associativity=2),
            mem_config=MemoryConfig(size=1 << 21, latency=40),
        )
        engine = ENGINE_FACTORIES[name]()
        rating = rate_engine(engine.name)
        rows.append([
            name, format_percent(result.overhead),
            format_gates(engine.area().total),
            rating.highest_class_withstood or "none",
        ])
    print(format_table(
        ["engine", "mixed overhead", "area", "withstands class"],
        rows, title="The survey, measured (mixed workload)",
    ))
    return 0


def cmd_attack(args: argparse.Namespace) -> int:
    firmware = assemble(
        secret_table_program(seed=args.seed, table_len=64), size=args.memory
    )
    board = DallasBoard(
        SmallBlockCipher(DRBG(args.seed).random_bytes(16)),
        firmware, memory_size=args.memory,
    )
    attack = KuhnAttack(board, verbose=not args.quiet)
    report = attack.run()
    recovered = sum(a == b for a, b in zip(report.plaintext, firmware))
    print(format_table(
        ["result", "value"],
        [
            ["bytes recovered", f"{recovered}/{args.memory}"],
            ["probe runs", report.probe_runs],
            ["ambiguous cells", len(report.ambiguous_cells)],
        ],
        title="Cipher Instruction Search",
    ))
    return 0 if recovered == args.memory else 1


def cmd_protocol(args: argparse.Namespace) -> int:
    software = DRBG(args.seed).random_bytes(args.size)
    processor, eve, session_key = run_distribution(
        software, seed=args.seed, key_bits=args.key_bits,
    )
    print(format_table(
        ["check", "value"],
        [
            ["session key established",
             processor._session_key == session_key],
            ["eavesdropper saw K", eve.saw(session_key)],
            ["eavesdropper saw software", eve.saw(software[:16])],
            ["messages observed", len(eve.transcript)],
            ["bytes observed", eve.total_bytes],
        ],
        title="Figure-1 distribution protocol",
    ))
    return 0


def cmd_area(args: argparse.Namespace) -> int:
    for name in sorted(ENGINE_FACTORIES):
        print(ENGINE_FACTORIES[name]().area())
        print()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Bus-encryption engines: the DATE 2005 survey, runnable.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list engines and workloads")

    p = sub.add_parser("overhead", help="measure one engine on one workload")
    p.add_argument("engine", help="engine name (see `list`)")
    p.add_argument(
        "workload", nargs="?", default="mixed",
        choices=tuple(WORKLOAD_NAMES) + tuple(f"mcu-{k}" for k in MCU_KERNELS),
    )
    p.add_argument("--accesses", type=int, default=4000)
    p.add_argument("--cache", type=int, default=4096)
    p.add_argument("--latency", type=int, default=40)

    p = sub.add_parser("survey", help="the full engine comparison table")
    p.add_argument("--accesses", type=int, default=4000)

    p = sub.add_parser("attack", help="run the Kuhn attack demo")
    p.add_argument("--memory", type=int, default=512)
    p.add_argument("--seed", type=int, default=2005)
    p.add_argument("--quiet", action="store_true")

    p = sub.add_parser("protocol", help="run the Figure-1 key exchange")
    p.add_argument("--size", type=int, default=2048)
    p.add_argument("--seed", type=int, default=2005)
    p.add_argument("--key-bits", type=int, default=512)

    sub.add_parser("area", help="gate-count estimates for all engines")
    return parser


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "list": cmd_list,
        "overhead": cmd_overhead,
        "survey": cmd_survey,
        "attack": cmd_attack,
        "protocol": cmd_protocol,
        "area": cmd_area,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
