"""Linear-sweep disassembler for the repro MCU.

Turns recovered memory dumps (e.g. the Kuhn attack's output) back into
readable assembly — the last step of the §2.3 story, where the attacker
reads the stolen program.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .mcu import INSTRUCTION_LENGTHS, Op

__all__ = ["Instruction", "disassemble", "format_listing"]

_MNEMONICS = {
    Op.NOP: "NOP",
    Op.MOV_A_IMM: "MOV A, #{imm}",
    Op.MOV_A_DIR: "MOV A, {addr}",
    Op.MOV_DIR_A: "MOV {addr}, A",
    Op.OUT: "OUT",
    Op.MOV_A_R: "MOV A, R{reg}",
    Op.MOV_R_A: "MOV R{reg}, A",
    Op.MOV_R_IMM: "MOV R{reg}, #{imm}",
    Op.ADD_A_IMM: "ADD A, #{imm}",
    Op.ADD_A_R: "ADD A, R{reg}",
    Op.SUB_A_R: "SUB A, R{reg}",
    Op.INC_A: "INC",
    Op.DEC_A: "DEC",
    Op.XRL_A_IMM: "XRL A, #{imm}",
    Op.ANL_A_IMM: "ANL A, #{imm}",
    Op.ORL_A_IMM: "ORL A, #{imm}",
    Op.JMP: "JMP {addr}",
    Op.JZ: "JZ {addr}",
    Op.JNZ: "JNZ {addr}",
    Op.DJNZ: "DJNZ R{reg}, {addr}",
    Op.CALL: "CALL {addr}",
    Op.RET: "RET",
    Op.PUSH_A: "PUSH",
    Op.POP_A: "POP",
    Op.MOVI_A: "MOVI",
    Op.MOVI_ST: "MOVIST",
    Op.INC_R: "INC R{reg}",
    Op.HALT: "HALT",
}


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction."""

    addr: int
    opcode: int
    length: int
    text: str
    raw: bytes

    @property
    def is_defined(self) -> bool:
        return self.opcode in INSTRUCTION_LENGTHS


def _decode_one(image: bytes, addr: int) -> Instruction:
    opcode = image[addr]
    length = INSTRUCTION_LENGTHS.get(opcode, 1)
    length = min(length, len(image) - addr)
    raw = bytes(image[addr: addr + length])
    template = _MNEMONICS.get(opcode)
    if template is None:
        text = f".byte {opcode:#04x}"
    else:
        fields = {}
        if "{reg}" in template:
            fields["reg"] = raw[1] & 7 if length > 1 else 0
        if "{imm}" in template:
            imm_pos = 2 if "{reg}" in template else 1
            fields["imm"] = raw[imm_pos] if length > imm_pos else 0
        if "{addr}" in template:
            addr_pos = 2 if "{reg}" in template else 1
            if length > addr_pos + 1:
                fields["addr"] = f"0x{raw[addr_pos] | (raw[addr_pos + 1] << 8):04X}"
            else:
                fields["addr"] = "0x????"
        text = template.format(**fields)
    return Instruction(addr=addr, opcode=opcode, length=length, text=text,
                       raw=raw)


def disassemble(image: bytes, start: int = 0,
                end: Optional[int] = None) -> List[Instruction]:
    """Linear sweep over [start, end); undefined bytes decode as data."""
    end = len(image) if end is None else min(end, len(image))
    out = []
    addr = start
    while addr < end:
        inst = _decode_one(image, addr)
        out.append(inst)
        addr += max(1, inst.length)
    return out


def format_listing(instructions: List[Instruction]) -> str:
    """Render a classic three-column listing."""
    lines = []
    for inst in instructions:
        raw_hex = inst.raw.hex()
        lines.append(f"{inst.addr:04X}:  {raw_hex:<8s}  {inst.text}")
    return "\n".join(lines)
