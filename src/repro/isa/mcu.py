"""A small 8051-flavoured microcontroller — the DS5002FP stand-in.

The Dallas DS5002FP (survey Figure 6, §2.3) is a secure 8051 derivative
executing encrypted code from external memory.  This model keeps exactly the
properties Kuhn's Cipher Instruction Search attack [6] needs:

* byte-granular external memory, every byte passing through an
  address-dependent decryptor on its way in (and encryptor on its way out);
* a parallel port whose writes are visible on the package pins;
* a bus whose fetch addresses are visible (board-level probing);
* a public instruction set (it is a standard part — only the key is secret);
* deterministic reset state (A = 0, registers cleared, PC = 0).

Fidelity note: the instruction set is a compact 8051 flavour.  It omits a
subtract-immediate form, so every two-byte A-immediate instruction computes
``A = f(imm)`` with ``f = identity`` when A = 0 at reset (MOV, ADD, ORL,
XRL) or constant (ANL) — the property the table-building phase of the
attack exploits.  The real attack disambiguates richer instruction behaviour
with more measurements; the model keeps the search structure (256 candidates
per address, behavioural classification over bus/port observations) intact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

__all__ = ["Op", "INSTRUCTION_LENGTHS", "StepEvent", "MCU", "MCUError"]


class MCUError(Exception):
    """Execution fault (bad stack, unmapped address)."""


class Op:
    """Opcode map (public knowledge — the part is standard)."""

    NOP = 0x00
    MOV_A_IMM = 0x01    # A = imm
    MOV_A_DIR = 0x02    # A = ext[addr16]
    MOV_DIR_A = 0x03    # ext[addr16] = A
    OUT = 0x04          # port <- A   (MOV P0, A)
    MOV_A_R = 0x05      # A = R[r]
    MOV_R_A = 0x06      # R[r] = A
    MOV_R_IMM = 0x07    # R[r] = imm
    ADD_A_IMM = 0x08    # A += imm
    ADD_A_R = 0x09      # A += R[r]
    SUB_A_R = 0x0A      # A -= R[r]
    INC_A = 0x0B
    DEC_A = 0x0C
    XRL_A_IMM = 0x0D    # A ^= imm
    ANL_A_IMM = 0x0E    # A &= imm
    ORL_A_IMM = 0x0F    # A |= imm
    JMP = 0x10
    JZ = 0x11
    JNZ = 0x12
    DJNZ = 0x13         # R[r] -= 1; jump if non-zero
    CALL = 0x14
    RET = 0x15
    PUSH_A = 0x16
    POP_A = 0x17
    MOVI_A = 0x18       # A = ext[R0:R1]
    MOVI_ST = 0x19      # ext[R0:R1] = A
    INC_R = 0x1A        # R[r] += 1
    HALT = 0xFF


INSTRUCTION_LENGTHS = {
    Op.NOP: 1, Op.MOV_A_IMM: 2, Op.MOV_A_DIR: 3, Op.MOV_DIR_A: 3,
    Op.OUT: 1, Op.MOV_A_R: 2, Op.MOV_R_A: 2, Op.MOV_R_IMM: 3,
    Op.ADD_A_IMM: 2, Op.ADD_A_R: 2, Op.SUB_A_R: 2, Op.INC_A: 1,
    Op.DEC_A: 1, Op.XRL_A_IMM: 2, Op.ANL_A_IMM: 2, Op.ORL_A_IMM: 2,
    Op.JMP: 3, Op.JZ: 3, Op.JNZ: 3, Op.DJNZ: 4, Op.CALL: 3, Op.RET: 1,
    Op.PUSH_A: 1, Op.POP_A: 1, Op.MOVI_A: 1, Op.MOVI_ST: 1, Op.INC_R: 2,
    Op.HALT: 1,
}


@dataclass
class StepEvent:
    """Everything observable about one executed instruction.

    ``fetched`` lists the external addresses the instruction fetch touched —
    the bus-probe view that lets the attacker classify instruction lengths.
    """

    pc: int
    opcode: int
    next_pc: int
    fetched: List[int] = field(default_factory=list)
    port_write: Optional[int] = None
    data_read: Optional[int] = None
    data_write: Optional[int] = None
    halted: bool = False


class MCU:
    """The microcontroller core.

    ``decrypt``/``encrypt`` are the bus-encryption hooks: callables
    ``(addr, byte) -> byte`` applied to every external read/write.  ``None``
    runs the part in clear (the insecure baseline).

    ``translate`` is the address-bus scrambler (Best's patents and the
    DS5002FP encrypt addresses as well as data): a keyed bijection mapping
    the CPU's logical address to the physical address emitted on the pins.
    The cipher hooks receive the *physical* address (the tweak the hardware
    sees), and :class:`StepEvent` reports physical addresses — exactly what
    a probe on the package observes.
    """

    STACK_SIZE = 256

    def __init__(
        self,
        memory: bytearray,
        decrypt: Optional[Callable[[int, int], int]] = None,
        encrypt: Optional[Callable[[int, int], int]] = None,
        translate: Optional[Callable[[int], int]] = None,
    ):
        self.memory = memory
        self._decrypt = decrypt
        self._encrypt = encrypt
        self._translate = translate
        self.port_log: List[int] = []
        self.reset()

    def reset(self) -> None:
        """Deterministic reset: A=0, registers cleared, PC=0, empty stack."""
        self.a = 0
        self.r = [0] * 8
        self.pc = 0
        self.sp = 0
        self._stack = [0] * self.STACK_SIZE
        self.halted = False
        self.cycles = 0

    # -- external memory interface (through the cipher) ---------------------

    def _physical(self, addr: int) -> int:
        # The address decoder wraps (hardware-like): injected garbage
        # operands must not fault, they must do *something observable*.
        addr %= len(self.memory)
        if self._translate is not None:
            addr = self._translate(addr) % len(self.memory)
        return addr

    def _bus_address(self, addr: int) -> int:
        """The address a probe on the package pins observes.

        Without a scrambler the full 16-bit value drives the bus (the
        memory decode wrap happens in the external decoder, after the
        probe); with a scrambler the pins carry the scrambled value.
        """
        if self._translate is None:
            return addr
        return self._translate(addr % len(self.memory)) % len(self.memory)

    def _read_ext(self, addr: int) -> int:
        phys = self._physical(addr)
        value = self.memory[phys]
        if self._decrypt is not None:
            value = self._decrypt(phys, value)
        return value

    def _write_ext(self, addr: int, value: int) -> None:
        phys = self._physical(addr)
        if self._encrypt is not None:
            value = self._encrypt(phys, value)
        self.memory[phys] = value

    # -- stack (circular, hardware-like: no faults on over/underflow) -------

    def _push(self, value: int) -> None:
        self._stack[self.sp % self.STACK_SIZE] = value
        self.sp = (self.sp + 1) % self.STACK_SIZE

    def _pop(self) -> int:
        self.sp = (self.sp - 1) % self.STACK_SIZE
        return self._stack[self.sp]

    # -- execution ----------------------------------------------------------------

    def step(self) -> StepEvent:
        """Execute one instruction; returns the observable event."""
        if self.halted:
            return StepEvent(pc=self.pc, opcode=Op.HALT, next_pc=self.pc,
                             halted=True)
        pc = self.pc
        event = StepEvent(pc=pc, opcode=0, next_pc=pc)

        def fetch() -> int:
            addr = self.pc
            # The probe sees the physical (possibly scrambled) address.
            event.fetched.append(self._bus_address(addr))
            value = self._read_ext(addr)
            self.pc = (self.pc + 1) % len(self.memory)
            return value

        def fetch_addr16() -> int:
            lo = fetch()
            hi = fetch()
            return (hi << 8) | lo

        op = fetch()
        event.opcode = op
        a_mask = 0xFF

        if op == Op.NOP:
            pass
        elif op == Op.MOV_A_IMM:
            self.a = fetch()
        elif op == Op.MOV_A_DIR:
            addr = fetch_addr16()
            event.data_read = self._bus_address(addr)
            self.a = self._read_ext(addr)
        elif op == Op.MOV_DIR_A:
            addr = fetch_addr16()
            event.data_write = self._bus_address(addr)
            self._write_ext(addr, self.a)
        elif op == Op.OUT:
            self.port_log.append(self.a)
            event.port_write = self.a
        elif op == Op.MOV_A_R:
            self.a = self.r[fetch() & 7]
        elif op == Op.MOV_R_A:
            self.r[fetch() & 7] = self.a
        elif op == Op.MOV_R_IMM:
            reg = fetch() & 7
            self.r[reg] = fetch()
        elif op == Op.ADD_A_IMM:
            self.a = (self.a + fetch()) & a_mask
        elif op == Op.ADD_A_R:
            self.a = (self.a + self.r[fetch() & 7]) & a_mask
        elif op == Op.SUB_A_R:
            self.a = (self.a - self.r[fetch() & 7]) & a_mask
        elif op == Op.INC_A:
            self.a = (self.a + 1) & a_mask
        elif op == Op.DEC_A:
            self.a = (self.a - 1) & a_mask
        elif op == Op.XRL_A_IMM:
            self.a ^= fetch()
        elif op == Op.ANL_A_IMM:
            self.a &= fetch()
        elif op == Op.ORL_A_IMM:
            self.a |= fetch()
        elif op == Op.JMP:
            self.pc = fetch_addr16()
        elif op == Op.JZ:
            target = fetch_addr16()
            if self.a == 0:
                self.pc = target
        elif op == Op.JNZ:
            target = fetch_addr16()
            if self.a != 0:
                self.pc = target
        elif op == Op.DJNZ:
            reg = fetch() & 7
            target = fetch_addr16()
            self.r[reg] = (self.r[reg] - 1) & a_mask
            if self.r[reg] != 0:
                self.pc = target
        elif op == Op.CALL:
            target = fetch_addr16()
            self._push(self.pc & 0xFF)
            self._push((self.pc >> 8) & 0xFF)
            self.pc = target
        elif op == Op.RET:
            hi = self._pop()
            lo = self._pop()
            self.pc = (hi << 8) | lo
        elif op == Op.PUSH_A:
            self._push(self.a)
        elif op == Op.POP_A:
            self.a = self._pop()
        elif op == Op.MOVI_A:
            addr = ((self.r[0] << 8) | self.r[1]) % len(self.memory)
            event.data_read = self._bus_address(addr)
            self.a = self._read_ext(addr)
        elif op == Op.MOVI_ST:
            addr = ((self.r[0] << 8) | self.r[1]) % len(self.memory)
            event.data_write = self._bus_address(addr)
            self._write_ext(addr, self.a)
        elif op == Op.INC_R:
            reg = fetch() & 7
            self.r[reg] = (self.r[reg] + 1) & a_mask
        elif op == Op.HALT:
            self.halted = True
            event.halted = True
        else:
            # Undefined opcodes execute as single-byte NOPs (the permissive
            # behaviour that widens the attack's fall-through class).
            pass

        self.cycles += len(event.fetched) + 1
        event.next_pc = self.pc
        return event

    def run(self, max_steps: int = 100000) -> List[StepEvent]:
        """Run until HALT or ``max_steps``; returns the event log."""
        events = []
        for _ in range(max_steps):
            event = self.step()
            events.append(event)
            if event.halted:
                break
        return events
