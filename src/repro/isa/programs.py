"""Sample MCU programs.

The "commercial software" whose confidentiality the bus encryption is
supposed to protect — used by the examples, the Kuhn attack demo (as the
victim firmware) and the MCU-derived trace generator.
"""

from __future__ import annotations

from typing import List

from ..crypto.drbg import DRBG
from .assembler import assemble
from .mcu import MCU, StepEvent

__all__ = [
    "bubble_sort_program",
    "checksum_program",
    "counter_program",
    "fibonacci_program",
    "memcpy_program",
    "memset_program",
    "mcu_trace",
    "secret_table_program",
    "string_search_program",
]


def checksum_program(table_base: int = 0x0100, table_len: int = 16) -> str:
    """Sum ``table_len`` bytes at ``table_base`` and emit the sum on the port."""
    return f"""
        ; checksum of a data table, result on the port
        MOV R0, #{table_base >> 8}
        MOV R1, #{table_base & 0xFF}
        MOV R2, #{table_len}
        MOV R3, #0
    loop:
        MOVI                ; A = ext[R0:R1]
        ADD A, R3
        MOV R3, A
        INC R1
        DJNZ R2, loop
        MOV A, R3
        OUT
        HALT
    """


def fibonacci_program(count: int = 10) -> str:
    """Emit the first ``count`` Fibonacci numbers (mod 256) on the port."""
    return f"""
        MOV R0, #0          ; F(n-1)
        MOV R1, #1          ; F(n)
        MOV R2, #{count}
    loop:
        MOV A, R0
        OUT
        MOV A, R0
        ADD A, R1
        MOV R3, A           ; F(n+1)
        MOV A, R1
        MOV R0, A
        MOV A, R3
        MOV R1, A
        DJNZ R2, loop
        HALT
    """


def counter_program(limit: int = 20) -> str:
    """Count up on the port — the minimal bus-activity smoke test."""
    return f"""
        MOV R2, #{limit}
        MOV A, #0
    loop:
        OUT
        INC
        DJNZ R2, loop
        HALT
    """


def secret_table_program(seed: int = 77, table_len: int = 64) -> str:
    """Firmware with an embedded secret table — the Kuhn-attack victim.

    The code merely sums the table; the attacker's goal is recovering the
    table (and the code) from encrypted external memory.
    """
    rng = DRBG(seed).fork("secret-table")
    secret = [rng.randbits(8) for _ in range(table_len)]
    table = ", ".join(str(b) for b in secret)
    return f"""
        {checksum_program(table_base=0x0100, table_len=table_len)}
        .org 0x0100
        .byte {table}
    """


def bubble_sort_program(table_base: int = 0x0200, table_len: int = 12,
                        seed: int = 99) -> str:
    """Bubble-sort a byte table in external memory, then emit it sorted.

    A genuinely write-heavy kernel: every swap is two external stores
    through the encryption engine — the workload class Gilmont's engine
    never faced.  Table values stay below 128 so the sign-bit comparison
    is exact.
    """
    rng = DRBG(seed).fork("sort-table")
    values = ", ".join(str(rng.randbits(7)) for _ in range(table_len))
    hi, lo = table_base >> 8, table_base & 0xFF
    return f"""
        ; bubble sort over ext[{table_base:#x}..+{table_len}]
        MOV R4, #{table_len - 1}      ; outer pass counter
    outer:
        MOV R0, #{hi}
        MOV R1, #{lo}
        MOV R5, #{table_len - 1}      ; inner counter
    inner:
        MOVI                          ; A = t[i]
        MOV R2, A                     ; cur
        INC R1
        MOVI                          ; A = t[i+1]
        MOV R3, A                     ; nxt
        SUB A, R2                     ; nxt - cur
        JZ no_swap
        ANL A, #0x80                  ; sign bit set <=> nxt < cur
        JZ no_swap
        ; swap: t[i+1] = cur (R1 already at i+1)
        MOV A, R2
        MOVIST
        ; t[i] = nxt: i = lo + (len-1) - R5
        MOV A, #{lo + table_len - 1}
        SUB A, R5
        MOV R1, A
        MOV A, R3
        MOVIST
        INC R1                        ; back to i+1
    no_swap:
        DJNZ R5, inner
        DJNZ R4, outer
        ; emit the sorted table on the port
        MOV R0, #{hi}
        MOV R1, #{lo}
        MOV R2, #{table_len}
    emit:
        MOVI
        OUT
        INC R1
        DJNZ R2, emit
        HALT
        .org {table_base}
        .byte {values}
    """


def memset_program(base: int = 0x0300, length: int = 32,
                   value: int = 0xA5) -> str:
    """Fill a memory region — the pure store kernel (sub-block writes)."""
    return f"""
        MOV R0, #{base >> 8}
        MOV R1, #{base & 0xFF}
        MOV R2, #{length}
    loop:
        MOV A, #{value}
        MOVIST
        INC R1
        DJNZ R2, loop
        MOV A, #{length}
        OUT
        HALT
    """


def memcpy_program(src: int = 0x0200, dst: int = 0x0300,
                   length: int = 24, seed: int = 55) -> str:
    """Copy a region byte by byte — balanced load/store kernel."""
    rng = DRBG(seed).fork("memcpy-src")
    values = ", ".join(str(rng.randbits(8)) for _ in range(length))
    return f"""
        MOV R2, #{length}
        MOV R4, #{src & 0xFF}         ; src low (high fixed)
        MOV R5, #{dst & 0xFF}         ; dst low
    loop:
        MOV R0, #{src >> 8}
        MOV A, R4
        MOV R1, A
        MOVI                          ; A = src byte
        MOV R3, A
        MOV R0, #{dst >> 8}
        MOV A, R5
        MOV R1, A
        MOV A, R3
        MOVIST                        ; dst byte = A
        INC R4
        INC R5
        DJNZ R2, loop
        MOV A, #1
        OUT
        HALT
        .org {src}
        .byte {values}
    """


def string_search_program(needle: int = 0x5A, table_base: int = 0x0200,
                          table_len: int = 48, seed: int = 31) -> str:
    """Scan a table for a byte value; emit the count — branchy read kernel."""
    rng = DRBG(seed).fork("search-table")
    values = [rng.randbits(8) for _ in range(table_len)]
    values[table_len // 3] = needle           # guarantee at least one hit
    values[2 * table_len // 3] = needle
    table = ", ".join(str(v) for v in values)
    return f"""
        MOV R0, #{table_base >> 8}
        MOV R1, #{table_base & 0xFF}
        MOV R2, #{table_len}
        MOV R3, #0                    ; match count
    loop:
        MOVI
        XRL A, #{needle}
        JNZ miss
        MOV A, R3
        INC
        MOV R3, A
    miss:
        INC R1
        DJNZ R2, loop
        MOV A, R3
        OUT
        HALT
        .org {table_base}
        .byte {table}
    """


def mcu_trace(source: str, memory_size: int = 4096, max_steps: int = 20000
              ) -> List[StepEvent]:
    """Assemble and run a program in clear; returns the event log.

    The events carry every fetch and data address — a *real* instruction
    trace for the simulator, complementing the synthetic generators.
    """
    image = assemble(source, size=memory_size)
    mcu = MCU(bytearray(image))
    return mcu.run(max_steps=max_steps)
