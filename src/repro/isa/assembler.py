"""Two-pass assembler for the repro MCU.

Source syntax: one instruction per line, ``;`` comments, ``label:``
definitions, ``.org ADDR`` and ``.byte v1, v2`` directives.  Operands:
``#imm`` immediates, ``Rn`` registers, bare numbers/labels as 16-bit
addresses.  Numbers accept decimal or ``0x`` hex.

>>> assemble("start: MOV A, #5\\n OUT\\n HALT")[:4].hex()
'010504ff'
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .mcu import Op

__all__ = ["assemble", "AssemblerError"]


class AssemblerError(ValueError):
    """Malformed assembly source."""


# mnemonic -> (opcode, operand spec)
# operand specs: "" none, "imm", "addr16", "reg", "reg,imm", "reg,addr16"
_MNEMONICS: Dict[str, Tuple[int, str]] = {
    "NOP": (Op.NOP, ""),
    "OUT": (Op.OUT, ""),
    "INC": (Op.INC_A, ""),          # INC A handled specially below
    "DEC": (Op.DEC_A, ""),
    "JMP": (Op.JMP, "addr16"),
    "JZ": (Op.JZ, "addr16"),
    "JNZ": (Op.JNZ, "addr16"),
    "DJNZ": (Op.DJNZ, "reg,addr16"),
    "CALL": (Op.CALL, "addr16"),
    "RET": (Op.RET, ""),
    "PUSH": (Op.PUSH_A, ""),
    "POP": (Op.POP_A, ""),
    "MOVI": (Op.MOVI_A, ""),
    "MOVIST": (Op.MOVI_ST, ""),
    "HALT": (Op.HALT, ""),
}


def _parse_number(token: str, labels: Dict[str, int]) -> int:
    token = token.strip()
    if token in labels:
        return labels[token]
    try:
        if token.lower().startswith("0x"):
            return int(token, 16)
        return int(token)
    except ValueError:
        raise AssemblerError(f"unresolved symbol or bad number: {token!r}")


def _encode(mnemonic: str, operands: List[str], labels: Dict[str, int]
            ) -> List[int]:
    """Encode one instruction; labels may be incomplete during pass 1."""

    def num(token: str) -> int:
        return _parse_number(token, labels)

    def reg(token: str) -> int:
        token = token.strip().upper()
        if not token.startswith("R") or not token[1:].isdigit():
            raise AssemblerError(f"expected register, got {token!r}")
        idx = int(token[1:])
        if not 0 <= idx <= 7:
            raise AssemblerError(f"register out of range: {token}")
        return idx

    def addr16(token: str) -> List[int]:
        value = num(token)
        return [value & 0xFF, (value >> 8) & 0xFF]

    m = mnemonic.upper()

    if m == "MOV":
        if len(operands) != 2:
            raise AssemblerError(f"MOV needs 2 operands, got {operands}")
        dst, src = operands[0].strip().upper(), operands[1].strip()
        if dst == "A" and src.startswith("#"):
            return [Op.MOV_A_IMM, num(src[1:]) & 0xFF]
        if dst == "A" and src.upper().startswith("R") and src[1:].isdigit():
            return [Op.MOV_A_R, reg(src)]
        if dst == "A":
            return [Op.MOV_A_DIR] + addr16(src)
        if dst.startswith("R") and dst[1:].isdigit():
            if src.startswith("#"):
                return [Op.MOV_R_IMM, reg(dst), num(src[1:]) & 0xFF]
            if src.upper() == "A":
                return [Op.MOV_R_A, reg(dst)]
            raise AssemblerError(f"bad MOV source for register: {src!r}")
        if src.upper() == "A":
            return [Op.MOV_DIR_A] + addr16(dst)
        raise AssemblerError(f"unsupported MOV form: {operands}")

    if m in ("ADD", "SUB", "XRL", "ANL", "ORL"):
        if len(operands) != 2 or operands[0].strip().upper() != "A":
            raise AssemblerError(f"{m} needs 'A, operand'")
        src = operands[1].strip()
        if src.startswith("#"):
            imm_ops = {"ADD": Op.ADD_A_IMM, "XRL": Op.XRL_A_IMM,
                       "ANL": Op.ANL_A_IMM, "ORL": Op.ORL_A_IMM}
            if m == "SUB":
                raise AssemblerError(
                    "SUB has no immediate form on this part; use a register"
                )
            return [imm_ops[m], num(src[1:]) & 0xFF]
        if m == "ADD":
            return [Op.ADD_A_R, reg(src)]
        if m == "SUB":
            return [Op.SUB_A_R, reg(src)]
        raise AssemblerError(f"{m} supports only immediate operands")

    if m == "INC":
        if operands and operands[0].strip().upper() != "A":
            return [Op.INC_R, reg(operands[0])]
        return [Op.INC_A]

    if m == "DEC":
        return [Op.DEC_A]

    if m == "DJNZ":
        if len(operands) != 2:
            raise AssemblerError("DJNZ needs 'Rn, target'")
        return [Op.DJNZ, reg(operands[0])] + addr16(operands[1])

    if m in _MNEMONICS:
        opcode, spec = _MNEMONICS[m]
        if spec == "":
            if m in ("INC", "DEC") or not operands:
                return [opcode]
            if operands == ["A"]:
                return [opcode]
            raise AssemblerError(f"{m} takes no operands, got {operands}")
        if spec == "addr16":
            if len(operands) != 1:
                raise AssemblerError(f"{m} needs one address operand")
            return [opcode] + addr16(operands[0])

    raise AssemblerError(f"unknown mnemonic {mnemonic!r}")


def _tokenize(line: str) -> Tuple[str, List[str]]:
    parts = line.split(None, 1)
    mnemonic = parts[0]
    operands = []
    if len(parts) > 1:
        operands = [tok.strip() for tok in parts[1].split(",")]
    return mnemonic, operands


def assemble(source: str, origin: int = 0, size: int = None) -> bytes:
    """Assemble ``source`` into a binary image starting at ``origin``.

    Returns the image bytes from address 0 up to the highest assembled
    address (or padded/truncated to ``size`` if given).
    """
    labels: Dict[str, int] = {}

    def parse_lines():
        for raw in source.splitlines():
            line = raw.split(";", 1)[0].strip()
            if not line:
                continue
            yield line

    # Pass 1 sizes instructions with unknown labels resolving to 0 (every
    # reference is fixed-width, so layout is stable); pass 2 encodes.
    image: Dict[int, int] = {}
    for pass_num in (1, 2):
        pc = origin
        image = {}
        lookup = labels if pass_num == 2 else _Forgiving(labels)
        for line in parse_lines():
            # Peel off any leading "label:" prefixes.
            while line:
                head = line.split(None, 1)[0]
                if not head.endswith(":"):
                    break
                label = head[:-1].strip()
                if not label.isidentifier():
                    raise AssemblerError(f"bad label {label!r}")
                if pass_num == 1:
                    labels[label] = pc
                line = line[len(head):].strip()
            if not line:
                continue
            if line.startswith(".org"):
                pc = _parse_number(line.split(None, 1)[1], lookup)
                continue
            if line.startswith(".byte"):
                for token in line.split(None, 1)[1].split(","):
                    value = _parse_number(token, lookup) if pass_num == 2 else 0
                    image[pc] = value & 0xFF
                    pc += 1
                continue
            mnemonic, operands = _tokenize(line)
            encoded = _encode(mnemonic, operands, lookup)
            for byte in encoded:
                image[pc] = byte
                pc += 1

    if not image:
        return b"" if size is None else bytes(size)
    top = max(image) + 1
    length = size if size is not None else top
    out = bytearray(length)
    for addr, byte in image.items():
        if addr < length:
            out[addr] = byte
    return bytes(out)


class _Forgiving(dict):
    """Label table that resolves unknown labels to 0 during pass 1."""

    def __init__(self, known: Dict[str, int]):
        super().__init__(known)

    def __contains__(self, key) -> bool:
        # Accept every identifier so pass 1 can size instructions.
        return isinstance(key, str) and (key.isidentifier() or super().__contains__(key))

    def __getitem__(self, key):
        return super().get(key, 0)
