"""MCU substrate: an 8051-flavoured core (the DS5002FP stand-in), a two-pass
assembler and sample firmware."""

from .assembler import AssemblerError, assemble
from .disassembler import Instruction, disassemble, format_listing
from .mcu import INSTRUCTION_LENGTHS, MCU, MCUError, Op, StepEvent
from .programs import (
    bubble_sort_program,
    checksum_program,
    counter_program,
    fibonacci_program,
    memcpy_program,
    memset_program,
    mcu_trace,
    secret_table_program,
    string_search_program,
)

__all__ = [
    "AssemblerError", "assemble",
    "Instruction", "disassemble", "format_listing",
    "INSTRUCTION_LENGTHS", "MCU", "MCUError", "Op", "StepEvent",
    "bubble_sort_program", "checksum_program", "counter_program",
    "fibonacci_program", "memcpy_program", "memset_program",
    "mcu_trace", "secret_table_program", "string_search_program",
]
