"""Ambient observation scope: attach a sink without threading it by hand.

The simulator classes all take an explicit ``sink=`` parameter, but most
instrumentation wants to observe code it does not construct — an
experiment task three calls deep builds its own :class:`SecureSystem`.
:func:`scope` installs a process-wide default sink for the duration of a
``with`` block; any component built *inside* the block that was not given
an explicit sink picks it up via :func:`current_sink`::

    from repro import obs

    with obs.scope(obs.CounterSink()) as sink:
        repro.api.engine_overhead(...)   # systems built here are observed
    print(sink.summary())

Scopes nest (inner wins, outer restored on exit).  This is deliberately a
plain module global, not a contextvar: the simulator is single-threaded
per process, and the experiment runner's workers each wrap exactly one
task in exactly one scope, so the cheapest possible lookup wins.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, TypeVar

from .sinks import EventSink

__all__ = ["scope", "current_sink"]

_current: Optional[EventSink] = None

SinkT = TypeVar("SinkT", bound=EventSink)


def current_sink() -> Optional[EventSink]:
    """The ambient sink installed by the innermost active :func:`scope`."""
    return _current


@contextmanager
def scope(sink: SinkT) -> Iterator[SinkT]:
    """Install ``sink`` as the ambient default for the enclosed block."""
    global _current
    previous = _current
    _current = sink
    try:
        yield sink
    finally:
        _current = previous
