"""The simulator's event taxonomy: one typed record per observable fact.

Everything the survey measures — and everything its adversary sees — is a
sequence of discrete hardware events: an access entering the memory
system, a cache line missing, ciphertext crossing the external bus, a
line going through the cipher, an integrity tag being checked.
:class:`TraceEvent` is the single record type all of them share, and
``EVENT_KINDS`` is the closed taxonomy of ``kind`` strings the simulator
emits.  Sinks (:mod:`repro.obs.sinks`) consume the stream; nothing in the
data path ever interprets it.

``TraceEvent`` is a ``NamedTuple`` rather than a dataclass deliberately:
the emit fast path constructs millions of these per full-length run, and
tuple construction is the cheapest structured record CPython offers.
"""

from __future__ import annotations

from typing import Dict, NamedTuple

__all__ = ["TraceEvent", "EVENT_KINDS", "CIPHER_KINDS", "BUS_KINDS",
           "CACHE_KINDS", "FAULT_KINDS"]


class TraceEvent(NamedTuple):
    """One observable simulator event."""

    kind: str           # taxonomy entry, see EVENT_KINDS
    addr: int = 0       # byte address the event concerns (0 if n/a)
    size: int = 0       # bytes moved, or cycles for "stall"
    cycle: int = 0      # CPU cycle at emission (0 when no clock is wired)
    detail: str = ""    # free-form qualifier ("fetch", "ok", "tamper", ...)
    data: bytes = b""   # payload, where the event carries one (bus events)

    def to_json_dict(self) -> Dict[str, object]:
        """JSON-serializable form (payload hex-encoded, empties dropped)."""
        doc: Dict[str, object] = {
            "kind": self.kind, "addr": self.addr, "size": self.size,
            "cycle": self.cycle,
        }
        if self.detail:
            doc["detail"] = self.detail
        if self.data:
            doc["data"] = self.data.hex()
        return doc


#: The closed event taxonomy: kind -> what it means.  Emit sites must use
#: one of these kinds so counter keys stay stable across the package.
EVENT_KINDS: Dict[str, str] = {
    # CPU boundary
    "access":          "one CPU access entering the memory system "
                       "(detail = fetch/load/store)",
    # cache outcomes
    "hit":             "cache hit (addr = accessed byte address)",
    "miss":            "cache miss",
    "eviction":        "a victim line left the cache",
    "writeback":       "a dirty victim was scheduled for external write",
    "fill":            "a line was fetched into the cache through the EDU",
    # chip boundary (what a board-level probe sees)
    "bus-read":        "bytes crossed the external bus, memory -> chip "
                       "(data = the observable payload)",
    "bus-write":       "bytes crossed the external bus, chip -> memory",
    "mem-read":        "external RAM serviced a read",
    "mem-write":       "external RAM serviced a write",
    # EDU internals
    "encipher":        "a line went through the cipher toward memory",
    "decipher":        "a line came through the cipher from memory",
    "rmw":             "a sub-block write forced read-modify-write (§2.2)",
    "integrity-check": "a MAC tag / Merkle path was verified "
                       "(detail = ok/tamper)",
    "stall":           "cycles the EDU added to the critical path "
                       "(size = cycles, detail = read/write/rmw)",
    # active attacks (repro.faults)
    "fault.injected":  "an active fault fired on the memory/bus layer "
                       "(detail = spoof/splice/replay/glitch)",
    "fault.detected":  "an engine's verdict path caught an injected fault "
                       "(detail = fault kind)",
    "fault.silent":    "an injected fault went undetected and corrupted "
                       "plaintext (detail = fault kind)",
    # protocol / attack side
    "protocol-msg":    "a message crossed the Figure-1 insecure channel",
    "probe-run":       "the attacker pulsed reset and single-stepped the "
                       "victim board (size = steps requested)",
    "mcu-step":        "one victim instruction executed under probing",
    "attack-phase":    "the Kuhn attack entered a new phase (detail)",
}

#: Kinds that move bytes through the cipher (bytes_enciphered totals).
CIPHER_KINDS = ("encipher", "decipher")
#: Kinds visible to a board-level bus probe.
BUS_KINDS = ("bus-read", "bus-write")
#: Cache-outcome kinds.
CACHE_KINDS = ("hit", "miss", "eviction", "writeback", "fill")
#: Active-attack kinds emitted by the fault-injection layer (repro.faults).
FAULT_KINDS = ("fault.injected", "fault.detected", "fault.silent")
