"""Turning raw event counters into the metrics documents' shape.

:func:`observability_section` is the single definition of the
``observability`` block that appears in ``repro-bench-metrics/3``
documents and in :class:`repro.api.ExperimentResult` — the runner, the
facade and the CLI all call this so the shape can never drift between
them.  Everything in it is derived from a :class:`CounterSink`, so it is
deterministic whenever the underlying simulation is.
"""

from __future__ import annotations

from typing import Dict

from .events import BUS_KINDS, CIPHER_KINDS, FAULT_KINDS
from .sinks import CounterSink

__all__ = ["observability_section", "merge_observability",
           "format_counter_table"]


def _section(counts: Dict[str, int], nbytes: Dict[str, int]
             ) -> Dict[str, object]:
    return {
        "counters": {k: counts[k] for k in sorted(counts)},
        "bytes_by_kind": {k: nbytes[k] for k in sorted(nbytes)},
        "totals": {
            "events": sum(counts.values()),
            "bus_transactions": sum(counts.get(k, 0) for k in BUS_KINDS),
            "bus_bytes": sum(nbytes.get(k, 0) for k in BUS_KINDS),
            "cache_hits": counts.get("hit", 0),
            "cache_misses": counts.get("miss", 0),
            "lines_enciphered": sum(counts.get(k, 0) for k in CIPHER_KINDS),
            "bytes_enciphered": sum(nbytes.get(k, 0) for k in CIPHER_KINDS),
            "integrity_checks": counts.get("integrity-check", 0),
            "stall_cycles": nbytes.get("stall", 0),
            "faults_injected": counts.get(FAULT_KINDS[0], 0),
            "faults_detected": counts.get(FAULT_KINDS[1], 0),
            "faults_silent": counts.get(FAULT_KINDS[2], 0),
        },
    }


def observability_section(sink: CounterSink) -> Dict[str, object]:
    """The deterministic ``observability`` block for one counter sink."""
    return _section(sink.summary(), sink.bytes_summary())


def merge_observability(sections) -> Dict[str, object]:
    """Aggregate several ``observability`` blocks (e.g. one per task).

    Counters and byte totals sum; the derived totals are recomputed from
    the merged counters, so a merge of merges stays consistent.
    """
    counts: Dict[str, int] = {}
    nbytes: Dict[str, int] = {}
    for section in sections:
        for kind, n in section.get("counters", {}).items():
            counts[kind] = counts.get(kind, 0) + n
        for kind, n in section.get("bytes_by_kind", {}).items():
            nbytes[kind] = nbytes.get(kind, 0) + n
    return _section(counts, nbytes)


def format_counter_table(sink: CounterSink, title: str = "Events") -> str:
    """Human-readable kind/count/bytes table for trace summaries."""
    from ..analysis import format_table

    rows = [
        [kind, count, sink.bytes_by_kind.get(kind, 0) or ""]
        for kind, count in sorted(sink.counts.items())
    ]
    return format_table(["event kind", "count", "bytes"], rows, title=title)
