"""Pluggable consumers for the simulator's event stream.

A sink is anything with an ``emit(event)`` method.  The data path holds an
``Optional[EventSink]`` and guards every emission with one ``is None``
test, so the disabled path costs a single attribute check (verified by
``python -m repro.obs.bench``).  The built-ins cover the common shapes:

* :class:`NullSink` — accepts and discards (enabled-path floor);
* :class:`CounterSink` — aggregate counters, the runner's default;
* :class:`RingBufferSink` — last-N events, for flight-recorder debugging;
* :class:`RecordingSink` — first-N events plus counters, for traces;
* :class:`JsonlSink` — one JSON object per event, for offline analysis;
* :class:`TeeSink` — fan one stream out to several sinks.
"""

from __future__ import annotations

import json
from collections import Counter, deque
from typing import (
    IO, Callable, Deque, Dict, Iterable, List, Optional, Union,
)

from .events import TraceEvent

__all__ = [
    "EventSink", "NullSink", "CounterSink", "RingBufferSink",
    "RecordingSink", "JsonlSink", "TeeSink", "replay",
]


class EventSink:
    """Base sink: receives every :class:`TraceEvent`.

    Subclass and override :meth:`emit`.  Sinks are pure observers — they
    must never mutate simulator state, and the simulator never reads them.
    """

    def emit(self, event: TraceEvent) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def emit_bulk(self, kind: str, count: int, total_size: int,
                  events: Callable[[], Iterable[TraceEvent]]) -> None:
        """Aggregated emission of ``count`` same-kind events.

        The batched fast path (:mod:`repro.sim.fastpath`) reports whole
        runs of cache hits through this hook instead of constructing one
        :class:`TraceEvent` per access.  ``events`` is a zero-argument
        callable producing the individual events; sinks that only
        aggregate (:class:`CounterSink`) never invoke it, so the common
        observed run skips per-access event construction entirely.  The
        callable may be invoked more than once (e.g. under a
        :class:`TeeSink` fanning out to two event-keeping sinks).

        Contract: for any sink, ``emit_bulk(kind, n, total, events)``
        must leave the same *aggregate* state (counts, byte totals) as
        ``n`` individual :meth:`emit` calls; event-keeping sinks also
        store the same events, though batches of different kinds may be
        stored grouped rather than interleaved.
        """
        for event in events():
            self.emit(event)

    def close(self) -> None:
        """Release any resources (file sinks override)."""

    def __enter__(self) -> "EventSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class NullSink(EventSink):
    """Accepts every event and keeps nothing.

    Exists so the micro-benchmark can separate the cost of *emitting*
    (event construction + dispatch) from the cost of *aggregating*.
    """

    def emit(self, event: TraceEvent) -> None:
        pass

    def emit_bulk(self, kind: str, count: int, total_size: int,
                  events: Callable[[], Iterable[TraceEvent]]) -> None:
        pass


class CounterSink(EventSink):
    """Counts events by kind and sums the bytes they moved.

    This is the aggregation the experiment runner attaches to every task:
    cheap enough to leave on, and its :meth:`summary` is deterministic for
    a deterministic simulation, so it can live inside committed metrics.
    """

    def __init__(self) -> None:
        self.counts: Counter = Counter()
        self.bytes_by_kind: Counter = Counter()

    def emit(self, event: TraceEvent) -> None:
        self.counts[event.kind] += 1
        if event.size:
            self.bytes_by_kind[event.kind] += event.size

    def emit_bulk(self, kind: str, count: int, total_size: int,
                  events: Callable[[], Iterable[TraceEvent]]) -> None:
        # The whole point of the hook: a run of n hits is two counter
        # adds, not n event constructions.
        self.counts[kind] += count
        if total_size:
            self.bytes_by_kind[kind] += total_size

    def get(self, kind: str) -> int:
        """Count for one kind (0 if never seen)."""
        return self.counts.get(kind, 0)

    def bytes_for(self, kind: str) -> int:
        """Bytes moved under one kind (0 if never seen)."""
        return self.bytes_by_kind.get(kind, 0)

    def summary(self) -> Dict[str, int]:
        """Counts as a plain dict (stable, sorted by kind)."""
        return {kind: self.counts[kind] for kind in sorted(self.counts)}

    def bytes_summary(self) -> Dict[str, int]:
        """Byte totals as a plain dict (stable, sorted by kind)."""
        return {kind: self.bytes_by_kind[kind]
                for kind in sorted(self.bytes_by_kind)}


class RingBufferSink(CounterSink):
    """Counts everything, keeps only the most recent ``capacity`` events.

    The flight-recorder shape: bounded memory no matter how long the run,
    with the tail of the stream available when something goes wrong.
    """

    def __init__(self, capacity: int = 4096) -> None:
        super().__init__()
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.events: Deque[TraceEvent] = deque(maxlen=capacity)

    def emit(self, event: TraceEvent) -> None:
        super().emit(event)
        self.events.append(event)

    # Event-keeping sinks must materialize batches: inheriting
    # CounterSink's aggregate-only emit_bulk would silently drop the
    # events themselves.
    emit_bulk = EventSink.emit_bulk

    @property
    def dropped(self) -> int:
        """Events that fell off the front of the ring."""
        return sum(self.counts.values()) - len(self.events)


class RecordingSink(CounterSink):
    """Counts *and* keeps the full event list (bounded by ``max_events``).

    Unlike the ring buffer this keeps the *head* of the stream — the shape
    trace dumps want, where the interesting part is how a run starts.
    """

    def __init__(self, max_events: Optional[int] = None) -> None:
        super().__init__()
        self.events: List[TraceEvent] = []
        self.max_events = max_events
        self.dropped = 0

    def emit(self, event: TraceEvent) -> None:
        super().emit(event)
        if self.max_events is not None and len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(event)

    emit_bulk = EventSink.emit_bulk  # keep the events, not just counts


class JsonlSink(EventSink):
    """Streams every event as one JSON object per line.

    Accepts a path (opened and owned, closed by :meth:`close`) or an
    already-open text file object (borrowed, left open).
    """

    def __init__(self, target: Union[str, "IO[str]"]) -> None:
        if isinstance(target, (str, bytes)):
            self._fh = open(target, "w", encoding="utf-8")
            self._owned = True
        else:
            self._fh = target
            self._owned = False
        self.events_written = 0

    def emit(self, event: TraceEvent) -> None:
        self._fh.write(json.dumps(event.to_json_dict(), sort_keys=True))
        self._fh.write("\n")
        self.events_written += 1

    def close(self) -> None:
        if self._owned and not self._fh.closed:
            self._fh.close()


class TeeSink(EventSink):
    """Fans one event stream out to several sinks."""

    def __init__(self, *sinks: EventSink) -> None:
        self.sinks: List[EventSink] = [s for s in sinks if s is not None]

    def emit(self, event: TraceEvent) -> None:
        for sink in self.sinks:
            sink.emit(event)

    def emit_bulk(self, kind: str, count: int, total_size: int,
                  events: Callable[[], Iterable[TraceEvent]]) -> None:
        for sink in self.sinks:
            sink.emit_bulk(kind, count, total_size, events)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


def replay(events: Iterable[TraceEvent], sink: EventSink) -> EventSink:
    """Feed a recorded event sequence into a sink; returns the sink."""
    for event in events:
        sink.emit(event)
    return sink
