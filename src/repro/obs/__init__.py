"""Structured observability for the simulator: events, sinks, scopes.

The survey's claims are all claims about *observable* behaviour —
miss-path latency, bus transactions an adversary can probe, cache hit
rates — so the simulator announces every such fact as a typed
:class:`TraceEvent` on its way past.  This package is the one place those
events are defined (:mod:`repro.obs.events`), consumed
(:mod:`repro.obs.sinks`), attached (:mod:`repro.obs.scope`) and reduced
to metrics (:mod:`repro.obs.summary`):

* the data path (``repro.sim``, the engine call sites in ``repro.core``)
  emits events to an optional sink — one ``is None`` test when disabled
  (``python -m repro.obs.bench`` verifies the cost);
* attack modules (:class:`repro.attacks.probe.BusProbe`) are sinks over
  the *same* stream, so "what the adversary sees" and "what we measure"
  are one code path;
* the experiment runner wraps every task in :func:`scope` with a
  :class:`CounterSink` and merges the result into the
  ``repro-bench-metrics/3`` document's ``observability`` section;
* the fault-injection layer (:mod:`repro.faults`) emits
  ``fault.injected`` / ``fault.detected`` / ``fault.silent`` on the same
  stream, so active-attack campaigns are observable like everything else.
"""

from .events import (
    BUS_KINDS,
    CACHE_KINDS,
    CIPHER_KINDS,
    EVENT_KINDS,
    FAULT_KINDS,
    TraceEvent,
)
from .scope import current_sink, scope
from .sinks import (
    CounterSink,
    EventSink,
    JsonlSink,
    NullSink,
    RecordingSink,
    RingBufferSink,
    TeeSink,
    replay,
)
from .summary import (
    format_counter_table,
    merge_observability,
    observability_section,
)

__all__ = [
    "TraceEvent", "EVENT_KINDS", "BUS_KINDS", "CACHE_KINDS", "CIPHER_KINDS",
    "FAULT_KINDS",
    "EventSink", "NullSink", "CounterSink", "RingBufferSink",
    "RecordingSink", "JsonlSink", "TeeSink", "replay",
    "scope", "current_sink",
    "observability_section", "merge_observability", "format_counter_table",
]
