"""Micro-benchmark for the observability fast path.

The whole design rests on one promise: with no sink attached, every emit
site reduces to a single ``is None`` test, so leaving the hooks wired
into the simulator is free.  This module measures that promise —

    python -m repro.obs.bench [--accesses N] [--repeats R]

runs the same trace through :class:`repro.sim.system.SecureSystem` with
(a) no sink, (b) a :class:`NullSink` (emission cost only), and (c) a
:class:`CounterSink` (the runner's default aggregation), and prints the
per-access cost of each tier.  ``make trace-smoke`` wraps it.
"""

from __future__ import annotations

import argparse
import time
from typing import Callable, List, Optional, Tuple

from .sinks import CounterSink, EventSink, NullSink

__all__ = ["measure_emit_overhead", "main"]


def _run_once(sink: Optional[EventSink], accesses: int, seed: int) -> float:
    # Imported here, not at module top: repro.sim imports repro.obs.
    from ..core.registry import make_engine
    from ..sim import CacheConfig, MemoryConfig, SecureSystem
    from ..traces import make_workload

    trace = make_workload("mixed", n=accesses, seed=seed)
    system = SecureSystem(
        engine=make_engine("stream", functional=False),
        cache_config=CacheConfig(size=4096, line_size=32, associativity=2),
        mem_config=MemoryConfig(size=1 << 21, latency=40),
        sink=sink,
    )
    start = time.perf_counter()
    system.run(trace)
    return time.perf_counter() - start


def measure_emit_overhead(
    accesses: int = 20000, repeats: int = 3, seed: int = 7,
) -> List[Tuple[str, float]]:
    """Best-of-``repeats`` wall seconds per tier: disabled/null/counter."""
    tiers: List[Tuple[str, Callable[[], Optional[EventSink]]]] = [
        ("disabled (sink=None)", lambda: None),
        ("NullSink", NullSink),
        ("CounterSink", CounterSink),
    ]
    results = []
    for label, factory in tiers:
        best = min(
            _run_once(factory(), accesses, seed) for _ in range(repeats)
        )
        results.append((label, best))
    return results


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.obs.bench",
        description="measure the cost of the observability emit path",
    )
    parser.add_argument("--accesses", type=int, default=20000)
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)

    results = measure_emit_overhead(args.accesses, args.repeats)
    baseline = results[0][1]
    print(f"obs emit overhead, {args.accesses} accesses, "
          f"best of {args.repeats}:")
    for label, wall in results:
        per_access_ns = 1e9 * wall / args.accesses
        delta = (wall / baseline - 1.0) if baseline else 0.0
        print(f"  {label:22s} {wall * 1e3:8.2f} ms "
              f"({per_access_ns:7.1f} ns/access, {delta:+.1%} vs disabled)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
