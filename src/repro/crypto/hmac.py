"""HMAC keyed hash (RFC 2104) over the from-scratch SHA-256.

The General Instrument patent (survey Figure 5) authenticates data coming
from external memory with "a keyed hash algorithm"; this is that algorithm
in the reproduction, and it also backs the PRF used for key derivation.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import List, Tuple

from .sha256 import HASHLIB_BACKED, SHA256, sha256

__all__ = ["hmac_sha256", "verify_hmac", "consttime_eq", "prf"]

_BLOCK = 64

# key -> (inner chaining state, outer chaining state), i.e. the SHA-256
# states after absorbing ipad/opad.  Engines tag with a handful of fixed
# keys, so the two pad compressions become a once-per-key cost.
_STATE_CACHE: "OrderedDict[bytes, Tuple[List[int], List[int]]]" = OrderedDict()
_STATE_CACHE_MAX = 64

# Same idea on the hashlib-backed path: key -> hashlib streams positioned
# after ipad/opad, resumed per tag with the O(1) ``copy()``.
_FAST_CACHE: "OrderedDict[bytes, Tuple[object, object]]" = OrderedDict()


def _padded_key(key: bytes) -> bytes:
    padded = sha256(key) if len(key) > _BLOCK else key
    return padded.ljust(_BLOCK, b"\x00")


def _keyed_states(key: bytes) -> Tuple[List[int], List[int]]:
    cached = _STATE_CACHE.get(key)
    if cached is not None:
        _STATE_CACHE.move_to_end(key)
        return cached
    padded = _padded_key(key)
    inner = SHA256(bytes(b ^ 0x36 for b in padded))
    outer = SHA256(bytes(b ^ 0x5C for b in padded))
    cached = (inner._h, outer._h)
    _STATE_CACHE[key] = cached
    while len(_STATE_CACHE) > _STATE_CACHE_MAX:
        _STATE_CACHE.popitem(last=False)
    return cached


def _resume(state: List[int]) -> SHA256:
    """A SHA-256 stream positioned just after one absorbed pad block."""
    h = SHA256()
    h._h = list(state)
    h._length = _BLOCK
    return h


def _fast_states(key: bytes):
    cached = _FAST_CACHE.get(key)
    if cached is not None:
        _FAST_CACHE.move_to_end(key)
        return cached
    padded = _padded_key(key)
    inner = hashlib.sha256(bytes(b ^ 0x36 for b in padded))
    outer = hashlib.sha256(bytes(b ^ 0x5C for b in padded))
    cached = (inner, outer)
    _FAST_CACHE[key] = cached
    while len(_FAST_CACHE) > _STATE_CACHE_MAX:
        _FAST_CACHE.popitem(last=False)
    return cached


def hmac_sha256(key: bytes, message: bytes) -> bytes:
    """Compute HMAC-SHA256(key, message)."""
    if HASHLIB_BACKED:
        inner0, outer0 = _fast_states(bytes(key))
        inner = inner0.copy()
        inner.update(message)
        outer = outer0.copy()
        outer.update(inner.digest())
        return outer.digest()
    return hmac_sha256_reference(key, message)


def hmac_sha256_reference(key: bytes, message: bytes) -> bytes:
    """The from-scratch HMAC path (equivalence baseline for the fast one)."""
    inner_state, outer_state = _keyed_states(bytes(key))
    inner = _resume(inner_state).update(message).digest()
    return _resume(outer_state).update(inner).digest()


def consttime_eq(a: bytes, b: bytes) -> bool:
    """Constant-time byte-string comparison (``compare_digest``-style).

    The fold always walks every byte of ``a``: a mismatch — including a
    length mismatch — changes the verdict, never the amount of work, so
    the comparison leaks nothing about *where* two tags diverge.
    """
    if len(a) == len(b):
        diff = 0
        other = b
    else:
        diff = 1
        other = a  # keep the fold length independent of the mismatch
    for x, y in zip(a, other):
        diff |= x ^ y
    return diff == 0


def verify_hmac(key: bytes, message: bytes, tag: bytes) -> bool:
    """Constant-time comparison of an HMAC tag."""
    return consttime_eq(hmac_sha256(key, message), tag)


def prf(key: bytes, *parts: bytes, out_len: int = 32) -> bytes:
    """Pseudo-random function used for key/tweak derivation.

    Domain-separates the variable-length ``parts`` with length prefixes and
    expands to ``out_len`` bytes in counter mode over HMAC.
    """
    message = b"".join(len(p).to_bytes(4, "big") + p for p in parts)
    out = b""
    counter = 0
    while len(out) < out_len:
        out += hmac_sha256(key, counter.to_bytes(4, "big") + message)
        counter += 1
    return out[:out_len]
