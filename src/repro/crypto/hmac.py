"""HMAC keyed hash (RFC 2104) over the from-scratch SHA-256.

The General Instrument patent (survey Figure 5) authenticates data coming
from external memory with "a keyed hash algorithm"; this is that algorithm
in the reproduction, and it also backs the PRF used for key derivation.
"""

from __future__ import annotations

from .sha256 import SHA256, sha256

__all__ = ["hmac_sha256", "verify_hmac", "prf"]

_BLOCK = 64


def hmac_sha256(key: bytes, message: bytes) -> bytes:
    """Compute HMAC-SHA256(key, message)."""
    if len(key) > _BLOCK:
        key = sha256(key)
    key = key.ljust(_BLOCK, b"\x00")
    ipad = bytes(b ^ 0x36 for b in key)
    opad = bytes(b ^ 0x5C for b in key)
    inner = SHA256(ipad).update(message).digest()
    return SHA256(opad).update(inner).digest()


def verify_hmac(key: bytes, message: bytes, tag: bytes) -> bool:
    """Constant-time-style comparison of an HMAC tag."""
    expected = hmac_sha256(key, message)
    if len(tag) != len(expected):
        return False
    diff = 0
    for a, b in zip(expected, tag):
        diff |= a ^ b
    return diff == 0


def prf(key: bytes, *parts: bytes, out_len: int = 32) -> bytes:
    """Pseudo-random function used for key/tweak derivation.

    Domain-separates the variable-length ``parts`` with length prefixes and
    expands to ``out_len`` bytes in counter mode over HMAC.
    """
    message = b"".join(len(p).to_bytes(4, "big") + p for p in parts)
    out = b""
    counter = 0
    while len(out) < out_len:
        out += hmac_sha256(key, counter.to_bytes(4, "big") + message)
        counter += 1
    return out[:out_len]
