"""Block-cipher modes of operation: ECB, CBC, CTR, OFB, CFB.

Section 2.2 of the survey hinges on the properties these modes give a bus
encryption unit:

* **ECB** — "a same data will be ciphered to the same value", the mode's main
  weakness; demonstrated by :mod:`repro.attacks.ecb_analysis`.
* **CBC** — robust, but each block depends on the previous one, which defeats
  random access ("JUMP instructions"); the General Instrument engine (E08)
  chains the whole image, AEGIS (E11) chains only within one cache line.
* **CTR** — a block cipher turned stream cipher; the pad is *seekable* by
  block index, which is exactly what a pad-ahead bus engine needs (E02).

All modes operate on any object exposing ``block_size``/``encrypt_block``/
``decrypt_block`` (DES, TripleDES, AES, the small Feistel ciphers...).
"""

from __future__ import annotations

from typing import List, Protocol

from . import kernels

__all__ = ["BlockCipher", "ECB", "CBC", "CTR", "OFB", "CFB", "xor_bytes"]


class BlockCipher(Protocol):
    """Structural interface every repro cipher implements."""

    block_size: int

    def encrypt_block(self, block: bytes) -> bytes: ...

    def decrypt_block(self, block: bytes) -> bytes: ...


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """XOR two equal-length byte strings."""
    if len(a) != len(b):
        raise ValueError(f"length mismatch: {len(a)} vs {len(b)}")
    return (
        int.from_bytes(a, "big") ^ int.from_bytes(b, "big")
    ).to_bytes(len(a), "big")


def _split_blocks(data: bytes, block_size: int) -> List[bytes]:
    if len(data) % block_size != 0:
        raise ValueError(
            f"data length {len(data)} is not a multiple of block size {block_size}"
        )
    return [data[i: i + block_size] for i in range(0, len(data), block_size)]


class ECB:
    """Electronic codebook: each block enciphered independently."""

    def __init__(self, cipher: BlockCipher):
        self.cipher = cipher
        self.block_size = cipher.block_size

    def encrypt(self, plaintext: bytes) -> bytes:
        _split_blocks(plaintext, self.block_size)
        return kernels.encrypt_blocks(self.cipher, plaintext)

    def decrypt(self, ciphertext: bytes) -> bytes:
        _split_blocks(ciphertext, self.block_size)
        return kernels.decrypt_blocks(self.cipher, ciphertext)


class CBC:
    """Cipher block chaining: C_i = E(P_i xor C_{i-1}), C_0 = IV."""

    def __init__(self, cipher: BlockCipher, iv: bytes):
        if len(iv) != cipher.block_size:
            raise ValueError(
                f"IV must be {cipher.block_size} bytes, got {len(iv)}"
            )
        self.cipher = cipher
        self.block_size = cipher.block_size
        self.iv = iv

    def encrypt(self, plaintext: bytes) -> bytes:
        # The chain is inherently serial (C_i feeds C_{i+1}); the kernel
        # still accelerates each block encryption.
        enc = (kernels.kernel_for(self.cipher) or self.cipher).encrypt_block
        prev = self.iv
        out = []
        for block in _split_blocks(plaintext, self.block_size):
            prev = enc(xor_bytes(block, prev))
            out.append(prev)
        return b"".join(out)

    def decrypt(self, ciphertext: bytes) -> bytes:
        # Decryption has no chain dependency: batch-decrypt every block,
        # then XOR with the shifted ciphertext in one pass.
        _split_blocks(ciphertext, self.block_size)
        if not ciphertext:
            return b""
        decrypted = kernels.decrypt_blocks(self.cipher, ciphertext)
        return xor_bytes(decrypted, self.iv + ciphertext[:-self.block_size])


class CTR:
    """Counter mode; the keystream is addressable by block index.

    The counter block is ``nonce || counter`` where the counter occupies the
    low ``counter_bytes`` bytes, big endian.  ``keystream_block(i)`` exposes
    random access, which the stream bus engines rely on.
    """

    def __init__(self, cipher: BlockCipher, nonce: bytes, counter_bytes: int = 4):
        if counter_bytes >= cipher.block_size:
            raise ValueError("counter must be narrower than the cipher block")
        if len(nonce) != cipher.block_size - counter_bytes:
            raise ValueError(
                f"nonce must be {cipher.block_size - counter_bytes} bytes, "
                f"got {len(nonce)}"
            )
        self.cipher = cipher
        self.block_size = cipher.block_size
        self.nonce = nonce
        self.counter_bytes = counter_bytes
        # Wrapping the counter would silently reuse keystream (or, worse,
        # bleed into the nonce field); refuse indices outside the space.
        self._counter_limit = 1 << (8 * counter_bytes)

    def _counter_block(self, index: int) -> bytes:
        if not 0 <= index < self._counter_limit:
            raise ValueError(
                f"counter block index {index} outside [0, "
                f"{self._counter_limit}): keystream would wrap"
            )
        return self.nonce + index.to_bytes(self.counter_bytes, "big")

    def keystream_block(self, index: int) -> bytes:
        """Return keystream block ``index`` (seekable — no chaining state)."""
        return self.cipher.encrypt_block(self._counter_block(index))

    def keystream(self, nbytes: int, start_block: int = 0) -> bytes:
        nblocks = -(-nbytes // self.block_size)
        counters = b"".join(
            self._counter_block(start_block + i) for i in range(nblocks)
        )
        return kernels.encrypt_blocks(self.cipher, counters)[:nbytes]

    def encrypt(self, plaintext: bytes, start_block: int = 0) -> bytes:
        return xor_bytes(plaintext, self.keystream(len(plaintext), start_block))

    # CTR decryption is encryption.
    decrypt = encrypt


class OFB:
    """Output feedback: keystream S_i = E(S_{i-1}), S_0 = IV."""

    def __init__(self, cipher: BlockCipher, iv: bytes):
        if len(iv) != cipher.block_size:
            raise ValueError(
                f"IV must be {cipher.block_size} bytes, got {len(iv)}"
            )
        self.cipher = cipher
        self.block_size = cipher.block_size
        self.iv = iv

    def keystream(self, nbytes: int) -> bytes:
        # The feedback loop is serial by construction; the kernel still
        # accelerates each block encryption.
        enc = (kernels.kernel_for(self.cipher) or self.cipher).encrypt_block
        state = self.iv
        out = []
        total = 0
        while total < nbytes:
            state = enc(state)
            out.append(state)
            total += len(state)
        return b"".join(out)[:nbytes]

    def encrypt(self, plaintext: bytes) -> bytes:
        return xor_bytes(plaintext, self.keystream(len(plaintext)))

    decrypt = encrypt


class CFB:
    """Full-block cipher feedback: C_i = P_i xor E(C_{i-1})."""

    def __init__(self, cipher: BlockCipher, iv: bytes):
        if len(iv) != cipher.block_size:
            raise ValueError(
                f"IV must be {cipher.block_size} bytes, got {len(iv)}"
            )
        self.cipher = cipher
        self.block_size = cipher.block_size
        self.iv = iv

    def encrypt(self, plaintext: bytes) -> bytes:
        enc = (kernels.kernel_for(self.cipher) or self.cipher).encrypt_block
        prev = self.iv
        out = []
        for block in _split_blocks(plaintext, self.block_size):
            prev = xor_bytes(block, enc(prev))
            out.append(prev)
        return b"".join(out)

    def decrypt(self, ciphertext: bytes) -> bytes:
        # Each pad block is E(C_{i-1}), all known up front: batch-encrypt
        # the shifted ciphertext and XOR in one pass.
        _split_blocks(ciphertext, self.block_size)
        if not ciphertext:
            return b""
        pads = kernels.encrypt_blocks(
            self.cipher, self.iv + ciphertext[:-self.block_size]
        )
        return xor_bytes(ciphertext, pads)
