"""RSA public-key cryptography, from scratch.

Figure 1 of the survey establishes the session key K over an insecure
channel with an asymmetric algorithm: the chip manufacturer's public key
(E_m) encrypts K, only the on-chip private key (D_m) can recover it.  This
module implements RSA key generation (Miller-Rabin primality), raw modular
exponentiation, and a simple randomized padding so equal plaintexts do not
produce equal ciphertexts.

Section 2.2's rationale for excluding asymmetric algorithms from the bus
path — modular exponentiation on 512-2048-bit integers costs far more than a
block cipher, and ciphertext is longer than plaintext — is measured in E01
using the ``modmul_count`` operation counter this module maintains.
"""

from __future__ import annotations

from dataclasses import dataclass

from .drbg import DRBG

__all__ = ["RSAKeyPair", "RSAPublicKey", "RSAPrivateKey", "generate_keypair",
           "is_probable_prime"]

_SMALL_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
]


def is_probable_prime(n: int, rng: DRBG, rounds: int = 20) -> bool:
    """Miller-Rabin probabilistic primality test."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = 2 + rng.randbelow(n - 3)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def _random_prime(bits: int, rng: DRBG) -> int:
    while True:
        candidate = rng.randbits(bits) | (1 << (bits - 1)) | 1
        if is_probable_prime(candidate, rng):
            return candidate


@dataclass
class RSAPublicKey:
    """Public half (n, e); counts modular multiplications for cost modeling."""

    n: int
    e: int
    modmul_count: int = 0

    @property
    def modulus_bytes(self) -> int:
        return (self.n.bit_length() + 7) // 8

    def encrypt_int(self, m: int) -> int:
        if not 0 <= m < self.n:
            raise ValueError("message representative out of range")
        # Square-and-multiply cost: one squaring per exponent bit plus one
        # multiply per set bit.
        self.modmul_count += self.e.bit_length() + bin(self.e).count("1") - 2
        return pow(m, self.e, self.n)

    def encrypt(self, message: bytes, rng: DRBG) -> bytes:
        """Encrypt with random left padding: 0x02 || random non-zero || 0x00 || m."""
        k = self.modulus_bytes
        if len(message) > k - 11:
            raise ValueError(
                f"message too long: {len(message)} > {k - 11} bytes for "
                f"{self.n.bit_length()}-bit modulus"
            )
        pad_len = k - len(message) - 3
        pad = bytearray()
        while len(pad) < pad_len:
            b = rng.randbits(8)
            if b != 0:
                pad.append(b)
        block = b"\x00\x02" + bytes(pad) + b"\x00" + message
        c = self.encrypt_int(int.from_bytes(block, "big"))
        return c.to_bytes(k, "big")


@dataclass
class RSAPrivateKey:
    """Private half with CRT parameters; counts modular multiplications."""

    n: int
    d: int
    p: int
    q: int
    modmul_count: int = 0

    @property
    def modulus_bytes(self) -> int:
        return (self.n.bit_length() + 7) // 8

    def decrypt_int(self, c: int) -> int:
        if not 0 <= c < self.n:
            raise ValueError("ciphertext representative out of range")
        self.modmul_count += self.d.bit_length() + bin(self.d).count("1") - 2
        return pow(c, self.d, self.n)

    def decrypt(self, ciphertext: bytes) -> bytes:
        k = self.modulus_bytes
        if len(ciphertext) != k:
            raise ValueError(
                f"ciphertext must be {k} bytes, got {len(ciphertext)}"
            )
        m = self.decrypt_int(int.from_bytes(ciphertext, "big"))
        block = m.to_bytes(k, "big")
        if block[0:2] != b"\x00\x02":
            raise ValueError("decryption error: bad padding header")
        sep = block.find(b"\x00", 2)
        if sep < 0:
            raise ValueError("decryption error: missing separator")
        return block[sep + 1:]


@dataclass
class RSAKeyPair:
    public: RSAPublicKey
    private: RSAPrivateKey


def generate_keypair(bits: int, rng: DRBG, e: int = 65537) -> RSAKeyPair:
    """Generate an RSA key pair with an n of approximately ``bits`` bits."""
    if bits < 128:
        raise ValueError(f"modulus too small to be meaningful: {bits} bits")
    while True:
        p = _random_prime(bits // 2, rng)
        q = _random_prime(bits - bits // 2, rng)
        if p == q:
            continue
        n = p * q
        phi = (p - 1) * (q - 1)
        if phi % e == 0:
            continue
        d = pow(e, -1, phi)
        return RSAKeyPair(
            public=RSAPublicKey(n=n, e=e),
            private=RSAPrivateKey(n=n, d=d, p=p, q=q),
        )
