"""RC4 stream cipher.

Named in the survey's introduction as the canonical stream cipher example.
Serves as one of the keystream generators available to the stream bus
engine (Figure 2a); its non-seekable keystream is exactly the property the
pad-ahead engines must design around (CTR mode is seekable, RC4 is not).
"""

from __future__ import annotations

__all__ = ["RC4"]


class RC4:
    """RC4 with the standard KSA/PRGA.

    >>> RC4(b'Key').keystream(5).hex()
    'eb9f7781b7'
    """

    def __init__(self, key: bytes):
        if not 1 <= len(key) <= 256:
            raise ValueError(f"RC4 key must be 1-256 bytes, got {len(key)}")
        s = list(range(256))
        j = 0
        for i in range(256):
            j = (j + s[i] + key[i % len(key)]) % 256
            s[i], s[j] = s[j], s[i]
        self._s = s
        self._i = 0
        self._j = 0

    def keystream(self, nbytes: int) -> bytes:
        """Generate the next ``nbytes`` of keystream (stateful)."""
        s = self._s
        i, j = self._i, self._j
        out = bytearray()
        for _ in range(nbytes):
            i = (i + 1) % 256
            j = (j + s[i]) % 256
            s[i], s[j] = s[j], s[i]
            out.append(s[(s[i] + s[j]) % 256])
        self._i, self._j = i, j
        return bytes(out)

    def process(self, data: bytes) -> bytes:
        """Encrypt or decrypt ``data`` (XOR with keystream)."""
        stream = self.keystream(len(data))
        return bytes(a ^ b for a, b in zip(data, stream))
