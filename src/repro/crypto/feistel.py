"""Generic small-block tweakable Feistel cipher.

The Dallas DS5002FP (survey Figure 6 and the Kuhn attack of Section 2.3)
enciphers external memory *byte by byte*, with the transformation depending
on the byte's address.  That is a tweakable 8-bit block cipher.  No standard
cipher has an 8-bit block, so this module provides a balanced Feistel network
with a configurable block width whose round keys are derived from
(key, tweak) through the HMAC-SHA256 PRF.

With ``block_bits=8`` this reproduces the DS5002FP's security level exactly:
whatever the key, an 8-bit block admits only 256 ciphertext values per
address, which is what Kuhn's cipher-instruction-search attack exploits
(E05).  With ``block_bits=64`` it stands in for the DS5240's DES-strength
successor when speed matters more than DES fidelity.
"""

from __future__ import annotations

from typing import List

from .hmac import prf

__all__ = ["TweakableFeistel", "SmallBlockCipher"]


class TweakableFeistel:
    """Balanced Feistel network on ``block_bits`` bits with a tweak.

    ``block_bits`` must be even.  The round function is a keyed PRF lookup:
    round keys are expanded once per (key, tweak) pair and cached, so
    enciphering many bytes at the same address is cheap.
    """

    def __init__(self, key: bytes, block_bits: int = 8, rounds: int = 8):
        if block_bits % 2 != 0 or block_bits < 2:
            raise ValueError(f"block_bits must be even and >= 2, got {block_bits}")
        if rounds < 2:
            raise ValueError(f"rounds must be >= 2, got {rounds}")
        self.key = key
        self.block_bits = block_bits
        self.half_bits = block_bits // 2
        self.rounds = rounds
        self.block_size = max(1, block_bits // 8)
        self._half_mask = (1 << self.half_bits) - 1
        # Per-key base round keys derived once through the PRF; per-tweak
        # round keys are a cheap keyed integer mix of these (byte-granular
        # engines derive keys for every address, so this path must be fast).
        material = prf(key, b"feistel-base", out_len=8 * rounds)
        self._base_keys = [
            int.from_bytes(material[8 * i: 8 * i + 8], "big")
            for i in range(rounds)
        ]
        self._round_key_cache: dict = {}

    @staticmethod
    def _mix64(x: int) -> int:
        """splitmix64 finalizer: fast, well-distributed 64-bit mixing."""
        x &= 0xFFFFFFFFFFFFFFFF
        x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9 & 0xFFFFFFFFFFFFFFFF
        x = (x ^ (x >> 27)) * 0x94D049BB133111EB & 0xFFFFFFFFFFFFFFFF
        return x ^ (x >> 31)

    def _round_keys(self, tweak: int) -> List[int]:
        cached = self._round_key_cache.get(tweak)
        if cached is not None:
            return cached
        keys = [
            self._mix64(base ^ (tweak * 0x9E3779B97F4A7C15)) & 0xFFFFFFFF
            for base in self._base_keys
        ]
        # Bound the cache: bus traces touch many addresses.
        if len(self._round_key_cache) < 1 << 17:
            self._round_key_cache[tweak] = keys
        return keys

    def _round_function(self, half: int, round_key: int) -> int:
        # A small keyed mixing function; need not be cryptographically deep
        # for the model, only key- and tweak-dependent and nonlinear.
        x = (half ^ round_key) & 0xFFFFFFFF
        x = (x * 0x9E3779B1 + 0x7F4A7C15) & 0xFFFFFFFF
        x ^= x >> 15
        x = (x * 0x85EBCA77) & 0xFFFFFFFF
        x ^= x >> 13
        return x & self._half_mask

    def encrypt_int(self, value: int, tweak: int = 0) -> int:
        """Encrypt an integer of ``block_bits`` bits under ``tweak``."""
        keys = self._round_keys(tweak)
        left = (value >> self.half_bits) & self._half_mask
        right = value & self._half_mask
        for rk in keys:
            left, right = right, left ^ self._round_function(right, rk)
        return (right << self.half_bits) | left

    def decrypt_int(self, value: int, tweak: int = 0) -> int:
        """Invert :meth:`encrypt_int`."""
        keys = self._round_keys(tweak)
        right = (value >> self.half_bits) & self._half_mask
        left = value & self._half_mask
        for rk in reversed(keys):
            left, right = right ^ self._round_function(left, rk), left
        return (left << self.half_bits) | right

    # Byte-oriented interface for mode compatibility (tweak fixed to 0).

    def encrypt_block(self, block: bytes) -> bytes:
        if len(block) != self.block_size:
            raise ValueError(
                f"block must be {self.block_size} bytes, got {len(block)}"
            )
        value = self.encrypt_int(int.from_bytes(block, "big"))
        return value.to_bytes(self.block_size, "big")

    def decrypt_block(self, block: bytes) -> bytes:
        if len(block) != self.block_size:
            raise ValueError(
                f"block must be {self.block_size} bytes, got {len(block)}"
            )
        value = self.decrypt_int(int.from_bytes(block, "big"))
        return value.to_bytes(self.block_size, "big")


class SmallBlockCipher:
    """Address-tweaked byte cipher in the DS5002FP style.

    ``encrypt_byte(addr, b)`` enciphers ``b`` with the address as tweak, so a
    given plaintext byte maps to a fixed ciphertext byte *per address* —
    which is both how the real part behaved and why 256-way exhaustive search
    per address breaks it.
    """

    def __init__(self, key: bytes, rounds: int = 8):
        self._feistel = TweakableFeistel(key, block_bits=8, rounds=rounds)

    def encrypt_byte(self, addr: int, value: int) -> int:
        if not 0 <= value <= 0xFF:
            raise ValueError(f"byte out of range: {value}")
        return self._feistel.encrypt_int(value, tweak=addr)

    def decrypt_byte(self, addr: int, value: int) -> int:
        if not 0 <= value <= 0xFF:
            raise ValueError(f"byte out of range: {value}")
        return self._feistel.decrypt_int(value, tweak=addr)

    def encrypt(self, base_addr: int, data: bytes) -> bytes:
        return bytes(
            self.encrypt_byte(base_addr + i, b) for i, b in enumerate(data)
        )

    def decrypt(self, base_addr: int, data: bytes) -> bytes:
        return bytes(
            self.decrypt_byte(base_addr + i, b) for i, b in enumerate(data)
        )
