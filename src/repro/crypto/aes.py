"""AES-128/192/256, implemented from scratch per FIPS 197.

The survey's two academic engines (XOM [13] and AEGIS [14]) are built on
pipelined AES hardware.  This module provides the functional transformation;
the hardware pipeline timing (XOM's 14-cycle latency, one block per cycle) is
modeled in :mod:`repro.sim.pipeline` and the engines in :mod:`repro.core`.

The S-box is *derived* (multiplicative inverse in GF(2^8) followed by the
affine transform) rather than pasted in, so the table itself is covered by
the algebraic tests in ``tests/test_aes.py``.
"""

from __future__ import annotations

from typing import List, Tuple

__all__ = ["AES", "SBOX", "INV_SBOX", "gf_mul"]


def gf_mul(a: int, b: int) -> int:
    """Multiply two elements of GF(2^8) modulo the AES polynomial x^8+x^4+x^3+x+1."""
    result = 0
    for _ in range(8):
        if b & 1:
            result ^= a
        b >>= 1
        carry = a & 0x80
        a = (a << 1) & 0xFF
        if carry:
            a ^= 0x1B
    return result


def _build_sbox() -> Tuple[List[int], List[int]]:
    """Construct the AES S-box from GF(2^8) inverses and the affine transform."""
    # Exponent/log tables over generator 3 give O(1) inverses.
    exp = [0] * 256
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        x = gf_mul(x, 3)
    exp[255] = exp[0]

    def inverse(v: int) -> int:
        if v == 0:
            return 0
        return exp[255 - log[v]]

    sbox = [0] * 256
    inv_sbox = [0] * 256
    for value in range(256):
        inv = inverse(value)
        # Affine transform: b ^ rotl(b,1) ^ rotl(b,2) ^ rotl(b,3) ^ rotl(b,4) ^ 0x63
        b = inv
        res = 0x63
        for shift in range(5):
            res ^= ((b << shift) | (b >> (8 - shift))) & 0xFF
        sbox[value] = res
        inv_sbox[res] = value
    return sbox, inv_sbox


SBOX, INV_SBOX = _build_sbox()

_RCON = [0x01]
while len(_RCON) < 14:
    _RCON.append(gf_mul(_RCON[-1], 2))


class AES:
    """AES block cipher with 128-, 192- or 256-bit keys.

    >>> key = bytes(range(16))
    >>> pt = bytes.fromhex('00112233445566778899aabbccddeeff')
    >>> AES(bytes.fromhex('000102030405060708090a0b0c0d0e0f')).encrypt_block(pt).hex()
    '69c4e0d86a7b0430d8cdb78070b4c55a'
    """

    block_size = 16

    def __init__(self, key: bytes):
        if len(key) not in (16, 24, 32):
            raise ValueError(f"AES key must be 16, 24 or 32 bytes, got {len(key)}")
        self.key_size = len(key)
        self._rounds = {16: 10, 24: 12, 32: 14}[len(key)]
        self._round_keys = self._expand_key(key)

    def _expand_key(self, key: bytes) -> List[List[int]]:
        """FIPS 197 key expansion; returns one 16-byte round key per round + 1."""
        nk = len(key) // 4
        words = [list(key[4 * i: 4 * i + 4]) for i in range(nk)]
        total_words = 4 * (self._rounds + 1)
        for i in range(nk, total_words):
            temp = list(words[i - 1])
            if i % nk == 0:
                temp = temp[1:] + temp[:1]
                temp = [SBOX[b] for b in temp]
                temp[0] ^= _RCON[i // nk - 1]
            elif nk > 6 and i % nk == 4:
                temp = [SBOX[b] for b in temp]
            words.append([words[i - nk][j] ^ temp[j] for j in range(4)])
        return [
            sum((words[4 * r + c] for c in range(4)), [])
            for r in range(self._rounds + 1)
        ]

    # -- round primitives (state is a flat list of 16 bytes, column major as
    #    in FIPS 197: state[r + 4*c]) ------------------------------------

    @staticmethod
    def _add_round_key(state: List[int], rk: List[int]) -> None:
        for i in range(16):
            state[i] ^= rk[i]

    @staticmethod
    def _sub_bytes(state: List[int]) -> None:
        for i in range(16):
            state[i] = SBOX[state[i]]

    @staticmethod
    def _inv_sub_bytes(state: List[int]) -> None:
        for i in range(16):
            state[i] = INV_SBOX[state[i]]

    @staticmethod
    def _shift_rows(state: List[int]) -> None:
        for r in range(1, 4):
            row = [state[r + 4 * c] for c in range(4)]
            row = row[r:] + row[:r]
            for c in range(4):
                state[r + 4 * c] = row[c]

    @staticmethod
    def _inv_shift_rows(state: List[int]) -> None:
        for r in range(1, 4):
            row = [state[r + 4 * c] for c in range(4)]
            row = row[-r:] + row[:-r]
            for c in range(4):
                state[r + 4 * c] = row[c]

    @staticmethod
    def _mix_columns(state: List[int]) -> None:
        for c in range(4):
            col = state[4 * c: 4 * c + 4]
            state[4 * c + 0] = gf_mul(col[0], 2) ^ gf_mul(col[1], 3) ^ col[2] ^ col[3]
            state[4 * c + 1] = col[0] ^ gf_mul(col[1], 2) ^ gf_mul(col[2], 3) ^ col[3]
            state[4 * c + 2] = col[0] ^ col[1] ^ gf_mul(col[2], 2) ^ gf_mul(col[3], 3)
            state[4 * c + 3] = gf_mul(col[0], 3) ^ col[1] ^ col[2] ^ gf_mul(col[3], 2)

    @staticmethod
    def _inv_mix_columns(state: List[int]) -> None:
        for c in range(4):
            col = state[4 * c: 4 * c + 4]
            state[4 * c + 0] = (gf_mul(col[0], 14) ^ gf_mul(col[1], 11)
                                ^ gf_mul(col[2], 13) ^ gf_mul(col[3], 9))
            state[4 * c + 1] = (gf_mul(col[0], 9) ^ gf_mul(col[1], 14)
                                ^ gf_mul(col[2], 11) ^ gf_mul(col[3], 13))
            state[4 * c + 2] = (gf_mul(col[0], 13) ^ gf_mul(col[1], 9)
                                ^ gf_mul(col[2], 14) ^ gf_mul(col[3], 11))
            state[4 * c + 3] = (gf_mul(col[0], 11) ^ gf_mul(col[1], 13)
                                ^ gf_mul(col[2], 9) ^ gf_mul(col[3], 14))

    # -- public API ------------------------------------------------------

    def encrypt_block(self, block: bytes) -> bytes:
        if len(block) != 16:
            raise ValueError(f"AES block must be 16 bytes, got {len(block)}")
        state = list(block)
        self._add_round_key(state, self._round_keys[0])
        for rnd in range(1, self._rounds):
            self._sub_bytes(state)
            self._shift_rows(state)
            self._mix_columns(state)
            self._add_round_key(state, self._round_keys[rnd])
        self._sub_bytes(state)
        self._shift_rows(state)
        self._add_round_key(state, self._round_keys[self._rounds])
        return bytes(state)

    def decrypt_block(self, block: bytes) -> bytes:
        if len(block) != 16:
            raise ValueError(f"AES block must be 16 bytes, got {len(block)}")
        state = list(block)
        self._add_round_key(state, self._round_keys[self._rounds])
        for rnd in range(self._rounds - 1, 0, -1):
            self._inv_shift_rows(state)
            self._inv_sub_bytes(state)
            self._add_round_key(state, self._round_keys[rnd])
            self._inv_mix_columns(state)
        self._inv_shift_rows(state)
        self._inv_sub_bytes(state)
        self._add_round_key(state, self._round_keys[0])
        return bytes(state)
