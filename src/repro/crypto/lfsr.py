"""Linear-feedback shift registers and LFSR-based keystream generators.

The survey (Section 4) notes that a CPU-cache stream cipher needs a keystream
that is cheap to produce in hardware yet "sufficiently random to be secure".
LFSRs are the classic hardware answer; this module provides:

* :class:`LFSR` — a Fibonacci LFSR over GF(2) with arbitrary taps;
* :class:`GeffeGenerator` — the classic 3-LFSR nonlinear combiner, a
  realistic stand-in for a hardware keystream unit (and a teachable one: its
  correlation weakness is measured in the security analysis);
* :class:`AlternatingStepGenerator` — a stronger clock-controlled combiner.

All generators expose ``keystream(nbytes)`` so they are interchangeable with
:class:`repro.crypto.rc4.RC4` in the stream engine.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["LFSR", "GeffeGenerator", "AlternatingStepGenerator", "MAXIMAL_TAPS"]

# Known maximal-length tap sets (polynomial exponents) for common widths.
MAXIMAL_TAPS = {
    8: (8, 6, 5, 4),
    16: (16, 15, 13, 4),
    17: (17, 14),
    23: (23, 18),
    25: (25, 22),
    31: (31, 28),
    32: (32, 22, 2, 1),
}


class LFSR:
    """Fibonacci LFSR over GF(2).

    ``taps`` are polynomial exponents, e.g. ``(16, 15, 13, 4)`` for
    x^16 + x^15 + x^13 + x^4 + 1.  The register width is ``max(taps)``.
    The output bit is the register's least-significant bit.
    """

    def __init__(self, taps: Sequence[int], seed: int):
        if not taps:
            raise ValueError("taps must be non-empty")
        self.width = max(taps)
        self.taps = tuple(sorted(set(taps), reverse=True))
        mask = (1 << self.width) - 1
        self.state = seed & mask
        if self.state == 0:
            raise ValueError("LFSR seed must be non-zero")
        self._mask = mask

    def step(self) -> int:
        """Advance one step; return the output bit."""
        out = self.state & 1
        feedback = 0
        for t in self.taps:
            feedback ^= (self.state >> (self.width - t)) & 1
        self.state = (self.state >> 1) | (feedback << (self.width - 1))
        return out

    def bits(self, n: int) -> list:
        return [self.step() for _ in range(n)]

    def period(self, limit: int = 1 << 20) -> int:
        """Measure the cycle length from the current state (up to ``limit``)."""
        start = self.state
        count = 0
        while count < limit:
            self.step()
            count += 1
            if self.state == start:
                return count
        return limit


def _bits_to_bytes(bits: Sequence[int]) -> bytes:
    out = bytearray()
    for i in range(0, len(bits) - 7, 8):
        byte = 0
        for b in bits[i: i + 8]:
            byte = (byte << 1) | b
        out.append(byte)
    return bytes(out)


class GeffeGenerator:
    """Geffe generator: out = (a & b) ^ (~a & c) over three LFSRs.

    Cheap in gates, but the output correlates 75% with LFSR ``b`` and with
    LFSR ``c`` — the textbook correlation attack target.  Used in E06/E12 to
    quantify "cheap keystream" security.
    """

    def __init__(self, seed_a: int, seed_b: int, seed_c: int,
                 taps_a: Sequence[int] = MAXIMAL_TAPS[17],
                 taps_b: Sequence[int] = MAXIMAL_TAPS[23],
                 taps_c: Sequence[int] = MAXIMAL_TAPS[25]):
        self.a = LFSR(taps_a, seed_a)
        self.b = LFSR(taps_b, seed_b)
        self.c = LFSR(taps_c, seed_c)

    def step(self) -> int:
        a, b, c = self.a.step(), self.b.step(), self.c.step()
        return (a & b) ^ ((a ^ 1) & c)

    def keystream(self, nbytes: int) -> bytes:
        return _bits_to_bytes([self.step() for _ in range(8 * nbytes)])


class AlternatingStepGenerator:
    """Alternating step generator: a control LFSR clocks one of two others."""

    def __init__(self, seed_control: int, seed_a: int, seed_b: int):
        self.control = LFSR(MAXIMAL_TAPS[17], seed_control)
        self.a = LFSR(MAXIMAL_TAPS[23], seed_a)
        self.b = LFSR(MAXIMAL_TAPS[25], seed_b)
        self._last_a = self.a.state & 1
        self._last_b = self.b.state & 1

    def step(self) -> int:
        if self.control.step():
            self._last_a = self.a.step()
        else:
            self._last_b = self.b.step()
        return self._last_a ^ self._last_b

    def keystream(self, nbytes: int) -> bytes:
        return _bits_to_bytes([self.step() for _ in range(8 * nbytes)])
