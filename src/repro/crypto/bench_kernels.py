"""Microbenchmark + equivalence sanity for the cipher kernels.

Run as ``python -m repro.crypto.bench_kernels``.  Two jobs:

1. **Equivalence**: every kernel is checked bit-for-bit against its
   reference cipher on random blocks (encrypt and decrypt, every key
   size).  Any mismatch makes the process exit non-zero, which is what
   ``make kernels-smoke`` relies on.
2. **Timing**: per-block throughput of the reference loop vs the batched
   kernel path, reported as a small table with the speedup factor.

``--quick`` shrinks both jobs to a CI-friendly sanity run.
"""

from __future__ import annotations

import argparse
import random
import sys
import time
from typing import Callable, List, Tuple

from .aes import AES
from .des import DES, TripleDES
from .kernels import AESKernel, DESKernel, TripleDESKernel

_CASES: List[Tuple[str, int, Callable, Callable]] = [
    ("aes-128", 16, lambda k: AES(k), lambda k: AESKernel(k)),
    ("aes-192", 24, lambda k: AES(k), lambda k: AESKernel(k)),
    ("aes-256", 32, lambda k: AES(k), lambda k: AESKernel(k)),
    ("des", 8, lambda k: DES(k), lambda k: DESKernel(k)),
    ("3des-ede2", 16, lambda k: TripleDES(k), lambda k: TripleDESKernel(k)),
    ("3des-ede3", 24, lambda k: TripleDES(k), lambda k: TripleDESKernel(k)),
]


def check_equivalence(blocks_per_key: int, seed: int = 0x5EED) -> List[str]:
    """Random-block equivalence sweep; returns a list of failure strings."""
    rng = random.Random(seed)
    failures = []
    for name, key_len, make_ref, make_kernel in _CASES:
        key = bytes(rng.randrange(256) for _ in range(key_len))
        ref = make_ref(key)
        kernel = make_kernel(key)
        size = ref.block_size
        data = bytes(
            rng.randrange(256) for _ in range(size * blocks_per_key)
        )
        expected_ct = b"".join(
            ref.encrypt_block(data[i: i + size])
            for i in range(0, len(data), size)
        )
        if kernel.encrypt_blocks(data) != expected_ct:
            failures.append(f"{name}: encrypt mismatch")
        if kernel.decrypt_blocks(expected_ct) != data:
            failures.append(f"{name}: decrypt mismatch")
    return failures


def _throughput(crypt: Callable[[], object], repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        crypt()
        best = min(best, time.perf_counter() - start)
    return best


def bench(nblocks: int, repeats: int = 3) -> List[dict]:
    """Reference-loop vs kernel-batch timing; returns one row per cipher."""
    rows = []
    rng = random.Random(0xBE7C)
    for name, key_len, make_ref, make_kernel in _CASES:
        key = bytes(rng.randrange(256) for _ in range(key_len))
        ref = make_ref(key)
        kernel = make_kernel(key)
        size = ref.block_size
        data = bytes(rng.randrange(256) for _ in range(size * nblocks))

        def ref_loop():
            return b"".join(
                ref.encrypt_block(data[i: i + size])
                for i in range(0, len(data), size)
            )

        ref_s = _throughput(ref_loop, repeats)
        kern_s = _throughput(lambda: kernel.encrypt_blocks(data), repeats)
        rows.append({
            "cipher": name,
            "blocks": nblocks,
            "reference_s": round(ref_s, 4),
            "kernel_s": round(kern_s, 4),
            "speedup": round(ref_s / kern_s, 1) if kern_s else float("inf"),
        })
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.crypto.bench_kernels",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument("--blocks", type=int, default=2000,
                        help="blocks per cipher in the timing run")
    parser.add_argument("--check-blocks", type=int, default=200,
                        help="random blocks per key in the equivalence sweep")
    parser.add_argument("--quick", action="store_true",
                        help="CI sanity mode: small sweep, tiny timing run")
    args = parser.parse_args(argv)
    if args.quick:
        args.blocks = min(args.blocks, 200)
        args.check_blocks = min(args.check_blocks, 50)

    failures = check_equivalence(args.check_blocks)
    if failures:
        for failure in failures:
            print(f"EQUIVALENCE FAILURE: {failure}", file=sys.stderr)
        return 1
    print(f"equivalence: ok ({len(_CASES)} ciphers x "
          f"{args.check_blocks} random blocks, encrypt+decrypt)")

    print(f"{'cipher':<10} {'blocks':>7} {'reference':>10} "
          f"{'kernel':>9} {'speedup':>8}")
    for row in bench(args.blocks):
        print(f"{row['cipher']:<10} {row['blocks']:>7} "
              f"{row['reference_s']:>9.4f}s {row['kernel_s']:>8.4f}s "
              f"{row['speedup']:>7.1f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
