"""SHA-256, implemented from scratch per FIPS 180-4.

Used by the keyed-hash (HMAC) authentication path of the General Instrument
engine (E08), by the deterministic DRBG, and as the PRF behind the
address-tweaked small ciphers.

The from-scratch :class:`SHA256` stream is the reference.  The one-shot
:func:`sha256` (and the HMAC layer on top, see :mod:`repro.crypto.hmac`)
dispatches to the platform implementation in :mod:`hashlib` when an
import-time equivalence probe against the reference passes — same
digests, an order of magnitude less interpreter work on the tag/DRBG
hot paths.  ``HASHLIB_BACKED`` records which path is live.
"""

from __future__ import annotations

import hashlib
import struct
from typing import List

__all__ = ["sha256", "SHA256", "HASHLIB_BACKED"]

_K = [
    0x428A2F98, 0x71374491, 0xB5C0FBCF, 0xE9B5DBA5,
    0x3956C25B, 0x59F111F1, 0x923F82A4, 0xAB1C5ED5,
    0xD807AA98, 0x12835B01, 0x243185BE, 0x550C7DC3,
    0x72BE5D74, 0x80DEB1FE, 0x9BDC06A7, 0xC19BF174,
    0xE49B69C1, 0xEFBE4786, 0x0FC19DC6, 0x240CA1CC,
    0x2DE92C6F, 0x4A7484AA, 0x5CB0A9DC, 0x76F988DA,
    0x983E5152, 0xA831C66D, 0xB00327C8, 0xBF597FC7,
    0xC6E00BF3, 0xD5A79147, 0x06CA6351, 0x14292967,
    0x27B70A85, 0x2E1B2138, 0x4D2C6DFC, 0x53380D13,
    0x650A7354, 0x766A0ABB, 0x81C2C92E, 0x92722C85,
    0xA2BFE8A1, 0xA81A664B, 0xC24B8B70, 0xC76C51A3,
    0xD192E819, 0xD6990624, 0xF40E3585, 0x106AA070,
    0x19A4C116, 0x1E376C08, 0x2748774C, 0x34B0BCB5,
    0x391C0CB3, 0x4ED8AA4A, 0x5B9CCA4F, 0x682E6FF3,
    0x748F82EE, 0x78A5636F, 0x84C87814, 0x8CC70208,
    0x90BEFFFA, 0xA4506CEB, 0xBEF9A3F7, 0xC67178F2,
]

_H0 = [
    0x6A09E667, 0xBB67AE85, 0x3C6EF372, 0xA54FF53A,
    0x510E527F, 0x9B05688C, 0x1F83D9AB, 0x5BE0CD19,
]

_MASK = 0xFFFFFFFF


def _rotr(x: int, n: int) -> int:
    return ((x >> n) | (x << (32 - n))) & _MASK


class SHA256:
    """Streaming SHA-256 with ``update``/``digest`` in the hashlib style."""

    digest_size = 32
    block_size = 64

    def __init__(self, data: bytes = b""):
        self._h = list(_H0)
        self._buffer = b""
        self._length = 0
        if data:
            self.update(data)

    def update(self, data: bytes) -> "SHA256":
        self._length += len(data)
        buffer = self._buffer + data
        offset = 0
        end = len(buffer) - 63
        while offset < end:
            self._compress(buffer[offset: offset + 64])
            offset += 64
        self._buffer = buffer[offset:]
        return self

    def _compress(self, chunk: bytes) -> None:
        # Hot loop (every HMAC tag funnels through here): rotations are
        # inlined and the round constants bound locally.  Outputs are
        # bit-identical to the straightforward `_rotr` formulation.
        mask = _MASK
        k = _K
        w: List[int] = list(struct.unpack(">16I", chunk))
        append = w.append
        for i in range(16, 64):
            x = w[i - 15]
            y = w[i - 2]
            s0 = ((x >> 7) | (x << 25)) ^ ((x >> 18) | (x << 14)) ^ (x >> 3)
            s1 = ((y >> 17) | (y << 15)) ^ ((y >> 19) | (y << 13)) ^ (y >> 10)
            append((w[i - 16] + s0 + w[i - 7] + s1) & mask)

        a, b, c, d, e, f, g, h = self._h
        for i in range(64):
            s1 = (((e >> 6) | (e << 26)) ^ ((e >> 11) | (e << 21))
                  ^ ((e >> 25) | (e << 7))) & mask
            ch = (e & f) ^ (~e & g)
            temp1 = (h + s1 + ch + k[i] + w[i]) & mask
            s0 = (((a >> 2) | (a << 30)) ^ ((a >> 13) | (a << 19))
                  ^ ((a >> 22) | (a << 10))) & mask
            maj = (a & b) ^ (a & c) ^ (b & c)
            temp2 = (s0 + maj) & mask
            h, g, f, e = g, f, e, (d + temp1) & mask
            d, c, b, a = c, b, a, (temp1 + temp2) & mask

        self._h = [
            (x + y) & mask
            for x, y in zip(self._h, (a, b, c, d, e, f, g, h))
        ]

    def digest(self) -> bytes:
        # Finalize on a copy so the stream can keep being updated.
        clone = SHA256()
        clone._h = list(self._h)
        clone._buffer = self._buffer
        clone._length = self._length
        bit_length = clone._length * 8
        clone._buffer += b"\x80"
        pad_len = (56 - len(clone._buffer) % 64) % 64
        clone._buffer += b"\x00" * pad_len + struct.pack(">Q", bit_length)
        while clone._buffer:
            clone._compress(clone._buffer[:64])
            clone._buffer = clone._buffer[64:]
        return struct.pack(">8I", *clone._h)

    def hexdigest(self) -> str:
        return self.digest().hex()


def _probe_hashlib() -> bool:
    """Gate the platform dispatch on reference equivalence.

    Probes cover the FIPS 180-4 one-block ("abc") and two-block vectors,
    the empty message, and a multi-block message crossing the padding
    boundary; any mismatch (or a hashlib without sha256) falls back to
    the from-scratch stream.
    """
    vectors = [
        b"",
        b"abc",
        b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
        bytes(range(256)) * 3 + b"tail",
    ]
    try:
        return all(
            hashlib.sha256(v).digest() == SHA256(v).digest() for v in vectors
        )
    except (AttributeError, ValueError):
        return False


#: True when one-shot digests are served by :mod:`hashlib` (probed at
#: import against the from-scratch reference above).
HASHLIB_BACKED = _probe_hashlib()


def sha256(data: bytes) -> bytes:
    """One-shot SHA-256 digest."""
    if HASHLIB_BACKED:
        return hashlib.sha256(data).digest()
    return SHA256(data).digest()
