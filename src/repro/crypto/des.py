"""DES and Triple-DES block ciphers, implemented from scratch per FIPS 46-3.

The survey's industrial engines (General Instrument's 3DES-CBC unit, the
Dallas DS5240) are built on DES/3DES, so a functionally correct software
implementation is required for the functional data path of the simulator.

The implementation favours clarity over raw speed: permutations are applied
through precomputed index tables operating on Python integers.  Timing of the
*hardware* DES pipelines is modeled separately in :mod:`repro.sim.pipeline`;
this module only provides the transformation itself.
"""

from __future__ import annotations

from typing import List, Sequence

__all__ = ["DES", "TripleDES", "des_encrypt_block", "des_decrypt_block"]

# ---------------------------------------------------------------------------
# FIPS 46-3 tables.  All tables use the 1-based bit numbering of the standard
# (bit 1 = most significant bit of the 64-bit block).
# ---------------------------------------------------------------------------

_IP = (
    58, 50, 42, 34, 26, 18, 10, 2,
    60, 52, 44, 36, 28, 20, 12, 4,
    62, 54, 46, 38, 30, 22, 14, 6,
    64, 56, 48, 40, 32, 24, 16, 8,
    57, 49, 41, 33, 25, 17, 9, 1,
    59, 51, 43, 35, 27, 19, 11, 3,
    61, 53, 45, 37, 29, 21, 13, 5,
    63, 55, 47, 39, 31, 23, 15, 7,
)

_FP = (
    40, 8, 48, 16, 56, 24, 64, 32,
    39, 7, 47, 15, 55, 23, 63, 31,
    38, 6, 46, 14, 54, 22, 62, 30,
    37, 5, 45, 13, 53, 21, 61, 29,
    36, 4, 44, 12, 52, 20, 60, 28,
    35, 3, 43, 11, 51, 19, 59, 27,
    34, 2, 42, 10, 50, 18, 58, 26,
    33, 1, 41, 9, 49, 17, 57, 25,
)

# Expansion of the 32-bit half block to 48 bits.
_E = (
    32, 1, 2, 3, 4, 5,
    4, 5, 6, 7, 8, 9,
    8, 9, 10, 11, 12, 13,
    12, 13, 14, 15, 16, 17,
    16, 17, 18, 19, 20, 21,
    20, 21, 22, 23, 24, 25,
    24, 25, 26, 27, 28, 29,
    28, 29, 30, 31, 32, 1,
)

# Permutation applied after the S-boxes.
_P = (
    16, 7, 20, 21, 29, 12, 28, 17,
    1, 15, 23, 26, 5, 18, 31, 10,
    2, 8, 24, 14, 32, 27, 3, 9,
    19, 13, 30, 6, 22, 11, 4, 25,
)

_SBOXES = (
    # S1
    (
        (14, 4, 13, 1, 2, 15, 11, 8, 3, 10, 6, 12, 5, 9, 0, 7),
        (0, 15, 7, 4, 14, 2, 13, 1, 10, 6, 12, 11, 9, 5, 3, 8),
        (4, 1, 14, 8, 13, 6, 2, 11, 15, 12, 9, 7, 3, 10, 5, 0),
        (15, 12, 8, 2, 4, 9, 1, 7, 5, 11, 3, 14, 10, 0, 6, 13),
    ),
    # S2
    (
        (15, 1, 8, 14, 6, 11, 3, 4, 9, 7, 2, 13, 12, 0, 5, 10),
        (3, 13, 4, 7, 15, 2, 8, 14, 12, 0, 1, 10, 6, 9, 11, 5),
        (0, 14, 7, 11, 10, 4, 13, 1, 5, 8, 12, 6, 9, 3, 2, 15),
        (13, 8, 10, 1, 3, 15, 4, 2, 11, 6, 7, 12, 0, 5, 14, 9),
    ),
    # S3
    (
        (10, 0, 9, 14, 6, 3, 15, 5, 1, 13, 12, 7, 11, 4, 2, 8),
        (13, 7, 0, 9, 3, 4, 6, 10, 2, 8, 5, 14, 12, 11, 15, 1),
        (13, 6, 4, 9, 8, 15, 3, 0, 11, 1, 2, 12, 5, 10, 14, 7),
        (1, 10, 13, 0, 6, 9, 8, 7, 4, 15, 14, 3, 11, 5, 2, 12),
    ),
    # S4
    (
        (7, 13, 14, 3, 0, 6, 9, 10, 1, 2, 8, 5, 11, 12, 4, 15),
        (13, 8, 11, 5, 6, 15, 0, 3, 4, 7, 2, 12, 1, 10, 14, 9),
        (10, 6, 9, 0, 12, 11, 7, 13, 15, 1, 3, 14, 5, 2, 8, 4),
        (3, 15, 0, 6, 10, 1, 13, 8, 9, 4, 5, 11, 12, 7, 2, 14),
    ),
    # S5
    (
        (2, 12, 4, 1, 7, 10, 11, 6, 8, 5, 3, 15, 13, 0, 14, 9),
        (14, 11, 2, 12, 4, 7, 13, 1, 5, 0, 15, 10, 3, 9, 8, 6),
        (4, 2, 1, 11, 10, 13, 7, 8, 15, 9, 12, 5, 6, 3, 0, 14),
        (11, 8, 12, 7, 1, 14, 2, 13, 6, 15, 0, 9, 10, 4, 5, 3),
    ),
    # S6
    (
        (12, 1, 10, 15, 9, 2, 6, 8, 0, 13, 3, 4, 14, 7, 5, 11),
        (10, 15, 4, 2, 7, 12, 9, 5, 6, 1, 13, 14, 0, 11, 3, 8),
        (9, 14, 15, 5, 2, 8, 12, 3, 7, 0, 4, 10, 1, 13, 11, 6),
        (4, 3, 2, 12, 9, 5, 15, 10, 11, 14, 1, 7, 6, 0, 8, 13),
    ),
    # S7
    (
        (4, 11, 2, 14, 15, 0, 8, 13, 3, 12, 9, 7, 5, 10, 6, 1),
        (13, 0, 11, 7, 4, 9, 1, 10, 14, 3, 5, 12, 2, 15, 8, 6),
        (1, 4, 11, 13, 12, 3, 7, 14, 10, 15, 6, 8, 0, 5, 9, 2),
        (6, 11, 13, 8, 1, 4, 10, 7, 9, 5, 0, 15, 14, 2, 3, 12),
    ),
    # S8
    (
        (13, 2, 8, 4, 6, 15, 11, 1, 10, 9, 3, 14, 5, 0, 12, 7),
        (1, 15, 13, 8, 10, 3, 7, 4, 12, 5, 6, 11, 0, 14, 9, 2),
        (7, 11, 4, 1, 9, 12, 14, 2, 0, 6, 10, 13, 15, 3, 5, 8),
        (2, 1, 14, 7, 4, 10, 8, 13, 15, 12, 9, 0, 3, 5, 6, 11),
    ),
)

# Key-schedule tables: PC-1 selects 56 of the 64 key bits, PC-2 selects the
# 48-bit round keys from the rotated halves.
_PC1 = (
    57, 49, 41, 33, 25, 17, 9,
    1, 58, 50, 42, 34, 26, 18,
    10, 2, 59, 51, 43, 35, 27,
    19, 11, 3, 60, 52, 44, 36,
    63, 55, 47, 39, 31, 23, 15,
    7, 62, 54, 46, 38, 30, 22,
    14, 6, 61, 53, 45, 37, 29,
    21, 13, 5, 28, 20, 12, 4,
)

_PC2 = (
    14, 17, 11, 24, 1, 5,
    3, 28, 15, 6, 21, 10,
    23, 19, 12, 4, 26, 8,
    16, 7, 27, 20, 13, 2,
    41, 52, 31, 37, 47, 55,
    30, 40, 51, 45, 33, 48,
    44, 49, 39, 56, 34, 53,
    46, 42, 50, 36, 29, 32,
)

_SHIFTS = (1, 1, 2, 2, 2, 2, 2, 2, 1, 2, 2, 2, 2, 2, 2, 1)


def _permute(value: int, in_width: int, table: Sequence[int]) -> int:
    """Apply a FIPS bit-numbering permutation to ``value`` of ``in_width`` bits."""
    out = 0
    for pos in table:
        out = (out << 1) | ((value >> (in_width - pos)) & 1)
    return out


def _rotl28(value: int, amount: int) -> int:
    return ((value << amount) | (value >> (28 - amount))) & 0xFFFFFFF


def _feistel(half: int, subkey: int) -> int:
    """The DES round function f(R, K) on a 32-bit half block."""
    expanded = _permute(half, 32, _E) ^ subkey
    out = 0
    for i in range(8):
        chunk = (expanded >> (42 - 6 * i)) & 0x3F
        row = ((chunk & 0x20) >> 4) | (chunk & 1)
        col = (chunk >> 1) & 0xF
        out = (out << 4) | _SBOXES[i][row][col]
    return _permute(out, 32, _P)


def _key_schedule(key: int) -> List[int]:
    """Derive the sixteen 48-bit round keys from a 64-bit key."""
    permuted = _permute(key, 64, _PC1)
    c = (permuted >> 28) & 0xFFFFFFF
    d = permuted & 0xFFFFFFF
    round_keys = []
    for shift in _SHIFTS:
        c = _rotl28(c, shift)
        d = _rotl28(d, shift)
        round_keys.append(_permute((c << 28) | d, 56, _PC2))
    return round_keys


def _crypt_block(block: int, round_keys: Sequence[int]) -> int:
    """Run the 16-round Feistel network; decryption reverses ``round_keys``."""
    value = _permute(block, 64, _IP)
    left = (value >> 32) & 0xFFFFFFFF
    right = value & 0xFFFFFFFF
    for subkey in round_keys:
        left, right = right, left ^ _feistel(right, subkey)
    # The halves are swapped back before the final permutation.
    return _permute((right << 32) | left, 64, _FP)


def des_encrypt_block(key: bytes, block: bytes) -> bytes:
    """Encrypt one 8-byte block under an 8-byte key (parity bits ignored)."""
    return DES(key).encrypt_block(block)


def des_decrypt_block(key: bytes, block: bytes) -> bytes:
    """Decrypt one 8-byte block under an 8-byte key (parity bits ignored)."""
    return DES(key).decrypt_block(block)


class DES:
    """Single DES with a precomputed key schedule.

    >>> DES(bytes(8)).encrypt_block(bytes(8)).hex()
    '8ca64de9c1b123a7'
    """

    block_size = 8
    key_size = 8

    def __init__(self, key: bytes):
        if len(key) != 8:
            raise ValueError(f"DES key must be 8 bytes, got {len(key)}")
        self._round_keys = _key_schedule(int.from_bytes(key, "big"))

    def encrypt_block(self, block: bytes) -> bytes:
        if len(block) != 8:
            raise ValueError(f"DES block must be 8 bytes, got {len(block)}")
        value = _crypt_block(int.from_bytes(block, "big"), self._round_keys)
        return value.to_bytes(8, "big")

    def decrypt_block(self, block: bytes) -> bytes:
        if len(block) != 8:
            raise ValueError(f"DES block must be 8 bytes, got {len(block)}")
        value = _crypt_block(
            int.from_bytes(block, "big"), tuple(reversed(self._round_keys))
        )
        return value.to_bytes(8, "big")


class TripleDES:
    """Triple DES in EDE configuration (FIPS 46-3 / SP 800-67).

    Accepts 8-byte (K1=K2=K3, degenerates to single DES), 16-byte
    (K1, K2, K3=K1) or 24-byte (K1, K2, K3) keys.
    """

    block_size = 8

    def __init__(self, key: bytes):
        if len(key) == 8:
            k1 = k2 = k3 = key
        elif len(key) == 16:
            k1, k2, k3 = key[:8], key[8:], key[:8]
        elif len(key) == 24:
            k1, k2, k3 = key[:8], key[8:16], key[16:]
        else:
            raise ValueError(
                f"3DES key must be 8, 16 or 24 bytes, got {len(key)}"
            )
        self._d1 = DES(k1)
        self._d2 = DES(k2)
        self._d3 = DES(k3)

    def encrypt_block(self, block: bytes) -> bytes:
        return self._d3.encrypt_block(
            self._d2.decrypt_block(self._d1.encrypt_block(block))
        )

    def decrypt_block(self, block: bytes) -> bytes:
        return self._d1.decrypt_block(
            self._d2.encrypt_block(self._d3.decrypt_block(block))
        )
