"""Deterministic random bit generator (hash-DRBG style, over SHA-256).

Every stochastic element of the reproduction — RSA prime search, random IVs,
workload generation, key material — draws from this DRBG so that every
experiment is exactly reproducible from a seed.
"""

from __future__ import annotations

from .sha256 import sha256

__all__ = ["DRBG"]


class DRBG:
    """Counter-mode DRBG over SHA-256.

    Not certified SP 800-90A — it is a reproducibility tool whose output is
    uniform enough for statistical experiments and key generation within the
    simulation.
    """

    def __init__(self, seed) -> None:
        if isinstance(seed, int):
            seed = seed.to_bytes(16, "big", signed=False)
        elif isinstance(seed, str):
            seed = seed.encode()
        self._key = sha256(b"repro-drbg" + bytes(seed))
        self._counter = 0
        self._pool = b""

    def random_bytes(self, n: int) -> bytes:
        """Return ``n`` pseudo-random bytes."""
        while len(self._pool) < n:
            block = sha256(self._key + self._counter.to_bytes(8, "big"))
            self._counter += 1
            self._pool += block
        out, self._pool = self._pool[:n], self._pool[n:]
        return out

    def randbits(self, bits: int) -> int:
        """Return a uniform integer of at most ``bits`` bits."""
        nbytes = (bits + 7) // 8
        value = int.from_bytes(self.random_bytes(nbytes), "big")
        return value >> (8 * nbytes - bits)

    def randbelow(self, n: int) -> int:
        """Return a uniform integer in [0, n) by rejection sampling."""
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        bits = n.bit_length()
        while True:
            value = self.randbits(bits)
            if value < n:
                return value

    def randint(self, lo: int, hi: int) -> int:
        """Return a uniform integer in [lo, hi] inclusive."""
        if hi < lo:
            raise ValueError(f"empty range [{lo}, {hi}]")
        return lo + self.randbelow(hi - lo + 1)

    def random(self) -> float:
        """Return a uniform float in [0, 1)."""
        return self.randbits(53) / (1 << 53)

    def choice(self, seq):
        """Return a uniform element from a non-empty sequence."""
        if not seq:
            raise ValueError("cannot choose from an empty sequence")
        return seq[self.randbelow(len(seq))]

    def shuffle(self, items: list) -> None:
        """In-place Fisher-Yates shuffle."""
        for i in range(len(items) - 1, 0, -1):
            j = self.randbelow(i + 1)
            items[i], items[j] = items[j], items[i]

    def fork(self, label: str) -> "DRBG":
        """Derive an independent child stream (for parallel components)."""
        return DRBG(self._key + label.encode())
