"""Best-style block cipher: keyed substitutions and byte transpositions.

Robert Best's crypto-microprocessor patents ([7][8][9] in the survey,
Figure 3) predate DES hardware being affordable on-die; his cipher is built
from "basic cryptographic functions such as mono and poly-alphabetic
substitutions and byte transpositions".  This module reconstructs that
design point:

* a keyed byte-substitution table (mono-alphabetic layer);
* an address-dependent table selection (poly-alphabetic layer — the same
  plaintext byte maps differently at different addresses);
* a keyed transposition of the bytes within the block.

It is deliberately *weaker* than a modern cipher: rounds are shallow and
diffusion is limited to the permutation, so the statistical tests in
:mod:`repro.analysis.security` can exhibit the gap to AES (experiment E06)
— which is the survey's point when it calls NIST-approved algorithms the
known route to "strong security".
"""

from __future__ import annotations

from typing import List

from .hmac import prf

__all__ = ["BestCipher"]


def _keyed_permutation(material: bytes, n: int) -> List[int]:
    """Fisher-Yates shuffle of range(n) driven by key material."""
    perm = list(range(n))
    # Consume two bytes of material per swap for an unbiased-enough index.
    idx = 0
    for i in range(n - 1, 0, -1):
        r = int.from_bytes(material[idx: idx + 2], "big") % (i + 1)
        idx += 2
        perm[i], perm[r] = perm[r], perm[i]
    return perm


class BestCipher:
    """Substitution/transposition block cipher over ``block_size`` bytes.

    ``num_alphabets`` substitution tables are derived from the key; the table
    used for byte ``i`` of the block at address ``addr`` is selected by
    ``(addr + i) % num_alphabets`` — the poly-alphabetic schedule of the
    patent.  A keyed byte transposition follows the substitution, and the
    pair is iterated ``rounds`` times.
    """

    def __init__(
        self,
        key: bytes,
        block_size: int = 8,
        num_alphabets: int = 16,
        rounds: int = 2,
    ):
        if block_size < 2:
            raise ValueError(f"block_size must be >= 2, got {block_size}")
        if num_alphabets < 1:
            raise ValueError(f"num_alphabets must be >= 1, got {num_alphabets}")
        if rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {rounds}")
        self.block_size = block_size
        self.num_alphabets = num_alphabets
        self.rounds = rounds

        self._sboxes: List[List[int]] = []
        self._inv_sboxes: List[List[int]] = []
        for a in range(num_alphabets):
            material = prf(key, b"best-sbox", bytes([a % 256]), out_len=1024)
            sbox = _keyed_permutation(material, 256)
            inv = [0] * 256
            for i, v in enumerate(sbox):
                inv[v] = i
            self._sboxes.append(sbox)
            self._inv_sboxes.append(inv)

        perm_material = prf(key, b"best-perm", out_len=4 * block_size)
        self._perm = _keyed_permutation(perm_material, block_size)
        self._inv_perm = [0] * block_size
        for i, v in enumerate(self._perm):
            self._inv_perm[v] = i

    def _alphabet(self, addr: int, offset: int, rnd: int) -> int:
        return (addr + offset + rnd * 7) % self.num_alphabets

    def encrypt(self, addr: int, block: bytes) -> bytes:
        """Encrypt ``block`` located at byte address ``addr``."""
        if len(block) != self.block_size:
            raise ValueError(
                f"block must be {self.block_size} bytes, got {len(block)}"
            )
        state = list(block)
        for rnd in range(self.rounds):
            state = [
                self._sboxes[self._alphabet(addr, i, rnd)][b]
                for i, b in enumerate(state)
            ]
            state = [state[self._perm[i]] for i in range(self.block_size)]
        return bytes(state)

    def decrypt(self, addr: int, block: bytes) -> bytes:
        """Invert :meth:`encrypt` for the block at ``addr``."""
        if len(block) != self.block_size:
            raise ValueError(
                f"block must be {self.block_size} bytes, got {len(block)}"
            )
        state = list(block)
        for rnd in range(self.rounds - 1, -1, -1):
            state = [state[self._inv_perm[i]] for i in range(self.block_size)]
            state = [
                self._inv_sboxes[self._alphabet(addr, i, rnd)][b]
                for i, b in enumerate(state)
            ]
        return bytes(state)

    # Mode-compatible interface with the address fixed at zero, used where a
    # generic BlockCipher is expected.

    def encrypt_block(self, block: bytes) -> bytes:
        return self.encrypt(0, block)

    def decrypt_block(self, block: bytes) -> bytes:
        return self.decrypt(0, block)
