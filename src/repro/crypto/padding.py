"""PKCS#7 padding for block ciphers (RFC 5652 §6.3)."""

from __future__ import annotations

__all__ = ["pad", "unpad", "PaddingError"]


class PaddingError(ValueError):
    """Raised when removing padding from a malformed buffer."""


def pad(data: bytes, block_size: int) -> bytes:
    """Pad ``data`` to a multiple of ``block_size`` (1-255)."""
    if not 1 <= block_size <= 255:
        raise ValueError(f"block_size must be in [1, 255], got {block_size}")
    n = block_size - (len(data) % block_size)
    return data + bytes([n]) * n


def unpad(data: bytes, block_size: int) -> bytes:
    """Strip PKCS#7 padding, validating every pad byte."""
    if not data or len(data) % block_size != 0:
        raise PaddingError("padded data length is not a multiple of the block size")
    n = data[-1]
    if n < 1 or n > block_size:
        raise PaddingError(f"invalid pad length {n}")
    if data[-n:] != bytes([n]) * n:
        raise PaddingError("inconsistent pad bytes")
    return data[:-n]
