"""Table-driven fast paths for the from-scratch block ciphers.

The survey's hardware engines owe their throughput to precomputation: XOM's
14-cycle AES pipeline and AEGIS's round-pipelined AES are possible because
every round collapses into table lookups and XORs, and the DES parts bake
the bit permutations into wiring.  The same tricks have exact software
analogues, and this module applies them to the reference implementations in
:mod:`repro.crypto.aes` and :mod:`repro.crypto.des`:

* :class:`AESKernel` — the classic T-table formulation: SubBytes, ShiftRows
  and MixColumns fuse into four 256-entry word tables, so one round is 16
  lookups and 20 XORs instead of per-byte GF(2^8) arithmetic.  The tables
  are *derived* from the algebraically constructed ``SBOX``/``gf_mul`` of
  the reference module, so the existing S-box tests cover them.
* :class:`DESKernel` / :class:`TripleDESKernel` — bit-packed rounds: the
  IP/FP/E permutations become per-byte scatter tables and the eight S-boxes
  fuse with the P permutation into ``SP`` tables.  3DES additionally skips
  the interior FP∘IP pairs, which cancel algebraically.
* a **key-schedule registry** (:func:`aes_kernel`, :func:`des_kernel`,
  :func:`tdes_kernel`) memoizing kernels by raw key bytes, so campaign
  scripts that rebuild engines dozens of times reuse one expanded schedule;
* **batched APIs** — :meth:`encrypt_blocks`/:meth:`decrypt_blocks` on every
  kernel, the :func:`encrypt_blocks`/:func:`decrypt_blocks` dispatch
  helpers that fall back to per-block loops for exotic ciphers, and
  :func:`ctr_pad` producing a whole line's keystream in one call — the
  miss-path shape the engines in :mod:`repro.core` use.

Every kernel is bit-for-bit equivalent to its reference cipher; the
equivalence layer in ``tests/test_kernels.py`` proves it on the FIPS-197 /
SP 800-67 known answers and on random blocks, and
``python -m repro.crypto.bench_kernels`` measures the speedup.

>>> from repro.crypto.aes import AES
>>> key = bytes(range(16))
>>> block = bytes(range(16, 32))
>>> AESKernel(key).encrypt_block(block) == AES(key).encrypt_block(block)
True
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, List, Tuple

from .. import backend as _backend
from .aes import AES, INV_SBOX, SBOX, gf_mul
from .des import (
    DES,
    TripleDES,
    _E,
    _FP,
    _IP,
    _P,
    _SBOXES,
    _key_schedule,
    _permute,
)

__all__ = [
    "AESKernel", "DESKernel", "TripleDESKernel",
    "aes_kernel", "des_kernel", "tdes_kernel",
    "kernel_for", "encrypt_blocks", "decrypt_blocks", "ctr_pad",
    "NUMPY_BACKED",
]


# ---------------------------------------------------------------------------
# AES T-tables, derived from the reference S-box and GF(2^8) arithmetic.
# T0..T3 fuse SubBytes + MixColumns for the byte in state rows 0..3; the
# inverse tables fuse InvSubBytes + InvMixColumns.
# ---------------------------------------------------------------------------

def _build_aes_tables() -> Tuple[List[List[int]], List[List[int]], List[int]]:
    enc = [[0] * 256 for _ in range(4)]
    dec = [[0] * 256 for _ in range(4)]
    imix = [0] * 256  # InvMixColumns of a single byte, for the decrypt schedule
    for x in range(256):
        s = SBOX[x]
        s2 = gf_mul(s, 2)
        s3 = s2 ^ s
        # MixColumns contribution of the byte landing in row 0..3.
        enc[0][x] = (s2 << 24) | (s << 16) | (s << 8) | s3
        enc[1][x] = (s3 << 24) | (s2 << 16) | (s << 8) | s
        enc[2][x] = (s << 24) | (s3 << 16) | (s2 << 8) | s
        enc[3][x] = (s << 24) | (s << 16) | (s3 << 8) | s2
        i = INV_SBOX[x]
        e, n = gf_mul(i, 14), gf_mul(i, 9)
        t, l = gf_mul(i, 13), gf_mul(i, 11)
        dec[0][x] = (e << 24) | (n << 16) | (t << 8) | l
        dec[1][x] = (l << 24) | (e << 16) | (n << 8) | t
        dec[2][x] = (t << 24) | (l << 16) | (e << 8) | n
        dec[3][x] = (n << 24) | (t << 16) | (l << 8) | e
        imix[x] = (gf_mul(x, 14) << 24) | (gf_mul(x, 9) << 16) \
            | (gf_mul(x, 13) << 8) | gf_mul(x, 11)
    return enc, dec, imix


(_TE, _TD, _IMIX) = _build_aes_tables()


def _pack_words(round_key: List[int]) -> List[int]:
    """One 16-byte round key -> four big-endian column words."""
    return [
        (round_key[4 * c] << 24) | (round_key[4 * c + 1] << 16)
        | (round_key[4 * c + 2] << 8) | round_key[4 * c + 3]
        for c in range(4)
    ]


def _inv_mix_word(word: int) -> int:
    return (
        _IMIX[(word >> 24) & 0xFF]
        ^ _rotr32(_IMIX[(word >> 16) & 0xFF], 8)
        ^ _rotr32(_IMIX[(word >> 8) & 0xFF], 16)
        ^ _rotr32(_IMIX[word & 0xFF], 24)
    )


def _rotr32(x: int, n: int) -> int:
    return ((x >> n) | (x << (32 - n))) & 0xFFFFFFFF


class AESKernel:
    """T-table AES, byte-identical to :class:`repro.crypto.aes.AES`.

    On the numpy backend, batches of :data:`NUMPY_MIN_BLOCKS_AES` blocks
    or more run every round as vectorized table gathers over the whole
    batch at once; smaller batches stay on the scalar loop (a numpy round
    costs the same regardless of width, so gathers only pay for
    themselves on wide calls).
    """

    block_size = 16

    def __init__(self, key: bytes):
        self._init_from_schedule(AES(key))

    @classmethod
    def from_cipher(cls, cipher: AES) -> "AESKernel":
        """Build a kernel from an existing reference cipher's schedule."""
        kernel = cls.__new__(cls)
        kernel._init_from_schedule(cipher)
        return kernel

    def __deepcopy__(self, memo):
        # The expanded schedule is immutable after construction; engines
        # cloned for warm-rig reuse can share the instance.
        return self

    def _init_from_schedule(self, ref: AES) -> None:
        self.key_size = ref.key_size
        self._rounds = ref._rounds
        # Encrypt keys: flat list of words, 4 per round.
        self._ek: List[int] = []
        for rk in ref._round_keys:
            self._ek.extend(_pack_words(rk))
        # Equivalent-inverse-cipher keys: reversed order, InvMixColumns
        # applied to the interior rounds.
        self._dk: List[int] = list(_pack_words(ref._round_keys[self._rounds]))
        for rnd in range(self._rounds - 1, 0, -1):
            self._dk.extend(
                _inv_mix_word(w) for w in _pack_words(ref._round_keys[rnd])
            )
        self._dk.extend(_pack_words(ref._round_keys[0]))
        # Lazily-built numpy copies of the schedules (numpy backend only).
        self._ek_np = None
        self._dk_np = None

    # -- batched core ----------------------------------------------------

    def encrypt_blocks(self, data: bytes) -> bytes:
        """ECB-encrypt a multiple of 16 bytes in one batched pass."""
        if NUMPY_BACKED and len(data) >= NUMPY_MIN_BLOCKS_AES * 16 \
                and len(data) % 16 == 0:
            return _np_aes_crypt(self, data, encrypt=True)
        return self._encrypt_blocks_scalar(data)

    def decrypt_blocks(self, data: bytes) -> bytes:
        """ECB-decrypt a multiple of 16 bytes in one batched pass."""
        if NUMPY_BACKED and len(data) >= NUMPY_MIN_BLOCKS_AES * 16 \
                and len(data) % 16 == 0:
            return _np_aes_crypt(self, data, encrypt=False)
        return self._decrypt_blocks_scalar(data)

    def _encrypt_blocks_scalar(self, data: bytes) -> bytes:
        if len(data) % 16:
            raise ValueError(
                f"data length {len(data)} is not a multiple of block size 16"
            )
        t0, t1, t2, t3 = _TE
        sbox = SBOX
        ek = self._ek
        rounds = self._rounds
        out = bytearray(len(data))
        for base in range(0, len(data), 16):
            w0 = int.from_bytes(data[base: base + 4], "big") ^ ek[0]
            w1 = int.from_bytes(data[base + 4: base + 8], "big") ^ ek[1]
            w2 = int.from_bytes(data[base + 8: base + 12], "big") ^ ek[2]
            w3 = int.from_bytes(data[base + 12: base + 16], "big") ^ ek[3]
            k = 4
            for _ in range(rounds - 1):
                n0 = (t0[w0 >> 24] ^ t1[(w1 >> 16) & 0xFF]
                      ^ t2[(w2 >> 8) & 0xFF] ^ t3[w3 & 0xFF] ^ ek[k])
                n1 = (t0[w1 >> 24] ^ t1[(w2 >> 16) & 0xFF]
                      ^ t2[(w3 >> 8) & 0xFF] ^ t3[w0 & 0xFF] ^ ek[k + 1])
                n2 = (t0[w2 >> 24] ^ t1[(w3 >> 16) & 0xFF]
                      ^ t2[(w0 >> 8) & 0xFF] ^ t3[w1 & 0xFF] ^ ek[k + 2])
                n3 = (t0[w3 >> 24] ^ t1[(w0 >> 16) & 0xFF]
                      ^ t2[(w1 >> 8) & 0xFF] ^ t3[w2 & 0xFF] ^ ek[k + 3])
                w0, w1, w2, w3 = n0, n1, n2, n3
                k += 4
            # Final round: SubBytes + ShiftRows only.
            o0 = ((sbox[w0 >> 24] << 24) | (sbox[(w1 >> 16) & 0xFF] << 16)
                  | (sbox[(w2 >> 8) & 0xFF] << 8) | sbox[w3 & 0xFF]) ^ ek[k]
            o1 = ((sbox[w1 >> 24] << 24) | (sbox[(w2 >> 16) & 0xFF] << 16)
                  | (sbox[(w3 >> 8) & 0xFF] << 8) | sbox[w0 & 0xFF]) ^ ek[k + 1]
            o2 = ((sbox[w2 >> 24] << 24) | (sbox[(w3 >> 16) & 0xFF] << 16)
                  | (sbox[(w0 >> 8) & 0xFF] << 8) | sbox[w1 & 0xFF]) ^ ek[k + 2]
            o3 = ((sbox[w3 >> 24] << 24) | (sbox[(w0 >> 16) & 0xFF] << 16)
                  | (sbox[(w1 >> 8) & 0xFF] << 8) | sbox[w2 & 0xFF]) ^ ek[k + 3]
            out[base: base + 16] = (
                (o0 << 96) | (o1 << 64) | (o2 << 32) | o3
            ).to_bytes(16, "big")
        return bytes(out)

    def _decrypt_blocks_scalar(self, data: bytes) -> bytes:
        if len(data) % 16:
            raise ValueError(
                f"data length {len(data)} is not a multiple of block size 16"
            )
        t0, t1, t2, t3 = _TD
        inv = INV_SBOX
        dk = self._dk
        rounds = self._rounds
        out = bytearray(len(data))
        for base in range(0, len(data), 16):
            w0 = int.from_bytes(data[base: base + 4], "big") ^ dk[0]
            w1 = int.from_bytes(data[base + 4: base + 8], "big") ^ dk[1]
            w2 = int.from_bytes(data[base + 8: base + 12], "big") ^ dk[2]
            w3 = int.from_bytes(data[base + 12: base + 16], "big") ^ dk[3]
            k = 4
            for _ in range(rounds - 1):
                n0 = (t0[w0 >> 24] ^ t1[(w3 >> 16) & 0xFF]
                      ^ t2[(w2 >> 8) & 0xFF] ^ t3[w1 & 0xFF] ^ dk[k])
                n1 = (t0[w1 >> 24] ^ t1[(w0 >> 16) & 0xFF]
                      ^ t2[(w3 >> 8) & 0xFF] ^ t3[w2 & 0xFF] ^ dk[k + 1])
                n2 = (t0[w2 >> 24] ^ t1[(w1 >> 16) & 0xFF]
                      ^ t2[(w0 >> 8) & 0xFF] ^ t3[w3 & 0xFF] ^ dk[k + 2])
                n3 = (t0[w3 >> 24] ^ t1[(w2 >> 16) & 0xFF]
                      ^ t2[(w1 >> 8) & 0xFF] ^ t3[w0 & 0xFF] ^ dk[k + 3])
                w0, w1, w2, w3 = n0, n1, n2, n3
                k += 4
            o0 = ((inv[w0 >> 24] << 24) | (inv[(w3 >> 16) & 0xFF] << 16)
                  | (inv[(w2 >> 8) & 0xFF] << 8) | inv[w1 & 0xFF]) ^ dk[k]
            o1 = ((inv[w1 >> 24] << 24) | (inv[(w0 >> 16) & 0xFF] << 16)
                  | (inv[(w3 >> 8) & 0xFF] << 8) | inv[w2 & 0xFF]) ^ dk[k + 1]
            o2 = ((inv[w2 >> 24] << 24) | (inv[(w1 >> 16) & 0xFF] << 16)
                  | (inv[(w0 >> 8) & 0xFF] << 8) | inv[w3 & 0xFF]) ^ dk[k + 2]
            o3 = ((inv[w3 >> 24] << 24) | (inv[(w2 >> 16) & 0xFF] << 16)
                  | (inv[(w1 >> 8) & 0xFF] << 8) | inv[w0 & 0xFF]) ^ dk[k + 3]
            out[base: base + 16] = (
                (o0 << 96) | (o1 << 64) | (o2 << 32) | o3
            ).to_bytes(16, "big")
        return bytes(out)

    # -- BlockCipher protocol --------------------------------------------

    def encrypt_block(self, block: bytes) -> bytes:
        if len(block) != 16:
            raise ValueError(f"AES block must be 16 bytes, got {len(block)}")
        return self.encrypt_blocks(block)

    def decrypt_block(self, block: bytes) -> bytes:
        if len(block) != 16:
            raise ValueError(f"AES block must be 16 bytes, got {len(block)}")
        return self.decrypt_blocks(block)


# ---------------------------------------------------------------------------
# DES: per-byte scatter tables for IP/FP/E, fused S-box+P tables.  All
# derived from the FIPS tables (and `_permute` itself) in repro.crypto.des.
# ---------------------------------------------------------------------------

def _scatter_tables(table, in_width: int) -> List[List[int]]:
    """Per-input-byte lookup tables computing a FIPS bit permutation."""
    out_width = len(table)
    tabs = [[0] * 256 for _ in range(in_width // 8)]
    for out_pos, in_pos in enumerate(table):
        byte_idx = (in_pos - 1) // 8
        bit = 7 - ((in_pos - 1) % 8)          # within the byte, from LSB
        target = 1 << (out_width - 1 - out_pos)
        tab = tabs[byte_idx]
        for value in range(256):
            if (value >> bit) & 1:
                tab[value] |= target
    return tabs


_IP_TAB = _scatter_tables(_IP, 64)
_FP_TAB = _scatter_tables(_FP, 64)
_E_TAB = _scatter_tables(_E, 32)

# SP[i][chunk]: S-box i applied to a 6-bit chunk, its 4-bit output placed
# in nibble i, then run through the P permutation — the whole second half
# of the round function as one lookup.
_SP: List[List[int]] = []
for _i in range(8):
    _tab = [0] * 64
    for _chunk in range(64):
        _row = ((_chunk & 0x20) >> 4) | (_chunk & 1)
        _col = (_chunk >> 1) & 0xF
        _tab[_chunk] = _permute(
            _SBOXES[_i][_row][_col] << (28 - 4 * _i), 32, _P
        )
    _SP.append(_tab)
del _i, _tab, _chunk, _row, _col


def _perm64(v: int, tabs: List[List[int]]) -> int:
    return (
        tabs[0][(v >> 56) & 0xFF] | tabs[1][(v >> 48) & 0xFF]
        | tabs[2][(v >> 40) & 0xFF] | tabs[3][(v >> 32) & 0xFF]
        | tabs[4][(v >> 24) & 0xFF] | tabs[5][(v >> 16) & 0xFF]
        | tabs[6][(v >> 8) & 0xFF] | tabs[7][v & 0xFF]
    )


def _des_rounds(value: int, round_keys) -> int:
    """16 Feistel rounds (incl. the final half swap), no IP/FP.

    Input and output are in post-IP bit order, so passes compose directly
    — which is how :class:`TripleDESKernel` drops the interior FP∘IP pairs.
    """
    e0, e1, e2, e3 = _E_TAB
    sp0, sp1, sp2, sp3, sp4, sp5, sp6, sp7 = _SP
    left = (value >> 32) & 0xFFFFFFFF
    right = value & 0xFFFFFFFF
    for key in round_keys:
        x = (e0[right >> 24] | e1[(right >> 16) & 0xFF]
             | e2[(right >> 8) & 0xFF] | e3[right & 0xFF]) ^ key
        f = (sp0[(x >> 42) & 0x3F] ^ sp1[(x >> 36) & 0x3F]
             ^ sp2[(x >> 30) & 0x3F] ^ sp3[(x >> 24) & 0x3F]
             ^ sp4[(x >> 18) & 0x3F] ^ sp5[(x >> 12) & 0x3F]
             ^ sp6[(x >> 6) & 0x3F] ^ sp7[x & 0x3F])
        left, right = right, left ^ f
    return (right << 32) | left


# ---------------------------------------------------------------------------
# numpy array kernels: the top rung of the backend ladder.  The same
# T-table / bit-packed formulations as above, with every per-block loop
# replaced by a gather over the whole batch — the software analogue of the
# survey engines' wide data-parallel datapaths.  Selected at import by
# :func:`_init_numpy_backend` behind an equivalence probe (the
# ``HASHLIB_BACKED`` pattern); any mismatch demotes the whole process to
# the scalar kernels with a one-line warning.
# ---------------------------------------------------------------------------

#: True only when ``repro.backend`` chose the numpy rung *and* the array
#: kernels reproduced the scalar kernels bit-for-bit at import time.
NUMPY_BACKED = False

_np = None          # the numpy module once the probe has passed
_NPT = {}           # numpy mirrors of the lookup tables, built by the probe

#: Minimum batch width (blocks) for the array paths.  A numpy round costs
#: roughly the same at any width, so narrow calls — the per-line fill /
#: writeback shape — stay on the scalar kernels and wide calls (installs,
#: region decrypts, pad batches) take the gathers.
NUMPY_MIN_BLOCKS_AES = 32
NUMPY_MIN_BLOCKS_DES = 32


def _build_numpy_tables(np) -> dict:
    u32, u64 = np.uint32, np.uint64
    return {
        "te": tuple(np.array(t, dtype=u32) for t in _TE),
        "td": tuple(np.array(t, dtype=u32) for t in _TD),
        "sbox": np.array(SBOX, dtype=u32),
        "inv_sbox": np.array(INV_SBOX, dtype=u32),
        "ip": tuple(np.array(t, dtype=u64) for t in _IP_TAB),
        "fp": tuple(np.array(t, dtype=u64) for t in _FP_TAB),
        "e": tuple(np.array(t, dtype=u64) for t in _E_TAB),
        "sp": tuple(np.array(t, dtype=u64) for t in _SP),
    }


def _np_aes_crypt(kernel: "AESKernel", data: bytes, encrypt: bool) -> bytes:
    """All AES rounds as gathers over the whole batch at once."""
    np = _np
    if encrypt:
        t0, t1, t2, t3 = _NPT["te"]
        last = _NPT["sbox"]
        ks = kernel._ek_np
        if ks is None:
            ks = kernel._ek_np = np.array(
                kernel._ek, dtype=np.uint32).reshape(-1, 4)
    else:
        t0, t1, t2, t3 = _NPT["td"]
        last = _NPT["inv_sbox"]
        ks = kernel._dk_np
        if ks is None:
            ks = kernel._dk_np = np.array(
                kernel._dk, dtype=np.uint32).reshape(-1, 4)
    w = np.frombuffer(data, dtype=">u4").astype(np.uint32).reshape(-1, 4)
    k = ks[0]
    w0 = w[:, 0] ^ k[0]
    w1 = w[:, 1] ^ k[1]
    w2 = w[:, 2] ^ k[2]
    w3 = w[:, 3] ^ k[3]
    # Encrypt rows rotate left through the columns, decrypt rows rotate
    # right — mirror the scalar loops' index patterns exactly.
    a, b, c = (1, 2, 3) if encrypt else (3, 2, 1)
    cols = (w0, w1, w2, w3)
    for rnd in range(1, kernel._rounds):
        k = ks[rnd]
        w0, w1, w2, w3 = (
            t0[cols[0] >> 24] ^ t1[(cols[a] >> 16) & 0xFF]
            ^ t2[(cols[2] >> 8) & 0xFF] ^ t3[cols[c] & 0xFF] ^ k[0],
            t0[cols[1] >> 24] ^ t1[(cols[(1 + a) & 3] >> 16) & 0xFF]
            ^ t2[(cols[3] >> 8) & 0xFF] ^ t3[cols[(1 + c) & 3] & 0xFF] ^ k[1],
            t0[cols[2] >> 24] ^ t1[(cols[(2 + a) & 3] >> 16) & 0xFF]
            ^ t2[(cols[0] >> 8) & 0xFF] ^ t3[cols[(2 + c) & 3] & 0xFF] ^ k[2],
            t0[cols[3] >> 24] ^ t1[(cols[(3 + a) & 3] >> 16) & 0xFF]
            ^ t2[(cols[1] >> 8) & 0xFF] ^ t3[cols[(3 + c) & 3] & 0xFF] ^ k[3],
        )
        cols = (w0, w1, w2, w3)
    k = ks[kernel._rounds]
    out = np.empty(w.shape, dtype=np.uint32)
    for i in range(4):
        out[:, i] = (
            (last[cols[i] >> 24] << 24)
            | (last[(cols[(i + a) & 3] >> 16) & 0xFF] << 16)
            | (last[(cols[(i + 2) & 3] >> 8) & 0xFF] << 8)
            | last[cols[(i + c) & 3] & 0xFF]
        ) ^ k[i]
    return out.astype(">u4").tobytes()


def _np_perm64(v, tabs):
    r = tabs[0][(v >> 56) & 0xFF] | tabs[1][(v >> 48) & 0xFF]
    r |= tabs[2][(v >> 40) & 0xFF] | tabs[3][(v >> 32) & 0xFF]
    r |= tabs[4][(v >> 24) & 0xFF] | tabs[5][(v >> 16) & 0xFF]
    r |= tabs[6][(v >> 8) & 0xFF] | tabs[7][v & 0xFF]
    return r


def _np_des_crypt(data: bytes, chains) -> bytes:
    """One IP, 16 gathered rounds per chain link, one FP — whole batch.

    ``chains`` is a tuple of uint64 round-key arrays: one entry for DES,
    three (the EDE composition with the interior FP∘IP pairs dropped) for
    3DES, mirroring the scalar kernels exactly.
    """
    np = _np
    e0, e1, e2, e3 = _NPT["e"]
    sp0, sp1, sp2, sp3, sp4, sp5, sp6, sp7 = _NPT["sp"]
    v = _np_perm64(np.frombuffer(data, dtype=">u8").astype(np.uint64),
                   _NPT["ip"])
    left = v >> 32
    right = v & 0xFFFFFFFF
    for keys in chains:
        for key in keys:
            x = (e0[right >> 24] | e1[(right >> 16) & 0xFF]
                 | e2[(right >> 8) & 0xFF] | e3[right & 0xFF]) ^ key
            f = (sp0[(x >> 42) & 0x3F] ^ sp1[(x >> 36) & 0x3F]
                 ^ sp2[(x >> 30) & 0x3F] ^ sp3[(x >> 24) & 0x3F]
                 ^ sp4[(x >> 18) & 0x3F] ^ sp5[(x >> 12) & 0x3F]
                 ^ sp6[(x >> 6) & 0x3F] ^ sp7[x & 0x3F])
            left, right = right, left ^ f
        # The final half swap of each 16-round pass.
        left, right = right, left
    return _np_perm64((left << 32) | right,
                      _NPT["fp"]).astype(">u8").tobytes()


def _numpy_ok() -> bool:
    """Equivalence probe: array kernels must reproduce the scalar kernels
    bit-for-bit on a batch covering every byte value, for AES-128/256,
    DES and 3DES, both directions."""
    global _NPT, _np
    np = _backend.NUMPY
    if np is None:
        return False
    _np = np
    _NPT = _build_numpy_tables(np)
    data = bytes((i * 37 + 11) & 0xFF for i in range(1024))
    for key_len in (16, 32):
        kernel = AESKernel(bytes(range(key_len)))
        ct = kernel._encrypt_blocks_scalar(data)
        if _np_aes_crypt(kernel, data, encrypt=True) != ct:
            return False
        if _np_aes_crypt(kernel, ct, encrypt=False) != data:
            return False
    des = DESKernel(bytes(range(8)))
    ct = des._crypt_blocks(data, des._keys)
    enc_np, dec_np = des._np_schedules()
    if _np_des_crypt(data, enc_np) != ct:
        return False
    if _np_des_crypt(ct, dec_np) != data:
        return False
    tdes = TripleDESKernel(bytes(range(24)))
    ct = tdes._crypt_blocks(data, tdes._enc)
    enc_np, dec_np = tdes._np_schedules()
    if _np_des_crypt(data, enc_np) != ct:
        return False
    if _np_des_crypt(ct, dec_np) != data:
        return False
    return True


def _init_numpy_backend(probe: Callable[[], bool] = None) -> bool:
    """Settle the numpy rung at import; tests inject a failing ``probe``
    to exercise the graceful-degradation path."""
    global NUMPY_BACKED, _np
    NUMPY_BACKED = False
    _np = None
    if _backend.ACTIVE != "numpy":
        return False
    try:
        ok = bool((probe or _numpy_ok)())
    except Exception:
        ok = False
    if ok:
        _np = _backend.NUMPY
        NUMPY_BACKED = True
    else:
        _np = None
        _backend.demote("array-kernel equivalence probe failed")
    return NUMPY_BACKED


class DESKernel:
    """Bit-packed DES, byte-identical to :class:`repro.crypto.des.DES`."""

    block_size = 8
    key_size = 8

    def __init__(self, key: bytes):
        if len(key) != 8:
            raise ValueError(f"DES key must be 8 bytes, got {len(key)}")
        self._keys = tuple(_key_schedule(int.from_bytes(key, "big")))
        self._rev_keys = tuple(reversed(self._keys))
        self._keys_np = self._rev_keys_np = None

    def __deepcopy__(self, memo):
        # Immutable after construction (see AESKernel.__deepcopy__).
        return self

    @classmethod
    def from_cipher(cls, cipher: DES) -> "DESKernel":
        kernel = cls.__new__(cls)
        kernel._keys = tuple(cipher._round_keys)
        kernel._rev_keys = tuple(reversed(kernel._keys))
        kernel._keys_np = kernel._rev_keys_np = None
        return kernel

    def _np_schedules(self):
        if self._keys_np is None:
            np = _np
            self._keys_np = (np.array(self._keys, dtype=np.uint64),)
            self._rev_keys_np = (np.array(self._rev_keys, dtype=np.uint64),)
        return self._keys_np, self._rev_keys_np

    def _crypt_blocks(self, data: bytes, keys) -> bytes:
        if len(data) % 8:
            raise ValueError(
                f"data length {len(data)} is not a multiple of block size 8"
            )
        out = bytearray(len(data))
        for base in range(0, len(data), 8):
            v = _perm64(int.from_bytes(data[base: base + 8], "big"), _IP_TAB)
            out[base: base + 8] = _perm64(
                _des_rounds(v, keys), _FP_TAB
            ).to_bytes(8, "big")
        return bytes(out)

    def encrypt_blocks(self, data: bytes) -> bytes:
        if NUMPY_BACKED and len(data) >= NUMPY_MIN_BLOCKS_DES * 8 \
                and len(data) % 8 == 0:
            return _np_des_crypt(data, self._np_schedules()[0])
        return self._crypt_blocks(data, self._keys)

    def decrypt_blocks(self, data: bytes) -> bytes:
        if NUMPY_BACKED and len(data) >= NUMPY_MIN_BLOCKS_DES * 8 \
                and len(data) % 8 == 0:
            return _np_des_crypt(data, self._np_schedules()[1])
        return self._crypt_blocks(data, self._rev_keys)

    def encrypt_block(self, block: bytes) -> bytes:
        if len(block) != 8:
            raise ValueError(f"DES block must be 8 bytes, got {len(block)}")
        return self.encrypt_blocks(block)

    def decrypt_block(self, block: bytes) -> bytes:
        if len(block) != 8:
            raise ValueError(f"DES block must be 8 bytes, got {len(block)}")
        return self.decrypt_blocks(block)


class TripleDESKernel:
    """Bit-packed 3DES-EDE, byte-identical to
    :class:`repro.crypto.des.TripleDES`.

    The interior FP∘IP permutation pairs of the EDE composition cancel
    (FP is IP's inverse), so each block pays one IP, 48 packed rounds and
    one FP.
    """

    block_size = 8

    def __init__(self, key: bytes):
        if len(key) == 8:
            k1 = k2 = k3 = key
        elif len(key) == 16:
            k1, k2, k3 = key[:8], key[8:], key[:8]
        elif len(key) == 24:
            k1, k2, k3 = key[:8], key[8:16], key[16:]
        else:
            raise ValueError(
                f"3DES key must be 8, 16 or 24 bytes, got {len(key)}"
            )
        self._init_schedules(
            _key_schedule(int.from_bytes(k1, "big")),
            _key_schedule(int.from_bytes(k2, "big")),
            _key_schedule(int.from_bytes(k3, "big")),
        )

    def __deepcopy__(self, memo):
        # Immutable after construction (see AESKernel.__deepcopy__).
        return self

    @classmethod
    def from_cipher(cls, cipher: TripleDES) -> "TripleDESKernel":
        kernel = cls.__new__(cls)
        kernel._init_schedules(
            cipher._d1._round_keys, cipher._d2._round_keys,
            cipher._d3._round_keys,
        )
        return kernel

    def _init_schedules(self, ks1, ks2, ks3) -> None:
        # Encrypt: E(K1) -> D(K2) -> E(K3); decrypt reverses the chain.
        self._enc = (tuple(ks1), tuple(reversed(ks2)), tuple(ks3))
        self._dec = (tuple(reversed(ks3)), tuple(ks2), tuple(reversed(ks1)))
        self._enc_np = self._dec_np = None

    def _np_schedules(self):
        if self._enc_np is None:
            np = _np
            self._enc_np = tuple(
                np.array(k, dtype=np.uint64) for k in self._enc)
            self._dec_np = tuple(
                np.array(k, dtype=np.uint64) for k in self._dec)
        return self._enc_np, self._dec_np

    @staticmethod
    def _crypt_blocks(data: bytes, schedules) -> bytes:
        if len(data) % 8:
            raise ValueError(
                f"data length {len(data)} is not a multiple of block size 8"
            )
        ka, kb, kc = schedules
        out = bytearray(len(data))
        for base in range(0, len(data), 8):
            v = _perm64(int.from_bytes(data[base: base + 8], "big"), _IP_TAB)
            v = _des_rounds(_des_rounds(_des_rounds(v, ka), kb), kc)
            out[base: base + 8] = _perm64(v, _FP_TAB).to_bytes(8, "big")
        return bytes(out)

    def encrypt_blocks(self, data: bytes) -> bytes:
        if NUMPY_BACKED and len(data) >= NUMPY_MIN_BLOCKS_DES * 8 \
                and len(data) % 8 == 0:
            return _np_des_crypt(data, self._np_schedules()[0])
        return self._crypt_blocks(data, self._enc)

    def decrypt_blocks(self, data: bytes) -> bytes:
        if NUMPY_BACKED and len(data) >= NUMPY_MIN_BLOCKS_DES * 8 \
                and len(data) % 8 == 0:
            return _np_des_crypt(data, self._np_schedules()[1])
        return self._crypt_blocks(data, self._dec)

    def encrypt_block(self, block: bytes) -> bytes:
        if len(block) != 8:
            raise ValueError(f"DES block must be 8 bytes, got {len(block)}")
        return self.encrypt_blocks(block)

    def decrypt_block(self, block: bytes) -> bytes:
        if len(block) != 8:
            raise ValueError(f"DES block must be 8 bytes, got {len(block)}")
        return self.decrypt_blocks(block)


class ReferenceKernel:
    """Per-block adapter giving an algebraic reference cipher the batched
    kernel API — the ``python`` rung of the backend ladder.  Under
    ``REPRO_BACKEND=python`` the registry hands these out instead of the
    table kernels, so every block goes through the reference GF(2^8) /
    Feistel arithmetic while the engines keep calling one interface."""

    __slots__ = ("_cipher", "block_size")

    def __init__(self, cipher):
        self._cipher = cipher
        self.block_size = cipher.block_size

    def __deepcopy__(self, memo):
        # The reference schedules are immutable after construction too.
        return self

    def _check(self, data: bytes) -> None:
        if len(data) % self.block_size:
            raise ValueError(
                f"data length {len(data)} is not a multiple of block size "
                f"{self.block_size}"
            )

    def encrypt_blocks(self, data: bytes) -> bytes:
        self._check(data)
        enc = self._cipher.encrypt_block
        size = self.block_size
        return b"".join(
            enc(data[i: i + size]) for i in range(0, len(data), size)
        )

    def decrypt_blocks(self, data: bytes) -> bytes:
        self._check(data)
        dec = self._cipher.decrypt_block
        size = self.block_size
        return b"".join(
            dec(data[i: i + size]) for i in range(0, len(data), size)
        )

    def encrypt_block(self, block: bytes) -> bytes:
        return self._cipher.encrypt_block(block)

    def decrypt_block(self, block: bytes) -> bytes:
        return self._cipher.decrypt_block(block)


# ---------------------------------------------------------------------------
# Key-schedule registry: kernels memoized by raw key bytes.  Engines are
# rebuilt wholesale by fault campaigns and sweeps; the registry makes the
# (tables + schedule) cost a once-per-key event for the whole process.
# Under the ``python`` backend the same registry serves reference-cipher
# adapters, so the rung switch is invisible to every caller.
# ---------------------------------------------------------------------------

_REGISTRY: "OrderedDict[Tuple[str, bytes], object]" = OrderedDict()
_REGISTRY_MAX = 128


def _registered(kind: str, key: bytes, factory: Callable):
    entry = (kind, bytes(key))
    kernel = _REGISTRY.get(entry)
    if kernel is None:
        kernel = factory(key)
        _REGISTRY[entry] = kernel
        while len(_REGISTRY) > _REGISTRY_MAX:
            _REGISTRY.popitem(last=False)
    else:
        _REGISTRY.move_to_end(entry)
    return kernel


def aes_kernel(key: bytes) -> "AESKernel":
    """Registry-cached AES kernel (or reference adapter) for ``key``."""
    if _backend.ACTIVE == "python":
        return _registered("aes-ref", key, lambda k: ReferenceKernel(AES(k)))
    return _registered("aes", key, AESKernel)


def des_kernel(key: bytes) -> "DESKernel":
    """Registry-cached DES kernel (or reference adapter) for ``key``."""
    if _backend.ACTIVE == "python":
        return _registered("des-ref", key, lambda k: ReferenceKernel(DES(k)))
    return _registered("des", key, DESKernel)


def tdes_kernel(key: bytes) -> "TripleDESKernel":
    """Registry-cached 3DES kernel (or reference adapter) for ``key``."""
    if _backend.ACTIVE == "python":
        return _registered(
            "3des-ref", key, lambda k: ReferenceKernel(TripleDES(k))
        )
    return _registered("3des", key, TripleDESKernel)


# ---------------------------------------------------------------------------
# Dispatch: route any BlockCipher through its kernel when one exists.
# ---------------------------------------------------------------------------

_KERNEL_TYPES = (AESKernel, DESKernel, TripleDESKernel, ReferenceKernel)
_KERNEL_ATTR = "_repro_kernel"


def kernel_for(cipher):
    """Fast kernel equivalent of ``cipher``, or ``None`` if it has none.

    Reference :class:`AES`/:class:`DES`/:class:`TripleDES` instances get a
    kernel built from their already-expanded schedule, memoized on the
    instance; kernels pass through unchanged; anything else returns
    ``None`` (callers fall back to the cipher's own per-block methods).
    Under ``REPRO_BACKEND=python`` reference ciphers are *not* promoted —
    the whole point of the rung is that their own arithmetic runs.
    """
    if isinstance(cipher, _KERNEL_TYPES):
        return cipher
    kernel = getattr(cipher, _KERNEL_ATTR, None)
    if kernel is not None:
        return kernel
    if _backend.ACTIVE == "python":
        return None
    if isinstance(cipher, AES):
        kernel = AESKernel.from_cipher(cipher)
    elif isinstance(cipher, TripleDES):
        kernel = TripleDESKernel.from_cipher(cipher)
    elif isinstance(cipher, DES):
        kernel = DESKernel.from_cipher(cipher)
    else:
        return None
    setattr(cipher, _KERNEL_ATTR, kernel)
    return kernel


def encrypt_blocks(cipher, data: bytes) -> bytes:
    """ECB-encrypt ``data`` through ``cipher``'s kernel, batched."""
    kernel = kernel_for(cipher)
    if kernel is not None:
        return kernel.encrypt_blocks(data)
    size = cipher.block_size
    if len(data) % size:
        raise ValueError(
            f"data length {len(data)} is not a multiple of block size {size}"
        )
    enc = cipher.encrypt_block
    return b"".join(enc(data[i: i + size]) for i in range(0, len(data), size))


def decrypt_blocks(cipher, data: bytes) -> bytes:
    """ECB-decrypt ``data`` through ``cipher``'s kernel, batched."""
    kernel = kernel_for(cipher)
    if kernel is not None:
        return kernel.decrypt_blocks(data)
    size = cipher.block_size
    if len(data) % size:
        raise ValueError(
            f"data length {len(data)} is not a multiple of block size {size}"
        )
    dec = cipher.decrypt_block
    return b"".join(dec(data[i: i + size]) for i in range(0, len(data), size))


def ctr_pad(cipher, addr: int, nbytes: int,
            counter_block: Callable[[int], bytes]) -> bytes:
    """Keystream covering ``[addr, addr + nbytes)`` in one batched pass.

    ``counter_block(block_addr)`` formats the counter block for the
    cipher-block-aligned address — each engine keeps its own layout (pad
    tag, version, line index...).  The blocks are enciphered through one
    :func:`encrypt_blocks` call instead of a per-block loop, which is the
    pad-ahead shape of the stream engines' miss path.
    """
    size = cipher.block_size
    start = addr - addr % size
    end = -(-(addr + nbytes) // size) * size
    blocks = b"".join(
        counter_block(block_addr) for block_addr in range(start, end, size)
    )
    pad = encrypt_blocks(cipher, blocks)
    offset = addr - start
    return pad[offset: offset + nbytes]


# Settle the backend ladder's top rung now that every kernel class the
# probe needs is defined.  On failure this demotes ``repro.backend`` to
# the kernel rung with a one-line warning — never a crash.
_init_numpy_backend()
