"""Cryptographic primitives, all implemented from scratch.

Block ciphers (:class:`DES`, :class:`TripleDES`, :class:`AES`,
:class:`TweakableFeistel`, :class:`BestCipher`), stream generators
(:class:`RC4`, LFSR combiners), modes of operation, SHA-256/HMAC, RSA and a
deterministic DRBG.  These are the functional cores of every bus-encryption
engine in :mod:`repro.core`.
"""

from .address_scrambler import AddressScrambler
from .aes import AES
from .best_cipher import BestCipher
from .des import DES, TripleDES
from .drbg import DRBG
from .feistel import SmallBlockCipher, TweakableFeistel
from .hmac import consttime_eq, hmac_sha256, prf, verify_hmac
from .kernels import (
    AESKernel,
    DESKernel,
    TripleDESKernel,
    aes_kernel,
    ctr_pad,
    des_kernel,
    kernel_for,
    tdes_kernel,
)
from .lfsr import LFSR, AlternatingStepGenerator, GeffeGenerator
from .modes import CBC, CFB, CTR, ECB, OFB, xor_bytes
from .padding import PaddingError, pad, unpad
from .rc4 import RC4
from .rsa import RSAKeyPair, RSAPrivateKey, RSAPublicKey, generate_keypair
from .sha256 import SHA256, sha256

__all__ = [
    "AddressScrambler", "AES", "BestCipher", "DES", "TripleDES", "DRBG",
    "SmallBlockCipher", "TweakableFeistel",
    "consttime_eq", "hmac_sha256", "prf", "verify_hmac",
    "AESKernel", "DESKernel", "TripleDESKernel",
    "aes_kernel", "des_kernel", "tdes_kernel",
    "kernel_for", "ctr_pad",
    "LFSR", "AlternatingStepGenerator", "GeffeGenerator",
    "CBC", "CFB", "CTR", "ECB", "OFB", "xor_bytes",
    "PaddingError", "pad", "unpad",
    "RC4",
    "RSAKeyPair", "RSAPrivateKey", "RSAPublicKey", "generate_keypair",
    "SHA256", "sha256",
]
