"""Keyed address-bus scrambler.

Best's crypto-microprocessor and the Dallas DS5002FP encipher not only the
data bus but the *address* bus: "all data and addresses are in decrypted
form inside the CPU and encrypted outside the SOC" (survey §3).  The
scrambler is a keyed bijection over the external address space, so a probe
sees program fetches walking a pseudo-random path through physical memory
rather than the program counter.

Implementation: the tweakable Feistel over ``log2(size)`` bits (so the map
is a true permutation of the decode space).  Odd widths are handled by
cycle-walking over the next even width.
"""

from __future__ import annotations

from .feistel import TweakableFeistel

__all__ = ["AddressScrambler"]


class AddressScrambler:
    """Keyed bijection on [0, size) for a power-of-two ``size``."""

    def __init__(self, key: bytes, size: int, rounds: int = 6):
        if size < 4 or size & (size - 1):
            raise ValueError(f"size must be a power of two >= 4, got {size}")
        self.size = size
        bits = size.bit_length() - 1
        # Balanced Feistel needs an even width; walk cycles for odd widths.
        self._bits = bits + (bits % 2)
        self._feistel = TweakableFeistel(
            key, block_bits=self._bits, rounds=rounds
        )

    def scramble(self, addr: int) -> int:
        """Logical -> physical."""
        if not 0 <= addr < self.size:
            raise ValueError(f"address {addr:#x} outside [0, {self.size:#x})")
        value = addr
        while True:
            value = self._feistel.encrypt_int(value, tweak=0)
            if value < self.size:
                return value

    def unscramble(self, addr: int) -> int:
        """Physical -> logical."""
        if not 0 <= addr < self.size:
            raise ValueError(f"address {addr:#x} outside [0, {self.size:#x})")
        value = addr
        while True:
            value = self._feistel.decrypt_int(value, tweak=0)
            if value < self.size:
                return value

    def __call__(self, addr: int) -> int:
        return self.scramble(addr)
