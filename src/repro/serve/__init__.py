"""Simulation-as-a-service: the asyncio experiment server.

The serve layer puts the experiment registry and the campaign
coordinator behind a socket so many clients can sweep the design space
concurrently without recomputing shared points:

* :mod:`repro.serve.protocol` — the length-prefixed JSON frame codec
  (requests, responses, typed errors, explicit ``overloaded`` frames)
  plus the :class:`FrameStream` client helper;
* :mod:`repro.serve.server` — :class:`ExperimentServer`: per-connection
  asyncio state machines with frame size limits and idle timeouts,
  bounded admission, and executions running on the existing
  :func:`repro.runner.fork_pool` off the event loop;
* :mod:`repro.serve.handlers` — the op table (``ping`` /
  ``list_experiments`` / ``run_experiment`` / ``run_campaign`` / …)
  and the picklable worker-side executors;
* :mod:`repro.serve.dedup` — the in-flight table keyed on
  :meth:`repro.runner.ResultCache.task_key` that coalesces concurrent
  identical requests into one execution backed by the on-disk cache;
* :mod:`repro.serve.loadgen` — the load generator
  (``python -m repro.serve.loadgen``) that hammers a server with
  thousands of concurrent synthetic clients and writes
  ``BENCH_serve_quick.json``.

Entry point: ``python -m repro.cli serve``.  Server-returned metrics are
byte-identical (``stable_floats`` + canonical JSON) to local
:func:`repro.api.run_experiment` / :func:`repro.api.run_campaign` runs —
the serve layer adds transport, caching, and admission, never a second
numeric path.
"""

from .dedup import InflightTable
from .protocol import (
    DEFAULT_MAX_FRAME,
    FrameDecodeError,
    FrameDecoder,
    FrameStream,
    FrameTooLarge,
    ProtocolError,
    encode_frame,
    error_frame,
    overloaded_frame,
    request_frame,
    response_frame,
)
from .server import ExperimentServer

__all__ = [
    "DEFAULT_MAX_FRAME",
    "ExperimentServer",
    "FrameDecodeError",
    "FrameDecoder",
    "FrameStream",
    "FrameTooLarge",
    "InflightTable",
    "ProtocolError",
    "encode_frame",
    "error_frame",
    "overloaded_frame",
    "request_frame",
    "response_frame",
]
