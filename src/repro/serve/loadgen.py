"""Load generator for the experiment server.

Hammers a server with thousands of concurrent synthetic clients and
reports latency percentiles, throughput, dedup/cache accounting, and a
server-vs-local byte-identity check::

    python -m repro.serve.loadgen                    # spawn + bench
    python -m repro.serve.loadgen --smoke            # CI smoke run
    python -m repro.serve.loadgen --host H --port P  # against a live server

Without ``--port`` the loadgen spawns ``python -m repro.cli serve`` as a
subprocess on an ephemeral port with a fresh temporary cache, so every
bench run tells the same story: one execution per distinct request key,
everything else coalesced or replayed.

Three phases:

* **ping** — every client round-trips ``--pings`` ping frames: pure
  protocol/event-loop latency and throughput;
* **experiment** — every client requests the *same*
  ``run_experiment`` concurrently: the dedup table collapses N requests
  into one execution and the phase measures fan-out latency;
* **verify** — the experiment document and a small campaign document
  fetched from the server are compared byte-for-byte
  (``to_canonical_json``) against local :func:`repro.api.run_experiment`
  / :func:`repro.api.run_campaign` runs.

Every request must come back as a typed ``response``/``error``/
``overloaded`` frame; anything else counts as a silent drop and fails
the run.  Results land in ``--out`` (``BENCH_serve_quick.json`` for
``make serve-bench``).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import re
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import List, Optional

from .protocol import FrameStream

__all__ = ["run_loadgen", "main"]

#: Campaign spec for the verify phase: a 2x2x2 overhead micro-grid.
VERIFY_CAMPAIGN = {
    "name": "serve-verify",
    "kind": "overhead",
    "engines": ["stream", "xom"],
    "workloads": ["mixed", "sequential"],
    "accesses": [256],
    "cache_sizes": [1024, 4096],
    "line_sizes": [32],
    "associativities": [2],
    "latencies": [20],
    "seeds": [2005],
}


def _percentile(sorted_values: List[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1,
                int(round(q * (len(sorted_values) - 1))))
    return sorted_values[index]


def _latency_stats(latencies: List[float], wall: float) -> dict:
    values = sorted(latencies)
    return {
        "requests": len(values),
        "wall_seconds": round(wall, 3),
        "throughput_rps": round(len(values) / wall, 1) if wall else 0.0,
        "p50_ms": round(_percentile(values, 0.50) * 1000, 3),
        "p99_ms": round(_percentile(values, 0.99) * 1000, 3),
        "max_ms": round(values[-1] * 1000, 3) if values else 0.0,
        "mean_ms": round(sum(values) / len(values) * 1000, 3)
        if values else 0.0,
    }


class _Tally:
    """What came back, per reply type; anything missing is a drop."""

    def __init__(self):
        self.responses = 0
        self.errors = 0
        self.overloaded = 0
        self.dropped = 0

    def count(self, reply: Optional[dict]) -> None:
        kind = reply.get("type") if isinstance(reply, dict) else None
        if kind == "response":
            self.responses += 1
        elif kind == "error":
            self.errors += 1
        elif kind == "overloaded":
            self.overloaded += 1
        else:
            self.dropped += 1

    def to_dict(self) -> dict:
        return dict(vars(self))


async def _client(host: str, port: int, requests: List[dict],
                  latencies: List[float], tally: _Tally,
                  keep: Optional[List[dict]] = None) -> None:
    """One synthetic client: connect, round-trip each request, close."""
    try:
        stream = await FrameStream.connect(host, port)
    except OSError:
        tally.dropped += len(requests)
        return
    try:
        for frame in requests:
            start = time.perf_counter()
            try:
                await stream.send(frame)
                reply = await stream.recv(timeout=120.0)
            except (OSError, asyncio.TimeoutError):
                reply = None
            latencies.append(time.perf_counter() - start)
            tally.count(reply)
            if keep is not None and isinstance(reply, dict):
                keep.append(reply)
    finally:
        await stream.close()


async def run_loadgen(host: str, port: int, *, clients: int, pings: int,
                      experiment: str, quick: bool = True,
                      verify: bool = True,
                      log=lambda line: None) -> dict:
    """Run the three load phases; returns the bench document body."""
    doc: dict = {"phases": {}}
    tally = _Tally()

    # Phase 1: ping storm -- clients x pings pure round trips.
    log(f"ping phase: {clients} clients x {pings} pings")
    latencies: List[float] = []
    start = time.perf_counter()
    await asyncio.gather(*(
        _client(host, port,
                [{"op": "ping", "id": f"p{i}.{r}",
                  "params": {"payload": i}} for r in range(pings)],
                latencies, tally)
        for i in range(clients)
    ))
    doc["phases"]["ping"] = _latency_stats(
        latencies, time.perf_counter() - start)

    # Phase 2: identical experiment storm -- the dedup showcase.
    log(f"experiment phase: {clients} clients x run_experiment"
        f"({experiment!r}, quick={quick})")
    latencies = []
    replies: List[dict] = []
    request = {"op": "run_experiment", "id": "x",
               "params": {"experiment": experiment, "quick": quick}}
    start = time.perf_counter()
    await asyncio.gather(*(
        _client(host, port, [dict(request, id=f"x{i}")],
                latencies, tally, keep=replies)
        for i in range(clients)
    ))
    doc["phases"]["experiment"] = _latency_stats(
        latencies, time.perf_counter() - start)
    served_from = {}
    for reply in replies:
        if reply.get("type") == "response":
            src = reply.get("served_from", "?")
            served_from[src] = served_from.get(src, 0) + 1
    doc["phases"]["experiment"]["served_from"] = served_from

    # Phase 3: byte-identity verification + server accounting.
    stream = await FrameStream.connect(host, port)
    try:
        if verify:
            log("verify phase: server vs local byte-identity")
            doc["byte_identity"] = await _verify(
                stream, replies, experiment, quick)
        stats = await stream.request("stats", id="stats")
        doc["server"] = (stats or {}).get("result")
    finally:
        await stream.close()

    doc["tally"] = tally.to_dict()
    doc["silent_drops"] = tally.dropped
    return doc


async def _verify(stream: FrameStream, replies: List[dict],
                  experiment: str, quick: bool) -> dict:
    """Server documents must be the same bytes as local runs."""
    from ..api import run_campaign, run_experiment
    from ..campaign import CampaignSpec
    from ..runner import to_canonical_json

    server_docs = [r["result"] for r in replies
                   if r.get("type") == "response"]
    local_doc = run_experiment(experiment, quick=quick).to_document()
    local_bytes = to_canonical_json(local_doc)
    experiment_ok = bool(server_docs) and all(
        to_canonical_json(doc) == local_bytes for doc in server_docs)

    reply = await stream.request(
        "run_campaign", {"spec": VERIFY_CAMPAIGN}, id="campaign")
    campaign_ok = False
    points = 0
    if isinstance(reply, dict) and reply.get("type") == "response":
        server_metrics = reply["result"]["metrics"]
        local = run_campaign(CampaignSpec.from_dict(VERIFY_CAMPAIGN),
                             workers=1, cache_dir=None)
        campaign_ok = (to_canonical_json(server_metrics)
                       == local.metrics_json())
        points = len(server_metrics.get("points", {}))

    return {
        "experiment": experiment_ok,
        "experiment_responses_compared": len(server_docs),
        "campaign": campaign_ok,
        "campaign_points": points,
    }


# -- server spawning -------------------------------------------------------


class _SpawnedServer:
    """``python -m repro.cli serve`` as a child process, ephemeral port."""

    def __init__(self, workers: int, cache_dir: str,
                 max_pending: int):
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--host", "127.0.0.1", "--port", "0",
             "--workers", str(workers),
             "--max-pending", str(max_pending),
             "--cache-dir", cache_dir],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )
        self.port = self._await_port()

    def _await_port(self) -> int:
        assert self.proc.stdout is not None
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            line = self.proc.stdout.readline()
            if not line:
                break
            match = re.search(r"listening on [\d.]+:(\d+)", line)
            if match:
                return int(match.group(1))
        raise RuntimeError("server did not report a listening port")

    async def shutdown(self) -> int:
        """Ask for a draining shutdown; returns the exit code."""
        try:
            stream = await FrameStream.connect("127.0.0.1", self.port)
            try:
                await stream.request("shutdown", id="bye", timeout=30.0)
            finally:
                await stream.close()
        except OSError:
            pass
        try:
            return self.proc.wait(timeout=60)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            return self.proc.wait()


def _raise_fd_limit(wanted: int) -> None:
    """Thousands of concurrent sockets need headroom on RLIMIT_NOFILE."""
    try:
        import resource

        soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
        if soft < wanted:
            resource.setrlimit(
                resource.RLIMIT_NOFILE,
                (min(wanted, hard) if hard > 0 else wanted, hard))
    except (ImportError, ValueError, OSError):
        pass


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.serve.loadgen",
        description="Hammer the experiment server with concurrent "
                    "synthetic clients; report latency and dedup stats.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=None,
                        help="connect to a live server (default: spawn "
                             "one on an ephemeral port)")
    parser.add_argument("--clients", type=int, default=1000,
                        help="concurrent synthetic clients per phase")
    parser.add_argument("--pings", type=int, default=2,
                        help="ping round trips per client in phase 1")
    parser.add_argument("--experiment", default="e01",
                        help="registry experiment for the storm phase")
    parser.add_argument("--full", action="store_true",
                        help="request full-size (not quick) experiments")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker processes for a spawned server")
    parser.add_argument("--max-pending", type=int, default=64,
                        help="admission bound for a spawned server")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write the bench JSON here")
    parser.add_argument("--smoke", action="store_true",
                        help="reduced load (200 clients), no file output "
                             "unless --out; exit nonzero on any failure")
    parser.add_argument("-q", "--quiet", action="store_true")
    args = parser.parse_args(argv)

    log = (lambda line: None) if args.quiet \
        else (lambda line: print(f"loadgen: {line}", flush=True))
    clients = 200 if args.smoke and args.clients == 1000 else args.clients
    _raise_fd_limit(2 * clients + 256)

    spawned = None
    tmp = None
    if args.port is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-serve-")
        log(f"spawning server (workers={args.workers}, fresh cache)")
        spawned = _SpawnedServer(args.workers, tmp.name, args.max_pending)
        host, port = "127.0.0.1", spawned.port
        log(f"server up on {host}:{port}")
    else:
        host, port = args.host, args.port

    try:
        body = asyncio.run(run_loadgen(
            host, port, clients=clients, pings=args.pings,
            experiment=args.experiment, quick=not args.full, log=log,
        ))
    finally:
        if spawned is not None:
            exit_code = asyncio.run(spawned.shutdown())
            body_extra = {"spawned_server_exit": exit_code}
            log(f"server shut down cleanly (exit {exit_code})"
                if exit_code == 0 else
                f"server exited {exit_code} — NOT a clean shutdown")
        if tmp is not None:
            tmp.cleanup()
    if spawned is not None:
        body.update(body_extra)

    if spawned is not None:
        # The spawned server's cache lives in a fresh temp dir; the
        # machine-specific path has no place in a committed document.
        cache_stats = body.get("server", {}).get("cache")
        if isinstance(cache_stats, dict) and "dir" in cache_stats:
            cache_stats["dir"] = "(ephemeral)"

    document = {
        "schema": "repro-serve-bench/1",
        "config": {
            "clients": clients,
            "pings_per_client": args.pings,
            "experiment": args.experiment,
            "quick": not args.full,
            "spawned": spawned is not None,
            "workers": args.workers if spawned is not None else None,
        },
        **body,
    }

    if args.out:
        out = Path(args.out)
        out.write_text(json.dumps(document, indent=2, sort_keys=True)
                       + "\n", encoding="utf-8")
        log(f"bench -> {out}")

    ping = document["phases"]["ping"]
    exp = document["phases"]["experiment"]
    identity = document.get("byte_identity", {})
    print(f"loadgen: {clients} clients | ping p50 {ping['p50_ms']}ms "
          f"p99 {ping['p99_ms']}ms @ {ping['throughput_rps']} rps | "
          f"experiment p50 {exp['p50_ms']}ms p99 {exp['p99_ms']}ms | "
          f"served {exp.get('served_from', {})}")

    failures = []
    if document["silent_drops"]:
        failures.append(f"{document['silent_drops']} silent drops")
    if not identity.get("experiment", True):
        failures.append("experiment byte-identity FAILED")
    if not identity.get("campaign", True):
        failures.append("campaign byte-identity FAILED")
    if spawned is not None and document.get("spawned_server_exit") != 0:
        failures.append("server shutdown was not clean")
    if failures:
        print(f"loadgen: FAILED — {'; '.join(failures)}", file=sys.stderr)
        return 1
    print("loadgen: ok — zero silent drops, byte-identity holds"
          + (", clean shutdown" if spawned is not None else ""))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
