"""Request handlers and worker-side executors for the experiment server.

Three tiers of ops:

* *cheap* ops (``ping``, ``list_experiments``, ``list_engines``,
  ``stats``, ``shutdown``) are answered inline on the event loop;
* *compute* ops (``run_experiment``, ``run_campaign``, ``run_stream``)
  are validated here, keyed with :meth:`ResultCache.task_key`, and
  executed off the event loop (fork pool or thread) via the
  module-level functions in :data:`EXECUTORS` — module-level so the
  fork pool can send them to worker processes by reference;
* *stream* ops (``trace_begin`` / ``trace_chunk`` / ``trace_end``,
  :data:`STREAM_OPS`) carry a client's live trace over the framed
  protocol into a per-connection :class:`repro.sim.StreamExecutor`
  session — stateful by design, so they bypass dedup and cache.  The
  validation/decoding helpers live here; the session bookkeeping lives
  in :mod:`repro.serve.server`.

Executors return *canonical* documents (``stable_floats`` over a JSON
round trip), the same bytes a local :func:`repro.api.run_experiment` /
:func:`repro.api.run_campaign` / :func:`repro.api.run_stream` call
produces — the serve layer's core invariant, gated by
``tests/test_serve.py`` and the loadgen's byte-identity check.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from ..runner import METRICS_SCHEMA, ResultCache

__all__ = ["RequestError", "CHEAP_OPS", "COMPUTE_OPS", "EXECUTORS",
           "STREAM_OPS", "prepare_execution", "handle_cheap_op",
           "execute_experiment_op", "execute_campaign_op",
           "execute_stream_op", "begin_stream_session", "decode_records",
           "stream_metrics"]


class RequestError(Exception):
    """A request that cannot be executed; maps to a typed error frame."""

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code
        self.message = message


# -- worker-side executors -------------------------------------------------


def execute_experiment_op(experiment_id: str, quick: bool) -> dict:
    """Run one registry experiment; returns its canonical document."""
    from ..api import run_experiment

    return run_experiment(experiment_id, quick=quick).to_document()


def execute_campaign_op(spec_doc: dict, cache_dir: Optional[str]) -> dict:
    """Run one campaign sweep; returns ``{"metrics", "profile"}``.

    Runs in-process inside the worker (``workers=1``) against the
    *server's* cache directory: every completed point publishes
    atomically as it lands, so a server killed mid-campaign leaves its
    finished points behind and the next serve of the same spec resumes
    instead of restarting (``profile.cache.hits`` shows the replay).
    """
    from ..api import run_campaign
    from ..campaign import CampaignSpec

    result = run_campaign(
        CampaignSpec.from_dict(spec_doc), workers=1,
        cache_dir=Path(cache_dir) if cache_dir else None,
    )
    return {"metrics": result.metrics, "profile": result.profile}


def execute_stream_op(engine: Optional[str], workload: str, accesses: int,
                      chunk_size: int, seed: int) -> dict:
    """Run one chunk-streamed workload; returns its canonical document."""
    from ..api import run_stream

    return run_stream(engine=engine, workload=workload, accesses=accesses,
                      chunk_size=chunk_size, seed=seed)


#: Compute-op name -> executor.  Resolved at execution time (not at
#: validation time) so tests can substitute instrumented executors.
EXECUTORS: Dict[str, Callable] = {
    "run_experiment": execute_experiment_op,
    "run_campaign": execute_campaign_op,
    "run_stream": execute_stream_op,
}

COMPUTE_OPS = tuple(sorted(EXECUTORS))

#: Server-side bound on ``run_stream`` trace length: keeps one request's
#: worker occupancy to seconds, not minutes (longer traces stream through
#: the session ops instead, where the client pays the generation cost).
MAX_STREAM_ACCESSES = 5_000_000


def prepare_execution(op: str, params: dict,
                      server) -> Tuple[str, tuple]:
    """Validate a compute request; returns ``(task_key, executor_args)``.

    Raises :class:`RequestError` with a typed code on anything the
    server should reject before spending a worker on it.
    """
    if op == "run_experiment":
        from ..runner import list_experiments

        experiment = params.get("experiment")
        quick = bool(params.get("quick", True))
        if experiment not in list_experiments():
            raise RequestError(
                "unknown-experiment",
                f"unknown experiment {experiment!r}; "
                f"known: {', '.join(list_experiments())}",
            )
        key = ResultCache.task_key(
            "serve/experiment", str(experiment), {"quick": quick},
            schema=METRICS_SCHEMA, quick=quick,
        )
        return key, (str(experiment), quick)

    if op == "run_campaign":
        from ..campaign import CAMPAIGN_SCHEMA, CampaignSpec

        spec_doc = params.get("spec")
        if not isinstance(spec_doc, dict):
            raise RequestError(
                "bad-campaign", "params.spec must be a campaign spec object"
            )
        try:
            spec = CampaignSpec.from_dict(spec_doc)
            spec.validate()
        except (KeyError, ValueError, TypeError) as exc:
            raise RequestError("bad-campaign", str(exc)) from exc
        key = ResultCache.task_key(
            "serve/campaign", spec.name, spec.to_dict(),
            schema=CAMPAIGN_SCHEMA, quick=False,
        )
        cache_dir = str(server.cache.root) if server.cache else None
        return key, (spec.to_dict(), cache_dir)

    if op == "run_stream":
        engine = params.get("engine")
        workload = params.get("workload", "mixed")
        accesses = params.get("accesses", 200_000)
        chunk_size = params.get("chunk_size", 65536)
        seed = params.get("seed", 2005)
        engine = _check_engine(engine)
        _check_stream_workload(workload)
        if not isinstance(accesses, int) or not \
                1 <= accesses <= MAX_STREAM_ACCESSES:
            raise RequestError(
                "bad-stream",
                f"accesses must be an int in [1, {MAX_STREAM_ACCESSES}], "
                f"got {accesses!r}",
            )
        if not isinstance(chunk_size, int) or not \
                1 <= chunk_size <= 1_000_000:
            raise RequestError(
                "bad-stream",
                f"chunk_size must be an int in [1, 1000000], "
                f"got {chunk_size!r}",
            )
        if not isinstance(seed, int):
            raise RequestError("bad-stream", f"seed must be an int, "
                                             f"got {seed!r}")
        key = ResultCache.task_key(
            "serve/stream", f"{engine or 'baseline'}/{workload}",
            {"accesses": accesses, "chunk_size": chunk_size, "seed": seed},
            schema=METRICS_SCHEMA, quick=False,
        )
        return key, (engine, workload, accesses, chunk_size, seed)

    raise RequestError("unknown-op", f"op {op!r} is not a compute op")


# -- stream sessions (trace_begin / trace_chunk / trace_end) ----------------

STREAM_OPS = ("trace_begin", "trace_chunk", "trace_end")


def _check_engine(engine) -> Optional[str]:
    from ..core.registry import engine_names

    if engine in (None, "", "baseline"):
        return None
    if engine not in engine_names():
        raise RequestError(
            "bad-stream",
            f"unknown engine {engine!r}; known: "
            f"{', '.join(engine_names())} (or omit for the baseline)",
        )
    return engine


def _check_stream_workload(workload) -> None:
    from ..traces import STREAM_WORKLOAD_NAMES

    if not (isinstance(workload, str)
            and (workload.startswith("mcu-")
                 or workload in STREAM_WORKLOAD_NAMES)):
        raise RequestError(
            "bad-stream",
            f"unknown workload {workload!r}; choose from "
            f"{STREAM_WORKLOAD_NAMES} or mcu-<kernel>",
        )


def begin_stream_session(params: dict):
    """Validate ``trace_begin`` params; returns a ready system + label.

    The system matches :func:`repro.api.run_stream`'s construction
    (cache geometry, memory model, zeroed image), so a session fed the
    same accesses produces the same canonical metrics.
    """
    from ..core.registry import make_engine
    from ..sim import CacheConfig, MemoryConfig, SecureSystem

    engine = _check_engine(params.get("engine"))
    cache_size = params.get("cache_size", 4096)
    mem_latency = params.get("mem_latency", 40)
    image_size = params.get("image_size", 32 * 1024)
    if not isinstance(cache_size, int) or not 64 <= cache_size <= 1 << 20:
        raise RequestError(
            "bad-stream", f"cache_size must be an int in [64, 2^20], "
                          f"got {cache_size!r}")
    if not isinstance(mem_latency, int) or not 1 <= mem_latency <= 10_000:
        raise RequestError(
            "bad-stream", f"mem_latency must be an int in [1, 10000], "
                          f"got {mem_latency!r}")
    if not isinstance(image_size, int) or not 32 <= image_size <= 1 << 21:
        raise RequestError(
            "bad-stream", f"image_size must be an int in [32, 2^21], "
                          f"got {image_size!r}")
    try:
        system = SecureSystem(
            engine=make_engine(engine) if engine else None,
            cache_config=CacheConfig(size=cache_size, line_size=32,
                                     associativity=2),
            mem_config=MemoryConfig(size=1 << 21, latency=mem_latency),
        )
        system.install_image(0, bytes(image_size))
    except (KeyError, ValueError) as exc:
        raise RequestError("bad-stream", str(exc)) from exc
    return system, (engine or "baseline")


#: ``trace_chunk`` record label -> access kind (the din convention:
#: 0 = load, 1 = store, 2 = fetch).
_RECORD_KINDS: Dict[int, object] = {}


def decode_records(records) -> List:
    """Decode a ``trace_chunk`` records payload into accesses.

    Records are ``[label, addr, size]`` triples with din labels; any
    malformed record raises a one-line :class:`RequestError`.
    """
    from ..traces import Access, AccessKind

    if not _RECORD_KINDS:
        _RECORD_KINDS.update({0: AccessKind.LOAD, 1: AccessKind.STORE,
                              2: AccessKind.FETCH})
    if not isinstance(records, list):
        raise RequestError(
            "bad-stream", "params.records must be a list of "
                          "[label, addr, size] triples")
    out: List = []
    for i, rec in enumerate(records):
        if not (isinstance(rec, list) and len(rec) == 3
                and all(isinstance(v, int) for v in rec)):
            raise RequestError(
                "bad-stream",
                f"record {i}: expected [label, addr, size] ints, "
                f"got {rec!r}")
        label, addr, size = rec
        kind = _RECORD_KINDS.get(label)
        if kind is None:
            raise RequestError(
                "bad-stream",
                f"record {i}: unknown access label {label} "
                f"(0=load, 1=store, 2=fetch)")
        if addr < 0 or size <= 0:
            raise RequestError(
                "bad-stream",
                f"record {i}: invalid record (addr {addr:#x}, size {size})")
        out.append(Access(kind, addr, size))
    return out


def stream_metrics(system, label: str) -> dict:
    """Canonical metrics document for a finished stream session."""
    from ..runner import stable_floats

    report = system.report(label)
    return stable_floats(json.loads(json.dumps(report.to_metrics())))


# -- cheap ops -------------------------------------------------------------


def _ping(server, params: dict) -> dict:
    return {"pong": True, "payload": params.get("payload")}


def _list_experiments(server, params: dict) -> dict:
    from ..runner import list_experiments

    return {"experiments": list_experiments()}


def _list_engines(server, params: dict) -> dict:
    from ..api import list_engines

    return {"engines": list_engines(
        survey_only=bool(params.get("survey_only", False)))}


def _stats(server, params: dict) -> dict:
    return server.stats_document()


CHEAP_OPS: Dict[str, Callable] = {
    "ping": _ping,
    "list_experiments": _list_experiments,
    "list_engines": _list_engines,
    "stats": _stats,
}


def handle_cheap_op(server, op: str, params: dict) -> dict:
    return CHEAP_OPS[op](server, params)
