"""Request handlers and worker-side executors for the experiment server.

Two tiers of ops:

* *cheap* ops (``ping``, ``list_experiments``, ``list_engines``,
  ``stats``, ``shutdown``) are answered inline on the event loop;
* *compute* ops (``run_experiment``, ``run_campaign``) are validated
  here, keyed with :meth:`ResultCache.task_key`, and executed off the
  event loop (fork pool or thread) via the module-level functions in
  :data:`EXECUTORS` — module-level so the fork pool can send them to
  worker processes by reference.

Executors return *canonical* documents (``stable_floats`` over a JSON
round trip), the same bytes a local :func:`repro.api.run_experiment` /
:func:`repro.api.run_campaign` call produces — the serve layer's core
invariant, gated by ``tests/test_serve.py`` and the loadgen's
byte-identity check.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict, Optional, Tuple

from ..runner import METRICS_SCHEMA, ResultCache

__all__ = ["RequestError", "CHEAP_OPS", "COMPUTE_OPS", "EXECUTORS",
           "prepare_execution", "handle_cheap_op",
           "execute_experiment_op", "execute_campaign_op"]


class RequestError(Exception):
    """A request that cannot be executed; maps to a typed error frame."""

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code
        self.message = message


# -- worker-side executors -------------------------------------------------


def execute_experiment_op(experiment_id: str, quick: bool) -> dict:
    """Run one registry experiment; returns its canonical document."""
    from ..api import run_experiment

    return run_experiment(experiment_id, quick=quick).to_document()


def execute_campaign_op(spec_doc: dict, cache_dir: Optional[str]) -> dict:
    """Run one campaign sweep; returns ``{"metrics", "profile"}``.

    Runs in-process inside the worker (``workers=1``) against the
    *server's* cache directory: every completed point publishes
    atomically as it lands, so a server killed mid-campaign leaves its
    finished points behind and the next serve of the same spec resumes
    instead of restarting (``profile.cache.hits`` shows the replay).
    """
    from ..api import run_campaign
    from ..campaign import CampaignSpec

    result = run_campaign(
        CampaignSpec.from_dict(spec_doc), workers=1,
        cache_dir=Path(cache_dir) if cache_dir else None,
    )
    return {"metrics": result.metrics, "profile": result.profile}


#: Compute-op name -> executor.  Resolved at execution time (not at
#: validation time) so tests can substitute instrumented executors.
EXECUTORS: Dict[str, Callable] = {
    "run_experiment": execute_experiment_op,
    "run_campaign": execute_campaign_op,
}

COMPUTE_OPS = tuple(sorted(EXECUTORS))


def prepare_execution(op: str, params: dict,
                      server) -> Tuple[str, tuple]:
    """Validate a compute request; returns ``(task_key, executor_args)``.

    Raises :class:`RequestError` with a typed code on anything the
    server should reject before spending a worker on it.
    """
    if op == "run_experiment":
        from ..runner import list_experiments

        experiment = params.get("experiment")
        quick = bool(params.get("quick", True))
        if experiment not in list_experiments():
            raise RequestError(
                "unknown-experiment",
                f"unknown experiment {experiment!r}; "
                f"known: {', '.join(list_experiments())}",
            )
        key = ResultCache.task_key(
            "serve/experiment", str(experiment), {"quick": quick},
            schema=METRICS_SCHEMA, quick=quick,
        )
        return key, (str(experiment), quick)

    if op == "run_campaign":
        from ..campaign import CAMPAIGN_SCHEMA, CampaignSpec

        spec_doc = params.get("spec")
        if not isinstance(spec_doc, dict):
            raise RequestError(
                "bad-campaign", "params.spec must be a campaign spec object"
            )
        try:
            spec = CampaignSpec.from_dict(spec_doc)
            spec.validate()
        except (KeyError, ValueError, TypeError) as exc:
            raise RequestError("bad-campaign", str(exc)) from exc
        key = ResultCache.task_key(
            "serve/campaign", spec.name, spec.to_dict(),
            schema=CAMPAIGN_SCHEMA, quick=False,
        )
        cache_dir = str(server.cache.root) if server.cache else None
        return key, (spec.to_dict(), cache_dir)

    raise RequestError("unknown-op", f"op {op!r} is not a compute op")


# -- cheap ops -------------------------------------------------------------


def _ping(server, params: dict) -> dict:
    return {"pong": True, "payload": params.get("payload")}


def _list_experiments(server, params: dict) -> dict:
    from ..runner import list_experiments

    return {"experiments": list_experiments()}


def _list_engines(server, params: dict) -> dict:
    from ..api import list_engines

    return {"engines": list_engines(
        survey_only=bool(params.get("survey_only", False)))}


def _stats(server, params: dict) -> dict:
    return server.stats_document()


CHEAP_OPS: Dict[str, Callable] = {
    "ping": _ping,
    "list_experiments": _list_experiments,
    "list_engines": _list_engines,
    "stats": _stats,
}


def handle_cheap_op(server, op: str, params: dict) -> dict:
    return CHEAP_OPS[op](server, params)
