"""Length-prefixed JSON frame protocol for the experiment server.

Wire format: every frame is a 4-byte big-endian unsigned payload length
followed by that many bytes of UTF-8 JSON.  The length never includes
the header, and a frame's payload may be any JSON value (the *server*
additionally requires requests to be objects — see
:mod:`repro.serve.handlers`).

The decoder is incremental and byte-oriented: feed it whatever the
transport produced — one frame per read, a frame split across many
reads, many frames merged into one read — and it yields exactly the
frames that were encoded, in order.  Limits are enforced as early as
possible: an oversized frame is rejected from its *header* alone,
before any payload arrives, so a slow-loris client cannot make the
server buffer an advertised-huge frame.

Frame types exchanged by the server (the ``type`` field):

``response``
    ``{"type": "response", "id": ..., "result": {...},
    "served_from": "execution" | "cache" | "coalesced"}``
``error``
    ``{"type": "error", "id": ..., "error": {"code": ..., "message":
    ...}}`` — typed rejection; the connection may be closed after
    protocol-level errors.
``overloaded``
    ``{"type": "overloaded", "id": ..., "pending": N}`` — explicit
    backpressure: the admission queue is full and the request was *not*
    executed.  Never a silent drop.

Requests are ``{"op": ..., "id": ..., "params": {...}}``.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any, List, Optional

__all__ = [
    "DEFAULT_MAX_FRAME",
    "FrameDecodeError",
    "FrameDecoder",
    "FrameStream",
    "FrameTooLarge",
    "ProtocolError",
    "encode_frame",
    "error_frame",
    "overloaded_frame",
    "request_frame",
    "response_frame",
]

#: Frame header: 4-byte big-endian unsigned payload length.
HEADER = struct.Struct(">I")

#: Default cap on one frame's JSON payload (requests *and* responses).
#: Campaign documents for quick-service grids are tens of kilobytes;
#: 16 MiB leaves room for large sweeps without letting one client pin
#: unbounded memory.
DEFAULT_MAX_FRAME = 16 * 1024 * 1024


class ProtocolError(Exception):
    """Base class for frame-level failures."""

    #: Error code carried in the typed ``error`` frame.
    code = "protocol-error"


class FrameTooLarge(ProtocolError):
    """The frame header advertises a payload beyond the size limit."""

    code = "frame-too-large"


class FrameDecodeError(ProtocolError):
    """The frame payload is not valid UTF-8 JSON."""

    code = "bad-frame"


def encode_frame(payload: Any, max_frame: int = DEFAULT_MAX_FRAME) -> bytes:
    """Serialize one JSON payload into a length-prefixed frame."""
    body = json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")
    if len(body) > max_frame:
        raise FrameTooLarge(
            f"frame payload is {len(body)} bytes, limit {max_frame}"
        )
    return HEADER.pack(len(body)) + body


class FrameDecoder:
    """Incremental frame parser over an arbitrary byte stream.

    ``feed(data)`` buffers ``data`` and returns every frame completed by
    it (possibly none, possibly several).  Raises
    :class:`FrameTooLarge` / :class:`FrameDecodeError` on protocol
    violations; after an exception the decoder state is undefined and
    the connection should be closed.
    """

    def __init__(self, max_frame: int = DEFAULT_MAX_FRAME):
        self.max_frame = max_frame
        self._buffer = bytearray()
        self.frames_decoded = 0

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward the next (incomplete) frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> List[Any]:
        self._buffer.extend(data)
        frames: List[Any] = []
        while len(self._buffer) >= HEADER.size:
            (length,) = HEADER.unpack_from(self._buffer)
            if length > self.max_frame:
                raise FrameTooLarge(
                    f"frame header advertises {length} bytes, "
                    f"limit {self.max_frame}"
                )
            end = HEADER.size + length
            if len(self._buffer) < end:
                break
            body = bytes(self._buffer[HEADER.size:end])
            del self._buffer[:end]
            try:
                frames.append(json.loads(body.decode("utf-8")))
            except (UnicodeDecodeError, ValueError) as exc:
                raise FrameDecodeError(
                    f"frame payload is not valid JSON: {exc}"
                ) from exc
            self.frames_decoded += 1
        return frames


# -- frame constructors ----------------------------------------------------


def request_frame(op: str, params: Optional[dict] = None,
                  id: Optional[object] = None) -> dict:
    frame = {"op": op, "params": params or {}}
    if id is not None:
        frame["id"] = id
    return frame


def response_frame(id: Optional[object], result: Any,
                   served_from: str = "execution") -> dict:
    return {"type": "response", "id": id, "result": result,
            "served_from": served_from}


def error_frame(code: str, message: str,
                id: Optional[object] = None) -> dict:
    return {"type": "error", "id": id,
            "error": {"code": code, "message": message}}


def overloaded_frame(id: Optional[object], pending: int) -> dict:
    return {"type": "overloaded", "id": id, "pending": pending}


# -- client-side stream ----------------------------------------------------


class FrameStream:
    """One framed connection, client side (used by tests and loadgen).

    Thin convenience over an asyncio stream pair: ``send`` writes one
    frame, ``recv`` returns the next decoded frame (``None`` on EOF),
    ``request`` does a send + recv round trip.
    """

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter,
                 max_frame: int = DEFAULT_MAX_FRAME):
        self.reader = reader
        self.writer = writer
        self._decoder = FrameDecoder(max_frame)
        self._ready: List[Any] = []

    @classmethod
    async def connect(cls, host: str, port: int,
                      max_frame: int = DEFAULT_MAX_FRAME) -> "FrameStream":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer, max_frame)

    async def send(self, frame: Any) -> None:
        self.writer.write(encode_frame(frame, self._decoder.max_frame))
        await self.writer.drain()

    async def recv(self, timeout: Optional[float] = None) -> Optional[Any]:
        while not self._ready:
            read = self.reader.read(65536)
            data = await (asyncio.wait_for(read, timeout)
                          if timeout is not None else read)
            if not data:
                return None
            self._ready.extend(self._decoder.feed(data))
        return self._ready.pop(0)

    async def request(self, op: str, params: Optional[dict] = None,
                      id: Optional[object] = None,
                      timeout: Optional[float] = None) -> Optional[Any]:
        await self.send(request_frame(op, params, id))
        return await self.recv(timeout)

    async def close(self) -> None:
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass
