"""The asyncio experiment server.

One :class:`ExperimentServer` owns:

* an asyncio listener whose per-connection state machines parse
  length-prefixed JSON frames under a size limit and an idle timeout;
* a worker pool (:func:`repro.runner.fork_pool` for ``workers >= 1``,
  the default thread executor for ``workers=0``) that keeps experiment
  and campaign executions off the event loop;
* an :class:`~repro.serve.dedup.InflightTable` plus an on-disk
  :class:`~repro.runner.ResultCache`, so concurrent identical requests
  coalesce into one execution and repeated requests replay from disk;
* a bounded admission queue: when ``max_pending`` executions are
  already queued or running, new compute requests are answered with an
  explicit ``overloaded`` frame — never silently dropped.

Execution tasks are owned by the server, not by the requesting
connection: a client that disconnects mid-run cannot orphan coalesced
followers, and a draining shutdown (:meth:`ExperimentServer.stop` with
``drain=True``) finishes every in-flight execution and writes every
pending response before the process exits.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Optional, Set

from ..runner import ResultCache
from . import handlers
from .dedup import InflightTable
from .protocol import (
    DEFAULT_MAX_FRAME,
    FrameDecoder,
    ProtocolError,
    encode_frame,
    error_frame,
    overloaded_frame,
    response_frame,
)

__all__ = ["ExperimentServer", "ServeStats"]


@dataclass
class ServeStats:
    """Server-lifetime counters (the ``stats`` op returns them)."""

    connections: int = 0
    connections_open: int = 0
    frames_in: int = 0
    frames_out: int = 0
    requests: int = 0
    responses: int = 0
    errors: int = 0
    overloaded: int = 0
    executed: int = 0
    failed: int = 0
    idle_timeouts: int = 0

    def to_dict(self) -> Dict[str, int]:
        return dict(vars(self))


@dataclass(eq=False)
class _StreamSession:
    """One trace-streaming session: a system fed chunk by chunk."""

    system: object
    executor: object          # repro.sim.StreamExecutor
    label: str
    lock: asyncio.Lock = field(default_factory=asyncio.Lock)


@dataclass(eq=False)
class _Connection:
    """Per-connection state: stream pair, write lock, pending requests."""

    reader: asyncio.StreamReader
    writer: asyncio.StreamWriter
    tasks: Set[asyncio.Task] = field(default_factory=set)
    write_lock: asyncio.Lock = field(default_factory=asyncio.Lock)
    closed: bool = False
    handler: Optional[asyncio.Task] = None
    streams: Dict[str, _StreamSession] = field(default_factory=dict)
    # Monotonic-clock stamp of the last observable client/server
    # activity: bytes arriving or a request task finishing.  The idle
    # clock measures from here, never across server compute.
    last_activity: float = 0.0


class ExperimentServer:
    """Serve the experiment registry and campaign runner over sockets.

    Parameters
    ----------
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (read it back
        from :attr:`port` after :meth:`start`).
    workers:
        Fork-pool processes for executions.  ``0`` runs executions on
        the default thread executor in-process — the reference path the
        tests instrument; any count returns byte-identical documents.
    max_pending:
        Admission bound on queued-or-running executions; beyond it
        compute requests get ``overloaded`` frames.
    idle_timeout:
        Seconds of silence after which an idle connection (no pending
        requests) is sent a typed ``idle-timeout`` error and closed.
        Connections awaiting a response are never idle, and the clock
        only covers time waiting for client bytes: it restarts when a
        response lands, so a long in-flight execution can never eat
        into the client's window (the compute-reap regression in
        ``tests/test_serve.py`` pins this).
    max_frame:
        Frame payload size limit, both directions.
    cache_dir:
        On-disk result cache for completed requests (and, inside it,
        campaign per-point entries — which is what makes a killed
        campaign resumable).  ``None`` disables caching.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        workers: int = 1,
        max_pending: int = 64,
        idle_timeout: float = 30.0,
        max_frame: int = DEFAULT_MAX_FRAME,
        cache_dir: Optional[Path] = Path(".bench_serve_cache"),
        drain_timeout: float = 60.0,
        log: Optional[Callable[[str], None]] = None,
    ):
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self.host = host
        self.port = port
        self.workers = workers
        self.max_pending = max_pending
        self.idle_timeout = idle_timeout
        self.max_frame = max_frame
        self.drain_timeout = drain_timeout
        self.cache = ResultCache(Path(cache_dir)) if cache_dir else None
        self.stats = ServeStats()
        self.inflight = InflightTable()
        #: Open trace-streaming sessions allowed per connection.
        self.max_stream_sessions = 8
        self._session_seq = 0
        self._log = log or (lambda line: None)
        self._server: Optional[asyncio.base_events.Server] = None
        self._pool = None
        self._exec_tasks: Set[asyncio.Task] = set()
        self._connections: Set[_Connection] = set()
        self._closing = False
        self._stopped = asyncio.Event()

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        if self.workers:
            from ..runner import fork_pool

            # Fork before accepting: children inherit the warm kernel
            # registry and none of the per-connection state.
            self._pool = fork_pool(self.workers)
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port, backlog=2048,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._log(f"listening on {self.host}:{self.port}")

    async def serve_forever(self) -> None:
        """Serve until :meth:`stop` is called (from a signal or an op)."""
        assert self._server is not None, "call start() first"
        await self._stopped.wait()

    async def stop(self, drain: bool = True) -> None:
        """Shut down; ``drain=True`` finishes in-flight work first."""
        if self._closing:
            await self._stopped.wait()
            return
        self._closing = True
        if self._server is not None:
            self._server.close()
        if drain:
            # Executions first (they feed the responses), then the
            # per-request tasks writing those responses out.
            for tasks in (self._exec_tasks, self._request_tasks()):
                if tasks:
                    try:
                        await asyncio.wait_for(
                            asyncio.gather(*tasks, return_exceptions=True),
                            self.drain_timeout,
                        )
                    except asyncio.TimeoutError:
                        self._log("drain timeout; abandoning stragglers")
        else:
            for task in [*self._exec_tasks, *self._request_tasks()]:
                task.cancel()
        self.inflight.fail_all(
            ConnectionError("server stopped mid-execution"))
        handlers_left = [conn.handler for conn in list(self._connections)
                         if conn.handler is not None]
        for conn in list(self._connections):
            conn.closed = True
            conn.writer.close()
        for task in handlers_left:
            task.cancel()
        if handlers_left:
            await asyncio.gather(*handlers_left, return_exceptions=True)
        if self._pool is not None:
            if drain:
                self._pool.close()
                await asyncio.get_running_loop().run_in_executor(
                    None, self._pool.join)
            else:
                self._pool.terminate()
            self._pool = None
        self._stopped.set()
        self._log("stopped")

    def _request_tasks(self) -> Set[asyncio.Task]:
        return {task for conn in self._connections for task in conn.tasks}

    @property
    def pending_executions(self) -> int:
        return len(self._exec_tasks)

    def stats_document(self) -> dict:
        return {
            "counters": self.stats.to_dict(),
            "dedup": self.inflight.counters(),
            "cache": (dict(self.cache.counters(),
                           dir=str(self.cache.root))
                      if self.cache else None),
            "pending_executions": self.pending_executions,
            "max_pending": self.max_pending,
            "workers": self.workers,
        }

    # -- connection state machine ------------------------------------------

    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        conn = _Connection(reader, writer, handler=asyncio.current_task())
        self._connections.add(conn)
        self.stats.connections += 1
        self.stats.connections_open += 1
        try:
            await self._read_loop(conn)
        except (ConnectionError, OSError):
            pass
        except asyncio.CancelledError:
            pass  # server teardown cancels lingering reads
        finally:
            conn.closed = True
            self.stats.connections_open -= 1
            self._connections.discard(conn)
            # Abandon responses nobody can receive; executions keep
            # running (coalesced followers may still be waiting).
            for task in conn.tasks:
                task.cancel()
            # Stream sessions die with their connection: abort never
            # blocks, and the executor thread unwinds on its own.
            for session in conn.streams.values():
                session.executor.abort()
            conn.streams.clear()
            writer.close()

    async def _read_loop(self, conn: _Connection) -> None:
        decoder = FrameDecoder(self.max_frame)
        loop = asyncio.get_running_loop()
        conn.last_activity = loop.time()

        def _stamp(_task: asyncio.Task) -> None:
            # A finishing request restarts the idle clock, so the client
            # gets a full idle window to react to the response — however
            # long the execution took (the clock covers waiting on client
            # bytes only, never server compute).
            conn.last_activity = loop.time()

        while not self._closing:
            remaining = conn.last_activity + self.idle_timeout - loop.time()
            if remaining <= 0:
                if any(not t.done() for t in conn.tasks):
                    # Awaiting a response, not idle; _stamp re-arms the
                    # clock when the work lands.
                    remaining = self.idle_timeout
                else:
                    self.stats.idle_timeouts += 1
                    await self._send(conn, error_frame(
                        "idle-timeout",
                        f"no complete frame in {self.idle_timeout}s"))
                    return
            try:
                data = await asyncio.wait_for(
                    conn.reader.read(65536), remaining)
            except asyncio.TimeoutError:
                continue  # re-evaluate against last_activity
            if not data:
                return  # client closed
            conn.last_activity = loop.time()
            try:
                frames = decoder.feed(data)
            except ProtocolError as exc:
                self.stats.errors += 1
                await self._send(conn, error_frame(exc.code, str(exc)))
                return
            for frame in frames:
                self.stats.frames_in += 1
                task = asyncio.ensure_future(
                    self._handle_request(conn, frame))
                conn.tasks.add(task)
                task.add_done_callback(conn.tasks.discard)
                task.add_done_callback(_stamp)

    async def _send(self, conn: _Connection, frame: dict) -> None:
        if conn.closed:
            return
        async with conn.write_lock:
            if conn.closed:
                return
            try:
                conn.writer.write(encode_frame(frame, self.max_frame))
                await conn.writer.drain()
                self.stats.frames_out += 1
            except (ConnectionError, OSError):
                conn.closed = True

    # -- request dispatch --------------------------------------------------

    async def _handle_request(self, conn: _Connection, frame: object) -> None:
        if not isinstance(frame, dict) or not isinstance(
                frame.get("op"), str):
            self.stats.requests += 1
            self.stats.errors += 1
            await self._send(conn, error_frame(
                "bad-request",
                'requests are objects with a string "op" field'))
            return
        rid = frame.get("id")
        op = frame["op"]
        params = frame.get("params") or {}
        if not isinstance(params, dict):
            self.stats.requests += 1
            self.stats.errors += 1
            await self._send(conn, error_frame(
                "bad-request", '"params" must be an object', rid))
            return
        self.stats.requests += 1

        if op == "shutdown":
            await self._respond(conn, rid, {"stopping": True})
            asyncio.ensure_future(self.stop(drain=True))
            return
        if op in handlers.CHEAP_OPS:
            await self._respond(
                conn, rid, handlers.handle_cheap_op(self, op, params))
            return
        if op in handlers.EXECUTORS:
            await self._handle_compute(conn, rid, op, params)
            return
        if op in handlers.STREAM_OPS:
            await self._handle_stream_op(conn, rid, op, params)
            return
        self.stats.errors += 1
        known = sorted((*handlers.CHEAP_OPS, *handlers.EXECUTORS,
                        *handlers.STREAM_OPS, "shutdown"))
        await self._send(conn, error_frame(
            "unknown-op", f"unknown op {op!r}; known: {', '.join(known)}",
            rid))

    async def _respond(self, conn: _Connection, rid: object, result: object,
                       served_from: str = "execution") -> None:
        self.stats.responses += 1
        await self._send(conn, response_frame(rid, result, served_from))

    # -- trace-streaming sessions ------------------------------------------

    async def _handle_stream_op(self, conn: _Connection, rid: object,
                                op: str, params: dict) -> None:
        """One framed trace-session op (begin / chunk / end).

        Sessions are per-connection state: no dedup, no cache, torn down
        with the connection.  Chunk feeds run off the event loop and
        inherit :class:`~repro.sim.StreamExecutor` backpressure, so a
        client outrunning the simulator blocks in its own socket, not in
        server memory.
        """
        loop = asyncio.get_running_loop()
        try:
            if op == "trace_begin":
                if len(conn.streams) >= self.max_stream_sessions:
                    raise handlers.RequestError(
                        "bad-stream",
                        f"connection already has {len(conn.streams)} open "
                        f"stream sessions (limit {self.max_stream_sessions})")
                system, label = handlers.begin_stream_session(params)
                from ..sim import StreamExecutor

                self._session_seq += 1
                sid = f"s{self._session_seq}"
                conn.streams[sid] = _StreamSession(
                    system=system, executor=StreamExecutor(system),
                    label=str(params.get("label") or label),
                )
                await self._respond(conn, rid, {"session": sid})
                return

            sid = params.get("session")
            session = conn.streams.get(sid)
            if session is None:
                raise handlers.RequestError(
                    "unknown-session",
                    f"unknown stream session {sid!r} on this connection")

            if op == "trace_chunk":
                chunk = handlers.decode_records(params.get("records"))
                try:
                    async with session.lock:
                        total = await loop.run_in_executor(
                            None, session.executor.feed, chunk)
                except Exception as exc:
                    # Execution died (e.g. tamper detected): the session
                    # is unusable; tear it down with a typed error.
                    conn.streams.pop(sid, None)
                    session.executor.abort()
                    self.stats.failed += 1
                    raise handlers.RequestError(
                        "stream-failed",
                        f"{type(exc).__name__}: {exc}") from exc
                await self._respond(
                    conn, rid, {"fed": len(chunk), "total": total})
                return

            # trace_end
            conn.streams.pop(sid, None)
            try:
                async with session.lock:
                    await loop.run_in_executor(
                        None, session.executor.close)
            except Exception as exc:
                session.executor.abort()
                self.stats.failed += 1
                raise handlers.RequestError(
                    "stream-failed",
                    f"{type(exc).__name__}: {exc}") from exc
            self.stats.executed += 1
            await self._respond(conn, rid, {
                "accesses": session.executor.fed,
                "metrics": handlers.stream_metrics(
                    session.system, session.label),
            })
        except handlers.RequestError as exc:
            self.stats.errors += 1
            await self._send(conn, error_frame(exc.code, exc.message, rid))

    async def _handle_compute(self, conn: _Connection, rid: object,
                              op: str, params: dict) -> None:
        try:
            key, args = handlers.prepare_execution(op, params, self)
        except handlers.RequestError as exc:
            self.stats.errors += 1
            await self._send(conn, error_frame(exc.code, exc.message, rid))
            return

        # Dedup -> disk cache -> admission -> execute.  No awaits between
        # the join probe and the claim: leader election is loop-atomic.
        future = self.inflight.join(key)
        if future is None:
            cached = self.cache.get(key) if self.cache is not None else None
            if cached is not None and "result" in cached:
                await self._respond(conn, rid, cached["result"],
                                    served_from="cache")
                return
            if self.pending_executions >= self.max_pending:
                self.stats.overloaded += 1
                await self._send(conn, overloaded_frame(
                    rid, self.pending_executions))
                return
            future = self.inflight.claim(key)
            task = asyncio.ensure_future(self._execute(key, op, args))
            self._exec_tasks.add(task)
            task.add_done_callback(self._exec_tasks.discard)
            served_from = "execution"
        else:
            served_from = "coalesced"

        try:
            result = await asyncio.shield(future)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            self.stats.errors += 1
            await self._send(conn, error_frame(
                "execution-failed", f"{type(exc).__name__}: {exc}", rid))
            return
        await self._respond(conn, rid, result, served_from=served_from)

    async def _execute(self, key: str, op: str, args: tuple) -> None:
        """Server-owned execution task: run, publish, resolve."""
        fn = handlers.EXECUTORS[op]
        try:
            result = await self._run_off_loop(fn, args)
        except Exception as exc:
            self.stats.failed += 1
            self.inflight.fail(key, exc)
            return
        if self.cache is not None:
            self.cache.put(key, {"result": result})
        self.stats.executed += 1
        self.inflight.resolve(key, result)

    def _run_off_loop(self, fn: Callable, args: tuple) -> "asyncio.Future":
        loop = asyncio.get_running_loop()
        if self._pool is None:
            return loop.run_in_executor(None, lambda: fn(*args))
        future = loop.create_future()

        def _ok(result):
            try:
                loop.call_soon_threadsafe(
                    lambda: future.done() or future.set_result(result))
            except RuntimeError:
                pass  # loop already closed (hard shutdown)

        def _err(exc):
            try:
                loop.call_soon_threadsafe(
                    lambda: future.done() or future.set_exception(exc))
            except RuntimeError:
                pass

        self._pool.apply_async(fn, args, callback=_ok, error_callback=_err)
        return future
