"""In-flight request deduplication for the experiment server.

Concurrent identical requests (same :meth:`ResultCache.task_key`) must
not execute twice: the first arrival becomes the *leader* and owns the
execution; every later arrival *joins* the leader's future and receives
the same result object.  Completed results land in the on-disk
:class:`~repro.runner.cache.ResultCache`, so the lifecycle of one task
key is::

    disk miss -> claim (leader) -> execute -> publish to disk -> resolve
                   |
    disk miss -> join (follower) ----------------------------> same result

and any request arriving after resolution replays from disk without
entering the table at all.

The table is event-loop-confined: claims and joins happen between
awaits, so leader election needs no lock.  Execution futures are owned
by the *server*, never by the requesting connection — a client that
disconnects mid-execution cannot orphan the followers awaiting the same
key.
"""

from __future__ import annotations

import asyncio
from typing import Dict, Optional

__all__ = ["InflightTable"]


class InflightTable:
    """Task-key -> in-flight execution future, with join accounting."""

    def __init__(self):
        self._entries: Dict[str, asyncio.Future] = {}
        #: Executions started (one per distinct in-flight key).
        self.leads = 0
        #: Requests coalesced onto an already-in-flight execution.
        self.joins = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def join(self, key: str) -> Optional[asyncio.Future]:
        """Return the in-flight future for ``key``, counting the join."""
        future = self._entries.get(key)
        if future is not None:
            self.joins += 1
        return future

    def claim(self, key: str) -> asyncio.Future:
        """Register a new leader execution for ``key``.

        Must only be called after :meth:`join` returned ``None``, with
        no ``await`` in between (the event loop makes that atomic).
        """
        if key in self._entries:
            raise RuntimeError(f"task key {key!r} is already in flight")
        future = asyncio.get_running_loop().create_future()
        self._entries[key] = future
        self.leads += 1
        return future

    def resolve(self, key: str, result: object) -> None:
        """Complete ``key``: wake every joined waiter with ``result``."""
        future = self._entries.pop(key)
        if not future.done():
            future.set_result(result)

    def fail(self, key: str, exc: BaseException) -> None:
        """Fail ``key``: propagate ``exc`` to every joined waiter."""
        future = self._entries.pop(key)
        if not future.done():
            future.set_exception(exc)
        # The server always awaits these futures, but guard against a
        # no-waiter teardown spamming "exception was never retrieved".
        future.add_done_callback(lambda f: f.exception())

    def fail_all(self, exc: BaseException) -> None:
        """Fail every in-flight key (server teardown)."""
        for key in list(self._entries):
            self.fail(key, exc)

    def counters(self) -> Dict[str, int]:
        return {"leads": self.leads, "joins": self.joins,
                "in_flight": len(self._entries)}
