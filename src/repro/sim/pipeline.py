"""Timing model of pipelined hardware cipher units.

The survey reports hardware ciphers as (latency, throughput) pairs: XOM's
AES has "a low latency of 14 cycles, while a throughput of one
encrypted/decrypted data per clock cycle is claimed"; Gilmont uses a
"pipelined triple-DES".  This module captures that abstraction: a unit is a
pipeline with a fill ``latency`` and an ``initiation_interval`` (cycles
between successive block issues; 1 for a fully pipelined core).

E10 makes the survey's own point with this model: latency alone "doesn't
inform about the overall system cost" — the same 14-cycle unit produces very
different system overheads depending on the workload.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PipelinedUnit", "XOM_AES_PIPE", "AEGIS_AES_PIPE",
           "TDES_PIPE", "TDES_ITERATIVE", "DES_ITERATIVE",
           "AES_ITERATIVE", "KEYSTREAM_UNIT", "BYTE_SUBST_UNIT"]


@dataclass(frozen=True)
class PipelinedUnit:
    """A hardware unit processing fixed-size blocks.

    ``latency``: cycles from issuing a block to its result.
    ``initiation_interval``: minimum cycles between issues (1 = fully
    pipelined; equal to ``latency`` = iterative, non-pipelined core).
    """

    name: str
    latency: int
    initiation_interval: int = 1

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ValueError(f"latency must be >= 0, got {self.latency}")
        if self.initiation_interval < 1:
            raise ValueError(
                f"initiation_interval must be >= 1, got {self.initiation_interval}"
            )

    def time_for(self, nblocks: int) -> int:
        """Cycles to process ``nblocks`` issued back to back."""
        if nblocks <= 0:
            return 0
        return self.latency + (nblocks - 1) * self.initiation_interval

    def drain_after_arrivals(self, nblocks: int, arrival_interval: int) -> int:
        """Extra cycles past the last block's *arrival* until all are processed.

        Blocks arrive every ``arrival_interval`` cycles (e.g. as bus beats
        complete).  If the pipeline's initiation interval keeps up with the
        arrival rate, the extra time is just the fill latency; otherwise a
        backlog accumulates.
        """
        if nblocks <= 0:
            return 0
        backlog = max(0, (nblocks - 1) * (self.initiation_interval - arrival_interval))
        return self.latency + backlog

    @property
    def throughput_blocks_per_cycle(self) -> float:
        return 1.0 / self.initiation_interval


# Reference units with parameters taken from the survey's reported figures.

#: XOM's pipelined AES: 14-cycle latency, one block per cycle [13].
XOM_AES_PIPE = PipelinedUnit("aes-pipelined-xom", latency=14, initiation_interval=1)

#: AEGIS's pipelined AES (300k gates); same order of latency as XOM's [14].
AEGIS_AES_PIPE = PipelinedUnit("aes-pipelined-aegis", latency=16, initiation_interval=1)

#: Pipelined triple-DES as used by Gilmont et al. [3]: 48 rounds, pipelined.
TDES_PIPE = PipelinedUnit("3des-pipelined", latency=48, initiation_interval=1)

#: Iterative (non-pipelined) triple-DES: one block at a time.
TDES_ITERATIVE = PipelinedUnit("3des-iterative", latency=48, initiation_interval=48)

#: Iterative single DES (16 rounds), the DS5240 class of core.
DES_ITERATIVE = PipelinedUnit("des-iterative", latency=16, initiation_interval=16)

#: Iterative AES-128 (10 rounds + key add).
AES_ITERATIVE = PipelinedUnit("aes-iterative", latency=11, initiation_interval=11)

#: LFSR/combiner keystream generator: byte per cycle after a short warm-up.
KEYSTREAM_UNIT = PipelinedUnit("keystream-lfsr", latency=2, initiation_interval=1)

#: Best-style substitution/transposition path: table lookups, single cycle.
BYTE_SUBST_UNIT = PipelinedUnit("byte-substitution", latency=1, initiation_interval=1)
