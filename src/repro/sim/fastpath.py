"""Batched trace execution: the simulator's fast path.

:meth:`repro.sim.system.SecureSystem.run` walks every :class:`Access`
through ``Cache.access`` -> engine -> ``Bus`` -> ``MainMemory`` one at a
time.  That per-access dispatch — an ``OrderedDict`` LRU update, a
``CacheResult`` allocation, an event construction, an engine method call —
dominates the quick suite even though the survey's interesting work all
happens on the *miss* stream.  This module executes the same trace in
batches:

* :func:`compile_trace` precomputes line numbers once and coalesces
  consecutive same-line accesses into runs (with per-run kind counts,
  byte totals and store positions), so a compiled trace can be replayed
  against many systems;
* :func:`execute` resolves the hit stream in bulk over a tight
  array-based LRU (plain per-set lists instead of per-access
  ``OrderedDict`` churn) and defers load/fetch miss fills into groups
  that reach the engine through the bulk
  :meth:`~repro.core.engine.BusEncryptionEngine.fill_lines` interface —
  one batched kernel call per group for the ported engines.

Equivalence contract (pinned by ``tests/test_fastpath.py`` and
``python -m repro.sim.bench_fastpath --check``):

* the :class:`~repro.sim.system.SimReport` is byte-identical to the
  scalar path — same cycles, counters, stats — for every engine;
* the bus transaction stream (op, addr, data) is identical in content
  *and order*: deferred fills are flushed before any engine write so the
  engine-call order, and therefore every engine's internal state
  evolution, matches the scalar schedule exactly;
* with a sink attached, aggregate totals (:class:`repro.obs.CounterSink`
  counts and byte sums) are identical.  Bulk-resolved hit runs report
  through :meth:`repro.obs.EventSink.emit_bulk`, so batches of `access`
  and `hit` events may arrive grouped by kind rather than interleaved,
  and deferred fills carry later cycle stamps than their scalar twins —
  event *interleaving and stamps* are the one relaxation.

With observability disabled the hot loop constructs zero
:class:`~repro.obs.TraceEvent` objects.  Engines that override
``notify_access`` (none in the registry do) fall back to the scalar
per-access loop, as does the explicit reference path
:meth:`~repro.sim.system.SecureSystem.run_reference`.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple, Union

from .. import backend as _backend
from ..core.engine import BusEncryptionEngine, Placement
from ..obs import TraceEvent
from ..traces.arrays import KIND_BY_CODE, KIND_CODES, ArrayChunk
from ..traces.stream import TraceStream
from ..traces.trace import Access, AccessKind, Trace
from .cache import WritePolicy, _Line
from .system import store_payload

__all__ = ["CompiledTrace", "CompiledTraceStream", "compile_trace",
           "execute", "FLUSH_THRESHOLD"]

#: Deferred fills are handed to ``fill_lines`` in groups of at most this
#: many lines (they also flush early whenever ordering requires it).
FLUSH_THRESHOLD = 16

#: One coalesced same-line run: ``(start, count, line, n_fetch, n_load,
#: n_store, byte_total, head_kind, head_addr, head_size, store_pairs)``.
#: The head access's fields ride in the tuple (the hot loop never
#: indexes back into the access sequence for them) and ``store_pairs``
#: holds the stores' ``(addr, size)`` spans in order, head included —
#: the two choices that let list-compiled and array-compiled runs share
#: one executor loop.  Contiguous stores (each starting where the
#: previous ended) merge into one span: the deterministic store filler
#: is a pure function of the address, so one 16-byte patch is
#: byte-identical to four adjacent 4-byte patches.
_Run = Tuple[int, int, int, int, int, int, int, AccessKind, int, int,
             Tuple[Tuple[int, int], ...]]


class CompiledTrace:
    """A trace preprocessed for batched execution against one line size.

    Iterable and sized like the access list it wraps, so it can stand in
    for a plain trace anywhere; :func:`execute` recognizes it and skips
    recompilation when the line size matches.
    """

    __slots__ = ("accesses", "line_size", "runs")

    def __init__(self, accesses: Union[List[Access], ArrayChunk],
                 line_size: int,
                 runs: List[_Run]):
        self.accesses = accesses
        self.line_size = line_size
        self.runs = runs

    def __len__(self) -> int:
        return len(self.accesses)

    def __iter__(self) -> Iterator[Access]:
        return iter(self.accesses)


class CompiledTraceStream:
    """The streaming counterpart of :class:`CompiledTrace`.

    Wraps a :class:`~repro.traces.stream.TraceStream` and compiles each
    chunk on demand, so only one chunk's accesses and runs exist at a
    time.  Runs never span chunk boundaries — a coalesced run split in
    two executes as two shorter runs, which :func:`execute` resolves to
    the same per-access arithmetic (see DESIGN.md, "Streaming traces").

    Iterable like a trace (flattens to accesses); replayability follows
    the underlying stream.
    """

    __slots__ = ("stream", "line_size")

    def __init__(self, stream: TraceStream, line_size: int):
        self.stream = stream
        self.line_size = line_size

    @property
    def replayable(self) -> bool:
        return self.stream.replayable

    def compiled_chunks(self) -> Iterator[CompiledTrace]:
        """Compile and yield one :class:`CompiledTrace` per chunk."""
        for chunk in self.stream.chunks():
            if isinstance(chunk, ArrayChunk) and _backend.NUMPY is not None:
                yield _compile_arrays(chunk, self.line_size)
            else:
                yield compile_trace(list(chunk), self.line_size)

    def __iter__(self) -> Iterator[Access]:
        return iter(self.stream)


def compile_trace(trace: Union[Trace, CompiledTrace, TraceStream,
                               CompiledTraceStream],
                  line_size: int
                  ) -> Union[CompiledTrace, CompiledTraceStream]:
    """Coalesce consecutive same-line accesses into annotated runs.

    A materialized trace compiles to a :class:`CompiledTrace`; a
    :class:`~repro.traces.stream.TraceStream` compiles lazily to a
    :class:`CompiledTraceStream` (per-chunk, bounded memory).
    """
    if isinstance(trace, CompiledTraceStream):
        if trace.line_size == line_size:
            return trace
        return CompiledTraceStream(trace.stream, line_size)
    if isinstance(trace, TraceStream):
        return CompiledTraceStream(trace, line_size)
    if isinstance(trace, ArrayChunk):
        if _backend.NUMPY is not None:
            return _compile_arrays(trace, line_size)
        trace = list(trace)
    if isinstance(trace, CompiledTrace):
        if trace.line_size == line_size:
            return trace
        accesses = trace.accesses
        if isinstance(accesses, ArrayChunk) and _backend.NUMPY is not None:
            return _compile_arrays(accesses, line_size)
    else:
        accesses = list(trace)
    fetch = AccessKind.FETCH
    store = AccessKind.STORE
    runs: List[_Run] = []
    i = 0
    n = len(accesses)
    while i < n:
        head = accesses[i]
        line = head.addr // line_size
        n_fetch = n_load = n_store = total = 0
        stores: List[Tuple[int, int]] = []
        j = i
        while j < n:
            access = accesses[j]
            if access.addr // line_size != line:
                break
            kind = access.kind
            if kind is store:
                n_store += 1
                if (stores
                        and stores[-1][0] + stores[-1][1] == access.addr
                        and stores[-1][1] + access.size <= 256):
                    # Contiguous with the previous store: one merged span
                    # patches the same bytes (the filler pattern tiles).
                    stores[-1] = (stores[-1][0],
                                  stores[-1][1] + access.size)
                else:
                    stores.append((access.addr, access.size))
            elif kind is fetch:
                n_fetch += 1
            else:
                n_load += 1
            total += access.size
            j += 1
        runs.append((i, j - i, line, n_fetch, n_load, n_store, total,
                     head.kind, head.addr, head.size, tuple(stores)))
        i = j
    return CompiledTrace(accesses, line_size, runs)


def _compile_arrays(chunk: ArrayChunk, line_size: int) -> CompiledTrace:
    """Vectorized :func:`compile_trace` over one :class:`ArrayChunk`.

    Produces exactly the runs the scalar compiler would produce for
    ``list(chunk)`` — same ``_Run`` tuples, plain-int fields — with all
    the per-access arithmetic (line numbers, run boundaries, per-run
    kind counts and byte totals, store positions) done as whole-array
    operations.  The resulting :class:`CompiledTrace` wraps the chunk
    itself as its access sequence; the lazy ``Access`` materialization
    only runs for sink event factories and rare fallback shapes.
    """
    np = _backend.NUMPY
    n = len(chunk)
    if n == 0:
        return CompiledTrace(chunk, line_size, [])
    addrs = chunk.addrs
    kinds = chunk.kinds
    sizes = chunk.sizes
    lines = addrs // line_size

    breaks = np.flatnonzero(lines[1:] != lines[:-1]) + 1
    starts = np.concatenate((np.zeros(1, dtype=breaks.dtype), breaks))
    bounds = np.concatenate((starts, np.asarray([n], dtype=starts.dtype)))
    counts_l = np.diff(bounds).tolist()
    starts_l = starts.tolist()
    lines_l = lines[starts].tolist()

    # Per-run kind counts and byte totals via prefix sums cut at the
    # run boundaries (cumsum of a bool mask counts its True entries).
    store_mask = kinds == KIND_CODES[AccessKind.STORE]
    fetch_mask = kinds == KIND_CODES[AccessKind.FETCH]
    zero = np.zeros(1, dtype=np.int64)
    store_cum = np.concatenate((zero, np.cumsum(store_mask)))
    fetch_cum = np.concatenate((zero, np.cumsum(fetch_mask)))
    size_cum = np.concatenate((zero, np.cumsum(sizes)))
    ns_l = (store_cum[bounds[1:]] - store_cum[bounds[:-1]]).tolist()
    nf_l = (fetch_cum[bounds[1:]] - fetch_cum[bounds[:-1]]).tolist()
    nl_l = [c - s - f for c, s, f in zip(counts_l, ns_l, nf_l)]
    tot_l = (size_cum[bounds[1:]] - size_cum[bounds[:-1]]).tolist()

    by_code = KIND_BY_CODE
    head_kinds = [by_code[c] for c in kinds[starts].tolist()]
    ha_l = addrs[starts].tolist()
    hs_l = sizes[starts].tolist()

    store_idx = np.flatnonzero(store_mask)
    if store_idx.size:
        # Merge contiguous stores into spans (same greedy rule as the
        # scalar compiler), then slice the spans per run.
        sa = addrs[store_idx]
        ss = sizes[store_idx]
        store_run = np.searchsorted(starts, store_idx, side="right") - 1
        new_group = np.ones(len(store_idx), dtype=bool)
        new_group[1:] = ((sa[1:] != sa[:-1] + ss[:-1])
                         | (store_run[1:] != store_run[:-1]))
        g_start = np.flatnonzero(new_group)
        g_bounds = np.concatenate(
            (g_start, np.asarray([len(store_idx)], dtype=g_start.dtype)))
        ss_cum = np.concatenate((zero, np.cumsum(ss)))
        g_size = ss_cum[g_bounds[1:]] - ss_cum[g_bounds[:-1]]
        if int(g_size.max()) > 256:
            # A merged span the filler pattern cannot tile (only possible
            # with line sizes past 256): use the scalar compiler's greedy
            # splitting instead.
            return compile_trace(list(chunk), line_size)
        g_addr = sa[g_start].tolist()
        g_size_l = g_size.tolist()
        g_run = store_run[g_start]
        run_ids = np.arange(len(starts), dtype=g_run.dtype)
        glo_l = np.searchsorted(g_run, run_ids).tolist()
        ghi_l = np.searchsorted(g_run, run_ids, side="right").tolist()
        pairs_l = [
            () if lo == hi
            else ((g_addr[lo], g_size_l[lo]),) if hi == lo + 1
            else tuple(zip(g_addr[lo:hi], g_size_l[lo:hi]))
            for lo, hi in zip(glo_l, ghi_l)
        ]
    else:
        pairs_l = [()] * len(starts_l)
    runs = list(zip(starts_l, counts_l, lines_l, nf_l, nl_l, ns_l, tot_l,
                    head_kinds, ha_l, hs_l, pairs_l))
    return CompiledTrace(chunk, line_size, runs)


def _compiled_chunks(trace, line_size: int) -> Iterator[CompiledTrace]:
    """Yield compiled chunks for any accepted trace shape.

    Materialized traces become a single chunk; streams compile chunk by
    chunk so peak memory stays one chunk regardless of trace length.
    """
    compiled = compile_trace(trace, line_size)
    if isinstance(compiled, CompiledTraceStream):
        yield from compiled.compiled_chunks()
    else:
        yield compiled


def execute(system, trace: Union[Trace, CompiledTrace, TraceStream,
                                 CompiledTraceStream]) -> None:
    """Replay ``trace`` on ``system`` via the batched path.

    Mutates the system exactly like ``for a in trace: system.step(a)``
    (see the module docstring for the precise equivalence contract).
    ``trace`` may be materialized or a chunk stream; chunked execution
    carries all simulator state (LRU order, dirty bits, deferred fills,
    counters, cycle clock) across chunk boundaries, so metrics are
    byte-identical to the materialized path at any chunk size.
    """
    engine = system.engine
    if type(engine).notify_access is not BusEncryptionEngine.notify_access \
            or _backend.ACTIVE == "python":
        # A prefetcher-style hook needs the per-access callback; take the
        # scalar path rather than risk starving it.  The backend ladder's
        # python rung (REPRO_BACKEND=python) also lands here: it is the
        # algebraic-reference configuration, so every access walks the
        # original per-access machinery.
        for access in trace:
            system.step(access)
        return

    cache = system.cache
    cfg = cache.config
    line_size = cfg.line_size

    sink = system.sink
    num_sets = cfg.num_sets
    assoc = cfg.associativity
    write_back = cfg.write_policy is WritePolicy.WRITE_BACK
    write_allocate = cfg.write_allocate
    hit_latency = cfg.hit_latency
    issue = system.issue_cycles
    per_access = engine.per_access_cycles() \
        if engine.placement is Placement.CPU_CACHE else 0
    step_cycles = issue + per_access + hit_latency
    write_buffer = system.write_buffer
    line_data = system._line_data
    counts = system._counts
    port = system.port
    fetch_kind = AccessKind.FETCH
    store_kind = AccessKind.STORE

    # Mirror the cache's OrderedDict sets into plain lists (index 0 is
    # LRU, the tail is MRU — OrderedDict insertion order is exactly that)
    # plus one dirty set; synced back in the finally block below.
    sets: List[List[int]] = [list(s) for s in cache._sets]
    dirty = {
        line
        for s in cache._sets
        for line, entry in s.items() if entry.dirty
    }
    hits = cache.hits
    misses = cache.misses
    evictions = cache.evictions
    writebacks = cache.writebacks
    cycles = system.cycles
    # Per-kind access counters as plain int deltas — ``counts[kind]`` on
    # the shared dict pays a Python-level Enum.__hash__ per access.
    cnt_fetch = cnt_load = cnt_store = 0

    pending: List[int] = []     # line numbers with deferred fills, in order
    pending_set = set()

    def flush_fills() -> None:
        nonlocal cycles
        system.cycles = cycles
        addrs = [line * line_size for line in pending]
        filled = engine.fill_lines(port, addrs, line_size)
        for line, addr, (plaintext, fill_cycles) in zip(pending, addrs,
                                                        filled):
            cycles += fill_cycles
            line_data[line] = bytearray(plaintext)
            if sink is not None:
                sink.emit(TraceEvent(kind="fill", addr=addr, size=line_size,
                                     cycle=cycles))
        pending.clear()
        pending_set.clear()

    def one_access(kind: AccessKind, addr: int, size: int) -> None:
        """Scalar-equivalent handling of one access on the array LRU."""
        nonlocal cycles, hits, misses, evictions, writebacks, \
            cnt_fetch, cnt_load, cnt_store
        cycles += issue
        is_write = kind is store_kind
        if is_write:
            cnt_store += 1
        elif kind is fetch_kind:
            cnt_fetch += 1
        else:
            cnt_load += 1
        if sink is not None:
            sink.emit(TraceEvent(
                kind="access", addr=addr, size=size,
                cycle=cycles, detail=kind.name.lower(),
            ))
        cycles += per_access
        line = addr // line_size
        lines = sets[line % num_sets]

        if line in lines:
            if lines[-1] != line:
                lines.remove(line)
                lines.append(line)
            hits += 1
            if sink is not None:
                sink.emit(TraceEvent(kind="hit", addr=addr,
                                     size=line_size, cycle=cycles))
            through = False
            if is_write:
                if write_back:
                    dirty.add(line)
                else:
                    through = True
            cycles += hit_latency
        else:
            misses += 1
            if sink is not None:
                sink.emit(TraceEvent(kind="miss", addr=addr,
                                     size=line_size, cycle=cycles))
            if is_write and not write_allocate:
                # Store miss bypasses the cache entirely.
                cycles += hit_latency
                through = True
            else:
                victim = None
                wb_addr = None
                if len(lines) >= assoc:
                    victim = lines.pop(0)
                    evictions += 1
                    if sink is not None:
                        sink.emit(TraceEvent(
                            kind="eviction", addr=victim * line_size,
                            size=line_size, cycle=cycles,
                        ))
                    if victim in dirty:
                        dirty.discard(victim)
                        writebacks += 1
                        wb_addr = victim * line_size
                        if sink is not None:
                            sink.emit(TraceEvent(
                                kind="writeback", addr=wb_addr,
                                size=line_size, cycle=cycles,
                            ))
                lines.append(line)
                if is_write and write_back:
                    dirty.add(line)
                through = is_write and not write_back
                cycles += hit_latency

                # External traffic, in scalar engine-call order: every
                # older deferred fill strictly precedes this access's
                # victim writeback, which precedes its own fill.
                if victim is not None:
                    if pending and (wb_addr is not None
                                    or victim in pending_set):
                        flush_fills()
                    victim_data = line_data.pop(victim, None)
                    if wb_addr is not None:
                        if victim_data is None:
                            victim_data = bytearray(line_size)
                        system.cycles = cycles
                        wb_cycles = engine.write_line(
                            port, wb_addr, bytes(victim_data)
                        )
                        if not write_buffer:
                            cycles += wb_cycles
                pending.append(line)
                pending_set.add(line)
                if is_write or len(pending) >= FLUSH_THRESHOLD:
                    # Stores patch the line below, so their fill cannot
                    # be deferred.
                    flush_fills()

        if is_write:
            payload = store_payload(addr, size)
            if line in pending_set:
                flush_fills()
            buf = line_data.get(line)
            if buf is not None:
                offset = addr - line * line_size
                end = min(offset + len(payload), line_size)
                buf[offset:end] = payload[: end - offset]
            if through:
                if pending:
                    flush_fills()
                system.cycles = cycles
                write_cycles = engine.write_partial(
                    port, addr, payload, line_size
                )
                if not write_buffer:
                    cycles += write_cycles

    try:
        # One compiled chunk at a time; every piece of mirrored state —
        # LRU lists, dirty set, counters, cycles, deferred fills — lives
        # outside this loop, so chunk boundaries are invisible to the
        # simulation.  Deferred fills deliberately survive boundaries:
        # flushing there would reorder the bus stream relative to the
        # materialized path.
        for compiled in _compiled_chunks(trace, line_size):
            accesses = compiled.accesses
            for start, count, line, n_fetch, n_load, n_store, total, \
                    head_kind, head_addr, head_size, stores in compiled.runs:
                one_access(head_kind, head_addr, head_size)
                tail = count - 1
                if tail == 0:
                    continue
                lines = sets[line % num_sets]
                head_is_store = head_kind is store_kind
                tail_stores = n_store - (1 if head_is_store else 0)
                if not (lines and lines[-1] == line
                        and (write_back or tail_stores == 0)):
                    # Rare shapes (write-through stores, no-write-allocate
                    # bypass) keep full per-access treatment.
                    for k in range(start + 1, start + count):
                        a = accesses[k]
                        one_access(a.kind, a.addr, a.size)
                    continue

                # Bulk tail: `tail` guaranteed hits on the already-MRU
                # line.  LRU order, set membership and engine state are
                # all untouched by a same-line hit run, so the whole run
                # reduces to counter/cycle arithmetic (plus store
                # patches).
                hits += tail
                cnt_fetch += n_fetch
                cnt_load += n_load
                cnt_store += n_store
                # ... minus the head, which one_access counted above.
                if head_is_store:
                    cnt_store -= 1
                elif head_kind is fetch_kind:
                    cnt_fetch -= 1
                else:
                    cnt_load -= 1
                if sink is not None:
                    base = cycles
                    lo, hi = start + 1, start + count

                    def access_events(base=base, lo=lo, hi=hi,
                                      accesses=accesses):
                        c = base
                        for k in range(lo, hi):
                            access = accesses[k]
                            c += issue
                            yield TraceEvent(
                                kind="access", addr=access.addr,
                                size=access.size, cycle=c,
                                detail=access.kind.name.lower(),
                            )
                            c += per_access + hit_latency

                    def hit_events(base=base, lo=lo, hi=hi,
                                   accesses=accesses):
                        c = base
                        for k in range(lo, hi):
                            access = accesses[k]
                            c += issue + per_access
                            yield TraceEvent(kind="hit", addr=access.addr,
                                             size=line_size, cycle=c)
                            c += hit_latency

                    sink.emit_bulk("access", tail, total - head_size,
                                   access_events)
                    sink.emit_bulk("hit", tail, tail * line_size,
                                   hit_events)
                cycles += tail * step_cycles

                if tail_stores:
                    if line in pending_set:
                        flush_fills()
                    dirty.add(line)
                    buf = line_data.get(line)
                    if buf is not None:
                        base_addr = line * line_size
                        # The head store's bytes may reappear inside the
                        # first merged span; repatching them is a no-op
                        # (the filler is a pure function of the address).
                        for saddr, ssize in stores:
                            payload = store_payload(saddr, ssize)
                            offset = saddr - base_addr
                            end = min(offset + len(payload), line_size)
                            buf[offset:end] = payload[: end - offset]

        if pending:
            flush_fills()
    finally:
        # Sync the mirrored state back into the cache so scalar steps,
        # flushes and reports observe exactly the post-run state — even
        # when an engine raised (e.g. TamperDetected) mid-run.
        cache.hits = hits
        cache.misses = misses
        cache.evictions = evictions
        cache.writebacks = writebacks
        system.cycles = cycles
        counts[fetch_kind] += cnt_fetch
        counts[AccessKind.LOAD] += cnt_load
        counts[store_kind] += cnt_store
        for index, ordered in enumerate(cache._sets):
            ordered.clear()
            for line in sets[index]:
                ordered[line] = _Line(dirty=line in dirty)
