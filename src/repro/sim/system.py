"""Full-system composition: CPU trace -> cache -> EDU -> bus -> memory.

This is the testbench every experiment runs on.  The cache holds plaintext
(survey Figure 2c: "data stored in the cache memory will be in clear form"),
external memory holds whatever the engine produced, and the bus between them
is observable.  The simulator is trace driven and cycle approximate: each
access contributes issue + hit latency, misses add the engine-serviced fill
path, and stores follow the configured write policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..core.engine import BusEncryptionEngine, MemoryPort, NullEngine, Placement
from ..obs import EventSink, TraceEvent, current_sink
from ..traces.trace import Access, AccessKind, Trace
from .bus import Bus
from .cache import Cache, CacheConfig
from .memory import MainMemory, MemoryConfig

#: 512-byte repeating ramp backing the deterministic store filler —
#: ``bytes((addr + i) & 0xFF for i in range(size))`` is a slice of it
#: whenever ``size <= 256``, which every trace generator satisfies.
_STORE_PATTERN = bytes(range(256)) * 2


def store_payload(addr: int, size: int) -> bytes:
    """The deterministic filler a data-less store writes."""
    if size <= 256:
        lo = addr & 0xFF
        return _STORE_PATTERN[lo: lo + size]
    return bytes((addr + i) & 0xFF for i in range(size))

__all__ = ["SimReport", "SecureSystem", "run_trace", "overhead"]


@dataclass
class SimReport:
    """Everything one simulation run produced."""

    label: str
    cycles: int
    accesses: int
    fetches: int
    loads: int
    stores: int
    cache_hits: int
    cache_misses: int
    writebacks: int
    rmw_operations: int
    bus_transactions: int
    bus_bytes: int
    mem_reads: int
    mem_writes: int
    engine_extra_read_cycles: int
    engine_extra_write_cycles: int
    lines_encrypted: int = 0
    lines_decrypted: int = 0
    bytes_enciphered: int = 0   # bytes through the engine, both directions

    @property
    def miss_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_misses / total if total else 0.0

    @property
    def cpi(self) -> float:
        """Cycles per access — the normalized cost metric."""
        return self.cycles / self.accesses if self.accesses else 0.0

    def overhead_vs(self, baseline: "SimReport") -> float:
        """Fractional slowdown relative to ``baseline`` (0.25 = +25%)."""
        if baseline.cycles == 0:
            return 0.0
        return self.cycles / baseline.cycles - 1.0

    def to_metrics(self) -> Dict[str, object]:
        """The report as a flat, JSON-serializable metrics dict."""
        return {
            "label": self.label,
            "cycles": self.cycles,
            "accesses": self.accesses,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": round(1.0 - self.miss_rate, 6),
            "writebacks": self.writebacks,
            "rmw_operations": self.rmw_operations,
            "bus_transactions": self.bus_transactions,
            "bus_bytes": self.bus_bytes,
            "mem_reads": self.mem_reads,
            "mem_writes": self.mem_writes,
            "lines_encrypted": self.lines_encrypted,
            "lines_decrypted": self.lines_decrypted,
            "bytes_enciphered": self.bytes_enciphered,
        }


class SecureSystem:
    """A SoC with an optional bus-encryption engine.

    Parameters
    ----------
    engine:
        The EDU under test; ``None`` builds the plaintext baseline.
    cache_config, mem_config:
        Geometry/timing of the cache and the external memory.
    write_buffer:
        When True (default), writebacks and through-writes are posted: they
        occupy the bus but do not stall the CPU.  When False every write's
        full latency lands on the critical path (the pessimistic model the
        survey's five-step write discussion assumes).
    issue_cycles:
        Cycles charged per CPU access before the memory system responds.
    sink:
        Optional :class:`repro.obs.EventSink` receiving a
        :class:`repro.obs.TraceEvent` for every access, cache outcome,
        fill, bus transfer, memory operation and cipher operation
        (profiling without code changes).  ``None`` picks up the ambient
        sink installed by :func:`repro.obs.scope`, if any.
    """

    def __init__(
        self,
        engine: Optional[BusEncryptionEngine] = None,
        cache_config: CacheConfig = CacheConfig(),
        mem_config: MemoryConfig = MemoryConfig(),
        write_buffer: bool = True,
        issue_cycles: int = 1,
        sink: Optional[EventSink] = None,
    ):
        if sink is None:
            sink = current_sink()
        self.engine = engine if engine is not None else NullEngine()
        self.engine.attach_sink(sink)
        self.sink = sink
        self.cache = Cache(cache_config, sink=sink)
        self.cache.clock = lambda: self.cycles
        self.memory = MainMemory(mem_config, sink=sink)
        self.bus = Bus(sink=sink)
        self.cycles = 0
        self.write_buffer = write_buffer
        self.issue_cycles = issue_cycles
        self.port = MemoryPort(self.memory, self.bus, clock=lambda: self.cycles)
        # Plaintext contents of resident lines, keyed by line address.
        self._line_data: Dict[int, bytearray] = {}
        self._counts = {kind: 0 for kind in AccessKind}

    # -- content management ---------------------------------------------

    def install_image(self, base_addr: int, plaintext: bytes) -> None:
        """Offline-encrypt an image into external memory (no cycles charged)."""
        self.engine.install_image(
            self.memory, base_addr, plaintext, line_size=self.cache.config.line_size
        )

    def read_plaintext(self, addr: int, nbytes: int) -> bytes:
        """Decrypt external memory through the engine (verification helper)."""
        line_size = self.cache.config.line_size
        out = bytearray()
        start = (addr // line_size) * line_size
        end = -(-(addr + nbytes) // line_size) * line_size
        for line_addr in range(start, end, line_size):
            ciphertext = self.memory.dump(line_addr, line_size)
            out += self.engine.decrypt_line(line_addr, ciphertext)
        offset = addr - start
        return bytes(out[offset: offset + nbytes])

    # -- simulation ---------------------------------------------------------

    def _store_data(self, access: Access, data: Optional[bytes]) -> bytes:
        """Bytes a store writes; deterministic filler when the trace has none."""
        if data is not None:
            return data
        return store_payload(access.addr, access.size)

    def step(self, access: Access, data: Optional[bytes] = None) -> None:
        """Simulate one access."""
        line_size = self.cache.config.line_size
        engine = self.engine
        self.cycles += self.issue_cycles
        self._counts[access.kind] += 1
        if self.sink is not None:
            self.sink.emit(TraceEvent(
                kind="access", addr=access.addr, size=access.size,
                cycle=self.cycles, detail=access.kind.name.lower(),
            ))
        engine.notify_access(access.addr, access.kind is AccessKind.FETCH)

        if engine.placement is Placement.CPU_CACHE:
            self.cycles += engine.per_access_cycles()

        result = self.cache.access(access.addr, access.is_write)
        self.cycles += self.cache.config.hit_latency

        # Evicted victim: drop its plaintext; write it back if dirty.
        if result.evicted_line is not None:
            victim_data = self._line_data.pop(result.evicted_line, None)
            if result.writeback_addr is not None:
                if victim_data is None:
                    victim_data = bytearray(line_size)
                wb_cycles = engine.write_line(
                    self.port, result.writeback_addr, bytes(victim_data)
                )
                if not self.write_buffer:
                    self.cycles += wb_cycles

        if result.fill_needed:
            line_addr_bytes = result.line_addr * line_size
            plaintext, fill_cycles = engine.fill_line(
                self.port, line_addr_bytes, line_size
            )
            self.cycles += fill_cycles
            self._line_data[result.line_addr] = bytearray(plaintext)
            if self.sink is not None:
                self.sink.emit(TraceEvent(
                    kind="fill", addr=line_addr_bytes, size=line_size,
                    cycle=self.cycles,
                ))

        if access.is_write:
            payload = self._store_data(access, data)
            if result.line_addr in self._line_data:
                line = self._line_data[result.line_addr]
                offset = access.addr - result.line_addr * line_size
                end = min(offset + len(payload), line_size)
                line[offset:end] = payload[: end - offset]
            if result.through_write:
                write_cycles = engine.write_partial(
                    self.port, access.addr, payload, line_size
                )
                if not self.write_buffer:
                    self.cycles += write_cycles

    def run(self, trace, label: str = "") -> SimReport:
        """Replay ``trace`` and return the report.

        Executes through the batched fast path (:mod:`repro.sim.fastpath`)
        — same report, bus stream and observability totals as the scalar
        :meth:`run_reference`, at a fraction of the dispatch cost.  Accepts
        a plain trace, a :class:`~repro.sim.fastpath.CompiledTrace`
        (compile once, replay against many systems), or a
        :class:`~repro.traces.stream.TraceStream` chunk stream — the
        streaming form runs a 10^8-access trace in bounded memory with a
        byte-identical report.
        """
        from .fastpath import execute
        execute(self, trace)
        return self.report(label or self.engine.name)

    def run_reference(self, trace, label: str = "") -> SimReport:
        """Replay ``trace`` one access at a time (the reference path).

        Accepts the same trace shapes as :meth:`run` (streams included).
        """
        for access in trace:
            self.step(access)
        return self.report(label or self.engine.name)

    def flush(self) -> None:
        """Write back all dirty lines (end-of-run barrier)."""
        line_size = self.cache.config.line_size
        writes = []
        for addr in self.cache.flush():
            data = self._line_data.get(addr // line_size)
            writes.append(
                (addr, bytes(data) if data is not None else bytes(line_size))
            )
        for cycles in self.engine.spill_lines(self.port, writes):
            if not self.write_buffer:
                self.cycles += cycles
        self._line_data.clear()

    def report(self, label: str) -> SimReport:
        stats = self.engine.stats
        line_size = self.cache.config.line_size
        return SimReport(
            label=label,
            cycles=self.cycles,
            accesses=sum(self._counts.values()),
            fetches=self._counts[AccessKind.FETCH],
            loads=self._counts[AccessKind.LOAD],
            stores=self._counts[AccessKind.STORE],
            cache_hits=self.cache.hits,
            cache_misses=self.cache.misses,
            writebacks=self.cache.writebacks,
            rmw_operations=self.engine.stats.rmw_operations,
            bus_transactions=self.bus.transactions,
            bus_bytes=self.bus.bytes_transferred,
            mem_reads=self.memory.reads,
            mem_writes=self.memory.writes,
            engine_extra_read_cycles=stats.extra_read_cycles,
            engine_extra_write_cycles=stats.extra_write_cycles,
            lines_encrypted=stats.lines_encrypted,
            lines_decrypted=stats.lines_decrypted,
            bytes_enciphered=line_size * (
                stats.lines_encrypted + stats.lines_decrypted
            ),
        )


def run_trace(
    trace: Trace,
    engine: Optional[BusEncryptionEngine] = None,
    image: Optional[bytes] = None,
    image_base: int = 0,
    label: str = "",
    **system_kwargs,
) -> SimReport:
    """Convenience one-shot: build a system, install an image, run a trace."""
    system = SecureSystem(engine=engine, **system_kwargs)
    if image is not None:
        system.install_image(image_base, image)
    return system.run(trace, label=label)


def overhead(
    trace: Trace,
    engine: BusEncryptionEngine,
    image: Optional[bytes] = None,
    **system_kwargs,
) -> float:
    """Fractional slowdown of ``engine`` vs the plaintext baseline.

    The trace runs twice (secured, then baseline), so a stream must be
    replayable — a one-shot stream raises ``TypeError`` up front rather
    than silently feeding the baseline nothing.
    """
    from ..traces.stream import TraceStream
    from .fastpath import CompiledTraceStream, compile_trace

    if isinstance(trace, (TraceStream, CompiledTraceStream)) \
            and not trace.replayable:
        raise TypeError(
            "overhead() replays the trace twice; build the stream from a "
            "factory (e.g. repro.traces.stream_workload) so it can replay"
        )
    cache_config = system_kwargs.get("cache_config") or CacheConfig()
    compiled = compile_trace(trace, cache_config.line_size)
    secured = run_trace(compiled, engine=engine, image=image, **system_kwargs)
    baseline = run_trace(compiled, engine=None, image=image, **system_kwargs)
    return secured.overhead_vs(baseline)
