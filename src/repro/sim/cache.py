"""Set-associative cache model with LRU replacement.

Models the on-chip cache the survey's engines sit behind (Figure 2c):
configurable size/line/associativity, write-back or write-through, with or
without write allocation.  The cache is a *timing and coherence* model: line
data content is owned by the surrounding :class:`repro.sim.system`, which
keeps plaintext in the cache and ciphertext in external memory.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from enum import Enum
from typing import Callable, List, Optional

from ..obs import EventSink, TraceEvent

__all__ = ["WritePolicy", "CacheConfig", "CacheResult", "Cache"]


class WritePolicy(Enum):
    WRITE_BACK = "write-back"
    WRITE_THROUGH = "write-through"


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and policy of one cache level."""

    size: int = 16 * 1024
    line_size: int = 32
    associativity: int = 4
    write_policy: WritePolicy = WritePolicy.WRITE_BACK
    write_allocate: bool = True
    hit_latency: int = 1

    def __post_init__(self) -> None:
        if self.size <= 0 or self.line_size <= 0 or self.associativity <= 0:
            raise ValueError("cache geometry parameters must be positive")
        if self.size % (self.line_size * self.associativity) != 0:
            raise ValueError(
                f"size {self.size} not divisible by line_size*assoc "
                f"({self.line_size}*{self.associativity})"
            )
        if self.line_size & (self.line_size - 1):
            raise ValueError(f"line_size must be a power of two, got {self.line_size}")

    @property
    def num_sets(self) -> int:
        return self.size // (self.line_size * self.associativity)


@dataclass
class CacheResult:
    """Outcome of one access: hit/miss plus the bus work it triggers."""

    hit: bool
    line_addr: int
    writeback_addr: Optional[int] = None   # dirty victim to write to memory
    evicted_line: Optional[int] = None     # victim line address (dirty or not)
    fill_needed: bool = False              # line must be fetched from memory
    through_write: bool = False            # store must also go to memory now


@dataclass
class _Line:
    dirty: bool = False


class Cache:
    """LRU set-associative cache.

    Addresses are byte addresses; the cache tracks lines by line address
    (``addr // line_size``).  :meth:`access` updates state and reports what
    external traffic the access causes; the caller performs that traffic.
    """

    def __init__(self, config: CacheConfig,
                 sink: Optional[EventSink] = None):
        self.config = config
        self._sets: List["OrderedDict[int, _Line]"] = [
            OrderedDict() for _ in range(config.num_sets)
        ]
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0
        self.sink = sink
        #: Optional cycle source so emitted events carry timestamps.
        self.clock: Optional[Callable[[], int]] = None

    def _emit(self, kind: str, addr: int) -> None:
        if self.sink is not None:
            self.sink.emit(TraceEvent(
                kind=kind, addr=addr, size=self.config.line_size,
                cycle=self.clock() if self.clock else 0,
            ))

    def _set_index(self, line_addr: int) -> int:
        return line_addr % self.config.num_sets

    def line_addr(self, addr: int) -> int:
        return addr // self.config.line_size

    def contains(self, addr: int) -> bool:
        """True if the line holding ``addr`` is resident (no LRU update)."""
        line = self.line_addr(addr)
        return line in self._sets[self._set_index(line)]

    def access(self, addr: int, is_write: bool) -> CacheResult:
        """Perform one access; returns the external traffic required.

        For a write-through cache, stores propagate to memory whether they
        hit or miss; for write-back, stores mark the line dirty and the
        write reaches memory only on eviction.
        """
        cfg = self.config
        line = self.line_addr(addr)
        cache_set = self._sets[self._set_index(line)]

        if line in cache_set:
            cache_set.move_to_end(line)
            self.hits += 1
            # Guard inline: the hit path runs once per access, and the
            # disabled-observability cost budget is one is-None test.
            if self.sink is not None:
                self._emit("hit", addr)
            entry = cache_set[line]
            through = False
            if is_write:
                if cfg.write_policy is WritePolicy.WRITE_BACK:
                    entry.dirty = True
                else:
                    through = True
            return CacheResult(hit=True, line_addr=line, through_write=through)

        self.misses += 1
        if self.sink is not None:
            self._emit("miss", addr)

        if is_write and not cfg.write_allocate:
            # Store miss bypasses the cache entirely.
            return CacheResult(
                hit=False, line_addr=line, fill_needed=False, through_write=True
            )

        writeback_addr = None
        evicted_line = None
        if len(cache_set) >= cfg.associativity:
            victim_line, victim = cache_set.popitem(last=False)
            self.evictions += 1
            evicted_line = victim_line
            self._emit("eviction", victim_line * cfg.line_size)
            if victim.dirty:
                self.writebacks += 1
                writeback_addr = victim_line * cfg.line_size
                self._emit("writeback", writeback_addr)

        entry = _Line()
        through = False
        if is_write:
            if cfg.write_policy is WritePolicy.WRITE_BACK:
                entry.dirty = True
            else:
                through = True
        cache_set[line] = entry
        return CacheResult(
            hit=False,
            line_addr=line,
            writeback_addr=writeback_addr,
            evicted_line=evicted_line,
            fill_needed=True,
            through_write=through,
        )

    def flush(self) -> List[int]:
        """Evict everything; returns byte addresses of dirty lines."""
        dirty = []
        for cache_set in self._sets:
            for line, entry in cache_set.items():
                if entry.dirty:
                    dirty.append(line * self.config.line_size)
            cache_set.clear()
        self.writebacks += len(dirty)
        return dirty

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0

    def reset_stats(self) -> None:
        self.hits = self.misses = self.evictions = self.writebacks = 0
