"""Two-level cache hierarchy with a movable encryption boundary.

The survey's placement discussion (Figure 7) has exactly two points because
its systems have one cache.  With an L2 the question generalizes: the EDU
can sit between L2 and memory (only off-chip traffic pays crypto, both
caches hold plaintext) or between L1 and L2 (the large L2 holds ciphertext
— tolerating on-chip probing of the L2 arrays, the class-III concern §4
raises — at the price of crypto on every L1 miss).

:class:`TwoLevelSystem` implements both, functionally: with the EDU at the
L2-memory boundary both caches cache plaintext; with the EDU at the L1-L2
boundary the L2 is just a staging array for ciphertext lines and every L1
fill pays the engine.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.engine import BusEncryptionEngine, MemoryPort, NullEngine
from ..obs import EventSink, TraceEvent, current_sink
from ..traces.trace import Access, AccessKind, Trace
from .bus import Bus
from .cache import Cache, CacheConfig
from .memory import MainMemory, MemoryConfig
from .system import SimReport

__all__ = ["TwoLevelSystem", "EDU_L2_MEMORY", "EDU_L1_L2"]

EDU_L2_MEMORY = "l2-memory"
EDU_L1_L2 = "l1-l2"


class TwoLevelSystem:
    """CPU -> L1 -> L2 -> external memory, with the EDU at either boundary."""

    def __init__(
        self,
        engine: Optional[BusEncryptionEngine] = None,
        l1_config: CacheConfig = CacheConfig(size=4096, line_size=32,
                                             associativity=2, hit_latency=1),
        l2_config: CacheConfig = CacheConfig(size=32 * 1024, line_size=32,
                                             associativity=4, hit_latency=8),
        mem_config: MemoryConfig = MemoryConfig(),
        edu_level: str = EDU_L2_MEMORY,
        write_buffer: bool = True,
        issue_cycles: int = 1,
        sink: Optional[EventSink] = None,
    ):
        if l1_config.line_size != l2_config.line_size:
            raise ValueError("L1 and L2 must share a line size in this model")
        if edu_level not in (EDU_L2_MEMORY, EDU_L1_L2):
            raise ValueError(f"unknown edu_level {edu_level!r}")
        if sink is None:
            sink = current_sink()
        self.engine = engine if engine is not None else NullEngine()
        self.engine.attach_sink(sink)
        self.sink = sink
        self.l1 = Cache(l1_config, sink=sink)
        self.l1.clock = lambda: self.cycles
        self.l2 = Cache(l2_config, sink=sink)
        self.l2.clock = lambda: self.cycles
        self.memory = MainMemory(mem_config, sink=sink)
        self.bus = Bus(sink=sink)
        self.edu_level = edu_level
        self.write_buffer = write_buffer
        self.issue_cycles = issue_cycles
        self.cycles = 0
        self.port = MemoryPort(self.memory, self.bus, clock=lambda: self.cycles)
        self.line_size = l1_config.line_size
        # Plaintext of L1-resident lines.
        self._l1_data: Dict[int, bytearray] = {}
        # Content of L2-resident lines: plaintext when the EDU is at the
        # memory boundary, ciphertext when the EDU is at the L1-L2 boundary.
        self._l2_data: Dict[int, bytes] = {}
        self._counts = {kind: 0 for kind in AccessKind}

    # -- installation -----------------------------------------------------

    def install_image(self, base_addr: int, plaintext: bytes) -> None:
        self.engine.install_image(
            self.memory, base_addr, plaintext, line_size=self.line_size
        )

    def read_plaintext(self, addr: int, nbytes: int) -> bytes:
        out = bytearray()
        start = (addr // self.line_size) * self.line_size
        end = -(-(addr + nbytes) // self.line_size) * self.line_size
        for line_addr in range(start, end, self.line_size):
            ciphertext = self.memory.dump(line_addr, self.line_size)
            out += self.engine.decrypt_line(line_addr, ciphertext)
        offset = addr - start
        return bytes(out[offset: offset + nbytes])

    # -- L2 <-> memory ------------------------------------------------------

    def _l2_writeback(self, addr: int) -> None:
        """Dirty L2 victim goes to external memory."""
        line = addr // self.line_size
        data = self._l2_data.pop(line, None)
        if data is None:
            data = bytes(self.line_size)
        if self.edu_level == EDU_L2_MEMORY:
            cycles = self.engine.write_line(self.port, addr, bytes(data))
        else:
            # L2 already holds ciphertext: plain store.
            cycles = self.port.write(addr, bytes(data))
        if not self.write_buffer:
            self.cycles += cycles

    def _l2_fill(self, addr: int) -> bytes:
        """Fetch a line into L2 from memory; returns the L2's view of it."""
        if self.edu_level == EDU_L2_MEMORY:
            data, cycles = self.engine.fill_line(self.port, addr,
                                                 self.line_size)
        else:
            data, cycles = self.port.read(addr, self.line_size)
        self.cycles += cycles
        return bytes(data)

    # -- L1 <-> L2 -------------------------------------------------------------

    def _l1_view(self, addr: int, l2_content: bytes) -> bytes:
        """What the L1 stores: decrypt at the L1 boundary if the EDU is
        there."""
        if self.edu_level == EDU_L1_L2:
            self.cycles += self.engine.read_extra_cycles(
                addr, self.line_size, 0
            )
            self.engine.stats.lines_decrypted += 1
            self.engine._emit("decipher", addr, self.line_size)
            return (
                self.engine.decrypt_line(addr, l2_content)
                if self.engine.functional else l2_content
            )
        return l2_content

    def _l1_writeback(self, addr: int) -> None:
        """Dirty L1 victim goes into L2."""
        line = addr // self.line_size
        plaintext = self._l1_data.pop(line, None)
        if plaintext is None:
            plaintext = bytearray(self.line_size)
        if self.edu_level == EDU_L1_L2:
            self.cycles += self.engine.write_extra_cycles(addr, self.line_size)
            self.engine.stats.lines_encrypted += 1
            self.engine._emit("encipher", addr, self.line_size)
            content = (
                self.engine.encrypt_line(addr, bytes(plaintext))
                if self.engine.functional else bytes(plaintext)
            )
        else:
            content = bytes(plaintext)
        result = self.l2.access(addr, is_write=True)
        self.cycles += self.l2.config.hit_latency
        if result.evicted_line is not None:
            if result.writeback_addr is not None:
                self._l2_writeback(result.writeback_addr)
            else:
                self._l2_data.pop(result.evicted_line, None)
        if result.fill_needed:
            # Write-allocate into L2 without the data (whole line replaced).
            pass
        self._l2_data[line] = content

    def _fetch_into_l1(self, addr: int) -> bytes:
        """Service an L1 fill through the L2."""
        line = addr // self.line_size
        result = self.l2.access(addr, is_write=False)
        self.cycles += self.l2.config.hit_latency
        if result.hit:
            content = self._l2_data.get(line)
            if content is None:
                content = bytes(self.line_size)
        else:
            if result.evicted_line is not None:
                if result.writeback_addr is not None:
                    self._l2_writeback(result.writeback_addr)
                else:
                    self._l2_data.pop(result.evicted_line, None)
            content = self._l2_fill(addr)
            self._l2_data[line] = content
        return self._l1_view(addr, content)

    # -- main loop -----------------------------------------------------------------

    def step(self, access: Access, data: Optional[bytes] = None) -> None:
        self.cycles += self.issue_cycles
        self._counts[access.kind] += 1
        if self.sink is not None:
            self.sink.emit(TraceEvent(
                kind="access", addr=access.addr, size=access.size,
                cycle=self.cycles, detail=access.kind.name.lower(),
            ))
        line_size = self.line_size

        result = self.l1.access(access.addr, access.is_write)
        self.cycles += self.l1.config.hit_latency

        if result.evicted_line is not None:
            if result.writeback_addr is not None:
                self._l1_writeback(result.writeback_addr)
            else:
                self._l1_data.pop(result.evicted_line, None)

        if result.fill_needed:
            plaintext = self._fetch_into_l1(result.line_addr * line_size)
            self._l1_data[result.line_addr] = bytearray(plaintext)

        if access.is_write:
            payload = data if data is not None else bytes(
                (access.addr + i) & 0xFF for i in range(access.size)
            )
            if result.line_addr in self._l1_data:
                line = self._l1_data[result.line_addr]
                offset = access.addr - result.line_addr * line_size
                end = min(offset + len(payload), line_size)
                line[offset:end] = payload[: end - offset]

    def run(self, trace: Trace, label: str = "") -> SimReport:
        for access in trace:
            self.step(access)
        return self.report(label or f"{self.engine.name}@{self.edu_level}")

    def flush(self) -> None:
        """Drain both cache levels to memory."""
        for addr in self.l1.flush():
            self._l1_writeback(addr)
        self._l1_data.clear()
        for addr in self.l2.flush():
            self._l2_writeback(addr)
        self._l2_data.clear()

    def report(self, label: str) -> SimReport:
        return SimReport(
            label=label,
            cycles=self.cycles,
            accesses=sum(self._counts.values()),
            fetches=self._counts[AccessKind.FETCH],
            loads=self._counts[AccessKind.LOAD],
            stores=self._counts[AccessKind.STORE],
            cache_hits=self.l1.hits,
            cache_misses=self.l1.misses,
            writebacks=self.l1.writebacks + self.l2.writebacks,
            rmw_operations=self.engine.stats.rmw_operations,
            bus_transactions=self.bus.transactions,
            bus_bytes=self.bus.bytes_transferred,
            mem_reads=self.memory.reads,
            mem_writes=self.memory.writes,
            engine_extra_read_cycles=self.engine.stats.extra_read_cycles,
            engine_extra_write_cycles=self.engine.stats.extra_write_cycles,
        )
