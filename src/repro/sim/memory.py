"""External memory (RAM) model: functional storage plus access timing.

This is the memory the survey's attacker can read at leisure — board-level
probing "at almost no cost" — so it is fully functional: it stores the
actual (cipher)bytes the engine writes.  Timing is a fixed-latency plus
per-beat transfer model, which is enough to place the crossovers the survey
discusses (keystream generation vs fetch latency, compression beat savings
vs decompression latency).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..obs import EventSink, TraceEvent

#: An interposer rewrites the bytes of one access: ``fn(op, addr, data)``
#: returns the bytes the access proceeds with (``op`` is "read"/"write").
Interposer = Callable[[str, int, bytes], bytes]

__all__ = ["MemoryConfig", "MainMemory", "Interposer"]


@dataclass(frozen=True)
class MemoryConfig:
    """Timing and geometry of the external RAM and its bus.

    ``latency`` is the cycles from request to first data beat;
    ``bus_width`` the bytes moved per beat; ``cycles_per_beat`` the bus
    clock divider relative to the CPU clock.
    """

    size: int = 1 << 22            # 4 MiB
    latency: int = 40
    bus_width: int = 8
    cycles_per_beat: int = 1

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"memory size must be positive, got {self.size}")
        if self.latency < 0:
            raise ValueError(f"latency must be >= 0, got {self.latency}")
        if self.bus_width <= 0 or self.cycles_per_beat <= 0:
            raise ValueError("bus parameters must be positive")

    def beats(self, nbytes: int) -> int:
        """Bus beats needed to move ``nbytes``."""
        return -(-nbytes // self.bus_width)

    def transfer_cycles(self, nbytes: int) -> int:
        """Cycles occupied by the data transfer phase."""
        return self.beats(nbytes) * self.cycles_per_beat

    def read_cycles(self, nbytes: int) -> int:
        """Total cycles for a read of ``nbytes``."""
        return self.latency + self.transfer_cycles(nbytes)

    def write_cycles(self, nbytes: int) -> int:
        """Total cycles for a write of ``nbytes``."""
        return self.latency + self.transfer_cycles(nbytes)


class MainMemory:
    """Byte-addressable external RAM with functional contents.

    Attached **interposers** model an active (class II) attacker sitting on
    the memory array: each sees every serviced access and may substitute
    the bytes a read returns or a write stores
    (:class:`repro.faults.FaultInjector` is the canonical one).  The bulk
    helpers ``load_image``/``dump`` bypass interposers — they are the
    offline install path and the attacker's own probe, not bus traffic.
    """

    def __init__(self, config: MemoryConfig = MemoryConfig(),
                 sink: Optional[EventSink] = None):
        self.config = config
        self._data = bytearray(config.size)
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.sink = sink
        self._interposers: List[Interposer] = []

    def attach_interposer(self, interposer: Interposer) -> None:
        """Attach an active interposer to every subsequent read/write."""
        self._interposers.append(interposer)

    def detach_interposer(self, interposer: Interposer) -> None:
        self._interposers.remove(interposer)

    def _check_range(self, addr: int, nbytes: int) -> None:
        if addr < 0 or addr + nbytes > self.config.size:
            raise IndexError(
                f"access [{addr}, {addr + nbytes}) outside memory of "
                f"{self.config.size} bytes"
            )

    def read(self, addr: int, nbytes: int) -> bytes:
        """Functional read (no timing; timing comes from the config)."""
        self._check_range(addr, nbytes)
        self.reads += 1
        self.bytes_read += nbytes
        if self.sink is not None:
            self.sink.emit(TraceEvent(kind="mem-read", addr=addr,
                                      size=nbytes))
        data = bytes(self._data[addr: addr + nbytes])
        for interposer in self._interposers:
            data = interposer("read", addr, data)
        return data

    def write(self, addr: int, data: bytes) -> None:
        """Functional write."""
        self._check_range(addr, len(data))
        self.writes += 1
        self.bytes_written += len(data)
        if self.sink is not None:
            self.sink.emit(TraceEvent(kind="mem-write", addr=addr,
                                      size=len(data)))
        for interposer in self._interposers:
            data = interposer("write", addr, data)
        self._data[addr: addr + len(data)] = data

    def load_image(self, addr: int, image: bytes) -> None:
        """Bulk install without touching the access counters (offline load)."""
        self._check_range(addr, len(image))
        self._data[addr: addr + len(image)] = image

    def dump(self, addr: int, nbytes: int) -> bytes:
        """Bulk inspect without touching counters (the attacker's probe)."""
        self._check_range(addr, nbytes)
        return bytes(self._data[addr: addr + nbytes])

    def reset_stats(self) -> None:
        self.reads = self.writes = 0
        self.bytes_read = self.bytes_written = 0
