"""Push-driven streaming execution: feed chunks in, collect the report.

:func:`repro.sim.fastpath.execute` *pulls* chunks from a
:class:`~repro.traces.stream.TraceStream`.  The serve layer has the
opposite shape: trace segments arrive one frame at a time and must be
*pushed* into a running execution.  :class:`StreamExecutor` bridges the
two — a worker thread runs ``execute`` over a bounded queue, so

* memory stays bounded: at most ``maxsize`` chunks are in flight, and
  :meth:`feed` blocks (backpressure) when the simulator falls behind;
* metrics stay byte-identical: the worker sees exactly the chunk
  sequence fed, through the same carried-state execution the pull path
  uses.

Typical use::

    executor = StreamExecutor(system)
    for chunk in segments:
        executor.feed(chunk)
    executor.close()                  # joins; re-raises engine errors
    report = system.report("label")
"""

from __future__ import annotations

import queue
import threading
from typing import Iterator, List, Sequence

from ..traces.stream import TraceStream
from ..traces.trace import Access

__all__ = ["StreamExecutor"]

#: End-of-stream sentinel on the chunk queue.
_DONE = object()


class StreamExecutor:
    """Run one system's trace execution fed chunk by chunk.

    Not thread-safe for concurrent producers: one feeder at a time.
    After :meth:`close` (or :meth:`abort`) the executor is finished;
    build a new one for a new run.
    """

    def __init__(self, system, maxsize: int = 8):
        if maxsize <= 0:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self._system = system
        self._queue: "queue.Queue[object]" = queue.Queue(maxsize)
        self._error: BaseException | None = None
        self._aborted = False
        self._closed = False
        self._fed = 0
        self._thread = threading.Thread(
            target=self._run, name="stream-executor", daemon=True
        )
        self._thread.start()

    @property
    def fed(self) -> int:
        """Total accesses accepted so far."""
        return self._fed

    @property
    def failed(self) -> bool:
        """Whether execution already raised (the error surfaces on the
        next :meth:`feed` or on :meth:`close`)."""
        return self._error is not None

    def _pull(self) -> Iterator[List[Access]]:
        while True:
            item = self._queue.get()
            if item is _DONE or self._aborted:
                return
            yield item  # type: ignore[misc]

    def _run(self) -> None:
        from .fastpath import execute

        try:
            execute(self._system, TraceStream(self._pull()))
        except BaseException as exc:  # surfaced to the feeder, not lost
            self._error = exc
            # Keep draining so a feeder blocked on a full queue wakes up
            # (its next feed() raises the stored error).
            while self._queue.get() is not _DONE:
                pass

    def feed(self, chunk: Sequence[Access]) -> int:
        """Append one chunk; blocks when the queue is full (backpressure).

        Returns the running access total.  Raises the execution error if
        the worker already failed (e.g. an engine detected tampering).
        """
        if self._closed:
            raise RuntimeError("stream executor is already closed")
        if self._error is not None:
            raise self._error
        chunk = list(chunk)
        if chunk:
            self._queue.put(chunk)
            self._fed += len(chunk)
        return self._fed

    def close(self) -> None:
        """Finish the stream, wait for execution, re-raise any error.

        After a clean close the system holds the post-run state; read
        the metrics with ``system.report(label)``.
        """
        if not self._closed:
            self._closed = True
            self._queue.put(_DONE)
            self._thread.join()
        if self._error is not None:
            raise self._error

    def abort(self) -> None:
        """Tear down without waiting (client vanished); never raises."""
        self._aborted = True
        self._closed = True
        try:
            self._queue.put_nowait(_DONE)
        except queue.Full:
            pass  # the worker is draining; it will see _aborted
