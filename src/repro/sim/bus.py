"""Processor-memory bus with probe hooks.

"The main problem is that data and instructions are constantly exchanged
between memory and CPU in clear form on the bus" — the bus is where the
survey's adversary sits.  Every transfer is announced to attached probes
(:class:`repro.attacks.probe.BusProbe` records them), carrying exactly the
bytes that cross the chip boundary: ciphertext when an engine is present,
plaintext when not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..obs import EventSink, TraceEvent

__all__ = ["BusTransaction", "Bus"]


@dataclass(frozen=True)
class BusTransaction:
    """One observable transfer on the external bus."""

    op: str            # "read" (memory -> chip) or "write" (chip -> memory)
    addr: int
    data: bytes
    cycle: int         # CPU cycle at which the transfer started


class Bus:
    """External bus: counts traffic and notifies probes of every transfer.

    Beyond passive probes, **interposers** model an attacker driving the
    wires themselves: each may substitute the payload of a transfer
    (``fn(op, addr, data) -> bytes``).  :meth:`transfer` returns the final
    payload, and :class:`repro.core.engine.MemoryPort` hands exactly those
    bytes to the engine — a wire-level glitch is transient (the stored copy
    in RAM is untouched), which is how real bus glitching differs from
    rewriting the memory array.
    """

    def __init__(self, sink: Optional[EventSink] = None) -> None:
        self._probes: List[Callable[[BusTransaction], None]] = []
        self._interposers: List[Callable[[str, int, bytes], bytes]] = []
        self.transactions = 0
        self.bytes_transferred = 0
        self.sink = sink

    def attach_probe(self, probe: Callable[[BusTransaction], None]) -> None:
        """Attach a probe called with every :class:`BusTransaction`."""
        self._probes.append(probe)

    def detach_probe(self, probe: Callable[[BusTransaction], None]) -> None:
        self._probes.remove(probe)

    def attach_interposer(
            self, interposer: Callable[[str, int, bytes], bytes]) -> None:
        """Attach an active interposer rewriting transfer payloads."""
        self._interposers.append(interposer)

    def detach_interposer(
            self, interposer: Callable[[str, int, bytes], bytes]) -> None:
        self._interposers.remove(interposer)

    def transfer(self, op: str, addr: int, data: bytes, cycle: int) -> bytes:
        """Announce a transfer of ``data`` at ``addr``; returns the payload
        as (possibly) rewritten by attached interposers — probes and sinks
        see the final bytes, exactly what crossed the wires."""
        if op not in ("read", "write"):
            raise ValueError(f"unknown bus op {op!r}")
        for interposer in self._interposers:
            data = interposer(op, addr, data)
        self.transactions += 1
        self.bytes_transferred += len(data)
        if self.sink is not None:
            # The event carries the payload itself (a reference, not a
            # copy): sinks standing in for board-level probes see exactly
            # the bytes that crossed the chip boundary.
            self.sink.emit(TraceEvent(
                kind=f"bus-{op}", addr=addr, size=len(data), cycle=cycle,
                data=data,
            ))
        if self._probes:
            txn = BusTransaction(op=op, addr=addr, data=data, cycle=cycle)
            for probe in self._probes:
                probe(txn)
        return data

    def reset_stats(self) -> None:
        self.transactions = 0
        self.bytes_transferred = 0
