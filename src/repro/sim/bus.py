"""Processor-memory bus with probe hooks.

"The main problem is that data and instructions are constantly exchanged
between memory and CPU in clear form on the bus" — the bus is where the
survey's adversary sits.  Every transfer is announced to attached probes
(:class:`repro.attacks.probe.BusProbe` records them), carrying exactly the
bytes that cross the chip boundary: ciphertext when an engine is present,
plaintext when not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..obs import EventSink, TraceEvent

__all__ = ["BusTransaction", "Bus"]


@dataclass(frozen=True)
class BusTransaction:
    """One observable transfer on the external bus."""

    op: str            # "read" (memory -> chip) or "write" (chip -> memory)
    addr: int
    data: bytes
    cycle: int         # CPU cycle at which the transfer started


class Bus:
    """External bus: counts traffic and notifies probes of every transfer."""

    def __init__(self, sink: Optional[EventSink] = None) -> None:
        self._probes: List[Callable[[BusTransaction], None]] = []
        self.transactions = 0
        self.bytes_transferred = 0
        self.sink = sink

    def attach_probe(self, probe: Callable[[BusTransaction], None]) -> None:
        """Attach a probe called with every :class:`BusTransaction`."""
        self._probes.append(probe)

    def detach_probe(self, probe: Callable[[BusTransaction], None]) -> None:
        self._probes.remove(probe)

    def transfer(self, op: str, addr: int, data: bytes, cycle: int) -> None:
        """Announce a transfer of ``data`` at ``addr`` to all probes."""
        if op not in ("read", "write"):
            raise ValueError(f"unknown bus op {op!r}")
        self.transactions += 1
        self.bytes_transferred += len(data)
        if self.sink is not None:
            # The event carries the payload itself (a reference, not a
            # copy): sinks standing in for board-level probes see exactly
            # the bytes that crossed the chip boundary.
            self.sink.emit(TraceEvent(
                kind=f"bus-{op}", addr=addr, size=len(data), cycle=cycle,
                data=data,
            ))
        if self._probes:
            txn = BusTransaction(op=op, addr=addr, data=data, cycle=cycle)
            for probe in self._probes:
                probe(txn)

    def reset_stats(self) -> None:
        self.transactions = 0
        self.bytes_transferred = 0
