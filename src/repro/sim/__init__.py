"""Hardware simulation substrate: cache, bus, external memory, pipelined
cipher-unit timing, area estimation and the full-system composer."""

from .area import GATES, AreaEstimate, combine, sram_gates
from .bus import Bus, BusTransaction
from .energy import DEFAULT_ENERGY, EnergyModel, EnergyReport, estimate_run
from .hierarchy import EDU_L1_L2, EDU_L2_MEMORY, TwoLevelSystem
from .cache import Cache, CacheConfig, CacheResult, WritePolicy
from .memory import MainMemory, MemoryConfig
from .pipeline import (
    AEGIS_AES_PIPE,
    AES_ITERATIVE,
    BYTE_SUBST_UNIT,
    DES_ITERATIVE,
    KEYSTREAM_UNIT,
    TDES_ITERATIVE,
    TDES_PIPE,
    XOM_AES_PIPE,
    PipelinedUnit,
)
from .stats import (
    CountingSink,
    NullSink,
    RecordingSink,
    RingBufferSink,
    SimStats,
    StatsSink,
    TraceEvent,
)
from .streaming import StreamExecutor
from .system import SecureSystem, SimReport, overhead, run_trace

__all__ = [
    "GATES", "AreaEstimate", "combine", "sram_gates",
    "Bus", "BusTransaction",
    "DEFAULT_ENERGY", "EnergyModel", "EnergyReport", "estimate_run",
    "EDU_L1_L2", "EDU_L2_MEMORY", "TwoLevelSystem",
    "Cache", "CacheConfig", "CacheResult", "WritePolicy",
    "MainMemory", "MemoryConfig",
    "PipelinedUnit", "XOM_AES_PIPE", "AEGIS_AES_PIPE", "TDES_PIPE",
    "TDES_ITERATIVE", "DES_ITERATIVE", "AES_ITERATIVE", "KEYSTREAM_UNIT",
    "BYTE_SUBST_UNIT",
    "CountingSink", "NullSink", "RecordingSink", "RingBufferSink",
    "SimStats", "StatsSink", "TraceEvent",
    "SecureSystem", "SimReport", "overhead", "run_trace",
    "StreamExecutor",
]
