"""Silicon-area (gate-count) estimation for the engines.

The survey weighs every engine against "constraints such as: area, power
consumption, performance penalties".  AEGIS's pipelined AES is quoted at
300,000 gates; the other engines are estimated from standard gate-count
figures for their building blocks.  The absolute numbers are coarse by
nature — what E11/E14 need is the *ordering* (a fully pipelined AES dwarfs
an 8-bit substitution unit) and the SRAM cost of the CPU-cache placement
(Figure 7b doubles the on-chip memory, which Section 5 calls unaffordable).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["AreaEstimate", "GATES", "sram_gates", "combine"]

# Gate-equivalent costs of standard blocks (2-input NAND equivalents).
GATES: Dict[str, int] = {
    # Cipher cores.
    "aes_round": 25_000,          # one unrolled AES round (S-boxes dominate)
    "aes_iterative": 30_000,      # single round + state + key schedule
    "aes_pipelined": 300_000,     # AEGIS's reported figure [14]
    "des_round": 2_500,
    "des_iterative": 15_000,
    "tdes_iterative": 40_000,
    "tdes_pipelined": 120_000,    # 48 unrolled rounds
    # Small units.
    "byte_sbox": 500,             # one 256x8 combinational S-box
    "byte_transposition": 200,
    "lfsr_bit": 12,
    "hmac_sha256": 25_000,
    "huffman_decoder": 8_000,
    "codepack_decoder": 15_000,
    "dma_controller": 5_000,
    "fetch_predictor": 3_000,
    "counter_64": 400,
    "control_overhead": 2_000,
}

# SRAM density: gate equivalents per bit (register file ~6-8, SRAM macro ~1.5;
# use a conservative figure for on-chip buffer estimates).
_SRAM_GATES_PER_BIT = 1.5


def sram_gates(nbytes: int) -> int:
    """Gate-equivalent cost of ``nbytes`` of on-chip SRAM."""
    if nbytes < 0:
        raise ValueError(f"negative SRAM size {nbytes}")
    return int(8 * nbytes * _SRAM_GATES_PER_BIT)


@dataclass
class AreaEstimate:
    """Itemized gate count for one engine."""

    name: str
    items: Dict[str, int] = field(default_factory=dict)

    def add(self, label: str, gates: int) -> "AreaEstimate":
        if gates < 0:
            raise ValueError(f"negative gate count for {label}")
        self.items[label] = self.items.get(label, 0) + gates
        return self

    def add_block(self, block: str, count: int = 1) -> "AreaEstimate":
        """Add ``count`` instances of a named standard block."""
        if block not in GATES:
            raise KeyError(f"unknown block {block!r}")
        return self.add(block, GATES[block] * count)

    def add_sram(self, label: str, nbytes: int) -> "AreaEstimate":
        return self.add(label, sram_gates(nbytes))

    @property
    def total(self) -> int:
        return sum(self.items.values())

    def __str__(self) -> str:
        lines = [f"{self.name}: {self.total:,} gates"]
        for label, gates in sorted(self.items.items(), key=lambda kv: -kv[1]):
            lines.append(f"  {label:<24s} {gates:>12,}")
        return "\n".join(lines)


def combine(name: str, *estimates: AreaEstimate) -> AreaEstimate:
    """Merge several estimates (e.g. cipher core + controller + SRAM)."""
    merged = AreaEstimate(name)
    for est in estimates:
        for label, gates in est.items.items():
            merged.add(f"{est.name}/{label}", gates)
    return merged
