"""Streaming-execution scaling bench: accesses/sec and peak RSS by scale.

The point of chunk-streamed execution (:func:`repro.api.run_stream`)
is that trace length and resident memory are decoupled: a 10^8-access
run must not cost 10^8 accesses of RAM.  This bench proves both halves
of that contract and writes ``BENCH_stream_scaling.json``:

* **equality** — for a sample of engines, the chunked path's canonical
  metrics are byte-identical to the materialized (``chunk_size=0``)
  path at every tested chunk size, including 1 and one larger than the
  whole trace;
* **scaling** — each scale runs in its own *forked child* (``ru_maxrss``
  is a process-lifetime high-water mark, so children are the only way
  to attribute peak RSS to one scale), and the top scale's peak RSS
  must stay within a small factor of the smallest scale's.

Usage::

    python -m repro.sim.bench_stream --smoke        # seconds; CI gate
    python -m repro.sim.bench_stream                # full; writes JSON

The full run's top scale is 10^8 accesses (~minutes of wall time at
interpreter speed); ``--scales`` overrides the ladder.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import resource
import sys
import time
from typing import List, Optional, Sequence

#: Peak-RSS growth allowed between the smallest and largest scale.  The
#: trace grows 100x across the ladder; resident memory must not follow.
RSS_FLATNESS_FACTOR = 1.5

#: Absolute slack (kB) on top of the ratio: allocator arenas and the
#: simulator's lazily-touched working set (cache arrays, memory pages)
#: plateau within the first ~10^5 accesses but are not literally zero.
RSS_FLATNESS_SLACK_KB = 8 * 1024

#: (engine, workload, accesses) sample for the chunk-equality gate.
EQUALITY_CASES = (
    (None, "mixed", 4000),
    ("xom", "dma-burst", 4000),
    ("stream", "phased", 4000),
)

SCHEMA = "repro-stream-scaling/1"


def _say(line: str) -> None:
    # CLI output only — simulator state reports via repro.obs events.
    sys.stdout.write(f"stream-bench: {line}\n")
    sys.stdout.flush()


def _measure_scale(conn, accesses: int, workload: str,
                   chunk_size: int, seed: int) -> None:
    """Child-process body: run one scale, report wall/RSS through a pipe."""
    from ..api import run_stream

    start = time.perf_counter()
    doc = run_stream(engine=None, workload=workload, accesses=accesses,
                     chunk_size=chunk_size, seed=seed)
    wall = time.perf_counter() - start
    peak_rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    conn.send({
        "accesses": accesses,
        "wall_seconds": round(wall, 3),
        "accesses_per_second": int(accesses / wall) if wall else 0,
        "peak_rss_kb": int(peak_rss_kb),
        "cycles": doc["metrics"]["cycles"],
        "cache_misses": doc["metrics"]["cache_misses"],
    })
    conn.close()


def run_scale(accesses: int, workload: str = "dma-burst",
              chunk_size: int = 65536, seed: int = 2005) -> dict:
    """Run one scale in a forked child; returns its measurement row."""
    ctx = multiprocessing.get_context("fork")
    parent, child = ctx.Pipe(duplex=False)
    proc = ctx.Process(target=_measure_scale,
                       args=(child, accesses, workload, chunk_size, seed))
    proc.start()
    child.close()
    try:
        row = parent.recv()
    except EOFError:
        proc.join()
        raise RuntimeError(
            f"scale {accesses}: child died with exit code {proc.exitcode}"
        ) from None
    proc.join()
    return row


def check_equality(cases: Sequence = EQUALITY_CASES,
                   chunk_sizes: Sequence[int] = (1, 173, 65536),
                   log=None) -> List[dict]:
    """Chunked-vs-materialized byte-identity over the engine sample.

    ``chunk_sizes`` is extended with ``accesses + 1`` (one oversized
    chunk) per case; any mismatch raises ``AssertionError``.
    """
    from ..api import run_stream

    rows = []
    for engine, workload, accesses in cases:
        whole = run_stream(engine=engine, workload=workload,
                           accesses=accesses, chunk_size=0)
        tested = list(chunk_sizes) + [accesses + 1]
        for chunk in tested:
            chunked = run_stream(engine=engine, workload=workload,
                                 accesses=accesses, chunk_size=chunk)
            same = chunked["metrics"] == whole["metrics"]
            if not same:
                raise AssertionError(
                    f"{engine or 'baseline'}/{workload}: chunk_size="
                    f"{chunk} metrics diverge from the materialized path"
                )
        rows.append({
            "engine": engine or "baseline",
            "workload": workload,
            "accesses": accesses,
            "chunk_sizes": tested,
            "identical": True,
        })
        if log:
            log(f"equality: {engine or 'baseline'}/{workload} identical "
                f"at chunk sizes {tested}")
    return rows


def check_flatness(scales: List[dict]) -> dict:
    """Assert peak RSS stays flat as the trace grows; returns the check."""
    smallest, largest = scales[0], scales[-1]
    ratio = largest["peak_rss_kb"] / max(1, smallest["peak_rss_kb"])
    growth_kb = largest["peak_rss_kb"] - smallest["peak_rss_kb"]
    bounded = (ratio <= RSS_FLATNESS_FACTOR
               or growth_kb <= RSS_FLATNESS_SLACK_KB)
    check = {
        "smallest_peak_rss_kb": smallest["peak_rss_kb"],
        "largest_peak_rss_kb": largest["peak_rss_kb"],
        "rss_ratio": round(ratio, 3),
        "allowed_factor": RSS_FLATNESS_FACTOR,
        "allowed_slack_kb": RSS_FLATNESS_SLACK_KB,
        "bounded_memory": bounded,
    }
    if not bounded:
        raise AssertionError(
            f"peak RSS grew {ratio:.2f}x across a "
            f"{largest['accesses'] // smallest['accesses']}x trace-length "
            f"increase (allowed {RSS_FLATNESS_FACTOR}x): streaming is "
            f"not bounded-memory"
        )
    return check


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench_stream",
        description="streaming-execution scaling bench "
                    "(accesses/sec + peak RSS by scale)",
    )
    parser.add_argument("--smoke", action="store_true",
                        help="small scales, no JSON output; the CI gate")
    parser.add_argument("--scales", nargs="*", type=int, metavar="N",
                        help="access-count ladder "
                             "(default: 1e6 1e7 1e8; smoke: 2e4 2e5)")
    parser.add_argument("--workload", default="dma-burst",
                        help="scaling workload (long-horizon generators "
                             "keep generation cost off the critical path)")
    parser.add_argument("--chunk-size", type=int, default=65536)
    parser.add_argument("--seed", type=int, default=2005)
    parser.add_argument("--out", default="BENCH_stream_scaling.json",
                        help="output JSON path (full mode only)")
    args = parser.parse_args(argv)

    log = _say

    if args.scales:
        ladder = sorted(args.scales)
    elif args.smoke:
        ladder = [200_000, 1_000_000]
    else:
        ladder = [1_000_000, 10_000_000, 100_000_000]
    if any(n <= 0 for n in ladder):
        sys.stderr.write("stream-bench: scales must be positive\n")
        return 2

    equality = check_equality(log=log)

    scales = []
    for n in ladder:
        row = run_scale(n, workload=args.workload,
                        chunk_size=args.chunk_size, seed=args.seed)
        scales.append(row)
        log(f"scale {n:>11,}: {row['wall_seconds']:8.2f}s  "
            f"{row['accesses_per_second']:>9,} acc/s  "
            f"peak RSS {row['peak_rss_kb']:,} kB")
    flatness = check_flatness(scales)
    log(f"peak RSS ratio {flatness['rss_ratio']}x across a "
        f"{ladder[-1] // ladder[0]}x scale sweep "
        f"(allowed {RSS_FLATNESS_FACTOR}x)")

    if args.smoke:
        log("smoke ok: chunk equality + bounded memory")
        return 0

    doc = {
        "schema": SCHEMA,
        "workload": args.workload,
        "chunk_size": args.chunk_size,
        "seed": args.seed,
        "scales": scales,
        "memory_check": flatness,
        "chunk_equality": equality,
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    log(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
