"""Microbenchmark and differential checker for the batched fast path.

Three modes:

``python -m repro.sim.bench_fastpath``
    Times the scalar reference path (:meth:`SecureSystem.run_reference`)
    against the batched path (:meth:`SecureSystem.run`) on the same
    compiled workload, per engine, and prints accesses/second plus the
    speedup.  This is the number the quick-suite wall-time budget rests
    on; run it before and after touching :mod:`repro.sim.fastpath`.

``python -m repro.sim.bench_fastpath --check [ENGINE ...]``
    Differential equivalence run (the ``make fastpath-smoke`` gate): for
    each engine the two paths must produce an identical
    :class:`~repro.sim.system.SimReport`, identical
    :class:`~repro.obs.CounterSink` aggregate totals, and an identical
    bus transaction stream — same (op, addr, payload) tuples in the same
    order.  Exits non-zero on the first divergence.  ``--check`` with no
    engine names checks the plaintext baseline plus every registry
    engine.

``python -m repro.sim.bench_fastpath --vector``
    Per-backend timing of the streamed dma-burst workload: one child
    process per rung of the backend dispatch ladder (numpy / kernel /
    python, via ``REPRO_BACKEND`` — the rung is settled at import, so a
    fresh process per rung is the only honest way to compare), asserting
    that every rung's canonical metrics document hashes identically
    before reporting accesses/second.  ``--out`` additionally writes
    ``BENCH_vector_scaling.json`` (the ``make vector-smoke`` gate runs
    without it).

The module is CLI tooling, not simulator data path: results leave
through stdout, while the systems under test report through
:mod:`repro.obs` as usual.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import subprocess
import sys
import time
from typing import List, Optional, Sequence, Tuple

from ..core.registry import engine_names, make_engine
from ..crypto.drbg import DRBG
from ..obs import CounterSink
from ..traces.stream import TraceStream, chunked
from ..traces.trace import Access, AccessKind
from .cache import CacheConfig
from .fastpath import compile_trace
from .memory import MemoryConfig
from .system import SecureSystem, SimReport

__all__ = ["differential", "main", "make_bench_trace"]

#: The workload stays inside the smallest engine-visible window (the
#: address-scrambling engine permutes a 512-line region).
REGION = 16 * 1024
_KINDS = (AccessKind.FETCH, AccessKind.LOAD, AccessKind.LOAD,
          AccessKind.STORE)


def _say(line: str) -> None:
    # CLI output only — simulator state reports via repro.obs events.
    sys.stdout.write(line + "\n")


def make_bench_trace(n: int, seed: int = 2005,
                     fetch_only: bool = False) -> List[Access]:
    """Deterministic workload inside REGION with same-line run locality.

    Each burst stays within one cache line for one to eight accesses (the
    shape real fetch/load streams have), so the trace exercises both the
    coalesced hit-run bulk path and the deferred miss batching.
    """
    rng = DRBG(b"fastpath-bench-%d" % seed)
    out: List[Access] = []
    while len(out) < n:
        line_base = (rng.randbits(14) // 32) * 32
        for _ in range(1 + rng.randbits(3)):
            if len(out) >= n:
                break
            kind = AccessKind.FETCH if fetch_only else _KINDS[rng.randbits(2)]
            out.append(Access(addr=line_base + 4 * rng.randbits(3),
                              kind=kind, size=4))
    return out


def _build(name: Optional[str], sink=None) -> SecureSystem:
    system = SecureSystem(
        engine=make_engine(name) if name else None,
        cache_config=CacheConfig(size=1024, line_size=32, associativity=2),
        mem_config=MemoryConfig(size=1 << 21),
        sink=sink,
    )
    system.install_image(0, DRBG(b"fastpath-image").random_bytes(REGION))
    return system


def _run(name: Optional[str], trace, reference: bool
         ) -> Tuple[SimReport, CounterSink, List[Tuple[str, int, bytes]]]:
    sink = CounterSink()
    system = _build(name, sink=sink)
    transactions: List[Tuple[str, int, bytes]] = []
    system.bus.attach_probe(
        lambda txn: transactions.append((txn.op, txn.addr, txn.data))
    )
    report = (system.run_reference(trace) if reference
              else system.run(trace))
    return report, sink, transactions


def differential(name: Optional[str], n: int = 2000,
                 chunk: Optional[int] = None) -> List[str]:
    """Compare reference vs fast path for one engine; returns mismatches.

    With ``chunk`` set, the fast path consumes the trace as a replayable
    :class:`~repro.traces.stream.TraceStream` of that chunk size instead
    of the materialized list — the chunked-vs-whole equality gate.
    """
    trace = make_bench_trace(n, fetch_only=name == "compress")
    ref_report, ref_sink, ref_bus = _run(name, trace, reference=True)
    fast_trace = (trace if chunk is None
                  else TraceStream(lambda: chunked(trace, chunk), length=n))
    fast_report, fast_sink, fast_bus = _run(name, fast_trace,
                                            reference=False)
    problems: List[str] = []
    for field in ref_report.__dataclass_fields__:
        a, b = getattr(ref_report, field), getattr(fast_report, field)
        if a != b:
            problems.append(f"report.{field}: reference {a} != fast {b}")
    if ref_sink.summary() != fast_sink.summary():
        problems.append(
            f"event counts: {ref_sink.summary()} != {fast_sink.summary()}"
        )
    if ref_sink.bytes_summary() != fast_sink.bytes_summary():
        problems.append(
            f"event bytes: {ref_sink.bytes_summary()} != "
            f"{fast_sink.bytes_summary()}"
        )
    if ref_bus != fast_bus:
        detail = f"{len(ref_bus)} vs {len(fast_bus)} transactions"
        for i, (a, b) in enumerate(zip(ref_bus, fast_bus)):
            if a != b:
                detail = (f"first divergence at #{i}: "
                          f"{a[0]}@{a[1]:#x} vs {b[0]}@{b[1]:#x}")
                break
        problems.append(f"bus stream differs ({detail})")
    return problems


def _check(names: Sequence[str], n: int) -> int:
    targets: List[Optional[str]] = (
        list(names) if names else [None] + engine_names()
    )
    failed = 0
    for name in targets:
        problems = differential(name, n=n)
        label = name or "baseline"
        if problems:
            failed += 1
            _say(f"FAIL {label}")
            for problem in problems:
                _say(f"  {problem}")
        else:
            _say(f"ok   {label}")
    if failed:
        _say(f"fastpath check: {failed} engine(s) diverged")
    else:
        _say(f"fastpath check: {len(targets)} configuration(s) identical")
    return 1 if failed else 0


def _bench(names: Sequence[str], n: int, repeats: int) -> int:
    targets: List[Optional[str]] = (
        list(names) if names else [None, "stream", "xom", "aegis"]
    )
    _say(f"{'engine':<22} {'reference':>12} {'fast':>12} {'speedup':>9}"
         f"   ({n} accesses, best of {repeats})")
    for name in targets:
        trace = compile_trace(
            make_bench_trace(n, fetch_only=name == "compress"), 32
        )
        walls = {"ref": float("inf"), "fast": float("inf")}
        for _ in range(repeats):
            system = _build(name)
            start = time.perf_counter()
            system.run_reference(trace)
            walls["ref"] = min(walls["ref"], time.perf_counter() - start)
            system = _build(name)
            start = time.perf_counter()
            system.run(trace)
            walls["fast"] = min(walls["fast"], time.perf_counter() - start)
        _say(f"{name or 'baseline':<22}"
             f" {n / walls['ref']:>10.0f}/s"
             f" {n / walls['fast']:>10.0f}/s"
             f" {walls['ref'] / walls['fast']:>8.2f}x")
    return 0


VECTOR_SCHEMA = "repro-vector-scaling/1"


def _vector_child(accesses: int) -> int:
    """Child body for ``--vector``: run one rung, emit a JSON row."""
    from .. import backend as _backend
    from ..api import run_stream

    start = time.perf_counter()
    doc = run_stream(engine=None, workload="dma-burst",
                     accesses=accesses, chunk_size=65536)
    wall = time.perf_counter() - start
    digest = hashlib.sha256(
        json.dumps(doc["metrics"], sort_keys=True).encode()
    ).hexdigest()
    sys.stdout.write(json.dumps({
        "backend": _backend.ACTIVE,
        "requested": _backend.REQUESTED,
        "accesses": accesses,
        "wall_seconds": round(wall, 3),
        "accesses_per_second": int(accesses / wall) if wall else 0,
        "metrics_sha256": digest,
    }) + "\n")
    return 0


def _vector(accesses: int, out: Optional[str]) -> int:
    """Per-backend dma-burst stream timing + metrics-identity gate."""
    rows = []
    for backend in ("numpy", "kernel", "python"):
        env = dict(os.environ, REPRO_BACKEND=backend)
        proc = subprocess.run(
            [sys.executable, "-m", "repro.sim.bench_fastpath",
             "--vector-child", "--accesses", str(accesses)],
            env=env, capture_output=True, text=True,
        )
        if proc.returncode != 0:
            _say(f"FAIL {backend}: child exited {proc.returncode}")
            _say(proc.stderr.strip())
            return 1
        row = json.loads(proc.stdout.strip().splitlines()[-1])
        rows.append(row)
        _say(f"{backend:<8} rung={row['backend']:<8}"
             f" {row['accesses_per_second']:>9,} acc/s"
             f"  ({row['wall_seconds']:.2f}s, {accesses:,} accesses)")
    digests = {row["metrics_sha256"] for row in rows}
    if len(digests) != 1:
        _say("FAIL: backends disagree on the canonical metrics document")
        for row in rows:
            _say(f"  {row['backend']}: {row['metrics_sha256']}")
        return 1
    _say(f"vector check: {len(rows)} backends byte-identical "
         f"(metrics sha256 {digests.pop()[:16]}...)")
    if out:
        doc = {
            "schema": VECTOR_SCHEMA,
            "workload": "dma-burst",
            "accesses": accesses,
            "chunk_size": 65536,
            "identical_metrics": True,
            "backends": rows,
        }
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        _say(f"wrote {out}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sim.bench_fastpath",
        description="Benchmark or differentially check the batched "
                    "trace-execution fast path.",
    )
    parser.add_argument(
        "--check", nargs="*", metavar="ENGINE", default=None,
        help="differential mode: verify reference/fast equivalence for "
             "the named engines (default when empty: baseline + all "
             "registry engines); exits non-zero on divergence",
    )
    parser.add_argument(
        "--accesses", type=int, default=None,
        help="trace length (default: 2000 in check mode, 20000 in bench "
             "mode)",
    )
    parser.add_argument(
        "--engines", nargs="*", metavar="ENGINE", default=None,
        help="bench mode: engines to time (default: baseline, stream, "
             "xom, aegis)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="bench mode: timing repeats per engine (best is reported)",
    )
    parser.add_argument(
        "--vector", action="store_true",
        help="per-backend mode: time the streamed dma-burst workload "
             "under each REPRO_BACKEND rung (one child process per rung) "
             "and assert the metrics documents are byte-identical",
    )
    parser.add_argument(
        "--vector-child", action="store_true", help=argparse.SUPPRESS,
    )
    parser.add_argument(
        "--out", default=None,
        help="vector mode: also write the JSON document here "
             "(e.g. BENCH_vector_scaling.json)",
    )
    args = parser.parse_args(argv)
    if args.vector_child:
        return _vector_child(args.accesses or 1_000_000)
    if args.vector:
        return _vector(args.accesses or 1_000_000, args.out)
    if args.check is not None:
        return _check(args.check, n=args.accesses or 2000)
    return _bench(args.engines or [], n=args.accesses or 20000,
                  repeats=args.repeats)


if __name__ == "__main__":
    sys.exit(main())
