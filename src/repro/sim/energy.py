"""Energy model for bus-encryption engines.

The survey lists "area, power consumption, performance penalties" as the
constraints a cryptosystem designer must respect, but only ever quantifies
the first and last.  This module fills in the middle with a standard
event-energy model: every architectural event (cipher block, bus beat,
SRAM access, DRAM access, hash) carries a per-event energy, and a run's
energy is the dot product of its event counts with those costs.

The per-event numbers are order-of-magnitude figures for a ~130 nm node
(the survey's era); as with the area model, what the experiments use is the
*ratios* — e.g. that moving a byte across the external bus costs more than
enciphering it, which is why compression can save energy as well as time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["EnergyModel", "EnergyReport", "DEFAULT_ENERGY", "estimate_run"]

#: Energy per event in picojoules (130 nm-era orders of magnitude).
DEFAULT_ENERGY: Dict[str, float] = {
    "aes_block": 2_000.0,       # one 128-bit block through an AES core
    "des_block": 800.0,         # one 64-bit block through DES
    "tdes_block": 2_400.0,      # three DES passes
    "byte_subst": 10.0,         # one S-box lookup
    "keystream_byte": 25.0,     # LFSR/combiner output byte
    "hash_block": 3_000.0,      # one SHA-256 compression
    "sram_access": 50.0,        # one on-chip SRAM word access
    "bus_beat": 400.0,          # one external bus beat (pad + pin drive)
    "dram_access": 5_000.0,     # one external memory row access
    "cpu_cycle": 150.0,         # baseline core energy per cycle
}

#: Cipher-block energy keyed by the pipelined-unit names in repro.sim.pipeline.
UNIT_ENERGY_KEYS: Dict[str, str] = {
    "aes-pipelined-xom": "aes_block",
    "aes-pipelined-aegis": "aes_block",
    "aes-iterative": "aes_block",
    "3des-pipelined": "tdes_block",
    "3des-iterative": "tdes_block",
    "des-iterative": "des_block",
    "keystream-lfsr": "keystream_byte",
    "byte-substitution": "byte_subst",
}


@dataclass
class EnergyReport:
    """Itemized energy for one simulation run, in picojoules."""

    items: Dict[str, float] = field(default_factory=dict)

    def add(self, label: str, picojoules: float) -> "EnergyReport":
        if picojoules < 0:
            raise ValueError(f"negative energy for {label}")
        self.items[label] = self.items.get(label, 0.0) + picojoules
        return self

    @property
    def total_pj(self) -> float:
        return sum(self.items.values())

    @property
    def total_uj(self) -> float:
        return self.total_pj / 1e6

    def overhead_vs(self, baseline: "EnergyReport") -> float:
        if baseline.total_pj == 0:
            return 0.0
        return self.total_pj / baseline.total_pj - 1.0

    def __str__(self) -> str:
        lines = [f"total: {self.total_uj:.2f} uJ"]
        for label, pj in sorted(self.items.items(), key=lambda kv: -kv[1]):
            lines.append(f"  {label:<20s} {pj / 1e6:>10.3f} uJ")
        return "\n".join(lines)


class EnergyModel:
    """Turns a :class:`repro.sim.system.SimReport` plus engine state into
    an :class:`EnergyReport`."""

    def __init__(self, costs: Dict[str, float] = None):
        self.costs = dict(DEFAULT_ENERGY)
        if costs:
            self.costs.update(costs)

    def cost(self, event: str) -> float:
        if event not in self.costs:
            raise KeyError(f"unknown energy event {event!r}")
        return self.costs[event]

    def estimate(self, report, engine=None) -> EnergyReport:
        """Energy for one run.

        ``report`` is a SimReport; ``engine`` (optional) contributes its
        cipher-block count through the unit it declares.
        """
        out = EnergyReport()
        out.add("cpu", report.cycles * self.cost("cpu_cycle"))
        beats = -(-report.bus_bytes // 8)
        out.add("bus", beats * self.cost("bus_beat"))
        out.add(
            "dram",
            (report.mem_reads + report.mem_writes) * self.cost("dram_access"),
        )
        out.add(
            "cache-sram",
            (report.cache_hits + report.cache_misses)
            * self.cost("sram_access"),
        )
        if engine is not None:
            unit = getattr(engine, "unit", None)
            key = UNIT_ENERGY_KEYS.get(getattr(unit, "name", ""), "aes_block")
            out.add(
                "cipher",
                engine.stats.blocks_processed * self.cost(key),
            )
        return out


def estimate_run(report, engine=None, costs: Dict[str, float] = None
                 ) -> EnergyReport:
    """One-shot convenience wrapper."""
    return EnergyModel(costs).estimate(report, engine)
