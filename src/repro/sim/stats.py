"""Observability hooks for the simulator: structured event sinks.

The survey's experiments all reduce to counting — cycles, misses, bus
beats, enciphered lines — but until now each count lived in a different
object (`Cache.hits`, `Bus.transactions`, `EngineStats`) and anything not
pre-counted required editing the simulator.  A :class:`StatsSink` attached
to a :class:`repro.sim.system.SecureSystem` observes every simulator event
as a :class:`TraceEvent` without code changes:

* ``access``  — one CPU access entering the system (detail = kind);
* ``hit`` / ``miss`` / ``eviction`` / ``writeback`` — cache outcomes;
* ``fill`` — a line fetched through the engine;
* ``bus-read`` / ``bus-write`` — bytes crossing the chip boundary.

Sinks are pure observers: when none is attached the emit paths reduce to
one ``is None`` test, so profiling is free to leave wired in.

Usage::

    from repro.sim import CountingSink, SecureSystem

    sink = CountingSink()
    system = SecureSystem(engine=engine, sink=sink)
    system.run(trace)
    print(sink.counts)          # {"access": 4000, "miss": 812, ...}
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = ["TraceEvent", "StatsSink", "CountingSink", "RecordingSink"]


@dataclass(frozen=True)
class TraceEvent:
    """One observable simulator event."""

    kind: str           # "access", "hit", "miss", "fill", "bus-read", ...
    addr: int = 0       # byte address the event concerns (0 if n/a)
    size: int = 0       # bytes moved, where meaningful
    cycle: int = 0      # CPU cycle at emission (0 when no clock is wired)
    detail: str = ""    # free-form qualifier ("fetch", "store", ...)


class StatsSink:
    """Base sink: receives every :class:`TraceEvent`.

    Subclass and override :meth:`emit`; the built-ins below cover the
    common cases (pure counting, full recording).
    """

    def emit(self, event: TraceEvent) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class CountingSink(StatsSink):
    """Counts events by kind and sums the bytes they moved."""

    def __init__(self) -> None:
        self.counts: Counter = Counter()
        self.bytes_by_kind: Counter = Counter()

    def emit(self, event: TraceEvent) -> None:
        self.counts[event.kind] += 1
        if event.size:
            self.bytes_by_kind[event.kind] += event.size

    def summary(self) -> Dict[str, int]:
        """Counts as a plain dict (stable, sorted by kind)."""
        return {kind: self.counts[kind] for kind in sorted(self.counts)}


class RecordingSink(CountingSink):
    """Counts *and* keeps the full event list (bounded by ``max_events``)."""

    def __init__(self, max_events: Optional[int] = None) -> None:
        super().__init__()
        self.events: List[TraceEvent] = []
        self.max_events = max_events
        self.dropped = 0

    def emit(self, event: TraceEvent) -> None:
        super().emit(event)
        if self.max_events is not None and len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(event)
