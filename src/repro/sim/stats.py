"""Simulator statistics as a read-only view over the event stream.

Historically this module owned the sink classes; those are now the
:mod:`repro.obs` subsystem and are re-exported here unchanged for
backward compatibility (``StatsSink`` = :class:`repro.obs.EventSink`,
``CountingSink`` = :class:`repro.obs.CounterSink`).

What lives here now is :class:`SimStats`: the *read-only* statistics
facade experiment code should consume instead of poking at scattered
fields (``Cache.hits``, ``Bus.transactions``, ``EngineStats``).  It is a
thin view over a :class:`repro.obs.CounterSink` — every number it reports
is derived from the same event stream a bus probe or a trace dump sees,
so there is exactly one accounting of the simulation.  Mutating it is an
error by construction::

    sink = CounterSink()
    system = SecureSystem(engine=engine, sink=sink)
    system.run(trace)
    stats = SimStats(sink)
    stats.cache_misses          # fine
    stats.cache_misses = 0      # AttributeError: counters come from events
"""

from __future__ import annotations

from typing import Dict

from ..obs import CounterSink, EventSink, TraceEvent
from ..obs.events import BUS_KINDS, CIPHER_KINDS
from ..obs.sinks import NullSink, RecordingSink, RingBufferSink

#: Backward-compatible aliases for the pre-``repro.obs`` names.
StatsSink = EventSink
CountingSink = CounterSink

__all__ = ["TraceEvent", "StatsSink", "CountingSink", "RecordingSink",
           "RingBufferSink", "NullSink", "SimStats"]


class SimStats:
    """Read-only counter view over one :class:`repro.obs.CounterSink`.

    Each property is a pure function of the event stream; there is no
    state to reset and nothing to keep in sync.  Direct field mutation —
    the old pattern of experiment code adjusting ``stats.hits`` by hand —
    is rejected with an :class:`AttributeError` pointing at the event
    stream instead.
    """

    def __init__(self, sink: CounterSink):
        if not isinstance(sink, CounterSink):
            raise TypeError(
                f"SimStats views a CounterSink, got {type(sink).__name__}"
            )
        object.__setattr__(self, "_sink", sink)

    def __setattr__(self, name: str, value) -> None:
        raise AttributeError(
            f"SimStats is read-only ({name!r} cannot be assigned); "
            "counters are derived from the repro.obs event stream — emit "
            "events instead of mutating statistics"
        )

    # -- CPU / cache ------------------------------------------------------

    @property
    def accesses(self) -> int:
        return self._sink.get("access")

    @property
    def cache_hits(self) -> int:
        return self._sink.get("hit")

    @property
    def cache_misses(self) -> int:
        return self._sink.get("miss")

    @property
    def evictions(self) -> int:
        return self._sink.get("eviction")

    @property
    def writebacks(self) -> int:
        return self._sink.get("writeback")

    @property
    def fills(self) -> int:
        return self._sink.get("fill")

    @property
    def miss_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_misses / total if total else 0.0

    # -- chip boundary ----------------------------------------------------

    @property
    def bus_transactions(self) -> int:
        return sum(self._sink.get(k) for k in BUS_KINDS)

    @property
    def bus_bytes(self) -> int:
        return sum(self._sink.bytes_for(k) for k in BUS_KINDS)

    # -- EDU --------------------------------------------------------------

    @property
    def lines_enciphered(self) -> int:
        return self._sink.get("encipher")

    @property
    def lines_deciphered(self) -> int:
        return self._sink.get("decipher")

    @property
    def bytes_enciphered(self) -> int:
        """Bytes through the cipher, both directions."""
        return sum(self._sink.bytes_for(k) for k in CIPHER_KINDS)

    @property
    def rmw_operations(self) -> int:
        return self._sink.get("rmw")

    @property
    def integrity_checks(self) -> int:
        return self._sink.get("integrity-check")

    @property
    def stall_cycles(self) -> int:
        return self._sink.bytes_for("stall")

    def as_dict(self) -> Dict[str, object]:
        """Every derived statistic, JSON-serializable."""
        return {
            "accesses": self.accesses,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "miss_rate": round(self.miss_rate, 6),
            "evictions": self.evictions,
            "writebacks": self.writebacks,
            "fills": self.fills,
            "bus_transactions": self.bus_transactions,
            "bus_bytes": self.bus_bytes,
            "lines_enciphered": self.lines_enciphered,
            "lines_deciphered": self.lines_deciphered,
            "bytes_enciphered": self.bytes_enciphered,
            "rmw_operations": self.rmw_operations,
            "integrity_checks": self.integrity_checks,
            "stall_cycles": self.stall_cycles,
        }

    def __repr__(self) -> str:
        return (f"SimStats(accesses={self.accesses}, "
                f"misses={self.cache_misses}, "
                f"bus_transactions={self.bus_transactions})")
