"""Analysis layer: overhead grids, security scoring and report tables."""

from .overhead import EngineFactory, OverheadResult, measure_overhead, overhead_grid
from .randomness import (
    FipsResult,
    fips_140_1,
    long_run_test,
    monobit_test,
    poker_test,
    runs_test,
)
from .plot import ascii_plot
from .report import format_gates, format_percent, format_table
from .security import SecurityScore, pad_reuse_leak, score_engine_ciphertext

__all__ = [
    "EngineFactory", "OverheadResult", "measure_overhead", "overhead_grid",
    "FipsResult", "fips_140_1", "long_run_test", "monobit_test",
    "poker_test", "runs_test",
    "ascii_plot",
    "format_gates", "format_percent", "format_table",
    "SecurityScore", "pad_reuse_leak", "score_engine_ciphertext",
]
