"""FIPS 140-1 statistical tests for randomness.

§4 requires the keystream to be "sufficiently random to be secure".  The
survey-era certification answer was the FIPS 140-1 RNG test battery
(monobit, poker, runs, long run — over a 20,000-bit sample), which security
modules of the period had to pass.  This module implements the battery with
the standard's exact acceptance bounds and applies it to the package's
keystream generators and engine ciphertexts.

A pass is necessary, not sufficient (the Geffe generator passes the battery
and still falls to the correlation attack in
:mod:`repro.attacks.correlation` — a point worth a test of its own).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

__all__ = ["FipsResult", "fips_140_1", "monobit_test", "poker_test",
           "runs_test", "long_run_test", "SAMPLE_BITS"]

SAMPLE_BITS = 20_000

# FIPS 140-1 acceptance intervals.
_MONOBIT_BOUNDS = (9_654, 10_346)
_POKER_BOUNDS = (1.03, 57.4)
# Runs of length 1..5 and ">= 6", identical bounds for runs of 0s and 1s.
_RUN_BOUNDS: Dict[int, Tuple[int, int]] = {
    1: (2_267, 2_733),
    2: (1_079, 1_421),
    3: (502, 748),
    4: (223, 402),
    5: (90, 223),
    6: (90, 223),
}
_LONG_RUN_LIMIT = 34


def _to_bits(data: bytes, nbits: int = SAMPLE_BITS) -> List[int]:
    if len(data) * 8 < nbits:
        raise ValueError(
            f"need {nbits} bits ({-(-nbits // 8)} bytes), got {len(data)} bytes"
        )
    bits = []
    for byte in data:
        for shift in range(7, -1, -1):
            bits.append((byte >> shift) & 1)
            if len(bits) == nbits:
                return bits
    return bits


def monobit_test(data: bytes) -> Tuple[bool, int]:
    """Count of ones must fall in (9654, 10346)."""
    ones = sum(_to_bits(data))
    low, high = _MONOBIT_BOUNDS
    return low < ones < high, ones


def poker_test(data: bytes) -> Tuple[bool, float]:
    """Chi-square-like statistic over 5000 4-bit segments in (1.03, 57.4)."""
    bits = _to_bits(data)
    counts = [0] * 16
    for i in range(0, SAMPLE_BITS, 4):
        nibble = (bits[i] << 3) | (bits[i + 1] << 2) | (bits[i + 2] << 1) \
            | bits[i + 3]
        counts[nibble] += 1
    segments = SAMPLE_BITS // 4
    statistic = 16 / segments * sum(c * c for c in counts) - segments
    low, high = _POKER_BOUNDS
    return low < statistic < high, statistic


def _run_lengths(bits: List[int]) -> Dict[int, Dict[int, int]]:
    """Counts of runs by value (0/1) and capped length (1..6)."""
    counts = {0: {k: 0 for k in range(1, 7)}, 1: {k: 0 for k in range(1, 7)}}
    i = 0
    n = len(bits)
    while i < n:
        value = bits[i]
        j = i
        while j < n and bits[j] == value:
            j += 1
        counts[value][min(j - i, 6)] += 1
        i = j
    return counts


def runs_test(data: bytes) -> Tuple[bool, Dict[int, Dict[int, int]]]:
    """Every run-length bucket (1..6+, for 0s and 1s) within its bounds."""
    counts = _run_lengths(_to_bits(data))
    ok = all(
        _RUN_BOUNDS[length][0] <= counts[value][length] <= _RUN_BOUNDS[length][1]
        for value in (0, 1)
        for length in range(1, 7)
    )
    return ok, counts


def long_run_test(data: bytes) -> Tuple[bool, int]:
    """No run of 34 or more identical bits."""
    bits = _to_bits(data)
    longest = 0
    current = 1
    for a, b in zip(bits, bits[1:]):
        if a == b:
            current += 1
        else:
            longest = max(longest, current)
            current = 1
    longest = max(longest, current)
    return longest < _LONG_RUN_LIMIT, longest


@dataclass
class FipsResult:
    """Outcome of the full battery on one 20,000-bit sample."""

    monobit_ok: bool
    monobit_ones: int
    poker_ok: bool
    poker_statistic: float
    runs_ok: bool
    long_run_ok: bool
    longest_run: int

    @property
    def passed(self) -> bool:
        return (self.monobit_ok and self.poker_ok and self.runs_ok
                and self.long_run_ok)

    def __str__(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        return (
            f"FIPS 140-1: {verdict} "
            f"(monobit {self.monobit_ones}, poker {self.poker_statistic:.1f}, "
            f"runs {'ok' if self.runs_ok else 'FAIL'}, "
            f"longest run {self.longest_run})"
        )


def fips_140_1(data: bytes) -> FipsResult:
    """Run the full battery on the first 20,000 bits of ``data``."""
    monobit_ok, ones = monobit_test(data)
    poker_ok, statistic = poker_test(data)
    runs_ok, _ = runs_test(data)
    long_ok, longest = long_run_test(data)
    return FipsResult(
        monobit_ok=monobit_ok,
        monobit_ones=ones,
        poker_ok=poker_ok,
        poker_statistic=statistic,
        runs_ok=runs_ok,
        long_run_ok=long_ok,
        longest_run=longest,
    )
