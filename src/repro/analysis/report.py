"""Plain-text table rendering for benches and examples.

Every experiment prints its rows through these helpers so EXPERIMENTS.md
and the bench output share one format.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["format_table", "format_percent", "format_gates"]


def format_percent(value: float, signed: bool = True) -> str:
    """0.253 -> '+25.3%'."""
    sign = "+" if signed else ""
    return f"{value * 100:{sign}.1f}%"


def format_gates(gates: int) -> str:
    """312345 -> '312k gates'."""
    if gates >= 1_000_000:
        return f"{gates / 1e6:.2f}M gates"
    if gates >= 1_000:
        return f"{gates / 1e3:.0f}k gates"
    return f"{gates} gates"


def format_table(headers: Sequence[str], rows: Iterable[Sequence],
                 title: str = "") -> str:
    """Render an aligned ASCII table."""
    str_rows: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(
            cell.ljust(widths[i]) for i, cell in enumerate(cells)
        ).rstrip()

    out = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    out.append(line(list(headers)))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)
