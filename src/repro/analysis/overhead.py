"""Performance-overhead accounting across engines and workloads.

The survey's recurring metric is "performance overhead of the encryption
engine" — cycles with the EDU over cycles without, minus one.  This module
runs engine x workload grids and produces the comparison structures the
benches print.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..core.engine import BusEncryptionEngine
from ..sim.cache import CacheConfig
from ..sim.memory import MemoryConfig
from ..sim.system import SecureSystem, SimReport
from ..traces.trace import Trace

__all__ = ["OverheadResult", "measure_overhead", "overhead_grid",
           "EngineFactory"]

#: A zero-argument callable producing a fresh engine (engines keep state —
#: pad caches, IV tables — so each run needs its own instance).
EngineFactory = Callable[[], Optional[BusEncryptionEngine]]


@dataclass
class OverheadResult:
    """One engine on one workload, versus the plaintext baseline."""

    engine_name: str
    workload: str
    baseline: SimReport
    secured: SimReport

    @property
    def overhead(self) -> float:
        return self.secured.overhead_vs(self.baseline)

    @property
    def overhead_percent(self) -> float:
        return 100.0 * self.overhead

    def __str__(self) -> str:
        return (
            f"{self.engine_name} on {self.workload}: "
            f"{self.overhead_percent:+.2f}% "
            f"({self.secured.cycles} vs {self.baseline.cycles} cycles, "
            f"miss rate {self.baseline.miss_rate:.1%})"
        )


def measure_overhead(
    engine_factory: EngineFactory,
    trace: Trace,
    workload: str = "",
    image: Optional[bytes] = None,
    image_base: int = 0,
    cache_config: Optional[CacheConfig] = None,
    mem_config: Optional[MemoryConfig] = None,
    **system_kwargs,
) -> OverheadResult:
    """Run one engine and the baseline on the same trace."""
    from ..sim.fastpath import compile_trace

    cache_config = cache_config or CacheConfig()
    mem_config = mem_config or MemoryConfig()
    # Compile once: both runs (and, through overhead_grid, every engine on
    # this workload) replay the same coalesced access runs.
    compiled = compile_trace(trace, cache_config.line_size)

    def run(engine: Optional[BusEncryptionEngine]) -> SimReport:
        system = SecureSystem(
            engine=engine, cache_config=cache_config, mem_config=mem_config,
            **system_kwargs,
        )
        if image is not None:
            system.install_image(image_base, image)
        return system.run(compiled)

    engine = engine_factory()
    secured = run(engine)
    baseline = run(None)
    return OverheadResult(
        engine_name=secured.label,
        workload=workload,
        baseline=baseline,
        secured=secured,
    )


def overhead_grid(
    engines: Dict[str, EngineFactory],
    workloads: Dict[str, Trace],
    **kwargs,
) -> List[OverheadResult]:
    """Every engine on every workload; the E14 survey-table data."""
    from ..sim.fastpath import compile_trace

    line_size = (kwargs.get("cache_config") or CacheConfig()).line_size
    results = []
    for workload_name, trace in workloads.items():
        # One compilation serves the whole engine column (compile_trace
        # passes an already-compiled trace through unchanged).
        trace = compile_trace(trace, line_size)
        for engine_name, factory in engines.items():
            result = measure_overhead(
                factory, trace, workload=workload_name, **kwargs
            )
            result.engine_name = engine_name
            results.append(result)
    return results
