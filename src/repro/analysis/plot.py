"""Terminal line plots for the experiment sweeps.

The benches print tables; sweeps (overhead vs memory latency, page size,
chain region...) read better as pictures.  ``ascii_plot`` renders multiple
series on one axis grid with a legend, pure text, no dependencies — the
"figure" half of the regenerate-every-table-and-figure deliverable.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

__all__ = ["ascii_plot"]

_MARKERS = "ox+*#@%&"


def _format_tick(value: float) -> str:
    if value == int(value) and abs(value) < 1e6:
        return str(int(value))
    if abs(value) >= 100:
        return f"{value:.0f}"
    return f"{value:.2g}"


def ascii_plot(
    series: Dict[str, Sequence[Tuple[float, float]]],
    title: str = "",
    width: int = 60,
    height: int = 16,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render (x, y) series as a text chart.

    Points are scattered with one marker per series; a legend maps markers
    to names.  Axes are linear, auto-scaled over all series.
    """
    if not series or all(not pts for pts in series.values()):
        raise ValueError("nothing to plot")
    if width < 10 or height < 4:
        raise ValueError("plot area too small")

    xs = [x for pts in series.values() for x, _ in pts]
    ys = [y for pts in series.values() for _, y in pts]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    if x_max == x_min:
        x_max = x_min + 1.0
    if y_max == y_min:
        y_max = y_min + 1.0

    grid = [[" "] * width for _ in range(height)]

    def cell(x: float, y: float) -> Tuple[int, int]:
        col = round((x - x_min) / (x_max - x_min) * (width - 1))
        row = round((y - y_min) / (y_max - y_min) * (height - 1))
        return height - 1 - row, col

    for idx, (name, pts) in enumerate(series.items()):
        marker = _MARKERS[idx % len(_MARKERS)]
        for x, y in pts:
            r, c = cell(x, y)
            grid[r][c] = marker

    y_top = _format_tick(y_max)
    y_bottom = _format_tick(y_min)
    margin = max(len(y_top), len(y_bottom), len(y_label)) + 1

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("")
    if y_label:
        lines.append(" " * 1 + y_label)
    for r, row in enumerate(grid):
        if r == 0:
            prefix = y_top.rjust(margin)
        elif r == height - 1:
            prefix = y_bottom.rjust(margin)
        else:
            prefix = " " * margin
        lines.append(f"{prefix} |{''.join(row)}")
    lines.append(" " * margin + " +" + "-" * width)
    x_left = _format_tick(x_min)
    x_right = _format_tick(x_max)
    gap = width - len(x_left) - len(x_right)
    lines.append(
        " " * (margin + 2) + x_left + " " * max(1, gap) + x_right
    )
    if x_label:
        lines.append(" " * (margin + 2) + x_label.center(width))
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}"
        for i, name in enumerate(series)
    )
    lines.append("")
    lines.append(" " * (margin + 2) + legend)
    return "\n".join(lines)
