"""Security scoring: quantitative distinguishers between engines.

Turns the survey's qualitative judgments ("basic cryptographic functions"
vs "algorithm approved by the NIST") into measurements: encrypt a structured
image with each engine, then score the ciphertext's statistical quality and
the leakage an attacker extracts.  Used by E03/E06 and the E14 table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..attacks.ecb_analysis import analyze_ciphertext, ecb_distinguisher
from ..core.engine import BusEncryptionEngine
from ..crypto.modes import xor_bytes

__all__ = ["SecurityScore", "score_engine_ciphertext", "pad_reuse_leak"]


@dataclass
class SecurityScore:
    """Statistical quality of one engine's ciphertext for one image."""

    engine_name: str
    entropy_bits_per_byte: float
    block_collision_rate: float
    distinguishable: bool           # does the ECB distinguisher fire?
    identical_line_leak: bool       # equal plaintext lines -> equal ciphertext?

    @property
    def leak_count(self) -> int:
        return sum([self.distinguishable, self.identical_line_leak])


def score_engine_ciphertext(
    engine: BusEncryptionEngine,
    image: bytes,
    line_size: int = 32,
    base_addr: int = 0,
) -> SecurityScore:
    """Encrypt ``image`` line by line and score the result.

    ``identical_line_leak`` plants the same plaintext line at two different
    addresses and at the same address twice (rewrite) and checks whether the
    ciphertexts coincide — the determinism leak of ECB-style engines.
    """
    if len(image) % line_size != 0:
        image = image + b"\x00" * (line_size - len(image) % line_size)
    ciphertext = bytearray()
    for offset in range(0, len(image), line_size):
        ciphertext += engine.encrypt_line(
            base_addr + offset, image[offset: offset + line_size]
        )

    probe_line = bytes(range(line_size))
    at_a_first = engine.encrypt_line(base_addr, probe_line)
    at_a_second = engine.encrypt_line(base_addr, probe_line)
    identical_leak = at_a_first == at_a_second

    analysis = analyze_ciphertext(bytes(ciphertext), block_size=8)
    return SecurityScore(
        engine_name=engine.name,
        entropy_bits_per_byte=analysis.entropy_bits_per_byte,
        block_collision_rate=analysis.block_collision_rate,
        distinguishable=ecb_distinguisher(bytes(ciphertext), block_size=8),
        identical_line_leak=identical_leak,
    )


def pad_reuse_leak(ct_a: bytes, ct_b: bytes,
                   known_plaintext_a: Optional[bytes] = None) -> bytes:
    """The two-time-pad break: XOR of ciphertexts under a reused keystream.

    ``ct_a xor ct_b = pt_a xor pt_b``; with one plaintext known the other
    falls out directly.  Demonstrates why the stream engine's
    ``reuse_pad_on_partial_write`` shortcut is a design mistake.
    """
    diff = xor_bytes(ct_a, ct_b)
    if known_plaintext_a is not None:
        return xor_bytes(diff, known_plaintext_a)
    return diff
