"""Stable top-level facade for the repro package.

Most programmatic uses of the reproduction need a handful of verbs,
re-exported here so callers don't have to know the package layout::

    import repro.api as repro

    repro.list_engines()                        # what can I build?
    engine = repro.make_engine("aegis")         # build it
    result = repro.run_experiment("e02")        # run a registry experiment
    summary = repro.trace_experiment("e02")     # same, with the event trace
    sweep = repro.run_campaign(spec)            # sharded design-space sweep
    repro.engine_overhead("stream", "mixed")    # measure one engine
    repro.attack_summary(memory=512)            # break the weak one
    repro.fault_campaign("integrity-stream")    # active-attack campaigns

:func:`run_experiment`, :func:`trace_experiment` and
:func:`run_campaign` return typed results (:class:`ExperimentResult`,
:class:`TraceSummary`, :class:`CampaignResult`); experiment
``observability`` data comes from the same :mod:`repro.obs` event stream
the experiment runner aggregates — one accounting, every surface.

This module is the supported integration surface, and ``__all__`` below
is exactly that surface: deeper imports (``repro.core``, ``repro.sim``,
…) remain available but may be reorganized; ``repro.api`` will keep
these signatures stable.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from .analysis import OverheadResult, measure_overhead
from .campaign import CampaignResult, CampaignSpec
from .core.registry import (
    ENGINE_SPECS,
    EngineSpec,
    engine_names,
    get_spec,
    make_engine,
)
from .obs import (
    CounterSink,
    EventSink,
    RecordingSink,
    TeeSink,
    TraceEvent,
    format_counter_table,
    merge_observability,
    observability_section,
    scope,
)
from .runner import stable_floats
from .sim import CacheConfig, MemoryConfig
from .traces import (
    STREAM_WORKLOAD_NAMES,
    TraceStream,
    chunked,
    iter_workload,
    make_workload,
    mcu_workload,
    stream_workload,
)
from .traces.stream import DEFAULT_CHUNK_SIZE

__all__ = [
    # engines
    "make_engine", "get_spec", "EngineSpec", "ENGINE_SPECS",
    "engine_names", "list_engines",
    # registry experiments
    "ExperimentResult", "TraceSummary",
    "run_experiment", "trace_experiment",
    # design-space campaigns
    "CampaignSpec", "CampaignResult", "run_campaign",
    # one-shot measurements
    "engine_overhead", "attack_summary", "fault_campaign",
    # streaming execution
    "run_stream", "stream_workload", "STREAM_WORKLOAD_NAMES",
]


def list_engines(survey_only: bool = False) -> List[Dict[str, Any]]:
    """Describe every registered engine (name, key size, section, summary)."""
    return [
        {
            "name": name,
            "key_bytes": spec.key_bytes,
            "section": spec.section,
            "summary": spec.summary,
            "defaults": dict(spec.defaults),
        }
        for name, spec in sorted(ENGINE_SPECS.items())
        if spec.survey or not survey_only
    ]


# -- experiments ----------------------------------------------------------


@dataclass(frozen=True)
class ExperimentResult:
    """One registry experiment's complete outcome, typed.

    ``tasks`` maps task name to that task's metrics dict (the same shape
    the bench documents commit); ``observability`` carries the per-task
    and aggregate event counters from the run's :class:`CounterSink`.
    """

    experiment: str
    title: str
    section: str
    quick: bool
    checks: Dict[str, Any]
    tasks: Dict[str, Dict[str, Any]]
    observability: Dict[str, Any]

    @property
    def passed(self) -> bool:
        return self.checks.get("passed") in (True, None)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (mirrors one metrics-document entry)."""
        return {
            "title": self.title,
            "section": self.section,
            "checks": self.checks,
            "tasks": self.tasks,
            "observability": self.observability,
        }

    def to_document(self) -> Dict[str, Any]:
        """Canonical self-contained document for this result.

        :meth:`to_dict` plus the experiment id and the ``quick`` flag,
        passed through a JSON round trip and :func:`stable_floats` — the
        exact bytes the serve layer returns for a ``run_experiment``
        request, so server-vs-local byte-identity is one shared
        canonicalization, not two implementations kept in sync.
        """
        doc = {"experiment": self.experiment, "quick": self.quick,
               **self.to_dict()}
        return stable_floats(json.loads(json.dumps(doc)))


@dataclass(frozen=True)
class TraceSummary:
    """The recorded head of an experiment's event stream, plus counters."""

    experiment: str
    events: Tuple[TraceEvent, ...]
    dropped: int
    counters: Dict[str, int]
    bytes_by_kind: Dict[str, int]
    totals: Dict[str, int]
    result: ExperimentResult

    @property
    def total_events(self) -> int:
        return len(self.events) + self.dropped

    def format(self) -> str:
        """Human-readable event-kind table for this capture."""
        sink = CounterSink()
        sink.counts.update(self.counters)
        sink.bytes_by_kind.update(self.bytes_by_kind)
        return format_counter_table(sink, title=f"{self.experiment} events")


def run_experiment(
    experiment_id: str,
    *,
    quick: bool = False,
    trace: Optional[EventSink] = None,
) -> ExperimentResult:
    """Run one registry experiment in-process; returns a typed result.

    Tasks run serially with the same derived seeds the parallel runner
    uses, so the metrics (and the counter-derived ``observability``) are
    byte-identical to the bench documents.  ``trace`` optionally receives
    every simulator event the tasks emit (any :class:`repro.obs.EventSink`
    — a probe, a recorder, a JSONL file sink).
    """
    from .runner.base import TaskContext, task_seed
    from .runner.experiments import get_experiment

    experiment = get_experiment(experiment_id)
    tasks: Dict[str, Dict[str, Any]] = {}
    task_obs: Dict[str, Dict[str, Any]] = {}
    for name in sorted(experiment.tasks):
        ctx = TaskContext(quick=quick,
                          seed=task_seed(experiment.id, name))
        counter = CounterSink()
        sink = counter if trace is None else TeeSink(counter, trace)
        with scope(sink):
            metrics = experiment.tasks[name](ctx)
        tasks[name] = json.loads(json.dumps(metrics))
        task_obs[name] = observability_section(counter)
    return ExperimentResult(
        experiment=experiment.id,
        title=experiment.title,
        section=experiment.section,
        quick=quick,
        checks=experiment.checks_passed(tasks),
        tasks=tasks,
        observability={
            "tasks": task_obs,
            "total": merge_observability(task_obs.values()),
        },
    )


def trace_experiment(
    experiment_id: str,
    *,
    quick: bool = True,
    max_events: Optional[int] = 10000,
) -> TraceSummary:
    """Run one experiment recording its event stream (quick by default).

    Keeps the first ``max_events`` events verbatim (the stream head shows
    how a run starts; ``dropped`` counts the rest) alongside the complete
    counter aggregation.
    """
    recording = RecordingSink(max_events=max_events)
    result = run_experiment(experiment_id, quick=quick, trace=recording)
    return TraceSummary(
        experiment=result.experiment,
        events=tuple(recording.events),
        dropped=recording.dropped,
        counters=recording.summary(),
        bytes_by_kind=recording.bytes_summary(),
        totals=observability_section(recording)["totals"],
        result=result,
    )


# -- design-space campaigns -----------------------------------------------


def run_campaign(
    spec: CampaignSpec,
    *,
    workers: int = 1,
    shards: Optional[int] = None,
    cache_dir: Optional[Path] = Path(".bench_campaign_cache"),
    progress: Optional[Callable[[str], None]] = None,
) -> CampaignResult:
    """Run a sharded, resumable design-space sweep; returns typed results.

    ``spec`` declares the parameter grid (see
    :class:`repro.campaign.CampaignSpec`); the coordinator stride-
    partitions the expanded key space into ``shards`` and executes them
    on ``workers`` processes.  Metrics are byte-identical for any worker
    or shard count.  With a ``cache_dir``, completed points persist on
    disk and an interrupted sweep resumes from where it stopped —
    rerunning re-executes only the missing points.
    """
    from .campaign import CampaignCoordinator

    return CampaignCoordinator(
        spec, workers=workers, shards=shards, cache_dir=cache_dir,
        progress=progress,
    ).run()


# -- one-shot measurements ------------------------------------------------


def engine_overhead(
    engine: str,
    workload: str = "mixed",
    accesses: int = 4000,
    cache_size: int = 4096,
    mem_latency: int = 40,
    image_size: int = 32 * 1024,
    functional: bool = False,
    **engine_overrides: Any,
) -> OverheadResult:
    """Measure one engine's performance overhead on one named workload.

    ``workload`` accepts the synthetic suite names plus ``mcu-<kernel>``
    for real MCU traces.  ``functional=False`` (default) runs timing-only,
    which is what the survey's overhead numbers mean.
    """
    if workload.startswith("mcu-"):
        trace = mcu_workload(workload[4:], repeat=5)
    else:
        trace = [
            type(a)(a.kind, a.addr % image_size, a.size)
            for a in make_workload(workload, n=accesses)
        ]
    return measure_overhead(
        lambda: make_engine(engine, functional=functional,
                            **engine_overrides),
        trace,
        workload=workload,
        image=bytes(image_size),
        cache_config=CacheConfig(size=cache_size, line_size=32,
                                 associativity=2),
        mem_config=MemoryConfig(size=1 << 21, latency=mem_latency),
    )


def run_stream(
    engine: Optional[str] = None,
    workload: str = "mixed",
    accesses: int = 200_000,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    seed: int = 2005,
    cache_size: int = 4096,
    mem_latency: int = 40,
    image_size: int = 32 * 1024,
    functional: bool = False,
    **engine_overrides: Any,
) -> Dict[str, Any]:
    """Run one engine over a chunk-streamed workload; canonical metrics.

    The workload is generated lazily and executed ``chunk_size`` accesses
    at a time, so ``accesses`` can be 10^8+ without the trace ever being
    materialized.  ``chunk_size=0`` materializes the whole trace instead
    (the equality leg for tests) — the returned metrics are byte-identical
    either way, at any chunk size.  ``engine=None`` runs the plaintext
    baseline; ``workload`` accepts :data:`STREAM_WORKLOAD_NAMES` (the
    named suite plus the long-horizon ``phased`` / ``multi-tenant`` /
    ``dma-burst`` generators) and ``mcu-<kernel>``.

    Returns a canonical document (:func:`repro.runner.stable_floats` of a
    JSON round trip) — the same bytes the serve layer's ``run_stream`` op
    responds with.
    """
    from .sim import SecureSystem

    if chunk_size < 0:
        raise ValueError(f"chunk_size must be >= 0, got {chunk_size}")
    if accesses <= 0:
        raise ValueError(f"accesses must be positive, got {accesses}")
    is_mcu = workload.startswith("mcu-")
    if not is_mcu and workload not in STREAM_WORKLOAD_NAMES:
        raise KeyError(
            f"unknown workload {workload!r}; choose from "
            f"{STREAM_WORKLOAD_NAMES} or mcu-<kernel>"
        )

    def accesses_iter():
        source = (mcu_workload(workload[4:], repeat=5) if is_mcu
                  else iter_workload(workload, n=accesses, seed=seed))
        for a in source:
            yield type(a)(a.kind, a.addr % image_size, a.size)

    system = SecureSystem(
        engine=make_engine(engine, functional=functional,
                           **engine_overrides) if engine else None,
        cache_config=CacheConfig(size=cache_size, line_size=32,
                                 associativity=2),
        mem_config=MemoryConfig(size=1 << 21, latency=mem_latency),
    )
    system.install_image(0, bytes(image_size))
    label = engine or "baseline"
    from . import backend as _backend
    from .traces.workloads import ARRAY_STREAM_NAMES, array_stream_workload

    if chunk_size == 0:
        trace = list(accesses_iter())
    elif (_backend.ACTIVE == "numpy" and not is_mcu
            and workload in ARRAY_STREAM_NAMES):
        # Array-native chunks: the same DRBG draws as accesses_iter(),
        # with the address fold vectorized instead of per access.
        trace = array_stream_workload(workload, n=accesses, seed=seed,
                                      chunk_size=chunk_size,
                                      addr_mod=image_size)
    else:
        trace = TraceStream(lambda: chunked(accesses_iter(), chunk_size))
    report = system.run(trace, label=label)
    doc = {
        "engine": label,
        "workload": workload,
        "seed": seed,
        "chunk_size": chunk_size,
        "metrics": report.to_metrics(),
    }
    return stable_floats(json.loads(json.dumps(doc)))


def attack_summary(memory: int = 512, seed: int = 2005,
                   verbose: bool = False) -> Dict[str, Any]:
    """Run Kuhn's Cipher Instruction Search against a DS5002FP-class board.

    Returns a JSON-serializable summary (recovered bytes, probe runs,
    ambiguous cells, full recovery flag).
    """
    from .attacks import DallasBoard, KuhnAttack
    from .crypto import DRBG, SmallBlockCipher
    from .isa import assemble, secret_table_program

    firmware = assemble(
        secret_table_program(seed=seed, table_len=64), size=memory
    )
    board = DallasBoard(
        SmallBlockCipher(DRBG(seed).random_bytes(16)),
        firmware, memory_size=memory,
    )
    report = KuhnAttack(board, verbose=verbose).run()
    recovered = sum(a == b for a, b in zip(report.plaintext, firmware))
    return {
        "memory_bytes": memory,
        "bytes_recovered": recovered,
        "fully_recovered": recovered == memory,
        "probe_runs": report.probe_runs,
        "steps_executed": report.steps_executed,
        "ambiguous_cells": len(report.ambiguous_cells),
    }


def fault_campaign(
    engine: str,
    kinds: Optional[List[Optional[str]]] = None,
    *,
    seed: int = 2005,
    quick: bool = True,
) -> List[Any]:
    """Run deterministic fault-injection campaigns against one engine.

    ``engine`` is a campaign label (:func:`repro.faults.campaign_labels`:
    every registry name plus the ablations).  ``kinds`` selects the fault
    classes — entries from :data:`repro.faults.FAULT_KINDS`, with ``None``
    meaning the fault-free baseline; the default runs the baseline and all
    four classes.  Returns the :class:`repro.faults.CampaignResult` list
    in the order requested; each result's ``verdict``/``conforms`` say
    whether the engine behaved as its ``detects`` claim promises.
    """
    from .faults import FAULT_KINDS, campaign_labels
    from .faults import run_campaign as faults_run_campaign

    labels = campaign_labels()
    if engine not in labels:
        raise KeyError(
            f"unknown campaign label {engine!r}; known: {', '.join(labels)}"
        )
    selected = list(kinds) if kinds is not None else [None, *FAULT_KINDS]
    return [
        faults_run_campaign(engine, kind, seed=seed, quick=quick)
        for kind in selected
    ]
