"""Stable top-level facade for the repro package.

Most programmatic uses of the reproduction need four verbs, re-exported
here so callers don't have to know the package layout::

    import repro.api as repro

    repro.list_engines()                        # what can I build?
    engine = repro.make_engine("aegis")         # build it
    result = repro.run_overhead("stream", "mixed")   # measure it
    attack = repro.run_attack(memory=512)       # break the weak one

This module is the supported integration surface: deeper imports
(``repro.core``, ``repro.sim``, …) remain available but may be
reorganized; ``repro.api`` will keep these signatures stable.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from .analysis import OverheadResult, measure_overhead
from .core.registry import (
    ENGINE_SPECS,
    EngineSpec,
    engine_names,
    get_spec,
    make_engine,
)
from .sim import CacheConfig, MemoryConfig
from .traces import make_workload, mcu_workload

__all__ = [
    "make_engine", "get_spec", "EngineSpec", "ENGINE_SPECS",
    "list_engines", "run_overhead", "run_attack",
]


def list_engines(survey_only: bool = False) -> List[Dict[str, Any]]:
    """Describe every registered engine (name, key size, section, summary)."""
    return [
        {
            "name": name,
            "key_bytes": spec.key_bytes,
            "section": spec.section,
            "summary": spec.summary,
            "defaults": dict(spec.defaults),
        }
        for name, spec in sorted(ENGINE_SPECS.items())
        if spec.survey or not survey_only
    ]


def run_overhead(
    engine: str,
    workload: str = "mixed",
    accesses: int = 4000,
    cache_size: int = 4096,
    mem_latency: int = 40,
    image_size: int = 32 * 1024,
    functional: bool = False,
    **engine_overrides: Any,
) -> OverheadResult:
    """Measure one engine's performance overhead on one named workload.

    ``workload`` accepts the synthetic suite names plus ``mcu-<kernel>``
    for real MCU traces.  ``functional=False`` (default) runs timing-only,
    which is what the survey's overhead numbers mean.
    """
    if workload.startswith("mcu-"):
        trace = mcu_workload(workload[4:], repeat=5)
    else:
        trace = [
            type(a)(a.kind, a.addr % image_size, a.size)
            for a in make_workload(workload, n=accesses)
        ]
    return measure_overhead(
        lambda: make_engine(engine, functional=functional,
                            **engine_overrides),
        trace,
        workload=workload,
        image=bytes(image_size),
        cache_config=CacheConfig(size=cache_size, line_size=32,
                                 associativity=2),
        mem_config=MemoryConfig(size=1 << 21, latency=mem_latency),
    )


def run_attack(memory: int = 512, seed: int = 2005,
               verbose: bool = False) -> Dict[str, Any]:
    """Run Kuhn's Cipher Instruction Search against a DS5002FP-class board.

    Returns a JSON-serializable summary (recovered bytes, probe runs,
    ambiguous cells, full recovery flag).
    """
    from .attacks import DallasBoard, KuhnAttack
    from .crypto import DRBG, SmallBlockCipher
    from .isa import assemble, secret_table_program

    firmware = assemble(
        secret_table_program(seed=seed, table_len=64), size=memory
    )
    board = DallasBoard(
        SmallBlockCipher(DRBG(seed).random_bytes(16)),
        firmware, memory_size=memory,
    )
    report = KuhnAttack(board, verbose=verbose).run()
    recovered = sum(a == b for a, b in zip(report.plaintext, firmware))
    return {
        "memory_bytes": memory,
        "bytes_recovered": recovered,
        "fully_recovered": recovered == memory,
        "probe_runs": report.probe_runs,
        "steps_executed": report.steps_executed,
        "ambiguous_cells": len(report.ambiguous_cells),
    }
