"""The engine registry: one declarative spec per surveyed engine.

Every caller — the CLI, the experiment runner, the benches, the examples —
used to construct engines through its own ad-hoc factory dict with
mutually inconsistent signatures.  This module is now the **single
construction path**: an :class:`EngineSpec` records what the survey says
about each design (name, key size, paper section, default parameters) and
:func:`make_engine` builds a fresh instance with optional overrides::

    from repro.core.registry import make_engine

    engine = make_engine("aegis")                       # paper defaults
    timing = make_engine("xom", functional=False)       # timing-only run
    tuned  = make_engine("vlsi", page_size=2048, buffer_pages=4)

Direct engine-class constructor calls outside ``repro/core`` are a lint
error (see the ``check`` Makefile target); go through the registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from .addr_scramble import AddressScrambledEngine
from .aegis import AegisEngine
from .best import BestEngine
from .compress_engine import CompressedEncryptionEngine
from .dallas import DS5002FPEngine, DS5240Engine
from .engine import BusEncryptionEngine
from .general_instrument import GeneralInstrumentEngine
from .gilmont import GilmontEngine
from .integrity import IntegrityShieldEngine
from .merkle import MerkleTreeEngine
from .stream_engine import StreamCipherEngine
from .vlsi_dma import VlsiDmaEngine
from .xom import XomAesEngine

__all__ = [
    "EngineSpec", "ENGINE_SPECS", "DEFAULT_KEYS",
    "make_engine", "get_spec", "list_engines", "engine_names",
    "warm_kernel_registry",
]

#: Deterministic demo keys by key size; every spec picks one of these when
#: the caller does not supply ``key=``.  (Real parts fuse per-chip keys.)
DEFAULT_KEYS: Dict[int, bytes] = {
    16: b"0123456789abcdef",
    24: b"0123456789abcdef01234567",
}


@dataclass(frozen=True)
class EngineSpec:
    """Everything needed to construct (and describe) one surveyed engine."""

    name: str                       # registry key, e.g. "aegis"
    builder: Callable[..., BusEncryptionEngine]
    key_bytes: int                  # demo key size the builder expects
    section: str                    # where the survey discusses it
    summary: str                    # one-line description
    defaults: Mapping[str, Any] = field(default_factory=dict)
    #: Included in the survey/area comparison commands (the nine primary
    #: engines); wrapper/extension engines set this False.
    survey: bool = True
    #: Whether ``encrypt_line``/``decrypt_line`` round-trip statelessly
    #: (integrity/Merkle wrappers need a memory port instead).
    line_roundtrip: bool = True

    def build(self, key: Optional[bytes] = None,
              functional: Optional[bool] = None,
              **overrides: Any) -> BusEncryptionEngine:
        params = dict(self.defaults)
        params.update(overrides)
        if functional is not None:
            params["functional"] = functional
        engine = self.builder(key or DEFAULT_KEYS[self.key_bytes], **params)
        if functional is not None:
            # Wrapper builders construct inner engines; make sure the flag
            # sticks on the outer object as well.
            engine.functional = functional
        return engine


def _wrapped(wrapper: Callable[..., BusEncryptionEngine],
             inner_name: str) -> Callable[..., BusEncryptionEngine]:
    """Builder for engines that wrap an inner confidentiality engine.

    ``functional`` is forwarded to the inner engine (the wrappers inherit
    the flag from it); remaining params go to the wrapper constructor.
    """

    def build(key: bytes, functional: bool = True,
              **params: Any) -> BusEncryptionEngine:
        inner = make_engine(inner_name, key=key, functional=functional)
        return wrapper(inner, **params)

    return build


ENGINE_SPECS: Dict[str, EngineSpec] = {}


def _register(spec: EngineSpec) -> None:
    ENGINE_SPECS[spec.name] = spec


_register(EngineSpec(
    name="best", builder=BestEngine, key_bytes=16,
    section="§3 / Fig. 3 (Best 1979)",
    summary="substitution/transposition crypto-microprocessor",
))
_register(EngineSpec(
    name="ds5002fp", builder=DS5002FPEngine, key_bytes=16,
    section="§2.3, §3 / Fig. 6",
    summary="byte-granular bus cipher (Kuhn's victim)",
))
_register(EngineSpec(
    name="ds5240", builder=DS5240Engine, key_bytes=16,
    section="§3 / Fig. 6",
    summary="64-bit-block successor to the DS5002FP",
))
_register(EngineSpec(
    name="vlsi", builder=VlsiDmaEngine, key_bytes=24,
    section="§3 / Fig. 4",
    summary="page-wise secure DMA over 3DES-CBC",
    defaults={"page_size": 1024, "buffer_pages": 8},
    line_roundtrip=False,   # page-granular: needs install_image/fill_line
))
_register(EngineSpec(
    name="gi", builder=GeneralInstrumentEngine, key_bytes=24,
    section="§3 / Fig. 5",
    summary="region-chained 3DES-CBC with keyed-hash authentication",
    defaults={"region_size": 1024, "authenticate": False},
    line_roundtrip=False,   # region-chained: needs install_image/fill_line
))
_register(EngineSpec(
    name="gilmont", builder=GilmontEngine, key_bytes=24,
    section="§3 (Gilmont et al.)",
    summary="fetch-prediction pipelined 3DES",
))
_register(EngineSpec(
    name="xom", builder=XomAesEngine, key_bytes=16,
    section="§3 (XOM)",
    summary="pipelined AES, 14-cycle latency",
))
_register(EngineSpec(
    name="aegis", builder=AegisEngine, key_bytes=16,
    section="§3 (AEGIS)",
    summary="per-cache-line AES-CBC with address-derived IVs",
))
_register(EngineSpec(
    name="stream", builder=StreamCipherEngine, key_bytes=16,
    section="§2.2 / Fig. 2a",
    summary="CTR keystream engine with pad-ahead",
    defaults={"line_size": 32},
))
_register(EngineSpec(
    name="compress", builder=CompressedEncryptionEngine, key_bytes=16,
    section="§4 / Fig. 8",
    summary="CodePack compression before stream encryption",
    defaults={"line_size": 32},
    survey=False,
))
_register(EngineSpec(
    name="integrity-stream",
    builder=_wrapped(IntegrityShieldEngine, "stream"), key_bytes=16,
    section="§5 (future work, built)",
    summary="stream engine + per-line MAC tags + anti-replay versions",
    defaults={"mac_key": b"integrity-mac-key", "tag_region_base": 1 << 20},
    survey=False, line_roundtrip=False,
))
_register(EngineSpec(
    name="integrity-xom",
    builder=_wrapped(IntegrityShieldEngine, "xom"), key_bytes=16,
    section="§5 (future work, built)",
    summary="XOM AES + per-line MAC tags + anti-replay versions",
    defaults={"mac_key": b"integrity-mac-key", "tag_region_base": 1 << 20},
    survey=False, line_roundtrip=False,
))
_register(EngineSpec(
    name="merkle-stream",
    builder=_wrapped(MerkleTreeEngine, "stream"), key_bytes=16,
    section="§5 (future work, built)",
    summary="stream engine under a Merkle tree (root on chip)",
    defaults={
        "mac_key": b"integrity-mac-key", "region_base": 0,
        "region_size": 32 * 1024, "tree_base": 1 << 20,
    },
    survey=False, line_roundtrip=False,
))
_register(EngineSpec(
    name="addr-scramble-stream",
    builder=_wrapped(AddressScrambledEngine, "stream"), key_bytes=16,
    section="§3 (Best's patents / DS5002FP address bus)",
    summary="stream engine + line-address scrambling",
    defaults={"addr_key": b"addr-key", "region_lines": 512},
    survey=False, line_roundtrip=False,
))


def get_spec(name: str) -> EngineSpec:
    """Look up a spec; raises ``KeyError`` with the known names."""
    try:
        return ENGINE_SPECS[name]
    except KeyError:
        raise KeyError(
            f"unknown engine {name!r}; known: {', '.join(sorted(ENGINE_SPECS))}"
        ) from None


def make_engine(name: str, *, key: Optional[bytes] = None,
                functional: Optional[bool] = None,
                **overrides: Any) -> BusEncryptionEngine:
    """Build a fresh engine instance from its registry spec.

    Parameters
    ----------
    name:
        Registry key (see :func:`list_engines`).
    key:
        Overrides the deterministic demo key.
    functional:
        ``False`` for timing-only runs (skips the byte transforms).
    overrides:
        Engine-specific constructor parameters, merged over the spec's
        defaults (e.g. ``page_size=2048`` for ``vlsi``).
    """
    return get_spec(name).build(key=key, functional=functional, **overrides)


def engine_names(survey_only: bool = False) -> List[str]:
    """Sorted registry names; ``survey_only`` keeps the nine primary engines."""
    return sorted(
        name for name, spec in ENGINE_SPECS.items()
        if spec.survey or not survey_only
    )


def list_engines(survey_only: bool = False) -> List[Tuple[str, EngineSpec]]:
    """Sorted (name, spec) pairs for display."""
    return [(name, ENGINE_SPECS[name])
            for name in engine_names(survey_only=survey_only)]


def warm_kernel_registry() -> int:
    """Instantiate every registered engine once, discarding the instances.

    Construction expands each engine's cipher key schedules into the
    process-wide kernel registry (:mod:`repro.crypto.kernels`).  Called
    before forking worker processes so the children inherit warm
    schedules instead of each re-deriving them; returns the number of
    engines built.
    """
    count = 0
    for name in ENGINE_SPECS:
        make_engine(name)
        count += 1
    return count
