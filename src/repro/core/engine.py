"""Encryption/Decryption Unit (EDU) framework.

Every hardware engine the survey describes is, abstractly, a box between
two memory levels that

* keeps a secret key on-chip (Best's rule: "cipher unit and secret key
  remain on-chip"),
* transforms lines as they cross the chip boundary,
* and adds cycles to the miss path while doing so.

:class:`BusEncryptionEngine` is that box.  The system simulator delegates
every external transfer to the engine, which performs the functional
transformation (real bytes through real ciphers) and accounts the added
latency.  Concrete engines in this package implement each surveyed design.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from enum import Enum
from typing import FrozenSet, List, Optional, Sequence, Tuple

from ..obs import EventSink, TraceEvent
from ..sim.area import AreaEstimate
from ..sim.pipeline import PipelinedUnit

__all__ = ["Placement", "EngineStats", "MemoryPort", "BusEncryptionEngine",
           "NullEngine", "BlockModeEngine", "TamperDetected",
           "TamperVerdicts"]


class TamperDetected(Exception):
    """A fetched line/region failed its integrity verification.

    The canonical active-attack outcome: every engine's verdict path
    raises this (or a subclass — :class:`repro.core.merkle.
    MerkleTamperDetected`, :class:`repro.core.general_instrument.
    AuthenticationError`), so campaigns catch one exception type no matter
    which integrity mechanism fired.
    """


@dataclass
class TamperVerdicts:
    """Outcome counters of an engine's integrity verdict path.

    ``checks`` counts every verification the engine performed (tag
    compare, Merkle path walk, region hash); ``tampers`` the subset that
    failed.  Maintained by :meth:`BusEncryptionEngine.verify_line`, the
    single chokepoint all engines report through.
    """

    checks: int = 0
    tampers: int = 0

    def reset(self) -> None:
        self.checks = 0
        self.tampers = 0


class Placement(Enum):
    """Where the EDU sits (survey Figure 7)."""

    CACHE_MEMORY = "cache-memory"   # between cache and memory controller (7a)
    CPU_CACHE = "cpu-cache"         # between CPU and cache (7b)


@dataclass
class EngineStats:
    """Operation counters every engine maintains."""

    lines_decrypted: int = 0
    lines_encrypted: int = 0
    blocks_processed: int = 0
    rmw_operations: int = 0
    pad_hits: int = 0
    pad_misses: int = 0
    prefetch_hits: int = 0
    prefetch_misses: int = 0
    extra_read_cycles: int = 0
    extra_write_cycles: int = 0

    def reset(self) -> None:
        for name in vars(self):
            setattr(self, name, 0)


class MemoryPort:
    """The engine's window onto the external world.

    Bundles the functional memory, the observable bus and the timing
    configuration; every engine transfer goes through here so that probes
    see exactly the bytes that cross the chip boundary.
    """

    def __init__(self, memory, bus, clock=None):
        self.memory = memory
        self.bus = bus
        self._clock = clock  # callable returning current cycle, for probes

    def _cycle(self) -> int:
        return self._clock() if self._clock else 0

    def read(self, addr: int, nbytes: int) -> Tuple[bytes, int]:
        """Read ``nbytes``; returns (data, cycles).

        The engine receives the bytes the *bus* delivered: an interposer
        on either the memory array or the wires (see
        :meth:`repro.sim.bus.Bus.transfer`) tampers with exactly what the
        chip decrypts, never with what a separate bookkeeping copy holds.
        """
        data = self.memory.read(addr, nbytes)
        data = self.bus.transfer("read", addr, data, self._cycle())
        return data, self.memory.config.read_cycles(nbytes)

    def write(self, addr: int, data: bytes) -> int:
        """Write ``data``; returns cycles."""
        self.memory.write(addr, data)
        self.bus.transfer("write", addr, data, self._cycle())
        return self.memory.config.write_cycles(len(data))


class BusEncryptionEngine(ABC):
    """Abstract EDU.

    Concrete engines define the functional transform (``encrypt_line`` /
    ``decrypt_line``) and the added latency.  ``fill_line`` / ``write_line``
    are the entry points the system calls; the defaults implement the common
    pattern (fetch ciphertext, decrypt; encrypt, store) and can be overridden
    for engines with richer behaviour (page DMA, prefetchers, pads).
    """

    name: str = "abstract"
    placement: Placement = Placement.CACHE_MEMORY
    #: Smallest write the engine can absorb without a read-modify-write.
    min_write_bytes: int = 1
    #: Engines that actually transform bytes emit encipher/decipher/stall
    #: events; the plaintext baseline sets this False.
    _cipher_events: bool = True
    #: Fault kinds (see :data:`repro.faults.FAULT_KINDS`) this engine's
    #: verdict path is expected to detect.  Confidentiality-only engines
    #: leave it empty: a forged/relocated/stale line decrypts to garbage
    #: but still reaches the CPU.  Integrity engines override (as a
    #: property where the answer depends on configuration, e.g. the
    #: shield's ``versioned`` flag).
    detects: FrozenSet[str] = frozenset()

    def __init__(self, functional: bool = True):
        #: When False, the functional transform is skipped (timing-only runs).
        self.functional = functional
        self.stats = EngineStats()
        #: Integrity verdict counters, fed by :meth:`verify_line`.
        self.verdicts = TamperVerdicts()
        #: Optional :class:`repro.obs.EventSink` receiving one event per
        #: cipher operation (encipher/decipher/rmw/integrity-check/stall).
        self.sink: Optional[EventSink] = None

    def attach_sink(self, sink: Optional[EventSink]) -> None:
        """Attach an event sink to this engine and any wrapped inner engine."""
        self.sink = sink
        inner = getattr(self, "inner", None) or getattr(self, "_inner", None)
        if inner is not None:
            inner.attach_sink(sink)

    def _emit(self, kind: str, addr: int = 0, size: int = 0,
              detail: str = "") -> None:
        if self.sink is not None and self._cipher_events:
            self.sink.emit(TraceEvent(kind=kind, addr=addr, size=size,
                                      detail=detail))

    def verify_line(self, addr: int, size: int, ok: bool,
                    detail: str = "") -> bool:
        """Record one integrity verdict; returns ``ok``.

        The uniform chokepoint for every engine's verification outcome:
        counts the check in :attr:`verdicts`, counts the tamper on
        failure, and emits the ``integrity-check`` event (detail ``ok`` or
        ``tamper``).  Callers raise their :class:`TamperDetected` subclass
        on a ``False`` return — raising stays with the engine so messages
        keep their mechanism-specific wording.
        """
        self.verdicts.checks += 1
        if ok:
            self._emit("integrity-check", addr, size, detail or "ok")
            return True
        self.verdicts.tampers += 1
        self._emit("integrity-check", addr, size, "tamper")
        return False

    # -- functional transform --------------------------------------------

    @abstractmethod
    def encrypt_line(self, addr: int, plaintext: bytes) -> bytes:
        """Transform a line for storage in external memory."""

    @abstractmethod
    def decrypt_line(self, addr: int, ciphertext: bytes) -> bytes:
        """Invert :meth:`encrypt_line`."""

    # -- timing ------------------------------------------------------------

    @abstractmethod
    def read_extra_cycles(self, addr: int, nbytes: int, mem_cycles: int) -> int:
        """Cycles added to a line fill beyond the raw memory fetch."""

    @abstractmethod
    def write_extra_cycles(self, addr: int, nbytes: int) -> int:
        """Cycles added to a full-line write beyond the raw memory store."""

    def per_access_cycles(self) -> int:
        """Cycles added to *every* CPU access (CPU-cache placement only)."""
        return 0

    # -- system entry points ------------------------------------------------

    def install_image(self, memory, base_addr: int, plaintext: bytes,
                      line_size: int = 32) -> None:
        """Offline encryption of a program/data image into external memory.

        Mirrors §2.1 step 6: the processor re-ciphers downloaded software
        with its bus key before installing it in external memory.
        """
        if len(plaintext) % line_size != 0:
            plaintext = plaintext + b"\x00" * (line_size - len(plaintext) % line_size)
        ciphertexts = self.encrypt_lines([
            (base_addr + offset, plaintext[offset: offset + line_size])
            for offset in range(0, len(plaintext), line_size)
        ])
        memory.load_image(base_addr, b"".join(ciphertexts))

    def fill_line(self, port: MemoryPort, addr: int, line_size: int
                  ) -> Tuple[bytes, int]:
        """Service a cache-line fill; returns (plaintext, total cycles)."""
        ciphertext, mem_cycles = port.read(addr, line_size)
        extra = self.read_extra_cycles(addr, line_size, mem_cycles)
        self.stats.lines_decrypted += 1
        self.stats.extra_read_cycles += extra
        # Miss-path hot loop: guard inline so the disabled path costs one
        # is-None test, not a method call per fill.
        if self.sink is not None:
            self._emit("decipher", addr, line_size)
            if extra:
                self._emit("stall", addr, extra, "read")
        plaintext = self.decrypt_line(addr, ciphertext) if self.functional \
            else ciphertext
        return plaintext, mem_cycles + extra

    def write_line(self, port: MemoryPort, addr: int, plaintext: bytes) -> int:
        """Service a full-line writeback; returns total cycles."""
        extra = self.write_extra_cycles(addr, len(plaintext))
        self.stats.lines_encrypted += 1
        self.stats.extra_write_cycles += extra
        if self.sink is not None:
            self._emit("encipher", addr, len(plaintext))
            if extra:
                self._emit("stall", addr, extra, "write")
        ciphertext = self.encrypt_line(addr, plaintext) if self.functional \
            else plaintext
        return extra + port.write(addr, ciphertext)

    # -- bulk entry points ---------------------------------------------------
    #
    # The batched trace executor (repro.sim.fastpath) collects the miss
    # stream and hands whole groups of line fills/writebacks to the engine
    # at once.  The defaults preserve scalar semantics exactly — same
    # per-line port traffic, stats, events and cycle accounting, in the
    # same order — so every engine works unported; engines with batched
    # kernels override to amortize the crypto across the group.

    def fill_lines(self, port: MemoryPort, addrs: Sequence[int],
                   line_size: int) -> List[Tuple[bytes, int]]:
        """Service a group of cache-line fills; one (plaintext, cycles) each.

        Must behave exactly like ``[fill_line(port, a, line_size) for a in
        addrs]``: bulk implementations may batch the *byte transforms* but
        keep the per-line bus reads, stats updates and events in order.
        """
        return [self.fill_line(port, addr, line_size) for addr in addrs]

    def spill_lines(self, port: MemoryPort,
                    writes: Sequence[Tuple[int, bytes]]) -> List[int]:
        """Service a group of full-line writebacks; returns cycles per line.

        The bulk dual of :meth:`write_line`, with the same equivalence
        contract as :meth:`fill_lines`.
        """
        return [self.write_line(port, addr, data) for addr, data in writes]

    def encrypt_lines(self, items: Sequence[Tuple[int, bytes]]
                      ) -> List[bytes]:
        """Offline batch encryption of ``(addr, line)`` pairs, in order.

        The install-time dual of :meth:`fill_lines`: must return exactly
        ``[self.encrypt_line(addr, line) for addr, line in items]``
        including any per-line engine state the transform advances
        (stream versions, AEGIS vectors).  No port traffic, stats or
        events are involved — installation is offline (§2.1 step 6) — so
        bulk overrides are free to batch the whole image through one
        kernel call.
        """
        return [self.encrypt_line(addr, line) for addr, line in items]

    def write_partial(self, port: MemoryPort, addr: int, data: bytes,
                      line_size: int) -> int:
        """Service a write narrower than a line (write-through / no-allocate).

        When the write is narrower than the cipher granularity this is the
        survey's five-step penalty: read the enclosing block, decipher,
        modify, re-cipher, write back (§2.2).
        """
        if len(data) >= self.min_write_bytes and \
                addr % self.min_write_bytes == 0 and \
                len(data) % self.min_write_bytes == 0:
            # Aligned to cipher granularity: direct encrypt-and-store.
            extra = self.write_extra_cycles(addr, len(data))
            self.stats.extra_write_cycles += extra
            if self.sink is not None:
                self._emit("encipher", addr, len(data))
                if extra:
                    self._emit("stall", addr, extra, "write")
            ciphertext = self.encrypt_line(addr, data) if self.functional else data
            return extra + port.write(addr, ciphertext)

        # Read-modify-write over the enclosing cipher-aligned region.
        gran = self.min_write_bytes
        start = (addr // gran) * gran
        end = -(-(addr + len(data)) // gran) * gran
        self.stats.rmw_operations += 1
        if self.sink is not None:
            self._emit("rmw", addr, end - start)
            self._emit("decipher", start, end - start)
            self._emit("encipher", start, end - start)

        ciphertext, read_cycles = port.read(start, end - start)
        dec_extra = self.read_extra_cycles(start, end - start, read_cycles)
        block = bytearray(
            self.decrypt_line(start, ciphertext) if self.functional
            else ciphertext
        )
        block[addr - start: addr - start + len(data)] = data
        enc_extra = self.write_extra_cycles(start, end - start)
        self.stats.extra_read_cycles += dec_extra
        self.stats.extra_write_cycles += enc_extra
        if dec_extra + enc_extra:
            self._emit("stall", addr, dec_extra + enc_extra, "rmw")
        new_ciphertext = self.encrypt_line(start, bytes(block)) \
            if self.functional else bytes(block)
        write_cycles = port.write(start, new_ciphertext)
        return read_cycles + dec_extra + enc_extra + write_cycles

    # -- reporting ----------------------------------------------------------

    def notify_access(self, addr: int, is_fetch: bool) -> None:
        """Hook invoked for every CPU access (prefetchers override)."""

    @abstractmethod
    def area(self) -> AreaEstimate:
        """Itemized gate-count estimate for the engine."""

    def reset_stats(self) -> None:
        self.stats.reset()
        self.verdicts.reset()


class NullEngine(BusEncryptionEngine):
    """No encryption: the plaintext baseline every overhead is measured against."""

    name = "plaintext"
    min_write_bytes = 1
    _cipher_events = False   # nothing is enciphered on the baseline

    def encrypt_line(self, addr: int, plaintext: bytes) -> bytes:
        return plaintext

    def decrypt_line(self, addr: int, ciphertext: bytes) -> bytes:
        return ciphertext

    def read_extra_cycles(self, addr: int, nbytes: int, mem_cycles: int) -> int:
        return 0

    def write_extra_cycles(self, addr: int, nbytes: int) -> int:
        return 0

    def fill_lines(self, port: MemoryPort, addrs: Sequence[int],
                   line_size: int) -> List[Tuple[bytes, int]]:
        # Identity transform, zero extra cycles, no cipher events: the
        # bulk fill is just the bus reads plus the decrypt counter.
        out = []
        for addr in addrs:
            data, mem_cycles = port.read(addr, line_size)
            self.stats.lines_decrypted += 1
            out.append((data, mem_cycles))
        return out

    def area(self) -> AreaEstimate:
        return AreaEstimate(self.name)


class BlockModeEngine(BusEncryptionEngine):
    """Common base for engines built on a block cipher and a pipelined unit.

    Subclasses supply the functional transform; this base accounts timing:
    decryption drains behind the arriving bus beats, encryption runs before
    the bus write.
    """

    def __init__(self, unit: PipelinedUnit, cipher_block: int,
                 functional: bool = True, bus_width: int = 8,
                 cycles_per_beat: int = 1):
        super().__init__(functional=functional)
        self.unit = unit
        self.cipher_block = cipher_block
        self.min_write_bytes = cipher_block
        self.bus_width = bus_width
        self.cycles_per_beat = cycles_per_beat

    def _nblocks(self, nbytes: int) -> int:
        return -(-nbytes // self.cipher_block)

    def _arrival_interval(self) -> int:
        """Cycles between successive ciphertext blocks arriving off the bus."""
        beats_per_block = -(-self.cipher_block // self.bus_width)
        return max(1, beats_per_block * self.cycles_per_beat)

    def read_extra_cycles(self, addr: int, nbytes: int, mem_cycles: int) -> int:
        nblocks = self._nblocks(nbytes)
        self.stats.blocks_processed += nblocks
        # A block can be issued to the decipher pipeline once its bus beats
        # have arrived; the fill's critical path therefore extends past the
        # last beat by the pipeline drain time.
        return self.unit.drain_after_arrivals(nblocks, self._arrival_interval())

    def write_extra_cycles(self, addr: int, nbytes: int) -> int:
        nblocks = self._nblocks(nbytes)
        self.stats.blocks_processed += nblocks
        return self.unit.time_for(nblocks)
