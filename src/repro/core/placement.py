"""EDU placement study: CPU-cache vs cache-memory (survey Figure 7, §4).

The survey's Section 4 weighs putting the cipher unit *between the CPU and
the cache* (Figure 7b) so that even the cache holds ciphertext:

* "Modifying the cache access time directly impacts the system performance"
  — every access, hit or miss, pays the engine;
* the keystream must be available on-chip: storing it costs "an on-chip
  memory equivalent to the cache memory in term of size", which Section 5
  calls unaffordable; generating it on demand costs the generator latency
  on every access;
* "this scheme seems to provide no benefit in term of performance when
  compared to a stream cipher located between cache memory and memory
  controller."

:class:`CpuCacheStreamEngine` models both variants (stored keystream /
generated keystream); :func:`compare_placements` runs the three designs on
one workload and returns the table E12 prints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..crypto.kernels import aes_kernel, ctr_pad
from ..crypto.modes import xor_bytes
from ..sim.area import AreaEstimate
from ..sim.cache import CacheConfig
from ..sim.memory import MemoryConfig
from ..sim.pipeline import KEYSTREAM_UNIT, PipelinedUnit, XOM_AES_PIPE
from ..traces.trace import Trace
from .engine import BusEncryptionEngine, MemoryPort, Placement
from .stream_engine import StreamCipherEngine

# NOTE: repro.sim.system imports this package (for the engine interface), so
# the system composer is imported lazily inside compare_placements.

__all__ = ["CpuCacheStreamEngine", "PlacementComparison", "compare_placements"]


class CpuCacheStreamEngine(BusEncryptionEngine):
    """Stream cipher between CPU and cache (Figure 7b).

    The cache and external memory both hold the XOR-masked text; the CPU
    sees plaintext.  ``keystream_on_chip`` selects the stored-pad variant
    (fast per access, huge SRAM) over the generate-on-demand variant (no
    SRAM, generator latency on *every* access).
    """

    name = "cpu-cache-stream"
    placement = Placement.CPU_CACHE
    min_write_bytes = 1

    def __init__(
        self,
        key: bytes,
        cache_size: int = 16 * 1024,
        keystream_on_chip: bool = True,
        unit: PipelinedUnit = KEYSTREAM_UNIT,
        functional: bool = True,
    ):
        super().__init__(functional=functional)
        self._aes = aes_kernel(key)
        self.cache_size = cache_size
        self.keystream_on_chip = keystream_on_chip
        self.unit = unit

    # The cache-side mask: position-keyed keystream so cache contents are
    # masked; externally the same mask continues to apply (the line is
    # stored masked in memory as well — one keystream end to end).

    def _pad(self, addr: int, nbytes: int) -> bytes:
        return ctr_pad(
            self._aes, addr, nbytes,
            lambda block_addr:
                b"cpu$" + (block_addr // 16).to_bytes(12, "big"),
        )

    def encrypt_line(self, addr: int, plaintext: bytes) -> bytes:
        return xor_bytes(plaintext, self._pad(addr, len(plaintext)))

    def decrypt_line(self, addr: int, ciphertext: bytes) -> bytes:
        return xor_bytes(ciphertext, self._pad(addr, len(ciphertext)))

    def read_extra_cycles(self, addr: int, nbytes: int, mem_cycles: int) -> int:
        # Miss path: data flows memory -> cache unmodified (already masked);
        # nothing extra beyond the fetch.
        return 0

    def write_extra_cycles(self, addr: int, nbytes: int) -> int:
        return 0

    def per_access_cycles(self) -> int:
        """Cost added to every CPU access, hit or miss."""
        if self.keystream_on_chip:
            # Pad lookup in on-chip SRAM + XOR.
            return 1
        # Generate the pad on demand: the generator's fill latency lands on
        # the cache access path.
        return self.unit.latency

    def fill_lines(self, port: MemoryPort, addrs: Sequence[int],
                   line_size: int) -> List[Tuple[bytes, int]]:
        # Position-keyed keystream: one batched pad call covers the whole
        # group (the counter layout depends only on the block address).
        ciphertexts: List[bytes] = []
        cycles: List[int] = []
        for addr in addrs:
            ciphertext, mem_cycles = port.read(addr, line_size)
            self.stats.lines_decrypted += 1
            if self.sink is not None:
                self._emit("decipher", addr, line_size)
            ciphertexts.append(ciphertext)
            cycles.append(mem_cycles)
        if not self.functional:
            return list(zip(ciphertexts, cycles))
        size = 16
        spans: List[Tuple[int, int]] = []
        material: List[bytes] = []
        for addr in addrs:
            start = addr - addr % size
            end = -(-(addr + line_size) // size) * size
            material.append(b"".join(
                b"cpu$" + (block_addr // 16).to_bytes(12, "big")
                for block_addr in range(start, end, size)
            ))
            spans.append((addr - start, end - start))
        pad = self._aes.encrypt_blocks(b"".join(material))
        out: List[Tuple[bytes, int]] = []
        pos = 0
        for i, (offset, span) in enumerate(spans):
            line_pad = pad[pos + offset: pos + offset + line_size]
            out.append((xor_bytes(ciphertexts[i], line_pad), cycles[i]))
            pos += span
        return out

    def area(self) -> AreaEstimate:
        est = AreaEstimate(self.name)
        if self.keystream_on_chip:
            # "An on-chip memory equivalent to the cache memory in term of
            # size" — the survey's unaffordable doubling.
            est.add_sram("keystream-store", self.cache_size)
        est.add_block("aes_iterative")  # pad (re)generation path
        est.add_block("control_overhead")
        return est


@dataclass
class PlacementComparison:
    """Reports from the three design points E12 compares."""

    baseline: "SimReport"
    cache_memory: "SimReport"     # stream EDU between cache and memory (7a)
    cpu_cache_stored: "SimReport"  # EDU at CPU with on-chip keystream (7b)
    cpu_cache_generated: "SimReport"  # EDU at CPU, pad generated on demand
    areas: Dict[str, int]

    def overheads(self) -> Dict[str, float]:
        return {
            "cache-memory (7a)": self.cache_memory.overhead_vs(self.baseline),
            "cpu-cache stored pad (7b)": self.cpu_cache_stored.overhead_vs(
                self.baseline
            ),
            "cpu-cache generated pad (7b)": self.cpu_cache_generated.overhead_vs(
                self.baseline
            ),
        }


def compare_placements(
    trace: Trace,
    key: bytes = b"placement-key-16",
    cache_config: Optional[CacheConfig] = None,
    mem_config: Optional[MemoryConfig] = None,
    functional: bool = False,
) -> PlacementComparison:
    """Run the placement study on one trace.

    ``functional=False`` by default: placement is a pure timing question and
    timing-only runs keep the sweep fast.
    """
    from ..sim.fastpath import compile_trace
    from ..sim.system import SecureSystem

    cache_config = cache_config or CacheConfig()
    mem_config = mem_config or MemoryConfig()
    # All four design points replay the same compiled runs.
    compiled = compile_trace(trace, cache_config.line_size)

    def run(engine):
        system = SecureSystem(
            engine=engine, cache_config=cache_config, mem_config=mem_config
        )
        return system.run(compiled)

    baseline = run(None)
    edu_7a = StreamCipherEngine(
        key, line_size=cache_config.line_size,
        unit=XOM_AES_PIPE, functional=functional,
    )
    cache_memory = run(edu_7a)
    stored = CpuCacheStreamEngine(
        key, cache_size=cache_config.size,
        keystream_on_chip=True, functional=functional,
    )
    cpu_cache_stored = run(stored)
    generated = CpuCacheStreamEngine(
        key, cache_size=cache_config.size,
        keystream_on_chip=False, unit=XOM_AES_PIPE, functional=functional,
    )
    cpu_cache_generated = run(generated)

    return PlacementComparison(
        baseline=baseline,
        cache_memory=cache_memory,
        cpu_cache_stored=cpu_cache_stored,
        cpu_cache_generated=cpu_cache_generated,
        areas={
            "cache-memory (7a)": edu_7a.area().total,
            "cpu-cache stored pad (7b)": stored.area().total,
            "cpu-cache generated pad (7b)": generated.area().total,
        },
    )
