"""Secure software-distribution protocol (survey Figure 1, §2.1).

Actors and message sequence exactly as the survey describes:

1. The chip manufacturer provisions a key pair; the private key D_m lives
   in on-chip non-volatile memory, the public key E_m is available to
   anyone.
2. The processor requests the session key K from the software editor.
3. The editor obtains E_m from the manufacturer over the insecure channel.
4. The editor sends K encrypted under E_m over the insecure channel.
5. Only the processor (holder of D_m) recovers K.
6. The processor deciphers the software (symmetric, under K) and installs
   it — re-enciphered with its own bus key — in external memory.

Every message crosses an :class:`InsecureChannel` that a passive
:class:`Eavesdropper` records in full; the E01 tests assert the adversary's
transcript never contains K or the software plaintext, and E01's bench
measures the asymmetric-vs-symmetric cost gap that justifies §2.2's
"symmetric only on the bus" decision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..crypto.aes import AES
from ..crypto.drbg import DRBG
from ..crypto.modes import CTR
from ..crypto.rsa import RSAKeyPair, RSAPublicKey, generate_keypair
from ..obs import TraceEvent, current_sink
from .engine import BusEncryptionEngine

__all__ = [
    "Message", "InsecureChannel", "Eavesdropper",
    "ChipManufacturer", "SoftwareEditor", "SecureProcessor",
    "run_distribution",
]


@dataclass(frozen=True)
class Message:
    """One transmission on the open network."""

    sender: str
    receiver: str
    kind: str
    payload: bytes


class Eavesdropper:
    """Passive adversary: records every byte that crosses the channel."""

    def __init__(self) -> None:
        self.transcript: List[Message] = []

    def observe(self, message: Message) -> None:
        self.transcript.append(message)

    def saw(self, needle: bytes) -> bool:
        """Did ``needle`` appear verbatim in any recorded payload?"""
        return any(needle in m.payload for m in self.transcript)

    @property
    def total_bytes(self) -> int:
        return sum(len(m.payload) for m in self.transcript)


class InsecureChannel:
    """The non-secure transmission network of Figure 1."""

    def __init__(self) -> None:
        self._listeners: List[Eavesdropper] = []
        self.messages: List[Message] = []

    def tap(self, eavesdropper: Eavesdropper) -> None:
        self._listeners.append(eavesdropper)

    def send(self, message: Message) -> Message:
        self.messages.append(message)
        sink = current_sink()
        if sink is not None:
            sink.emit(TraceEvent(
                kind="protocol-msg", size=len(message.payload),
                detail=f"{message.sender}->{message.receiver}:{message.kind}",
            ))
        for listener in self._listeners:
            listener.observe(message)
        return message


class ChipManufacturer:
    """Provisions processor key pairs and publishes public keys."""

    def __init__(self, rng: DRBG, key_bits: int = 512):
        self._rng = rng
        self.key_bits = key_bits
        self._provisioned: dict = {}

    def provision(self, chip_id: str) -> RSAKeyPair:
        """Generate a key pair for a chip; D_m goes into the chip's NVM."""
        keypair = generate_keypair(self.key_bits, self._rng.fork(chip_id))
        self._provisioned[chip_id] = keypair.public
        return keypair

    def public_key(self, channel: InsecureChannel, chip_id: str,
                   requester: str) -> RSAPublicKey:
        """Step 3: send E_m to whoever asks, over the open channel."""
        public = self._provisioned[chip_id]
        payload = public.n.to_bytes(public.modulus_bytes, "big") \
            + public.e.to_bytes(4, "big")
        channel.send(Message("manufacturer", requester, "public-key", payload))
        return public


class SoftwareEditor:
    """Protects its product with a session key K (symmetric)."""

    def __init__(self, name: str, software: bytes, rng: DRBG):
        self.name = name
        self.software = software
        self._rng = rng
        self.session_key = rng.random_bytes(16)

    def ciphered_software(self) -> bytes:
        """The product as shipped: AES-CTR under the session key."""
        ctr = CTR(AES(self.session_key), nonce=self.nonce())
        return ctr.encrypt(self.software)

    def nonce(self) -> bytes:
        return b"sw-" + self.name.encode()[:9].ljust(9, b"\x00")

    def send_software(self, channel: InsecureChannel, chip_id: str) -> Message:
        return channel.send(
            Message(self.name, chip_id, "software", self.ciphered_software())
        )

    def send_session_key(self, channel: InsecureChannel, chip_id: str,
                         public_key: RSAPublicKey) -> Message:
        """Step 4: K under E_m, over the open channel."""
        ciphered = public_key.encrypt(self.session_key, self._rng)
        return channel.send(
            Message(self.name, chip_id, "session-key", ciphered)
        )


class SecureProcessor:
    """The trusted SoC: holds D_m in NVM, a bus engine at its boundary."""

    def __init__(self, chip_id: str, keypair: RSAKeyPair,
                 engine: Optional[BusEncryptionEngine] = None):
        self.chip_id = chip_id
        self._private = keypair.private   # on-chip non-volatile memory
        self.engine = engine
        self._session_key: Optional[bytes] = None
        self._received_software: Optional[bytes] = None

    def request_session_key(self, channel: InsecureChannel,
                            editor_name: str) -> Message:
        """Step 2: ask the editor for K."""
        return channel.send(
            Message(self.chip_id, editor_name, "key-request", b"send-K")
        )

    def receive(self, message: Message) -> None:
        if message.kind == "session-key":
            # Step 5: only D_m recovers K.
            self._session_key = self._private.decrypt(message.payload)
        elif message.kind == "software":
            self._received_software = message.payload

    def install(self, memory, base_addr: int, line_size: int = 32,
                editor_nonce: bytes = None) -> bytes:
        """Step 6: decipher the product with K, re-encipher with the bus key.

        Returns the recovered plaintext (for verification); the external
        memory receives only the bus-engine ciphertext.
        """
        if self._session_key is None:
            raise RuntimeError("no session key established")
        if self._received_software is None:
            raise RuntimeError("no software received")
        ctr = CTR(AES(self._session_key), nonce=editor_nonce)
        plaintext = ctr.decrypt(self._received_software)
        if self.engine is not None:
            self.engine.install_image(memory, base_addr, plaintext,
                                      line_size=line_size)
        else:
            memory.load_image(base_addr, plaintext)
        return plaintext


def run_distribution(
    software: bytes,
    seed: int = 2005,
    key_bits: int = 512,
    engine: Optional[BusEncryptionEngine] = None,
    memory=None,
    base_addr: int = 0,
) -> Tuple[SecureProcessor, Eavesdropper, bytes]:
    """Run the full Figure-1 sequence; returns (processor, eavesdropper, K).

    If ``engine`` and ``memory`` are given, step 6 installs the software
    through the bus engine into the supplied external memory.
    """
    rng = DRBG(seed)
    channel = InsecureChannel()
    eve = Eavesdropper()
    channel.tap(eve)

    manufacturer = ChipManufacturer(rng.fork("manufacturer"), key_bits=key_bits)
    keypair = manufacturer.provision("chip-0")
    editor = SoftwareEditor("editor", software, rng.fork("editor"))
    processor = SecureProcessor("chip-0", keypair, engine=engine)

    processor.request_session_key(channel, editor.name)                 # 2
    public = manufacturer.public_key(channel, "chip-0", editor.name)    # 3
    key_msg = editor.send_session_key(channel, "chip-0", public)        # 4
    processor.receive(key_msg)                                          # 5
    sw_msg = editor.send_software(channel, "chip-0")
    processor.receive(sw_msg)
    if memory is not None:
        processor.install(memory, base_addr, editor_nonce=editor.nonce())  # 6
    return processor, eve, editor.session_key
