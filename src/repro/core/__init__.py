"""Bus-encryption engines — the survey's subject matter.

One class per surveyed design (Best 1979, VLSI secure DMA, General
Instrument 3DES-CBC, Dallas DS5002FP/DS5240, Gilmont fetch-prediction 3DES,
XOM pipelined AES, AEGIS per-line AES-CBC), plus the stream/pad-ahead
engine, the compression+encryption engine, the CPU-cache placement variant
and the Figure-1 distribution protocol.
"""

from .addr_scramble import AddressScrambledEngine
from .aegis import AegisEngine
from .best import BestEngine
from .compress_engine import CompressedEncryptionEngine
from .dallas import DS5002FPEngine, DS5240Engine
from .engine import (
    BlockModeEngine,
    BusEncryptionEngine,
    EngineStats,
    MemoryPort,
    NullEngine,
    Placement,
    TamperDetected,
    TamperVerdicts,
)
from .general_instrument import AuthenticationError, GeneralInstrumentEngine
from .integrity import IntegrityShieldEngine
from .merkle import MerkleTamperDetected, MerkleTreeEngine
from .gilmont import GilmontEngine
from .placement import (
    CpuCacheStreamEngine,
    PlacementComparison,
    compare_placements,
)
from .protocol import (
    ChipManufacturer,
    Eavesdropper,
    InsecureChannel,
    Message,
    SecureProcessor,
    SoftwareEditor,
    run_distribution,
)
from .stream_engine import StreamCipherEngine
from .vlsi_dma import VlsiDmaEngine
from .xom import XomAesEngine
from .registry import (
    ENGINE_SPECS,
    EngineSpec,
    engine_names,
    get_spec,
    list_engines,
    make_engine,
)

__all__ = [
    "AddressScrambledEngine",
    "AegisEngine", "BestEngine", "CompressedEncryptionEngine",
    "DS5002FPEngine", "DS5240Engine",
    "BlockModeEngine", "BusEncryptionEngine", "EngineStats", "MemoryPort",
    "NullEngine", "Placement",
    "AuthenticationError", "GeneralInstrumentEngine",
    "IntegrityShieldEngine", "TamperDetected", "TamperVerdicts",
    "MerkleTamperDetected", "MerkleTreeEngine",
    "GilmontEngine",
    "CpuCacheStreamEngine", "PlacementComparison", "compare_placements",
    "ChipManufacturer", "Eavesdropper", "InsecureChannel", "Message",
    "SecureProcessor", "SoftwareEditor", "run_distribution",
    "StreamCipherEngine", "VlsiDmaEngine", "XomAesEngine",
    "ENGINE_SPECS", "EngineSpec", "engine_names", "get_spec",
    "list_engines", "make_engine",
]
