"""Compression + encryption engine (survey Figure 8, Section 4).

"A possible solution to improve performance would be to add a compression
step to a ciphering solution.  The compression has to be done before
ciphering, if not, compression will have a very poor ratio due to the strong
stochastic properties of encrypted data. ... Compression can improve the
performance of the encryption unit by decreasing the data size to cipher and
to decipher.  In addition, compression can raise hopes for a gain of memory
capacity, and also performance benefit due to lowered bus usage."

The engine compresses the (read-only) code image at cache-line granularity
with the CodePack-style compressor, then enciphers the variable-length
compressed lines with the seekable CTR keystream.  A line address table
(LAT) maps each line to its packed offset/length.  On a fill, only the
compressed bytes cross the bus (fewer beats), then decryption (pad XOR) and
decompression (modeled decoder latency) run on-chip.

Data regions are not compressed (their content changes; repacking online is
not practical) — data lines pass through the inner stream cipher unchanged.
The survey's "+/- 10%" shows up in E13's memory-latency sweep: with slow
memory the saved beats win; with fast memory the decoder latency loses.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..compression.codepack import CodePack, CompressedImage
from ..crypto.modes import xor_bytes
from ..sim.area import AreaEstimate
from ..sim.pipeline import PipelinedUnit, XOM_AES_PIPE
from .engine import BusEncryptionEngine, MemoryPort
from .stream_engine import StreamCipherEngine

__all__ = ["CompressedEncryptionEngine"]


class CompressedEncryptionEngine(BusEncryptionEngine):
    """CodePack-then-encrypt for code, plain stream encryption for data."""

    name = "compress+encrypt"
    min_write_bytes = 1
    #: Confidentiality only: tampered compressed code decodes to garbage
    #: (often unparseable) but nothing *rejects* it.
    detects = frozenset()

    def __init__(
        self,
        key: bytes,
        line_size: int = 32,
        decoder_fixed_latency: int = 4,
        decoder_bytes_per_cycle: int = 4,
        unit: PipelinedUnit = XOM_AES_PIPE,
        functional: bool = True,
    ):
        super().__init__(functional=functional)
        self.line_size = line_size
        self.decoder_fixed_latency = decoder_fixed_latency
        self.decoder_bytes_per_cycle = decoder_bytes_per_cycle
        self.unit = unit
        self._inner = StreamCipherEngine(
            key, line_size=line_size, unit=unit, functional=functional
        )
        self._codec = CodePack(block_size=line_size)
        #: line address -> (packed offset, compressed length)
        self._lat: Dict[int, Tuple[int, int]] = {}
        self._image: Optional[CompressedImage] = None
        self._code_base = 0
        self._code_size = 0
        self._packed_base = 0
        self.compressed_fills = 0
        self.uncompressed_fills = 0

    # -- image installation ---------------------------------------------------

    def install_image(self, memory, base_addr: int, plaintext: bytes,
                      line_size: int = 32) -> None:
        """Compress, encrypt and pack the code image into memory.

        The packed stream is stored starting at ``base_addr``; the LAT keeps
        the line -> (offset, length) mapping on-chip.
        """
        if line_size != self.line_size:
            raise ValueError(
                f"engine line size {self.line_size} != system line size {line_size}"
            )
        if len(plaintext) % line_size != 0:
            plaintext = plaintext + b"\x00" * (line_size - len(plaintext) % line_size)
        self._code_base = base_addr
        self._code_size = len(plaintext)
        self._packed_base = base_addr
        self._image = self._codec.compress_image(plaintext)

        offset = 0
        for i, compressed in enumerate(self._image.blocks):
            line_addr = base_addr + i * line_size
            packed_addr = self._packed_base + offset
            ciphertext = (
                xor_bytes(compressed,
                          self._inner._pad(packed_addr, len(compressed)))
                if self.functional else compressed
            )
            memory.load_image(packed_addr, ciphertext)
            self._lat[line_addr] = (packed_addr, len(compressed))
            offset += len(compressed)

    @property
    def density_gain(self) -> float:
        """Memory-density increase from compression (survey: ≈35%)."""
        if self._image is None:
            return 0.0
        return self._image.density_gain

    @property
    def compression_ratio(self) -> float:
        if self._image is None:
            return 1.0
        return self._image.ratio

    # -- generic interface (delegated to the inner stream engine) -------------

    def encrypt_line(self, addr: int, plaintext: bytes) -> bytes:
        return self._inner.encrypt_line(addr, plaintext)

    def decrypt_line(self, addr: int, ciphertext: bytes) -> bytes:
        return self._inner.decrypt_line(addr, ciphertext)

    def read_extra_cycles(self, addr: int, nbytes: int, mem_cycles: int) -> int:
        return self._inner.read_extra_cycles(addr, nbytes, mem_cycles)

    def write_extra_cycles(self, addr: int, nbytes: int) -> int:
        return self._inner.write_extra_cycles(addr, nbytes)

    def _decoder_cycles(self, out_bytes: int) -> int:
        return self.decoder_fixed_latency + -(-out_bytes // self.decoder_bytes_per_cycle)

    # -- fills ------------------------------------------------------------------

    def fill_line(self, port: MemoryPort, addr: int, line_size: int
                  ) -> Tuple[bytes, int]:
        entry = self._lat.get(addr)
        if entry is None:
            # Data region: plain stream-encrypted line.
            self.uncompressed_fills += 1
            return self._inner.fill_line(port, addr, line_size)

        self.compressed_fills += 1
        packed_addr, length = entry
        ciphertext, mem_cycles = port.read(packed_addr, length)
        # Pad XOR overlaps the (shorter) fetch like the inner engine's.
        pad_cycles = self.unit.time_for(-(-length // 16))
        crypto_extra = max(0, pad_cycles - mem_cycles) + 1
        decode_extra = self._decoder_cycles(line_size)
        self.stats.lines_decrypted += 1
        self.stats.extra_read_cycles += crypto_extra + decode_extra
        self._emit("decipher", packed_addr, length, "compressed")
        if crypto_extra + decode_extra:
            self._emit("stall", packed_addr, crypto_extra + decode_extra,
                       "read")

        if self.functional:
            compressed = xor_bytes(
                ciphertext, self._inner._pad(packed_addr, length)
            )
            plaintext = self._codec.decompress_block(
                compressed, line_size,
                self._image.dict_high, self._image.dict_low,
            )
        else:
            plaintext = bytes(line_size)
        return plaintext, mem_cycles + crypto_extra + decode_extra

    def write_line(self, port: MemoryPort, addr: int, plaintext: bytes) -> int:
        if addr in self._lat:
            raise ValueError(
                f"write to compressed (read-only) code line {addr:#x}"
            )
        return self._inner.write_line(port, addr, plaintext)

    def write_partial(self, port: MemoryPort, addr: int, data: bytes,
                      line_size: int) -> int:
        if addr - addr % line_size in self._lat:
            raise ValueError(
                f"write to compressed (read-only) code line {addr:#x}"
            )
        return self._inner.write_partial(port, addr, data, line_size)

    def area(self) -> AreaEstimate:
        est = AreaEstimate(self.name)
        est.add_block("aes_pipelined")
        est.add_block("codepack_decoder")
        est.add_sram("lat", 6 * max(1, len(self._lat)))
        est.add_sram(
            "dictionaries",
            2 * (len(self._image.dict_high) + len(self._image.dict_low))
            if self._image else 1024,
        )
        est.add_block("control_overhead")
        return est
