"""Integrity-protected bus encryption (the survey's §5 future work).

"In future exploration, it might also be relevant to take into account the
problem of integrity, to thwart attacks based on the modification of the
fetched instructions."

:class:`IntegrityShieldEngine` composes any confidentiality engine with
per-cache-line authentication:

* every line carries a truncated HMAC-SHA256 tag over
  ``(address, version, ciphertext)``, stored in a reserved tag region of
  external memory (like real integrity engines' tag arrays);
* line fills fetch and verify the tag; a mismatch raises
  :class:`TamperDetected` — spoofed or corrupted instructions never reach
  the CPU;
* **replay protection** is the interesting design choice: with
  ``versioned=True`` (default) each line's write counter is kept in on-chip
  SRAM and mixed into the tag, so replaying an *old* (ciphertext, tag) pair
  recorded from the bus is detected.  With ``versioned=False`` the tag only
  covers (address, ciphertext), and a recorded pair replays cleanly — the
  ablation E15 measures, and the reason real designs (AEGIS trees) pay for
  version state.

Timing: each fill adds a tag fetch (through a small on-chip tag cache —
tags have 4-to-a-block spatial locality) plus the residual of the MAC
check that does not overlap the data fetch; each writeback adds a tag
computation and store.
"""

from __future__ import annotations

import warnings
from typing import Dict, FrozenSet, Optional, Tuple

from ..crypto.hmac import consttime_eq, hmac_sha256
from ..sim.area import AreaEstimate
from .engine import BusEncryptionEngine, MemoryPort, TamperDetected

# TamperDetected historically lived here; it is now the canonical verdict
# exception in repro.core.engine and stays importable from this module.
__all__ = ["IntegrityShieldEngine", "TamperDetected"]


class IntegrityShieldEngine(BusEncryptionEngine):
    """Confidentiality engine + per-line MAC tags + optional anti-replay."""

    name = "integrity-shield"

    def __init__(
        self,
        inner: BusEncryptionEngine,
        mac_key: bytes,
        tag_region_base: int,
        tag_bytes: int = 8,
        versioned: bool = True,
        hash_latency: int = 64,
        tracked_lines: int = 4096,
        tag_cache_blocks: int = 32,
    ):
        super().__init__(functional=inner.functional)
        if not 4 <= tag_bytes <= 32:
            raise ValueError(f"tag_bytes must be in [4, 32], got {tag_bytes}")
        self.inner = inner
        self.mac_key = mac_key
        self.tag_region_base = tag_region_base
        self.tag_bytes = tag_bytes
        self.versioned = versioned
        self.hash_latency = hash_latency
        self.tracked_lines = tracked_lines
        self.min_write_bytes = inner.min_write_bytes
        #: On-chip write counters (anti-replay state).
        self._versions: Dict[int, int] = {}
        #: On-chip tag cache: tags have spatial locality (a 32-byte tag
        #: block covers 32/tag_bytes consecutive data lines), so sequential
        #: fills amortize one tag fetch over several lines.  Size 0 fetches
        #: every tag individually (the naive model, kept as an ablation).
        self.tag_cache_blocks = tag_cache_blocks
        from collections import OrderedDict
        self._tag_cache: "OrderedDict[int, bytearray]" = OrderedDict()
        self.tag_cache_hits = 0
        self.tag_cache_misses = 0
        self._line_size_hint = 32

    # -- verdict accounting ------------------------------------------------
    #
    # The shield used to keep private ``tampers_detected``/``tags_verified``
    # counters; both are now derived from the uniform verdict path
    # (``BusEncryptionEngine.verify_line`` -> ``self.verdicts``) and kept
    # as deprecated read-only aliases for one release.

    @property
    def tampers_detected(self) -> int:
        """Deprecated alias of ``self.verdicts.tampers``."""
        warnings.warn(
            "IntegrityShieldEngine.tampers_detected is deprecated; read "
            "engine.verdicts.tampers instead",
            DeprecationWarning, stacklevel=2,
        )
        return self.verdicts.tampers

    @property
    def tags_verified(self) -> int:
        """Deprecated alias of ``self.verdicts.checks``."""
        warnings.warn(
            "IntegrityShieldEngine.tags_verified is deprecated; read "
            "engine.verdicts.checks instead",
            DeprecationWarning, stacklevel=2,
        )
        return self.verdicts.checks

    @property
    def detects(self) -> FrozenSet[str]:
        """Fault kinds the shield catches: any forged/relocated/flipped
        line breaks its (address, version, ciphertext) tag; replay of a
        recorded (line, tag) pair needs the on-chip version counters."""
        kinds = {"spoof", "splice", "glitch"}
        if self.versioned:
            kinds.add("replay")
        return frozenset(kinds)

    # -- tag plumbing -----------------------------------------------------

    def _tag_addr(self, addr: int, line_size: int) -> int:
        return self.tag_region_base + (addr // line_size) * self.tag_bytes

    def _compute_tag(self, addr: int, ciphertext: bytes) -> bytes:
        version = self._versions.get(addr, 0) if self.versioned else 0
        material = (
            addr.to_bytes(8, "big")
            + version.to_bytes(8, "big")
            + ciphertext
        )
        return hmac_sha256(self.mac_key, material)[: self.tag_bytes]

    # -- tag cache (32-byte tag blocks) -------------------------------------

    def _read_tag(self, port: MemoryPort, addr: int, line_size: int
                  ) -> Tuple[bytes, int]:
        """Fetch one line's tag, through the on-chip tag cache."""
        tag_addr = self._tag_addr(addr, line_size)
        if self.tag_cache_blocks <= 0:
            tag, cycles = port.read(tag_addr, self.tag_bytes)
            return bytes(tag), cycles
        block_addr = tag_addr - tag_addr % 32
        offset = tag_addr - block_addr
        block = self._tag_cache.get(block_addr)
        if block is not None:
            self._tag_cache.move_to_end(block_addr)
            self.tag_cache_hits += 1
            return bytes(block[offset: offset + self.tag_bytes]), 1
        self.tag_cache_misses += 1
        data, cycles = port.read(block_addr, 32)
        block = bytearray(data)
        self._tag_cache[block_addr] = block
        while len(self._tag_cache) > self.tag_cache_blocks:
            self._tag_cache.popitem(last=False)
        return bytes(block[offset: offset + self.tag_bytes]), cycles

    def _write_tag(self, port: MemoryPort, addr: int, line_size: int,
                   tag: bytes) -> int:
        """Store one line's tag, keeping the cache coherent."""
        tag_addr = self._tag_addr(addr, line_size)
        if self.tag_cache_blocks > 0:
            block_addr = tag_addr - tag_addr % 32
            block = self._tag_cache.get(block_addr)
            if block is not None:
                offset = tag_addr - block_addr
                block[offset: offset + self.tag_bytes] = tag
        return port.write(tag_addr, tag)

    # -- functional transform (delegated) ----------------------------------

    def encrypt_line(self, addr: int, plaintext: bytes) -> bytes:
        return self.inner.encrypt_line(addr, plaintext)

    def decrypt_line(self, addr: int, ciphertext: bytes) -> bytes:
        return self.inner.decrypt_line(addr, ciphertext)

    def read_extra_cycles(self, addr: int, nbytes: int, mem_cycles: int) -> int:
        return self.inner.read_extra_cycles(addr, nbytes, mem_cycles)

    def write_extra_cycles(self, addr: int, nbytes: int) -> int:
        return self.inner.write_extra_cycles(addr, nbytes)

    # -- installation -------------------------------------------------------

    def install_image(self, memory, base_addr: int, plaintext: bytes,
                      line_size: int = 32) -> None:
        self._line_size_hint = line_size
        if len(plaintext) % line_size != 0:
            plaintext = plaintext + b"\x00" * (
                line_size - len(plaintext) % line_size
            )
        items = [
            (base_addr + offset, plaintext[offset: offset + line_size])
            for offset in range(0, len(plaintext), line_size)
        ]
        for (addr, _), ciphertext in zip(items,
                                         self.inner.encrypt_lines(items)):
            memory.load_image(addr, ciphertext)
            memory.load_image(
                self._tag_addr(addr, line_size),
                self._compute_tag(addr, ciphertext),
            )

    # -- fills / writes -------------------------------------------------------

    def fill_line(self, port: MemoryPort, addr: int, line_size: int
                  ) -> Tuple[bytes, int]:
        self._line_size_hint = line_size
        ciphertext, mem_cycles = port.read(addr, line_size)
        tag, tag_cycles = self._read_tag(port, addr, line_size)
        # The MAC engine digests ciphertext beats as they arrive, so only
        # the residual drain past the fetch lands on the critical path.
        hash_residual = max(0, self.hash_latency - mem_cycles) + 4
        cycles = mem_cycles + tag_cycles + hash_residual

        ok = (not self.functional
              or consttime_eq(bytes(tag), self._compute_tag(addr, ciphertext)))
        if not self.verify_line(addr, line_size, ok):
            raise TamperDetected(
                f"line at {addr:#x} failed integrity verification"
            )
        extra = self.inner.read_extra_cycles(addr, line_size, mem_cycles)
        cycles += extra
        self.stats.lines_decrypted += 1
        self.stats.extra_read_cycles += extra + tag_cycles + hash_residual
        self._emit("decipher", addr, line_size)
        stall = extra + tag_cycles + hash_residual
        if stall:
            self._emit("stall", addr, stall, "read")
        plaintext = (
            self.inner.decrypt_line(addr, ciphertext)
            if self.functional else ciphertext
        )
        return plaintext, cycles

    def write_line(self, port: MemoryPort, addr: int, plaintext: bytes) -> int:
        if self.versioned:
            self._versions[addr] = self._versions.get(addr, 0) + 1
        extra = self.inner.write_extra_cycles(addr, len(plaintext))
        ciphertext = (
            self.inner.encrypt_line(addr, plaintext)
            if self.functional else plaintext
        )
        cycles = extra + port.write(addr, ciphertext)
        tag = self._compute_tag(addr, ciphertext) if self.functional \
            else bytes(self.tag_bytes)
        cycles += self._write_tag(
            port, addr, len(plaintext), tag
        ) + self.hash_latency
        self.stats.lines_encrypted += 1
        self.stats.extra_write_cycles += extra + self.hash_latency
        self._emit("encipher", addr, len(plaintext))
        self._emit("stall", addr, extra + self.hash_latency, "write")
        return cycles

    def write_partial(self, port: MemoryPort, addr: int, data: bytes,
                      line_size: int) -> int:
        # Integrity forces line-granular read-verify-modify-write: the tag
        # covers the whole line.
        start = addr - addr % line_size
        self.stats.rmw_operations += 1
        self._emit("rmw", addr, line_size)
        plaintext, read_cycles = self.fill_line(port, start, line_size)
        patched = bytearray(plaintext)
        patched[addr - start: addr - start + len(data)] = data
        return read_cycles + self.write_line(port, start, bytes(patched))

    # -- area ---------------------------------------------------------------

    def area(self) -> AreaEstimate:
        est = AreaEstimate(self.name)
        inner = self.inner.area()
        for label, gates in inner.items.items():
            est.add(f"inner/{label}", gates)
        est.add_block("hmac_sha256")
        if self.versioned:
            est.add_sram("version-table", 4 * self.tracked_lines)
        if self.tag_cache_blocks > 0:
            est.add_sram("tag-cache", 32 * self.tag_cache_blocks)
        est.add_block("control_overhead")
        return est

    # -- memory overhead -------------------------------------------------------

    def tag_overhead_fraction(self, line_size: Optional[int] = None) -> float:
        """External-memory space consumed by tags (e.g. 8/32 = 25%)."""
        line = line_size or self._line_size_hint
        return self.tag_bytes / line
